"""Tests: attach_oracle wiring — idempotent, additive, config-aware."""

from __future__ import annotations

import pytest

from repro import BASELINE, LLSC, Cluster, ablate
from repro.kernel.errors import KernelError
from repro.monitor import instrument_cluster
from repro.oracle import SeparationOracle, attach_oracle


def build(config=LLSC, **kw):
    kw.setdefault("n_compute", 2)
    kw.setdefault("gpus_per_node", 1)
    kw.setdefault("users", ("alice", "bob"))
    return Cluster.build(config, **kw)


def exercise(c):
    """A small mixed workload; returns its user-observable outcomes."""
    c.submit("alice", duration=5.0, gpus_per_task=1)
    c.submit("bob", duration=5.0)
    c.run(until=60.0)
    alice, bob = c.login("alice"), c.login("bob")
    alice.sys.create("/home/alice/data", data=b"mine")
    outcomes = {
        "alice_ps": sorted((e.pid, e.uid) for e in alice.sys.ps()),
        "bob_pids": sorted(bob.sys.list_proc_pids()),
        "chmod": alice.sys.chmod("/home/alice/data", 0o777),
        "jobs": sorted((j.job_id, j.state.name)
                       for j in c.scheduler.jobs.values()),
    }
    try:
        bob.sys.open_read("/home/alice/data")
        outcomes["bob_read"] = "allowed"
    except KernelError as e:
        outcomes["bob_read"] = type(e).__name__
    return outcomes


class TestAttach:
    def test_returns_and_stores_oracle(self):
        c = build()
        oracle = attach_oracle(c)
        assert isinstance(oracle, SeparationOracle)
        assert c.oracle is oracle
        assert c.scheduler.oracle is oracle
        assert all(d.oracle is oracle for d in c.ubf_daemons.values())
        assert c.portal.oracle is oracle

    def test_idempotent(self):
        c = build()
        oracle = attach_oracle(c)
        prolog, epilog = c.scheduler.prolog, c.scheduler.epilog
        again = attach_oracle(c, sampling_rate=0.5)
        assert again is oracle
        assert again.sampling_rate == 1.0  # second call changed nothing
        assert c.scheduler.prolog is prolog  # no double wrap
        assert c.scheduler.epilog is epilog

    def test_gpu_read_check_armed_only_with_both_measures(self):
        llsc = build()
        attach_oracle(llsc)
        assert all(g.oracle is not None
                   for cn in llsc.compute_nodes for g in cn.gpus)
        for weakened in (BASELINE, ablate(LLSC, gpu_scrub=False),
                         ablate(LLSC, gpu_dev_assignment=False)):
            c = build(weakened)
            attach_oracle(c)
            assert all(g.oracle is None
                       for cn in c.compute_nodes for g in cn.gpus)

    def test_event_log_linked_in_either_attach_order(self):
        c1 = build()
        attach_oracle(c1)
        log1 = instrument_cluster(c1)
        assert c1.oracle.events is log1

        c2 = build()
        log2 = instrument_cluster(c2)
        attach_oracle(c2)
        assert c2.oracle.events is log2

    def test_env_gate_attaches_at_build(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "1")
        monkeypatch.setenv("REPRO_ORACLE_RATE", "0.25")
        monkeypatch.setenv("REPRO_ORACLE_FAILFAST", "0")
        c = build()
        assert c.oracle is not None
        assert c.oracle.sampling_rate == 0.25
        assert not c.oracle.fail_fast

    def test_env_gate_defaults_fail_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "1")
        c = build()
        assert c.oracle.fail_fast and c.oracle.sampling_rate == 1.0

    def test_no_env_no_oracle(self, monkeypatch):
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        assert build().oracle is None


class TestAdditivity:
    def test_outcomes_identical_with_oracle(self):
        plain = exercise(build())
        observed = build()
        oracle = attach_oracle(observed, fail_fast=True)
        assert exercise(observed) == plain
        assert oracle.total_checks > 0
        oracle.assert_clean()

    def test_checks_span_invariants(self):
        c = build()
        oracle = attach_oracle(c, fail_fast=True)
        exercise(c)
        c.portal.login("alice")
        assert oracle.checks_for("I1") > 0  # ps / list_pids
        assert oracle.checks_for("I3") > 0  # create/chmod
        assert oracle.checks_for("I4") > 0  # two job starts
        assert oracle.checks_for("I5") > 0  # gpu prolog/epilog
        assert oracle.shadow_checks > 0
        assert not oracle.violations

    def test_metrics_labelled_per_invariant(self):
        c = build()
        oracle = attach_oracle(c)
        exercise(c)
        checks = c.metrics.counter("oracle_checks_total", invariant="I4")
        assert checks.value == oracle.checks_for("I4") > 0

    def test_sampled_oracle_checks_less(self):
        c = build()
        oracle = attach_oracle(c, sampling_rate=0.05, shadow_rate=0.0)
        full = attach_oracle(build(), fail_fast=True)
        exercise(c)
        assert oracle.total_checks < 40
        assert not oracle.violations
        assert full.total_checks == 0  # nothing ran on that cluster


class TestFailFastEndToEnd:
    def test_broken_scrub_is_caught(self):
        """Disable the scrub behind the oracle's back: the epilog
        post-condition check must catch the residue."""
        from repro.oracle import SeparationViolation
        c = build()
        attach_oracle(c, fail_fast=True)
        c.submit("alice", duration=5.0, gpus_per_task=1)
        c.run(until=1.0)  # job started, device assigned
        alice = c.userdb.credentials_for(c.userdb.user("alice"))
        dirtied = 0
        for cn in c.compute_nodes:
            for gpu in cn.gpus:
                gpu.scrub = lambda: None  # sabotage
                if cn.node.name in {a.node for j in
                                    c.scheduler.jobs.values()
                                    for a in j.allocations}:
                    gpu.dev_write(alice, b"secret")
                    dirtied += 1
        assert dirtied
        with pytest.raises(SeparationViolation, match=r"\[I5\].*residue"):
            c.run(until=60.0)
