"""Tests: each oracle check fires on a deliberately broken decision.

The tier-1 suite under ``REPRO_ORACLE=1`` proves the checks stay silent on
correct enforcement; these tests prove they are not vacuous — every
invariant's check is fed a decision that violates it (constructed outside
the enforcement paths, which refuse to produce one) and must report.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.kernel import PAPER_SMASK, LinuxNode
from repro.net.firewall import Verdict
from repro.net.ident import IdentReply
from repro.oracle import (
    DEFAULT_SEED,
    SeparationOracle,
    SeparationViolation,
    reference_ubf_verdict,
)
from repro.sched import NodeSharing
from tests.conftest import creds_of
from tests.sched.conftest import build_sched, spec


def flow_pkt():
    return SimpleNamespace(flow=SimpleNamespace(
        src_host="login-1", src_port=40001,
        dst_host="compute-1", dst_port=8080, dst_uid=None))


def fake_daemon(userdb):
    return SimpleNamespace(stack=SimpleNamespace(hostname="compute-1"),
                           userdb=userdb, fail_open=False)


class TestReferenceRule:
    def test_same_user_and_root_accepted(self):
        assert reference_ubf_verdict(7, frozenset(), 7, 1007)
        assert reference_ubf_verdict(0, frozenset(), 7, 1007)

    def test_egid_membership_accepted(self):
        assert reference_ubf_verdict(8, frozenset({1007}), 7, 1007)

    def test_stranger_and_anonymous_refused(self):
        assert not reference_ubf_verdict(8, frozenset({1008}), 7, 1007)
        assert not reference_ubf_verdict(None, frozenset(), 7, 1007)


class TestProcfsCheck:
    def test_cross_uid_listing_violates_i1(self, llsc_node, userdb):
        oracle = SeparationOracle(shadow_rate=0.0)
        fs = llsc_node.procfs
        alice = creds_of(userdb, "alice")
        bob_proc = SimpleNamespace(creds=creds_of(userdb, "bob"))
        oracle.check_procfs_view(fs, alice, [bob_proc], "ps")
        (v,) = oracle.violations_for("I1")
        assert "exposed uids" in v.detail

    def test_own_listing_clean(self, llsc_node, userdb):
        oracle = SeparationOracle(shadow_rate=0.0)
        alice = creds_of(userdb, "alice")
        own = SimpleNamespace(creds=alice)
        oracle.check_procfs_view(llsc_node.procfs, alice, [own], "ps")
        assert not oracle.violations
        assert oracle.checks_for("I1") == 1

    def test_exempt_viewer_may_cross_uids(self, llsc_node, userdb):
        oracle = SeparationOracle(shadow_rate=0.0)
        sam = creds_of(userdb, "sam")  # in the seepid gid= group
        bob_proc = SimpleNamespace(creds=creds_of(userdb, "bob"))
        oracle.check_procfs_view(llsc_node.procfs, sam, [bob_proc], "ps")
        assert not oracle.violations

    def test_shadow_divergence_reported(self, llsc_node, userdb,
                                        monkeypatch):
        """A lying per-uid index is caught by the naive reference scan."""
        oracle = SeparationOracle()
        fs = llsc_node.procfs
        alice = creds_of(userdb, "alice")
        llsc_node.procs.spawn(alice, ["bash"])
        monkeypatch.setattr(fs.table, "of_user", lambda uid: [])
        oracle.check_procfs_view(fs, alice, [], "list_pids")
        assert oracle.shadow_checks == 1
        (v,) = oracle.violations_for("I1")
        assert "diverges from naive reference" in v.detail


class TestUbfChecks:
    def test_cross_user_accept_violates_i2(self, userdb):
        oracle = SeparationOracle()
        alice, bob = userdb.user("alice"), userdb.user("bob")
        listener = IdentReply(bob.uid, bob.primary_gid,
                              frozenset({bob.primary_gid}))
        initiator = IdentReply(alice.uid, alice.primary_gid,
                               frozenset({alice.primary_gid}))
        oracle.check_ubf_conclude(fake_daemon(userdb), flow_pkt(),
                                  listener, initiator, Verdict.ACCEPT)
        (v,) = oracle.violations_for("I2")
        assert "cross-user flow" in v.detail

    def test_sanctioned_drop_violates_i2(self, userdb):
        """Dropping a flow the appendix rule accepts is a regression."""
        oracle = SeparationOracle()
        carol, dave = userdb.user("carol"), userdb.user("dave")
        fusion = userdb.group("fusion").gid
        listener = IdentReply(carol.uid, fusion, frozenset({fusion}))
        initiator = IdentReply(dave.uid, dave.primary_gid,
                               frozenset({dave.primary_gid, fusion}))
        oracle.check_ubf_conclude(fake_daemon(userdb), flow_pkt(),
                                  listener, initiator, Verdict.DROP)
        (v,) = oracle.violations_for("I2")
        assert "was dropped" in v.detail

    def test_unidentifiable_accept_violates_i2(self, userdb):
        oracle = SeparationOracle()
        bob = userdb.user("bob")
        listener = IdentReply(bob.uid, bob.primary_gid, frozenset())
        oracle.check_ubf_conclude(fake_daemon(userdb), flow_pkt(),
                                  listener, None, Verdict.ACCEPT)
        (v,) = oracle.violations_for("I2")
        assert "unidentifiable" in v.detail

    def test_live_membership_legitimises_accept(self, userdb):
        """An ident snapshot may predate a project-group add; the allow
        set consults the live database, and so must the oracle."""
        oracle = SeparationOracle()
        carol, dave = userdb.user("carol"), userdb.user("dave")
        fusion = userdb.group("fusion").gid
        listener = IdentReply(carol.uid, fusion, frozenset({fusion}))
        stale = IdentReply(dave.uid, dave.primary_gid,
                           frozenset({dave.primary_gid}))  # no fusion yet
        oracle.check_ubf_conclude(fake_daemon(userdb), flow_pkt(),
                                  listener, stale, Verdict.ACCEPT)
        assert not oracle.violations

    def test_cached_same_user_drop_violates_i2(self, userdb):
        oracle = SeparationOracle()
        uid = userdb.user("alice").uid
        oracle.check_ubf_cached(fake_daemon(userdb), (uid, uid, 0),
                                Verdict.DROP)
        (v,) = oracle.violations_for("I2")
        assert "cached DROP" in v.detail

    def test_degraded_verdict_must_match_policy(self, userdb):
        oracle = SeparationOracle()
        daemon = fake_daemon(userdb)  # fail_open=False
        oracle.check_ubf_degraded(daemon, Verdict.ACCEPT)
        (v,) = oracle.violations_for("I2")
        assert "fail-closed" in v.detail


class TestVfsChecks:
    def test_smask_bits_in_stored_mode_violate_i3(self, llsc_node, userdb):
        oracle = SeparationOracle()
        alice = creds_of(userdb, "alice", smask=PAPER_SMASK)
        oracle.check_vfs_mode(llsc_node.vfs, "/home/alice/f", alice,
                              0o777, "chmod")
        (v,) = oracle.violations_for("I3")
        assert "smask bits" in v.detail

    def test_masked_mode_clean(self, llsc_node, userdb):
        oracle = SeparationOracle()
        alice = creds_of(userdb, "alice", smask=PAPER_SMASK)
        oracle.check_vfs_mode(llsc_node.vfs, "/home/alice/f", alice,
                              0o777 & ~alice.smask, "chmod")
        assert not oracle.violations

    def test_foreign_uid_acl_grant_violates_i3(self, llsc_node, userdb):
        oracle = SeparationOracle()
        alice = creds_of(userdb, "alice")
        bob = userdb.user("bob")
        entry = SimpleNamespace(tag="user", qualifier=bob.uid)
        oracle.check_vfs_acl(llsc_node.vfs, "/home/alice/f", alice, entry)
        (v,) = oracle.violations_for("I3")
        assert "foreign uid" in v.detail

    def test_non_member_group_grant_violates_i3(self, llsc_node, userdb):
        oracle = SeparationOracle()
        alice = creds_of(userdb, "alice")
        bob = userdb.user("bob")
        entry = SimpleNamespace(tag="group", qualifier=bob.primary_gid)
        oracle.check_vfs_acl(llsc_node.vfs, "/home/alice/f", alice, entry)
        (v,) = oracle.violations_for("I3")
        assert "non-member gid" in v.detail


class TestSchedChecks:
    def test_co_location_violates_i4(self, userdb):
        engine, sched = build_sched(
            userdb, policy=NodeSharing.WHOLE_NODE_USER)
        sched.submit(spec(userdb, "bob"), duration=100.0)
        engine.run(until=1.0)
        node = sched.nodes["c1"]
        assert node.running_uids() == {userdb.user("bob").uid}
        oracle = SeparationOracle(shadow_rate=0.0)
        alice_job = sched.submit(spec(userdb, "alice"), duration=1.0)
        oracle.check_sched_start(sched, alice_job, [(node, 1)])
        assert any("co-located" in v.detail
                   for v in oracle.violations_for("I4"))

    def test_capacity_overrun_violates_i4(self, userdb):
        engine, sched = build_sched(userdb, cores=8)
        oracle = SeparationOracle(shadow_rate=0.0)
        job = sched.submit(spec(userdb, "alice", ntasks=9), duration=1.0)
        oracle.check_sched_start(sched, job, [(sched.nodes["c1"], 9)])
        assert any("placeable" in v.detail
                   for v in oracle.violations_for("I4"))

    def test_shadow_divergence_reported(self, userdb):
        """A plan skipping the first-fit node diverges from reference."""
        engine, sched = build_sched(userdb)
        oracle = SeparationOracle()
        job = sched.submit(spec(userdb, "alice"), duration=1.0)
        oracle.check_sched_start(sched, job, [(sched.nodes["c2"], 1)])
        assert oracle.shadow_checks == 1
        (v,) = oracle.violations_for("I4")
        assert "reference" in v.detail

    def test_first_fit_plan_clean(self, userdb):
        engine, sched = build_sched(userdb)
        oracle = SeparationOracle()
        job = sched.submit(spec(userdb, "alice"), duration=1.0)
        oracle.check_sched_start(sched, job, [(sched.nodes["c1"], 1)])
        assert not oracle.violations
        assert oracle.shadow_checks == 1


class TestGpuChecks:
    def _node(self, userdb, gpu_dev_mode=0o666):
        from repro.kernel import NodeSpec
        from repro.sched import ComputeNode
        return ComputeNode.create(
            LinuxNode("c1", userdb, spec=NodeSpec(cores=8, mem_mb=16000,
                                                  gpus=1)),
            gpu_dev_mode=gpu_dev_mode)

    def test_unassigned_device_perms_violate_i5(self, userdb):
        """Prolog 'finished' but the /dev file still has default perms."""
        oracle = SeparationOracle()
        cn = self._node(userdb)
        alice = userdb.user("alice")
        job = SimpleNamespace(job_id=7, uid=alice.uid,
                              spec=SimpleNamespace(user=alice))
        oracle.check_gpu_assigned(cn, job, (0,))
        (v,) = oracle.violations_for("I5")
        assert "assigned device" in v.detail

    def test_residue_after_epilog_violates_i5(self, userdb):
        oracle = SeparationOracle()
        cn = self._node(userdb)
        cn.gpu(0).dev_write(creds_of(userdb, "alice"), b"residue")
        alice = userdb.user("alice")
        job = SimpleNamespace(job_id=7, uid=alice.uid,
                              spec=SimpleNamespace(user=alice))
        oracle.check_gpu_released(cn, job, (0,), scrub_expected=True,
                                  perms_expected=False)
        (v,) = oracle.violations_for("I5")
        assert "residue" in v.detail

    def test_cross_uid_dirty_read_violates_i5(self, userdb):
        oracle = SeparationOracle()
        alice, bob = userdb.user("alice"), userdb.user("bob")
        device = SimpleNamespace(index=0, last_user_uid=alice.uid,
                                 dirty=True)
        oracle.check_gpu_read(device, creds_of(userdb, "bob"))
        (v,) = oracle.violations_for("I5")
        assert f"uid {bob.uid} read dirty" in v.detail

    def test_own_read_clean(self, userdb):
        oracle = SeparationOracle()
        alice = userdb.user("alice")
        device = SimpleNamespace(index=0, last_user_uid=alice.uid,
                                 dirty=True)
        oracle.check_gpu_read(device, creds_of(userdb, "alice"))
        assert not oracle.violations


class TestPortalChecks:
    def _portal(self, userdb):
        return SimpleNamespace(require_auth=True, userdb=userdb)

    def _app(self, owner, egid):
        return SimpleNamespace(
            app_id=1, owner_uid=owner.uid,
            process=SimpleNamespace(creds=SimpleNamespace(egid=egid)))

    def test_wrong_forwarding_identity_violates_i6(self, userdb):
        oracle = SeparationOracle()
        alice, bob = userdb.user("alice"), userdb.user("bob")
        app = self._app(bob, bob.primary_gid)
        oracle.check_portal_forward(self._portal(userdb), bob,
                                    creds_of(userdb, "alice"), app)
        (v,) = oracle.violations_for("I6")
        assert "forwarding process ran as" in v.detail

    def test_unsanctioned_cross_owner_forward_violates_i6(self, userdb):
        oracle = SeparationOracle()
        alice, bob = userdb.user("alice"), userdb.user("bob")
        app = self._app(alice, alice.primary_gid)
        oracle.check_portal_forward(self._portal(userdb), bob,
                                    creds_of(userdb, "bob"), app)
        assert any("without membership" in v.detail
                   for v in oracle.violations_for("I6"))

    def test_project_sharing_sanctioned(self, userdb):
        """dave reaching carol's fusion-group app is the sanctioned path."""
        oracle = SeparationOracle()
        carol, dave = userdb.user("carol"), userdb.user("dave")
        fusion = userdb.group("fusion").gid
        app = self._app(carol, fusion)
        oracle.check_portal_forward(self._portal(userdb), dave,
                                    creds_of(userdb, "dave"), app)
        assert not oracle.violations

    def test_foreign_route_listing_violates_i6(self, userdb):
        oracle = SeparationOracle()
        alice, bob = userdb.user("alice"), userdb.user("bob")
        session = SimpleNamespace(user=bob)
        apps = [self._app(alice, alice.primary_gid)]
        oracle.check_portal_routes(self._portal(userdb), session, apps)
        (v,) = oracle.violations_for("I6")
        assert "exposed apps" in v.detail

    def test_auth_off_disarms(self, userdb):
        oracle = SeparationOracle()
        alice, bob = userdb.user("alice"), userdb.user("bob")
        portal = SimpleNamespace(require_auth=False, userdb=userdb)
        app = self._app(alice, alice.primary_gid)
        oracle.check_portal_forward(portal, bob, creds_of(userdb, "bob"),
                                    app)
        assert not oracle.violations
        assert oracle.checks_for("I6") == 0


class TestReporting:
    def test_fail_fast_raises_and_records(self, llsc_node, userdb):
        oracle = SeparationOracle(fail_fast=True)
        alice = creds_of(userdb, "alice", smask=PAPER_SMASK)
        with pytest.raises(SeparationViolation, match=r"\[I3\]"):
            oracle.check_vfs_mode(llsc_node.vfs, "/f", alice, 0o777,
                                  "chmod")
        assert len(oracle.violations) == 1

    def test_assert_clean(self, llsc_node, userdb):
        oracle = SeparationOracle()
        oracle.assert_clean()
        alice = creds_of(userdb, "alice", smask=PAPER_SMASK)
        oracle.check_vfs_mode(llsc_node.vfs, "/f", alice, 0o777, "chmod")
        with pytest.raises(SeparationViolation, match="1 separation"):
            oracle.assert_clean()

    def test_metrics_and_events_emitted(self, llsc_node, userdb):
        from repro.monitor.events import EventKind, SecurityEventLog
        from repro.sim.metrics import MetricSet
        metrics, log = MetricSet(), SecurityEventLog()
        oracle = SeparationOracle(metrics=metrics, events=log,
                                  clock=lambda: 42.0)
        alice = creds_of(userdb, "alice", smask=PAPER_SMASK)
        oracle.check_vfs_mode(llsc_node.vfs, "/f", alice, 0o777, "chmod")
        assert metrics.counter("oracle_checks_total",
                               invariant="I3").value == 1
        assert metrics.counter("oracle_violations_total",
                               invariant="I3").value == 1
        (event,) = log.events
        assert event.kind is EventKind.ORACLE
        # the event carries the acting principal so the forensic audit
        # plane can chain the violation back to its causal root
        assert event.subject_uid == alice.uid and event.time == 42.0

    def test_summary_rows_cover_catalog(self, llsc_node, userdb):
        oracle = SeparationOracle()
        alice = creds_of(userdb, "alice", smask=PAPER_SMASK)
        oracle.check_vfs_mode(llsc_node.vfs, "/f", alice, 0o777, "chmod")
        rows = {r["id"]: r for r in oracle.summary()}
        assert set(rows) == {"I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"}
        assert rows["I3"]["checks"] == 1 and rows["I3"]["violations"] == 1
        assert rows["I1"]["checks"] == 0


class TestSampling:
    def test_rate_zero_checks_nothing(self, llsc_node, userdb):
        oracle = SeparationOracle(sampling_rate=0.0)
        alice = creds_of(userdb, "alice")
        oracle.check_vfs_mode(llsc_node.vfs, "/f", alice, 0o777, "chmod")
        assert oracle.total_checks == 0 and not oracle.violations

    def test_sampling_is_seed_deterministic(self):
        a = SeparationOracle(sampling_rate=0.3, seed=DEFAULT_SEED)
        b = SeparationOracle(sampling_rate=0.3, seed=DEFAULT_SEED)
        assert [a._sampled() for _ in range(500)] \
            == [b._sampled() for _ in range(500)]

    def test_partial_rate_thins_checks(self, llsc_node, userdb):
        oracle = SeparationOracle(sampling_rate=0.2, shadow_rate=0.0)
        alice = creds_of(userdb, "alice")
        for _ in range(400):
            oracle.check_vfs_mode(llsc_node.vfs, "/f", alice,
                                  0o777 & ~alice.smask, "chmod")
        assert 0 < oracle.total_checks < 200

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            SeparationOracle(sampling_rate=1.5)
        with pytest.raises(ValueError):
            SeparationOracle(shadow_rate=-0.1)
