"""Neutralise the ``REPRO_ORACLE`` env gate for the oracle suite.

These tests construct and parameterise their own oracles (custom
sampling rates, fail_fast off, deliberately *not* attached); an
environment-armed oracle from ``Cluster.build`` would shadow those
set-ups.  CI's oracle job exports ``REPRO_ORACLE=1`` for the whole
tier-1 run — this fixture keeps the suite meaningful under it.  Tests
of the gate itself re-set the variable explicitly via ``monkeypatch``.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_env_oracle(monkeypatch):
    for var in ("REPRO_ORACLE", "REPRO_ORACLE_RATE",
                "REPRO_ORACLE_SHADOW", "REPRO_ORACLE_FAILFAST"):
        monkeypatch.delenv(var, raising=False)
