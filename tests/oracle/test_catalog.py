"""Tests: the invariant catalog is complete, unique, and traceable."""

from repro.oracle import BY_ID, CATALOG


class TestCatalog:
    def test_eight_invariants(self):
        assert len(CATALOG) == 8
        assert [inv.id for inv in CATALOG] == [
            "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"]

    def test_ids_unique_and_indexed(self):
        assert len(BY_ID) == len(CATALOG)
        for inv in CATALOG:
            assert BY_ID[inv.id] is inv

    def test_every_invariant_cites_a_paper_section(self):
        for inv in CATALOG:
            assert inv.section.startswith("IV"), inv

    def test_every_invariant_names_real_modules(self):
        import pathlib

        import repro
        src = pathlib.Path(repro.__file__).parent
        for inv in CATALOG:
            assert inv.modules, inv
            for mod in inv.modules:
                assert (src / mod).is_file(), f"{inv.id} cites missing {mod}"

    def test_statements_are_prose(self):
        for inv in CATALOG:
            assert len(inv.statement) > 40, inv
            assert inv.title
