"""Tests: oracle sections in the posture report and ops dashboard."""

from __future__ import annotations

from repro import LLSC, Cluster
from repro.core.report import posture_report
from repro.monitor import instrument_cluster
from repro.obs import ops_dashboard
from repro.oracle import attach_oracle
from repro.oracle.oracle import Violation


def build():
    return Cluster.build(LLSC, n_compute=2, gpus_per_node=1,
                         users=("alice", "bob"))


def exercise(c):
    c.submit("alice", duration=5.0, gpus_per_task=1)
    c.run(until=60.0)
    c.login("alice").sys.ps()


class TestDashboardOracleSection:
    def test_not_attached(self):
        doc = ops_dashboard(build())
        assert "## Separation oracle" in doc
        assert "Oracle not attached (run `attach_oracle`)." in doc

    def test_attached_but_idle_renders_zero_rows(self):
        c = build()
        attach_oracle(c)
        doc = ops_dashboard(c)
        assert "0 checks (0 shadow-reference) · 0 violations" in doc
        for inv in ("I1", "I2", "I3", "I4", "I5", "I6"):
            assert f"| {inv} |" in doc

    def test_active_oracle_summary(self):
        c = build()
        oracle = attach_oracle(c)
        exercise(c)
        doc = ops_dashboard(c)
        assert f"{oracle.total_checks} checks" in doc
        assert "sampling_rate=1 · " in doc
        assert "fail_fast=False" in doc
        assert "| IV-F |" in doc  # invariant table cites paper sections

    def test_violations_table_rendered(self):
        c = build()
        oracle = attach_oracle(c)
        oracle.violations.append(Violation(
            invariant="I2", time=3.5, subject="ubf:c-1",
            detail="cross-user flow accepted"))
        doc = ops_dashboard(c)
        assert "1 violations" in doc
        assert "| 3.5 | I2 | ubf:c-1 | cross-user flow accepted |" in doc

    def test_oracle_events_not_counted_as_denials(self):
        from repro.monitor.events import EventKind
        from repro.obs import denial_posture
        c = build()
        log = instrument_cluster(c)
        oracle = attach_oracle(c)
        oracle.violations.append(Violation("I2", 0.0, "ubf:c-1", "x"))
        log.emit(0.0, EventKind.ORACLE, -1, "ubf:c-1", "[I2] x")
        assert denial_posture(log, c.userdb) == []


class TestReportOracleSection:
    def test_absent_without_oracle(self):
        assert "## Invariant verification" not in posture_report(build())

    def test_zero_violations_statement(self):
        c = build()
        attach_oracle(c)
        exercise(c)
        doc = posture_report(c)
        assert "## Invariant verification" in doc
        assert "**zero invariant violations**" in doc
        assert "| I4 | IV-B |" in doc

    def test_violations_tabled(self):
        c = build()
        oracle = attach_oracle(c)
        oracle.violations.append(Violation(
            invariant="I5", time=9.0, subject="gpu:c-1/nvidia0",
            detail="residue survived"))
        doc = posture_report(c)
        assert "**1 invariant violation(s)**" in doc
        assert "| 9 | I5 | gpu:c-1/nvidia0 | residue survived |" in doc
        assert "zero invariant violations" not in doc
