"""Unit tests: image persistence and the stale-container scanner."""

import pytest

from repro import LLSC
from repro.containers import (
    ImageFile,
    build_image,
    hygiene_report,
    load_image,
    save_image,
    scan_stale_containers,
)
from repro.core import standard_cluster
from repro.kernel.errors import AccessDenied, InvalidArgument

DAY = 86_400.0


@pytest.fixture
def cluster():
    return standard_cluster(LLSC)


def make_sif(cluster, username, path, at):
    """User saves an image at virtual time *at*."""
    cluster.run(until=at)
    session = cluster.login(username)
    ws = cluster.add_workstation(username)
    image = build_image(ws, session.user, f"env-{username}",
                        [ImageFile("/opt", is_dir=True)])
    save_image(session.node, session.creds, path, image)
    return session, image


class TestPersistence:
    def test_save_load_roundtrip(self, cluster):
        session, image = make_sif(cluster, "alice",
                                  "/home/alice/env.sif", at=1.0)
        loaded = load_image(session.node, session.creds,
                            "/home/alice/env.sif")
        assert loaded == image

    def test_requires_sif_suffix(self, cluster):
        session, _ = make_sif(cluster, "alice", "/home/alice/a.sif", at=1.0)
        ws = cluster.workstations["alice-laptop"]
        image = build_image(ws, session.user, "x", [])
        with pytest.raises(InvalidArgument):
            save_image(session.node, session.creds,
                       "/home/alice/notanimage", image)

    def test_non_image_file_rejected(self, cluster):
        session = cluster.login("alice")
        session.sys.create("/home/alice/fake.sif", mode=0o640,
                           data=b"not a pickle of an image"[:8])
        with pytest.raises(Exception):
            load_image(session.node, session.creds, "/home/alice/fake.sif")

    def test_sif_respects_dac(self, cluster):
        """Saved images are 0640 in the owner's private group: strangers
        cannot load them (the sharing the paper complains about requires a
        project group, like any other data)."""
        make_sif(cluster, "alice", "/home/alice/env.sif", at=1.0)
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            load_image(bob.node, bob.creds, "/home/alice/env.sif")


class TestScanner:
    def test_old_unused_images_flagged(self, cluster):
        make_sif(cluster, "alice", "/home/alice/old.sif", at=0.0)
        make_sif(cluster, "bob", "/home/bob/new.sif", at=300 * DAY)
        cluster.run(until=400 * DAY)
        node = cluster.login_nodes[0]
        stale = scan_stale_containers(node, now=400 * DAY,
                                      stale_after=180 * DAY)
        assert [s.path for s in stale] == ["/home/alice/old.sif"]
        assert stale[0].idle_time == pytest.approx(400 * DAY)

    def test_recent_use_resets_clock(self, cluster):
        session, _ = make_sif(cluster, "alice", "/home/alice/env.sif",
                              at=0.0)
        cluster.run(until=350 * DAY)
        load_image(session.node, session.creds, "/home/alice/env.sif")
        cluster.run(until=400 * DAY)
        stale = scan_stale_containers(cluster.login_nodes[0],
                                      now=400 * DAY, stale_after=180 * DAY)
        assert stale == []

    def test_scan_covers_scratch(self, cluster):
        sess = cluster.login("carol")
        ws = cluster.add_workstation("carol")
        image = build_image(ws, sess.user, "x", [])
        save_image(sess.node, sess.creds, "/scratch/shared-env.sif", image)
        cluster.run(until=10 * DAY)
        stale = scan_stale_containers(cluster.login_nodes[0], now=10 * DAY,
                                      stale_after=5 * DAY)
        assert any(s.path == "/scratch/shared-env.sif" for s in stale)

    def test_report_aggregates(self, cluster):
        make_sif(cluster, "alice", "/home/alice/a.sif", at=0.0)
        make_sif(cluster, "alice", "/home/alice/b.sif", at=0.0)
        make_sif(cluster, "bob", "/home/bob/c.sif", at=0.0)
        cluster.run(until=100 * DAY)
        stale = scan_stale_containers(cluster.login_nodes[0],
                                      now=100 * DAY, stale_after=30 * DAY)
        rep = hygiene_report(stale)
        assert rep["stale_count"] == 3
        alice_uid = cluster.user("alice").uid
        assert rep["by_owner"][alice_uid] == 2
        assert rep["reclaimable_bytes"] > 0
        assert rep["oldest"] is not None

    def test_empty_report(self):
        assert hygiene_report([]) == {
            "stale_count": 0, "reclaimable_bytes": 0, "by_owner": {},
            "oldest": None}
