"""Unit + integration tests: container build policy and host passthrough."""

import pytest

from repro.containers import (
    ImageFile,
    SingularityRuntime,
    build_image,
)
from repro.kernel import (
    LinuxNode,
    LLSC_KERNEL,
    NodeRole,
    PAPER_SMASK,
    ProcMountOptions,
)
from repro.kernel.errors import AccessDenied, PermissionError_

from tests.conftest import creds_of


@pytest.fixture
def image(userdb):
    ws = LinuxNode("alice-laptop", userdb, role=NodeRole.WORKSTATION)
    return build_image(ws, userdb.user("alice"), "pytorch-env", [
        ImageFile("/opt", is_dir=True),
        ImageFile("/opt/conda", is_dir=True),
        ImageFile("/opt/conda/bin", is_dir=True),
        ImageFile("/opt/conda/bin/python", data=b"#!ELF python3.11"),
        ImageFile("/etc/os-release", data=b"Ubuntu 22.04", mode=0o644),
    ], labels={"version": "1.0"})


class TestBuildPolicy:
    def test_build_on_workstation_allowed(self, image):
        assert image.name == "pytorch-env"
        assert image.built_by == "alice"

    def test_build_on_compute_node_denied(self, userdb):
        compute = LinuxNode("c1", userdb, role=NodeRole.COMPUTE)
        with pytest.raises(PermissionError_):
            build_image(compute, userdb.user("alice"), "x", [])

    def test_build_on_login_node_denied(self, userdb):
        login = LinuxNode("login1", userdb, role=NodeRole.LOGIN)
        with pytest.raises(PermissionError_):
            build_image(login, userdb.user("bob"), "x", [])

    def test_root_may_build_anywhere(self, userdb):
        compute = LinuxNode("c1", userdb, role=NodeRole.COMPUTE)
        img = build_image(compute, userdb.user("root"), "site-image", [])
        assert img.built_by == "root"

    def test_image_lookup(self, image):
        assert image.lookup("/etc/os-release").data == b"Ubuntu 22.04"
        assert image.lookup("/nope") is None


class TestRuntime:
    def _node(self, userdb):
        return LinuxNode("c1", userdb, handler=LLSC_KERNEL,
                         proc_options=ProcMountOptions(hidepid=2))

    def _run(self, userdb, node, image, username="alice"):
        creds = creds_of(userdb, username, smask=PAPER_SMASK)
        proc = node.procs.spawn(creds, ["apptainer", "exec"])
        return SingularityRuntime(node).run(proc, image)

    def test_image_content_visible(self, userdb, image):
        c = self._run(userdb, self._node(userdb), image)
        sys = c.syscalls()
        assert sys.open_read("/etc/os-release") == b"Ubuntu 22.04"
        assert "python" in sys.listdir("/opt/conda/bin")

    def test_no_privilege_gain(self, userdb, image):
        c = self._run(userdb, self._node(userdb), image)
        assert not c.process.creds.is_root
        # image files are root-owned: user cannot modify them
        with pytest.raises(AccessDenied):
            c.syscalls().open_write("/etc/os-release", b"pwned")

    def test_host_tmp_bound(self, userdb, image):
        node = self._node(userdb)
        c = self._run(userdb, node, image)
        c.syscalls().create("/tmp/from-container", mode=0o600, data=b"c")
        host_creds = creds_of(userdb, "alice")
        assert node.vfs.read("/tmp/from-container", host_creds) == b"c"

    def test_shared_home_bound(self, userdb, image, shared_home):
        node = self._node(userdb)
        node.mount_shared("/home", shared_home)
        c = self._run(userdb, node, image)
        sys = c.syscalls()
        sys.create("/home/alice/result.dat", mode=0o600, data=b"results")
        host_creds = creds_of(userdb, "alice")
        assert node.vfs.read("/home/alice/result.dat",
                             host_creds) == b"results"

    def test_allowed_users_enforced(self, userdb, image):
        node = self._node(userdb)
        rt = SingularityRuntime(
            node, allowed_users=frozenset({userdb.user("carol").uid}))
        alice_proc = node.procs.spawn(creds_of(userdb, "alice"), ["apptainer"])
        with pytest.raises(PermissionError_):
            rt.run(alice_proc, image)
        carol_proc = node.procs.spawn(creds_of(userdb, "carol"), ["apptainer"])
        rt.run(carol_proc, image)


class TestSecurityPassthrough:
    """Section IV-G: 'all of the security features described in this paper
    pass through to the container as well.'"""

    def _node(self, userdb):
        return LinuxNode("c1", userdb, handler=LLSC_KERNEL,
                         proc_options=ProcMountOptions(hidepid=2))

    def _container_sys(self, userdb, node, image, username="alice"):
        # umask 0 so the assertions isolate the smask's effect
        creds = creds_of(userdb, username, smask=PAPER_SMASK, umask=0)
        proc = node.procs.spawn(creds, ["apptainer", "exec"])
        return SingularityRuntime(node).run(proc, image).syscalls()

    def test_smask_applies_inside_container(self, userdb, image):
        sys = self._container_sys(userdb, self._node(userdb), image)
        st = sys.create("/tmp/f", mode=0o666)
        assert st.mode == 0o660  # world bits stripped inside too
        assert sys.chmod("/tmp/f", 0o777) == 0o770

    def test_hidepid_applies_inside_container(self, userdb, image):
        node = self._node(userdb)
        bob_proc = node.procs.spawn(creds_of(userdb, "bob"),
                                    ["secret-tool", "--password=x"])
        sys = self._container_sys(userdb, node, image, "alice")
        visible = sys.ps()
        assert all(r.uid == sys.creds.uid for r in visible)

    def test_ubf_applies_inside_container(self, userdb, image):
        from tests.net.conftest import build_fabric, proc_on
        from repro.kernel.errors import TimedOut
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        # bob's service on c2
        bob = proc_on(nodes, "c2", userdb, "bob", argv=("server",))
        nodes["c2"].net.listen(nodes["c2"].net.bind(bob, 5000))
        # alice inside a container on c1 (host network passthrough)
        creds = creds_of(userdb, "alice", smask=PAPER_SMASK)
        proc = nodes["c1"].procs.spawn(creds, ["apptainer"])
        c = SingularityRuntime(nodes["c1"]).run(proc, image)
        with pytest.raises(TimedOut):
            c.syscalls().socket().connect("c2", 5000)

    def test_acl_restriction_applies_inside(self, userdb, image):
        from repro.kernel import AclEntry
        sys = self._container_sys(userdb, self._node(userdb), image)
        sys.create("/tmp/f", mode=0o600)
        fusion = userdb.group("fusion").gid
        with pytest.raises(PermissionError_):
            sys.setfacl("/tmp/f", AclEntry("group", fusion, 4))
