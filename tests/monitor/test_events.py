"""Unit + integration tests: security event log, wiring, probe detection."""

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied, KernelError, TimedOut
from repro.monitor import (
    EventKind,
    SecurityEventLog,
    audited_seepid,
    audited_session,
    detect_probe_patterns,
    instrument_cluster,
)


@pytest.fixture
def cluster():
    c = Cluster.build(LLSC, n_compute=3, users=("alice", "bob", "mallory"),
                      staff=("sam",))
    instrument_cluster(c)
    return c


class TestLogBasics:
    def test_emit_and_query(self):
        log = SecurityEventLog()
        log.emit(1.0, EventKind.FS_DENY, 1000, "/home/alice/x", "EACCES")
        log.emit(2.0, EventKind.NET_DENY, 1001, "c1:5000", "cross-user")
        assert len(log.by_subject(1000)) == 1
        assert len(log.by_kind(EventKind.NET_DENY)) == 1
        assert log.counts() == {EventKind.FS_DENY: 1, EventKind.NET_DENY: 1}
        assert len(log.window(1.5, 3.0)) == 1

    def test_window_is_half_open(self):
        """[start, end): start included, end excluded — the convention
        shared by window() and detect_probe_patterns(now=...)."""
        log = SecurityEventLog()
        log.emit(0.0, EventKind.FS_DENY, 1000, "/a", "EACCES")
        log.emit(5.0, EventKind.FS_DENY, 1000, "/b", "EACCES")
        assert [e.time for e in log.window(0.0, 5.0)] == [0.0]
        assert [e.time for e in log.window(5.0, 10.0)] == [5.0]


class TestWiring:
    def test_ubf_denial_recorded(self, cluster):
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.node.net.listen(shell.node.net.bind(shell.process, 5000))
        bob = cluster.login("bob")
        with pytest.raises(TimedOut):
            bob.socket().connect(shell.node.name, 5000)
        denials = cluster.security_log.by_kind(EventKind.NET_DENY)
        assert len(denials) == 1
        assert denials[0].subject_uid == bob.user.uid
        assert denials[0].target.endswith(":5000")

    def test_allowed_connections_not_logged(self, cluster):
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.node.net.listen(shell.node.net.bind(shell.process, 5000))
        alice = cluster.login("alice")
        alice.socket().connect(shell.node.name, 5000)
        assert cluster.security_log.by_kind(EventKind.NET_DENY) == []

    def test_pam_denial_recorded(self, cluster):
        with pytest.raises(AccessDenied):
            cluster.ssh("bob", "c1")
        denials = cluster.security_log.by_kind(EventKind.PAM_DENY)
        assert len(denials) == 1
        assert denials[0].target == "c1"

    def test_pam_allowed_login_not_logged(self, cluster):
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        cluster.ssh("alice", job.nodes[0])
        assert cluster.security_log.by_kind(EventKind.PAM_DENY) == []

    def test_fs_denial_recorded_via_audited_session(self, cluster):
        bob = cluster.login("bob")
        sys = audited_session(bob, cluster.security_log)
        with pytest.raises(KernelError):
            sys.open_read("/home/alice/secret")
        denials = cluster.security_log.by_kind(EventKind.FS_DENY)
        assert denials and denials[0].target == "/home/alice/secret"

    def test_audited_session_passthrough(self, cluster):
        alice = cluster.login("alice")
        sys = audited_session(alice, cluster.security_log)
        sys.create("/home/alice/ok.txt", mode=0o600, data=b"x")
        assert sys.open_read("/home/alice/ok.txt") == b"x"
        assert cluster.security_log.by_kind(EventKind.FS_DENY) == []

    def test_admin_escalation_audited(self, cluster):
        sam = cluster.login("sam")
        audited_seepid(cluster, sam)
        admin = cluster.security_log.by_kind(EventKind.ADMIN)
        assert len(admin) == 1
        assert "seepid" in admin[0].detail


class TestProbeDetection:
    def _scan(self, cluster, attacker="mallory", n=6):
        """Attacker probes many distinct homes + ports."""
        session = cluster.login(attacker)
        sys = audited_session(session, cluster.security_log)
        for target in ("alice", "bob")[: max(1, n // 3)]:
            for name in ("data", "results", "secrets"):
                try:
                    sys.open_read(f"/home/{target}/{name}")
                except KernelError:
                    pass

    def test_scanner_flagged(self, cluster):
        self._scan(cluster)
        alerts = detect_probe_patterns(cluster.security_log)
        assert len(alerts) == 1
        assert alerts[0].subject_uid == cluster.user("mallory").uid
        assert alerts[0].distinct_targets >= 3

    def test_fat_finger_not_flagged(self, cluster):
        """Six denials on the SAME path: not a scanner."""
        bob = cluster.login("bob")
        sys = audited_session(bob, cluster.security_log)
        for _ in range(6):
            try:
                sys.open_read("/home/alice/report.pdf")
            except KernelError:
                pass
        assert detect_probe_patterns(cluster.security_log) == []

    def test_below_threshold_not_flagged(self, cluster):
        bob = cluster.login("bob")
        sys = audited_session(bob, cluster.security_log)
        for name in ("a", "b"):
            try:
                sys.open_read(f"/home/alice/{name}")
            except KernelError:
                pass
        assert detect_probe_patterns(cluster.security_log) == []

    def test_window_restricts(self, cluster):
        self._scan(cluster)
        # all events at t=0; a window ending later excludes them
        alerts = detect_probe_patterns(cluster.security_log,
                                       window=10.0, now=1000.0)
        assert alerts == []

    def test_admin_events_never_count_as_probes(self, cluster):
        sam = cluster.login("sam")
        for _ in range(10):
            audited_seepid(cluster, sam)
        alerts = detect_probe_patterns(cluster.security_log)
        assert all(a.subject_uid != sam.user.uid for a in alerts)

    def test_full_battery_attacker_is_noisy(self, cluster):
        """Cross-area probing (fs + net + pam) accumulates into one loud
        alert — the observability payoff of system-level enforcement."""
        mallory = cluster.login("mallory")
        sys = audited_session(mallory, cluster.security_log)
        for path in ("/home/alice/a", "/home/bob/b"):
            try:
                sys.open_read(path)
            except KernelError:
                pass
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.node.net.listen(shell.node.net.bind(shell.process, 5000))
        for port_host in ((shell.node.name, 5000),):
            try:
                mallory.socket().connect(*port_host)
            except KernelError:
                pass
        try:
            cluster.ssh("mallory", job.nodes[0])
        except KernelError:
            pass
        alerts = detect_probe_patterns(cluster.security_log,
                                       min_denials=4)
        assert alerts and alerts[0].subject_uid == mallory.user.uid
        assert len(alerts[0].kinds) >= 3  # fs + net + pam all present
