"""Tests: instrument_cluster wiring — idempotency, round-trips, new kinds."""

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied, KernelError, TimedOut
from repro.monitor import (
    EventKind,
    audited_seepid,
    audited_session,
    instrument_cluster,
)
from repro.obs import attach_telemetry


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=3, gpus_per_node=1,
                         users=("alice", "bob", "mallory"), staff=("sam",))


@pytest.fixture
def log(cluster):
    return instrument_cluster(cluster)


class TestIdempotency:
    def test_second_call_returns_same_log(self, cluster, log):
        assert instrument_cluster(cluster) is log

    def test_pam_denial_not_duplicated(self, cluster, log):
        instrument_cluster(cluster)  # second call must not re-wrap
        with pytest.raises(AccessDenied):
            cluster.ssh("bob", "c1")
        assert len(log.by_kind(EventKind.PAM_DENY)) == 1

    def test_ubf_denial_not_duplicated(self, cluster, log):
        instrument_cluster(cluster)
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.node.net.listen(shell.node.net.bind(shell.process, 5000))
        with pytest.raises(TimedOut):
            cluster.login("bob").socket().connect(shell.node.name, 5000)
        assert len(log.by_kind(EventKind.NET_DENY)) == 1


class TestRoundTrips:
    """Each enforcement point's refusal lands in the log as its own kind."""

    def test_ubf_deny_to_net_deny(self, cluster, log):
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.node.net.listen(shell.node.net.bind(shell.process, 5000))
        bob = cluster.login("bob")
        with pytest.raises(TimedOut):
            bob.socket().connect(shell.node.name, 5000)
        (e,) = log.by_kind(EventKind.NET_DENY)
        assert e.subject_uid == bob.user.uid

    def test_pam_refusal_to_pam_deny(self, cluster, log):
        with pytest.raises(AccessDenied):
            cluster.ssh("mallory", "c1")
        (e,) = log.by_kind(EventKind.PAM_DENY)
        assert e.subject_uid == cluster.user("mallory").uid
        assert e.target == "c1"

    def test_audited_seepid_to_admin(self, cluster, log):
        audited_seepid(cluster, cluster.login("sam"))
        (e,) = log.by_kind(EventKind.ADMIN)
        assert e.subject_uid == cluster.user("sam").uid


class TestGpuDeny:
    def test_unassigned_gpu_open_emits_gpu_deny(self, cluster, log):
        job = cluster.submit("bob", duration=100.0)  # no GPUs requested
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        with pytest.raises(AccessDenied):
            shell.sys.open_read("/dev/nvidia0")
        (e,) = log.by_kind(EventKind.GPU_DENY)
        assert e.subject_uid == cluster.user("bob").uid
        assert e.target == f"{job.nodes[0]}:/dev/nvidia0"

    def test_assigned_gpu_open_not_logged(self, cluster, log):
        job = cluster.submit("alice", duration=100.0, gpus_per_task=1)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.sys.open_read("/dev/nvidia0")  # prolog granted it
        assert log.by_kind(EventKind.GPU_DENY) == []


class TestPortalDeny:
    def test_auth_failure_emits_portal_deny(self, cluster, log):
        with pytest.raises(AccessDenied):
            cluster.portal.connect("tok-bogus", 7)
        (e,) = log.by_kind(EventKind.PORTAL_DENY)
        assert e.subject_uid == -1  # refused before authentication
        assert e.target == "portal:app/7"

    def test_successful_forward_not_logged(self, cluster, log):
        from repro.portal import launch_webapp
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        app = launch_webapp(shell.node, shell.process, 8888, "jupyter")
        cluster.portal.register(app)
        session = cluster.portal.login("alice")
        assert b"jupyter" in cluster.portal.connect(session.token,
                                                    app.app_id)
        assert log.by_kind(EventKind.PORTAL_DENY) == []


class TestTelemetryHandshake:
    """instrument_cluster and attach_telemetry compose in either order."""

    def test_instrument_then_attach(self, cluster):
        log = instrument_cluster(cluster)
        assert attach_telemetry(cluster).events is log

    def test_attach_then_instrument(self, cluster):
        tele = attach_telemetry(cluster)
        assert tele.events is None
        log = instrument_cluster(cluster)
        assert tele.events is log

    def test_probe_detection_unaffected_by_telemetry(self, cluster):
        attach_telemetry(cluster)
        log = instrument_cluster(cluster)
        mallory = cluster.login("mallory")
        msys = audited_session(mallory, log)
        for victim in ("alice", "bob"):
            for f in ("a", "b", "c"):
                try:
                    msys.open_read(f"/home/{victim}/{f}")
                except KernelError:
                    pass
        from repro.monitor import detect_probe_patterns
        (alert,) = detect_probe_patterns(log)
        assert alert.subject_uid == mallory.user.uid
