"""Regression: UBF verdict caches must honor the recovery generation bump.

Journal replay rebuilds ``UserDB.generation`` numerically *equal* to its
pre-crash value, and ``_revalidate_generation`` early-returns on equality
— so without the recovery bump + :meth:`UBFDaemon.resync`, every verdict
cached before the control-plane crash would read as current afterwards.
Same family as the membership-flush tests in ``test_ubf_hardening.py``,
but through the crash/recover path: the scalar cache, the columnar cache,
and the ``restart()`` re-sync path must all land on the bumped
generation.
"""

from __future__ import annotations

import pytest

from repro import LLSC, Cluster
from repro.kernel.errors import TimedOut
from repro.net import ConnState, FiveTuple, Packet, Proto
from repro.net.ubf_columnar import V_DROP
from repro.persist import attach_persistence


def build_cluster():
    c = Cluster.build(LLSC, n_compute=2,
                      users=("carol", "dave"),
                      projects={"fusion": ("carol", "dave")})
    attach_persistence(c)
    return c


def fusion_service(cluster, port=7000):
    """carol serves on a compute node with egid fusion (sg fusion)."""
    job = cluster.submit("carol", duration=1000.0)
    cluster.run(until=1.0)
    shell = cluster.job_session(job)
    fusion = cluster.userdb.group("fusion").gid
    shell.process.creds = shell.process.creds.with_egid(fusion)
    shell.node.net.listen(shell.node.net.bind(shell.process, port))
    return shell.node.name


def pkt(src, src_port, dst, dst_port, *, src_uid):
    return Packet(FiveTuple(Proto.TCP, src, src_port, dst, dst_port),
                  ConnState.NEW, src_uid=src_uid)


def crash_recover(cluster):
    cluster.chaos().crash_scheduler()
    return cluster.recover()


class TestRecoveryFlush:
    def test_recovery_purges_every_verdict_cache(self):
        cluster = build_cluster()
        host = fusion_service(cluster)
        dave = cluster.login("dave")
        assert dave.socket().connect(host, 7000).open  # warms the cache
        daemon = cluster.ubf_daemons[host]
        assert len(daemon._cache) + len(daemon._sharded) >= 1
        report = crash_recover(cluster)
        assert report.purged_verdicts >= 1
        assert len(daemon._cache) + len(daemon._sharded) == 0
        for d in cluster.ubf_daemons.values():
            assert d._cache_gen == cluster.userdb.generation
            assert d._allow_gen == cluster.userdb.generation
        assert cluster.metrics.counter(
            "ubf_resyncs_total", reason="recovery").value \
            == len(cluster.ubf_daemons)

    def test_revoked_member_dropped_after_recovery(self):
        """Revoke dave, then crash before he reconnects: replay rebuilds
        the revoked membership, and the bump keeps his warm pre-crash
        ACCEPT from resurrecting via an equal-generation cache hit."""
        cluster = build_cluster()
        host = fusion_service(cluster)
        dave = cluster.login("dave")
        assert dave.socket().connect(host, 7000).open
        db = cluster.userdb
        db.remove_from_project("fusion", db.user("dave"),
                               approver=db.user("carol"))
        crash_recover(cluster)
        dave2 = cluster.login("dave")  # fresh session, fresh initgroups
        with pytest.raises(TimedOut):
            dave2.socket().connect(host, 7000)

    def test_member_in_good_standing_unaffected(self):
        cluster = build_cluster()
        host = fusion_service(cluster)
        dave = cluster.login("dave")
        assert dave.socket().connect(host, 7000).open
        crash_recover(cluster)
        dave2 = cluster.login("dave")
        assert dave2.socket().connect(host, 7000).open

    def test_columnar_cache_honors_the_bump(self):
        cluster = build_cluster()
        host = fusion_service(cluster)
        daemon = cluster.ubf_daemons[host]
        dave = cluster.login("dave")
        src = dave.node.name
        dave.node.net.bind(dave.process, 40001)
        pkts = [pkt(src, 40001, host, 7000,
                    src_uid=dave.process.creds.uid)]
        batch = daemon.columns_from_packets(pkts)
        assert list(daemon.decide_columns(batch, pkts)) != [V_DROP]
        assert len(daemon._columnar) >= 1
        db = cluster.userdb
        db.remove_from_project("fusion", db.user("dave"),
                               approver=db.user("carol"))
        crash_recover(cluster)
        assert len(daemon._columnar) == 0
        dave2 = cluster.login("dave")
        dave2.node.net.bind(dave2.process, 40002)
        pkts2 = [pkt(dave2.node.name, 40002, host, 7000,
                     src_uid=dave2.process.creds.uid)]
        batch2 = daemon.columns_from_packets(pkts2)
        assert list(daemon.decide_columns(batch2, pkts2)) == [V_DROP]


class TestRestartResync:
    def test_restart_pins_generation_not_just_flushes(self):
        """Generation moves while the daemon is dead; restart() must
        re-sync to the *current* generation, not resume with the stale
        one (the flush-only restart left ``_cache_gen`` behind)."""
        cluster = build_cluster()
        host = fusion_service(cluster)
        dave = cluster.login("dave")
        assert dave.socket().connect(host, 7000).open
        chaos = cluster.chaos()
        chaos.kill_ubf(host)
        db = cluster.userdb
        db.remove_from_project("fusion", db.user("dave"),
                               approver=db.user("carol"))
        chaos.heal_all()               # restart() -> resync("restart")
        daemon = cluster.ubf_daemons[host]
        assert daemon.alive
        assert daemon._cache_gen == db.generation
        assert cluster.metrics.counter(
            "ubf_resyncs_total", reason="restart").value >= 1
        dave2 = cluster.login("dave")
        with pytest.raises(TimedOut):
            dave2.socket().connect(host, 7000)
