"""Network test fixtures: a two/three-host fabric with optional UBF."""

from __future__ import annotations

import pytest

from repro.kernel import LinuxNode
from repro.net import Fabric, Firewall, HostStack, UBFDaemon, ubf_ruleset


def build_fabric(userdb, hostnames, *, ubf: bool, cache: bool = True,
                 conntrack: bool = True):
    """Create nodes + stacks; with ubf=True each host gets the appendix
    ruleset and a UBF daemon bound to its nfqueue."""
    fabric = Fabric()
    nodes, daemons = {}, {}
    for name in hostnames:
        node = LinuxNode(name, userdb)
        fw = Firewall(rules=ubf_ruleset() if ubf else [])
        fw.conntrack.enabled = conntrack
        stack = HostStack(node, fabric, firewall=fw)
        nodes[name] = node
        if ubf:
            daemons[name] = UBFDaemon(stack, fabric, userdb,
                                      cache_enabled=cache).install()
    return fabric, nodes, daemons


@pytest.fixture
def open_fabric(userdb):
    """No UBF: stock permissive network."""
    return build_fabric(userdb, ["c1", "c2", "c3"], ubf=False)


@pytest.fixture
def ubf_fabric(userdb):
    """UBF on every host."""
    return build_fabric(userdb, ["c1", "c2", "c3"], ubf=True)


def proc_on(nodes, host, userdb, username, argv=("app",)):
    node = nodes[host]
    creds = userdb.credentials_for(userdb.user(username))
    return node.procs.spawn(creds, list(argv))
