"""Unit tests: RDMA queue pairs and the UBF coverage boundary (E10)."""

import pytest

from repro.kernel.errors import InvalidArgument, NotConnected, TimedOut
from repro.net import RDMAFabric

from tests.net.conftest import build_fabric, proc_on


@pytest.fixture
def rdma_setup(userdb):
    fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
    return fabric, nodes, RDMAFabric(fabric)


def listen_control(nodes, userdb, host, user, port):
    p = proc_on(nodes, host, userdb, user, argv=("qp-ctl",))
    nodes[host].net.listen(nodes[host].net.bind(p, port))
    return p


class TestMemoryRegion:
    def test_write_read_roundtrip(self, rdma_setup, userdb):
        _, nodes, rdma = rdma_setup
        qp = rdma.create_qp("c1", proc_on(nodes, "c1", userdb, "alice"))
        qp.mr.write(10, b"hello")
        assert qp.mr.read(10, 5) == b"hello"
        assert qp.mr.read(0, 5) == b"\x00" * 5


class TestTcpControlChannel:
    def test_same_user_qp_connects(self, rdma_setup, userdb):
        _, nodes, rdma = rdma_setup
        server_proc = listen_control(nodes, userdb, "c2", "alice", 18515)
        client_qp = rdma.create_qp("c1", proc_on(nodes, "c1", userdb, "alice"))
        server_qp = rdma.create_qp("c2", server_proc)
        rdma.connect_qp_tcp(client_qp, server_qp, 18515)
        assert client_qp.connected and server_qp.connected
        client_qp.rdma_write(0, b"bulk")
        assert server_qp.mr.read(0, 4) == b"bulk"

    def test_cross_user_qp_blocked_by_ubf(self, rdma_setup, userdb):
        """The TCP control channel is UBF-governed: bob cannot set up a QP
        to alice's endpoint, so the RDMA path never opens."""
        _, nodes, rdma = rdma_setup
        server_proc = listen_control(nodes, userdb, "c2", "alice", 18515)
        client_qp = rdma.create_qp("c1", proc_on(nodes, "c1", userdb, "bob"))
        server_qp = rdma.create_qp("c2", server_proc)
        with pytest.raises(TimedOut):
            rdma.connect_qp_tcp(client_qp, server_qp, 18515)
        assert not client_qp.connected
        with pytest.raises(NotConnected):
            client_qp.rdma_read(0, 16)

    def test_no_control_listener_rejected(self, rdma_setup, userdb):
        _, nodes, rdma = rdma_setup
        client_qp = rdma.create_qp("c1", proc_on(nodes, "c1", userdb, "alice"))
        server_qp = rdma.create_qp("c2", proc_on(nodes, "c2", userdb, "alice"))
        with pytest.raises(InvalidArgument):
            rdma.connect_qp_tcp(client_qp, server_qp, 18515)


class TestNativeCmBypass:
    def test_cm_setup_ignores_ubf(self, rdma_setup, userdb):
        """The residual path the appendix documents: native-CM QP setup
        carries cross-user RDMA despite the UBF."""
        fabric, nodes, rdma = rdma_setup
        victim_qp = rdma.create_qp("c2", proc_on(nodes, "c2", userdb, "alice"))
        victim_qp.mr.write(0, b"alice-secret")
        attacker_qp = rdma.create_qp("c1", proc_on(nodes, "c1", userdb, "bob"))
        rdma.connect_qp_cm(attacker_qp, victim_qp)
        assert attacker_qp.rdma_read(0, 12) == b"alice-secret"
        assert fabric.metrics.report()["qp_setup_cm"] == 1

    def test_disconnected_qp_unusable(self, rdma_setup, userdb):
        _, nodes, rdma = rdma_setup
        qp = rdma.create_qp("c1", proc_on(nodes, "c1", userdb, "bob"))
        with pytest.raises(NotConnected):
            qp.rdma_write(0, b"x")
