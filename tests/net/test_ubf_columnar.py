"""Columnar UBF data plane (E27): FlowBatch, the flat open-addressed
verdict cache, and differential verdict identity columnar ⇄ batch ⇄ naive.

The columnar path is the throughput plane; these tests pin (a) the cache
primitives — vectorized lookup, two-generation LRU rotation with counted
evictions, TTL expiry, purge tombstones, PYTHONHASHSEED-stable layout —
and (b) the only property that makes the fast path shippable: bit-identical
verdicts against both per-object reference paths, under random principal
mixes, zone tiers, and injected identd faults.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultKind
from repro.net import ConnState, FiveTuple, Packet, Proto, Verdict
from repro.net.ubf import ShardedVerdictCache
from repro.net.ubf_columnar import (
    V_ACCEPT,
    V_DROP,
    V_MISS,
    ColumnarVerdictCache,
    FlowBatch,
    in_sorted,
    to_verdicts,
)
from repro.net.zones import ZoneTier, apply_tier
from repro.obs import Tracer
from repro.sim.metrics import MetricSet

from tests.net.conftest import build_fabric, proc_on


def listen_on(nodes, userdb, host, user, port):
    proc = proc_on(nodes, host, userdb, user, argv=("server",))
    net = nodes[host].net
    net.listen(net.bind(proc, port))
    return proc


def initiator_on(nodes, userdb, host, user, src_port):
    proc = proc_on(nodes, host, userdb, user, argv=("client",))
    nodes[host].net.bind(proc, src_port)
    return proc


def pkt(src_port, dst_port, *, src_uid=None, src="c1", dst="c2"):
    return Packet(FiveTuple(Proto.TCP, src, src_port, dst, dst_port),
                  ConnState.NEW, src_uid=src_uid)


class TestFlowBatch:
    def test_load_and_verdict_view(self):
        b = FlowBatch(8)
        b.load([1001, 1002], [1001, 0], [1001, 0])
        assert b.n == 2
        assert list(b.verdicts()) == [V_MISS, V_MISS]
        b.verdicts()[0] = V_ACCEPT  # a view into the bitmap
        assert b.verdict[0] == V_ACCEPT

    def test_push_and_overflow(self):
        b = FlowBatch(2)
        assert b.push(1, 2, 3) == 0
        assert b.push(4, 5, 6, flow_id=9) == 1
        assert b.flow_id[1] == 9
        with pytest.raises(ValueError):
            b.push(7, 8, 9)
        with pytest.raises(ValueError):
            b.load([1] * 3, [1] * 3, [1] * 3)

    def test_reuse_resets_verdicts(self):
        b = FlowBatch(4)
        b.load([1, 2], [1, 2], [1, 2])
        b.verdicts()[:] = V_ACCEPT
        b.load([3], [3], [3])
        assert list(b.verdicts()) == [V_MISS]


class TestInSorted:
    def test_membership(self):
        members = np.asarray([3, 7, 1000], dtype=np.int64)
        values = np.asarray([1, 3, 999, 1000, 2000], dtype=np.int64)
        assert list(in_sorted(values, members)) == [
            False, True, False, True, False]

    def test_empty_members(self):
        values = np.asarray([1, 2], dtype=np.int64)
        assert not in_sorted(values, np.empty(0, dtype=np.int64)).any()


def lookup1(cache, k0, k1, k2, now=0):
    got = cache.lookup(np.asarray([k0], dtype=np.int64),
                       np.asarray([k1], dtype=np.int64),
                       np.asarray([k2], dtype=np.int64), now)
    return int(got[0])


class TestColumnarCache:
    def test_hit_miss_roundtrip(self):
        cache = ColumnarVerdictCache(64)
        cache.insert(1007, 1003, 1003, V_ACCEPT)
        cache.insert(1008, 1003, 1003, V_DROP)
        assert lookup1(cache, 1007, 1003, 1003) == V_ACCEPT
        assert lookup1(cache, 1008, 1003, 1003) == V_DROP
        assert lookup1(cache, 1009, 1003, 1003) == V_MISS
        assert len(cache) == 2

    def test_refresh_in_place_does_not_grow(self):
        cache = ColumnarVerdictCache(64)
        for _ in range(5):
            cache.insert(1, 2, 3, V_ACCEPT)
        assert len(cache) == 1

    def test_batch_lookup_vectorized(self):
        cache = ColumnarVerdictCache(256)
        for uid in range(100):
            cache.insert(uid, 50, 50, V_ACCEPT if uid % 2 else V_DROP)
        uids = np.arange(120, dtype=np.int64)
        got = cache.lookup(uids, np.full(120, 50, dtype=np.int64),
                           np.full(120, 50, dtype=np.int64))
        assert (got[:100] == np.where(uids[:100] % 2, V_ACCEPT,
                                      V_DROP)).all()
        assert (got[100:] == V_MISS).all()

    def test_lru_rotation_bounds_and_counts(self):
        metrics = MetricSet()
        cache = ColumnarVerdictCache(16, metrics=metrics)
        for uid in range(100):
            cache.insert(uid, 1, 1, V_ACCEPT)
        # two generations of <= capacity/2 entries each
        assert len(cache) <= 16
        evicted = metrics.counter("ubf_cache_evictions_total",
                                  reason="lru").value
        assert evicted == cache.evictions > 0
        assert evicted + len(cache) == 100
        # oldest keys are gone, newest survive
        assert lookup1(cache, 0, 1, 1) == V_MISS
        assert lookup1(cache, 99, 1, 1) == V_ACCEPT

    def test_recently_touched_survives_rotation(self):
        cache = ColumnarVerdictCache(16)
        cache.insert(999, 1, 1, V_ACCEPT)
        for uid in range(6):
            cache.insert(uid, 1, 1, V_ACCEPT)
            # touching 999 every insert promotes it out of the doomed
            # generation before each rotation
            assert lookup1(cache, 999, 1, 1) == V_ACCEPT
        assert lookup1(cache, 999, 1, 1) == V_ACCEPT

    def test_ttl_expires_at_read(self):
        metrics = MetricSet()
        cache = ColumnarVerdictCache(64, metrics=metrics, ttl=10)
        cache.insert(1, 2, 3, V_ACCEPT, now=100)
        assert lookup1(cache, 1, 2, 3, now=105) == V_ACCEPT
        assert lookup1(cache, 1, 2, 3, now=111) == V_MISS
        assert metrics.counter("ubf_cache_evictions_total",
                               reason="ttl").value == 1
        assert len(cache) == 0

    def test_pop_tombstones_and_chain_survives(self):
        cache = ColumnarVerdictCache(64)
        # force a probe chain: same home slot for colliding keys is not
        # guaranteed, so just verify pop + later keys stay findable
        for uid in range(10):
            cache.insert(uid, 2, 3, V_ACCEPT)
        assert cache.pop(4, 2, 3) == V_ACCEPT
        assert cache.pop(4, 2, 3) is None
        assert len(cache) == 9
        for uid in (3, 5, 9):
            assert lookup1(cache, uid, 2, 3) == V_ACCEPT

    def test_layout_is_deterministic(self):
        a, b = ColumnarVerdictCache(128), ColumnarVerdictCache(128)
        for uid in range(60):
            a.insert(uid, uid % 7, uid % 5, V_ACCEPT)
            b.insert(uid, uid % 7, uid % 5, V_ACCEPT)
        assert (a._cur.k0 == b._cur.k0).all()
        assert (a._prev.k0 == b._prev.k0).all()

    def test_flat_memory_footprint(self):
        cache = ColumnarVerdictCache(1 << 20)
        # 5 cells × (4×8B + 1B) ≈ 33B per slot, 2 generations of 2^20
        # slots: well under 100 MB per million-entry bound, and reported
        per_million = cache.nbytes
        assert per_million < 100 * 1024 * 1024
        assert cache.nbytes == cache._cur.nbytes + cache._prev.nbytes


class TestBoundedShardedCache:
    def test_lru_eviction_per_shard(self):
        metrics = MetricSet()
        cache = ShardedVerdictCache(shards=1, capacity=4, metrics=metrics)
        for uid in range(6):
            cache.put((uid, 1, 1), Verdict.ACCEPT)
        assert len(cache) == 4
        assert cache.get((0, 1, 1)) is None          # oldest evicted
        assert cache.get((5, 1, 1)) is Verdict.ACCEPT
        assert metrics.counter("ubf_cache_evictions_total",
                               reason="lru").value == 2

    def test_get_is_an_lru_touch(self):
        cache = ShardedVerdictCache(shards=1, capacity=2)
        cache.put((1, 1, 1), Verdict.ACCEPT)
        cache.put((2, 1, 1), Verdict.ACCEPT)
        assert cache.get((1, 1, 1)) is Verdict.ACCEPT  # touch: 1 now MRU
        cache.put((3, 1, 1), Verdict.ACCEPT)           # evicts 2, not 1
        assert cache.get((1, 1, 1)) is Verdict.ACCEPT
        assert cache.get((2, 1, 1)) is None

    def test_ttl_expiry(self):
        metrics = MetricSet()
        cache = ShardedVerdictCache(shards=2, ttl=10, metrics=metrics)
        cache.put((1, 1, 1), Verdict.ACCEPT, now=100)
        assert cache.get((1, 1, 1), now=110) is Verdict.ACCEPT
        assert cache.get((1, 1, 1), now=111) is None
        assert metrics.counter("ubf_cache_evictions_total",
                               reason="ttl").value == 1

    def test_unbounded_by_default(self):
        cache = ShardedVerdictCache(shards=2)
        for uid in range(100):
            cache.put((uid, 1, 1), Verdict.ACCEPT)
        assert len(cache) == 100 and cache.evictions == 0


class TestNaiveCacheBound:
    def test_naive_path_evicts_lru(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        daemon = daemons["c2"]
        daemon.naive = True
        daemon.cache_capacity = 2
        for port, user in ((5000, "alice"), (5001, "bob"),
                           (5002, "carol")):
            listen_on(nodes, userdb, "c2", user, port)
        initiator_on(nodes, userdb, "c1", "alice", 40000)
        for dst in (5000, 5001, 5002):
            daemon.decide(pkt(40000, dst))
        assert len(daemon._cache) == 2
        assert fabric.metrics.counter("ubf_cache_evictions_total",
                                      reason="lru").value == 1


def build_columnar_scenario(userdb, *, fail_open=False, cache=True):
    """Two hosts, listeners covering every rule outcome, initiators for
    each principal; returns (fabric, nodes, daemon)."""
    fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                          cache=cache)
    daemon = daemons["c2"]
    daemon.fail_open = fail_open
    listen_on(nodes, userdb, "c2", "alice", 5000)
    carol = proc_on(nodes, "c2", userdb, "carol", argv=("server",))
    carol.creds = carol.creds.with_egid(userdb.group("fusion").gid)
    nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5001))
    listen_on(nodes, userdb, "c2", "root", 5002)
    listen_on(nodes, userdb, "c2", "bob", 5003)
    initiator_on(nodes, userdb, "c1", "alice", 40000)
    initiator_on(nodes, userdb, "c1", "bob", 40001)
    initiator_on(nodes, userdb, "c1", "dave", 40002)
    initiator_on(nodes, userdb, "c1", "root", 40003)
    return fabric, nodes, daemon


SRC_PORTS = (40000, 40001, 40002, 40003, 49999)  # 49999: unbound port
DST_PORTS = (5000, 5001, 5002, 5003, 6000)       # 6000: no listener


def run_columnar(daemon, pkts):
    batch = daemon.columns_from_packets(pkts)
    return to_verdicts(daemon.decide_columns(batch, pkts))


class TestColumnarMatchesReferences:
    def test_rule_matrix_identical_across_paths(self, userdb):
        """Every (initiator, listener) combination, decided three ways."""
        pkts = [pkt(sp, dp) for sp in SRC_PORTS for dp in DST_PORTS]

        def run(mode):
            fabric, nodes, daemon = build_columnar_scenario(userdb)
            if mode == "naive":
                daemon.naive = True
                return daemon.decide_batch(list(pkts))
            if mode == "batch":
                return daemon.decide_batch(list(pkts))
            return run_columnar(daemon, list(pkts))

        naive = run("naive")
        assert run("batch") == naive
        assert run("columnar") == naive

    def test_cached_second_round_identical_and_rtt_free(self, userdb):
        stamped = [pkt(40000 + i, 5000, src_uid=userdb.user(u).uid)
                   for i, u in enumerate(("alice", "bob", "dave"))]
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        first = run_columnar(daemon, stamped)
        rtt_before = fabric.metrics.report()["ident_round_trips"]
        second = run_columnar(daemon, stamped)
        assert second == first
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == rtt_before  # all cache hits
        assert rep["ubf_cache_hits"] == 3

    def test_degraded_group_matches_batch_policy(self, userdb):
        for fail_open in (False, True):
            verdicts = {}
            for mode in ("batch", "columnar"):
                fabric, nodes, daemon = build_columnar_scenario(
                    userdb, fail_open=fail_open)
                fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
                pkts = [pkt(40000, 5000), pkt(40001, 5000)]
                if mode == "batch":
                    verdicts[mode] = daemon.decide_batch(pkts)
                else:
                    verdicts[mode] = run_columnar(daemon, pkts)
            assert verdicts["columnar"] == verdicts["batch"]
            expected = Verdict.ACCEPT if fail_open else Verdict.DROP
            assert verdicts["columnar"] == [expected, expected]

    def test_degraded_columnar_verdicts_never_cached(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        fault = fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        assert run_columnar(daemon, [pkt(40000, 5000)]) == [Verdict.DROP]
        assert len(daemon._columnar) == 0
        fabric.faults.clear(fault)
        assert run_columnar(daemon, [pkt(40000, 5000)]) == [Verdict.ACCEPT]

    def test_columnar_needs_pkts_only_for_ident_rows(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        pkts = [pkt(40000, 5000, src_uid=userdb.user("alice").uid)]
        run_columnar(daemon, pkts)  # warm the cache
        batch = daemon.columns_from_packets(pkts)
        # fully cached burst: no packets needed at all
        got = daemon.decide_columns(batch)
        assert to_verdicts(got) == [Verdict.ACCEPT]
        cold = daemon.columns_from_packets([pkt(40001, 5000)])
        with pytest.raises(ValueError):
            daemon.decide_columns(cold)

    def test_strict_tier_changes_posture_not_verdicts(self, userdb):
        pkts = [pkt(sp, dp) for sp in SRC_PORTS[:4] for dp in DST_PORTS]

        def run(tier):
            fabric, nodes, daemon = build_columnar_scenario(userdb)
            apply_tier(daemon, tier)
            return run_columnar(daemon, list(pkts))

        assert run(ZoneTier.STRICT) == run(ZoneTier.STANDARD)


@st.composite
def burst(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    rows = []
    for _ in range(n):
        sp = draw(st.sampled_from(SRC_PORTS))
        dp = draw(st.sampled_from(DST_PORTS))
        stamp = draw(st.booleans())
        rows.append((sp, dp, stamp))
    return rows


PORT_UID = {40000: "alice", 40001: "bob", 40002: "dave", 40003: "root"}


def make_userdb():
    """Fresh per-example database (hypothesis cannot reuse the fixture)."""
    from repro.kernel.users import UserDB
    db = UserDB(upg=True)
    db.add_user("alice")
    db.add_user("bob")
    carol = db.add_user("carol")
    dave = db.add_user("dave")
    grp = db.add_project_group("fusion", steward=carol)
    db.add_to_project(grp, dave, approver=carol)
    return db


class TestColumnarProperty:
    @settings(max_examples=30, deadline=None)
    @given(rows=burst(), faulty=st.booleans(), fail_open=st.booleans(),
           strict=st.booleans())
    def test_three_paths_agree_under_random_mixes(self, rows, faulty,
                                                  fail_open, strict):
        """Columnar ⇄ decide_batch ⇄ naive verdict identity under random
        principal/port mixes, uid stamps, zone tiers, and identd faults."""
        def make_pkts(db):
            out = []
            for sp, dp, stamp in rows:
                uid = None
                if stamp and sp in PORT_UID:
                    uid = db.user(PORT_UID[sp]).uid
                out.append(pkt(sp, dp, src_uid=uid))
            return out

        def run(mode):
            db = make_userdb()
            fabric, nodes, daemon = build_columnar_scenario(
                db, fail_open=fail_open)
            if strict:
                apply_tier(daemon, ZoneTier.STRICT)
            if faulty:
                fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
            pkts = make_pkts(db)
            mid = len(pkts) // 2
            if mode == "naive":
                daemon.naive = True
                return (daemon.decide_batch(pkts[:mid])
                        + daemon.decide_batch(pkts[mid:]))
            if mode == "batch":
                return (daemon.decide_batch(pkts[:mid])
                        + daemon.decide_batch(pkts[mid:]))
            return (run_columnar(daemon, pkts[:mid])
                    + run_columnar(daemon, pkts[mid:]))

        naive = run("naive")
        batch = run("batch")
        columnar = run("columnar")
        assert batch == naive
        assert columnar == naive


class TestBatchTracing:
    def test_decide_batch_emits_batch_and_group_spans(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        daemon.tracer = tracer = Tracer()
        daemon.decide_batch([pkt(40000, 5000), pkt(40000, 5001),
                             pkt(40001, 5000)])
        parent = tracer.by_name("ubf.decide_batch")[0]
        assert parent.tags["n"] == 3
        # alice->alice accepts; alice->carol(fusion) and bob->alice drop
        assert parent.tags["accepts"] == 1 and parent.tags["drops"] == 2
        groups = tracer.by_name("ubf.ident_group")
        assert len(groups) == 2  # two initiating processes
        assert all(g.parent_id == parent.span_id for g in groups)
        assert {g.tags["src"] for g in groups} == {"c1:40000", "c1:40001"}
        assert all(g.finished for g in groups) and parent.finished

    def test_decide_columns_emits_spans(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        daemon.tracer = tracer = Tracer()
        run_columnar(daemon, [pkt(40000, 5000), pkt(40001, 5000)])
        parent = tracer.by_name("ubf.decide_columns")[0]
        assert parent.tags["accepts"] == 1 and parent.tags["drops"] == 1
        groups = tracer.by_name("ubf.ident_group")
        assert len(groups) == 2
        assert all(g.parent_id == parent.span_id for g in groups)

    def test_degraded_group_span_is_annotated(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        daemon.tracer = tracer = Tracer()
        fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        daemon.decide_batch([pkt(40000, 5000)])
        group = tracer.by_name("ubf.ident_group")[0]
        assert group.tags["status"] == "degraded"


class TestFirewallBatchWiring:
    def test_evaluate_batch_reaches_daemon_once(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        fw = daemon.stack.firewall
        pkts = [pkt(40000, 5000), pkt(40000, 5001), pkt(40001, 5003)]
        verdicts = fw.evaluate_batch(pkts)
        # alice->alice ok; alice->carol(fusion egid) denied; bob->bob ok
        assert verdicts == [Verdict.ACCEPT, Verdict.DROP, Verdict.ACCEPT]
        # accepted flows committed to conntrack: burst replay is fastpath
        again = fw.evaluate_batch([pkts[0], pkts[2]])
        assert again == [Verdict.ACCEPT] * 2
        assert fabric.metrics.report()["conntrack_fastpath_packets"] == 2

    def test_crash_detaches_batch_handler(self, userdb):
        fabric, nodes, daemon = build_columnar_scenario(userdb)
        fw = daemon.stack.firewall
        daemon.crash()
        assert fw.evaluate_batch([pkt(40000, 5000)]) == [Verdict.DROP]
        daemon.restart()
        assert fw.evaluate_batch([pkt(40000, 5000)]) == [Verdict.ACCEPT]
