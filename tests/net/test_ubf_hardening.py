"""Regression tests for the PR 9 UBF hardening pair.

1. **Ident-spoof cross-check** — a compromised initiating host's identd
   (``FaultKind.IDENT_SPOOF``) claims the victim's identity; the receiving
   daemon must catch the contradiction against the kernel-stamped packet
   uid and DROP with ``DecisionReason.IDENT_MISMATCH``, on every decision
   path (naive decide, coalesced batch, columnar).

2. **Generation cache invalidation** — a project revocation bumps
   ``UserDB.generation``; every decision-cache variant must flush so a
   revoked member's *fresh* session cannot replay the pre-revocation
   cross-user ACCEPT (the allow-sets were already generation-checked; the
   verdict caches were the hole).
"""

from __future__ import annotations

import pytest

from repro.faults import FaultKind
from repro.kernel.errors import TimedOut
from repro.net import ConnState, FiveTuple, Packet, Proto, Verdict
from repro.net.ubf import DecisionReason
from repro.net.ubf_columnar import V_DROP

from tests.net.conftest import build_fabric, proc_on


def serve(nodes, userdb, host, user, port):
    p = proc_on(nodes, host, userdb, user, argv=("server",))
    net = nodes[host].net
    return net.listen(net.bind(p, port)), p


def spoof_as(fabric, userdb, host, username):
    """Compromise *host*'s identd: it answers with *username*'s identity."""
    user = userdb.user(username)
    return fabric.faults.inject(
        FaultKind.IDENT_SPOOF, host, uid=user.uid, egid=user.primary_gid,
        groups=(user.primary_gid,))


def pkt(flow_src, src_port, dst, dst_port, *, src_uid):
    return Packet(FiveTuple(Proto.TCP, flow_src, src_port, dst, dst_port),
                  ConnState.NEW, src_uid=src_uid)


class TestIdentSpoofCrossCheck:
    def test_connect_with_forged_ident_dropped(self, ubf_fabric, userdb):
        fabric, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        spoof_as(fabric, userdb, "c1", "alice")
        bob = proc_on(nodes, "c1", userdb, "bob")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(bob, "c2", 5000)
        assert fabric.metrics.counter("ubf_ident_mismatches").value >= 1

    def test_mismatch_logged_with_reason(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        spoof_as(fabric, userdb, "c1", "alice")
        bob = proc_on(nodes, "c1", userdb, "bob")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(bob, "c2", 5000)
        entry = daemons["c2"].log[-1]
        assert entry.verdict is Verdict.DROP
        assert "contradicts kernel-stamped" in entry.reason
        assert fabric.metrics.counter(
            "ubf_verdicts_total", verdict="drop",
            reason=DecisionReason.IDENT_MISMATCH.value).value == 1

    def test_spoof_matching_kernel_uid_not_flagged(self, ubf_fabric,
                                                   userdb):
        """A 'spoof' that tells the truth about the uid is just an honest
        reply as far as the cross-check goes: alice still reaches her own
        service (the check must not add false positives)."""
        fabric, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        spoof_as(fabric, userdb, "c1", "alice")
        alice = proc_on(nodes, "c1", userdb, "alice")
        conn = nodes["c1"].net.connect(alice, "c2", 5000)
        assert conn.open
        assert fabric.metrics.counter("ubf_ident_mismatches").value == 0

    def test_batch_path_catches_forged_ident(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        spoof_as(fabric, userdb, "c1", "alice")
        bob = proc_on(nodes, "c1", userdb, "bob")
        nodes["c1"].net.bind(bob, 40001)
        verdicts = daemons["c2"].decide_batch(
            [pkt("c1", 40001, "c2", 5000, src_uid=bob.creds.uid)])
        assert verdicts == [Verdict.DROP]
        assert fabric.metrics.counter("ubf_ident_mismatches").value >= 1

    def test_columnar_path_catches_forged_ident(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        spoof_as(fabric, userdb, "c1", "alice")
        bob = proc_on(nodes, "c1", userdb, "bob")
        nodes["c1"].net.bind(bob, 40002)
        daemon = daemons["c2"]
        pkts = [pkt("c1", 40002, "c2", 5000, src_uid=bob.creds.uid)]
        batch = daemon.columns_from_packets(pkts)
        out = daemon.decide_columns(batch, pkts)
        assert list(out) == [V_DROP]
        assert fabric.metrics.counter("ubf_ident_mismatches").value >= 1


class TestGenerationCacheFlush:
    def _warm_group_accept(self, nodes, daemons, userdb):
        """dave (fusion member) connects to carol's sg-fusion listener on
        c2, leaving a cross-user ACCEPT in c2's verdict cache."""
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        carol.creds = carol.creds.with_egid(fusion)
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 7000))
        dave = proc_on(nodes, "c1", userdb, "dave")
        conn = nodes["c1"].net.connect(dave, "c2", 7000)
        assert conn.open
        return carol

    def test_revoked_member_fresh_session_dropped(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        self._warm_group_accept(nodes, daemons, userdb)
        userdb.remove_from_project("fusion", userdb.user("dave"),
                                   approver=userdb.user("carol"))
        dave2 = proc_on(nodes, "c1", userdb, "dave")  # fresh login creds
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(dave2, "c2", 7000)
        assert fabric.metrics.counter(
            "ubf_cache_purged_total", reason="membership-change").value >= 1

    def test_stale_session_still_accepted_via_snapshot(self, ubf_fabric,
                                                       userdb):
        """The *already logged in* revoked member keeps his initgroups
        snapshot (exactly like a real login session): the full decision's
        snapshot fallback accepts him.  Only fresh sessions see the
        revocation — the cache flush must not overreach into re-deciding
        live credentials."""
        _, nodes, daemons = ubf_fabric
        self._warm_group_accept(nodes, daemons, userdb)
        dave_stale = proc_on(nodes, "c1", userdb, "dave")  # pre-revocation
        userdb.remove_from_project("fusion", userdb.user("dave"),
                                   approver=userdb.user("carol"))
        conn = nodes["c1"].net.connect(dave_stale, "c2", 7000)
        assert conn.open

    def test_unrelated_membership_change_costs_one_flush(self, ubf_fabric,
                                                         userdb):
        """Any generation bump flushes (coarse by design), but steady
        state with no membership churn never purges."""
        fabric, nodes, daemons = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        alice = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.connect(alice, "c2", 5000)
        alice2 = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.connect(alice2, "c2", 5000)
        assert fabric.metrics.counter(
            "ubf_cache_purged_total", reason="membership-change").value == 0

    def test_naive_cache_also_flushed(self, userdb):
        fabric, nodes, daemons = build_fabric(
            userdb, ["c1", "c2"], ubf=True)
        for d in daemons.values():
            d.naive = True
        self._warm_group_accept(nodes, daemons, userdb)
        userdb.remove_from_project("fusion", userdb.user("dave"),
                                   approver=userdb.user("carol"))
        dave2 = proc_on(nodes, "c1", userdb, "dave")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(dave2, "c2", 7000)

    def test_columnar_cache_also_flushed(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        daemon = daemons["c2"]
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        carol.creds = carol.creds.with_egid(fusion)
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 7000))
        dave = proc_on(nodes, "c1", userdb, "dave")
        nodes["c1"].net.bind(dave, 40003)
        pkts = [pkt("c1", 40003, "c2", 7000, src_uid=dave.creds.uid)]
        batch = daemon.columns_from_packets(pkts)
        assert list(daemon.decide_columns(batch, pkts)) != [V_DROP]
        assert len(daemon._columnar) >= 1  # the ACCEPT is cached
        userdb.remove_from_project("fusion", userdb.user("dave"),
                                   approver=userdb.user("carol"))
        dave2 = proc_on(nodes, "c1", userdb, "dave")
        nodes["c1"].net.bind(dave2, 40004)
        pkts2 = [pkt("c1", 40004, "c2", 7000, src_uid=dave2.creds.uid)]
        batch2 = daemon.columns_from_packets(pkts2)
        assert list(daemon.decide_columns(batch2, pkts2)) == [V_DROP]
