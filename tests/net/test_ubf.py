"""Unit + integration tests: the User-Based Firewall decision rule,
conntrack amortisation, cache, and cross-user denial semantics."""

import pytest

from repro.kernel.errors import TimedOut
from repro.net import Proto, Verdict, firewall_cost_us

from tests.net.conftest import build_fabric, proc_on


def serve(nodes, userdb, host, user, port, proto=Proto.TCP):
    p = proc_on(nodes, host, userdb, user, argv=("server",))
    net = nodes[host].net
    if proto is Proto.TCP:
        return net.listen(net.bind(p, port)), p
    return net.bind(p, port, proto), p


class TestDecisionRule:
    def test_same_user_allowed(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        conn.send(b"mine")
        assert nodes["c2"].net.accept(listener).recv() == b"mine"

    def test_cross_user_dropped(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)

    def test_group_member_allowed_when_listener_sg(self, ubf_fabric, userdb):
        """carol listens with egid=fusion (via sg); dave (member) connects."""
        _, nodes, _ = ubf_fabric
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        carol.creds = carol.creds.with_egid(fusion)
        listener = nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5000))
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "dave"),
                                       "c2", 5000)
        conn.send(b"group data")
        assert nodes["c2"].net.accept(listener).recv() == b"group data"

    def test_group_rule_is_opt_in(self, ubf_fabric, userdb):
        """Without sg, carol's listener has her private egid: dave denied —
        sharing via the network is opt-in exactly like the paper says."""
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "carol", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "dave"),
                                    "c2", 5000)

    def test_non_member_denied_despite_sg(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        carol.creds = carol.creds.with_egid(fusion)
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5000))
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)

    def test_root_services_reachable(self, ubf_fabric, userdb):
        """A root-owned service on a user port accepts any user (e.g. a
        system daemon); the rule only bites for user-owned listeners."""
        _, nodes, _ = ubf_fabric
        listener, _ = serve(nodes, userdb, "c2", "root", 8080)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                       "c2", 8080)
        assert conn.open

    def test_udp_cross_user_dropped(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 6000, Proto.UDP)
        with pytest.raises(TimedOut):
            nodes["c1"].net.sendto(proc_on(nodes, "c1", userdb, "bob"),
                                   "c2", 6000, b"x")

    def test_udp_same_user_allowed(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        inbox, _ = serve(nodes, userdb, "c2", "alice", 6000, Proto.UDP)
        nodes["c1"].net.sendto(proc_on(nodes, "c1", userdb, "alice"),
                               "c2", 6000, b"dg")
        assert nodes["c2"].net.recvfrom(inbox).data == b"dg"

    def test_open_fabric_has_no_protection(self, open_fabric, userdb):
        """Baseline: cross-user connections succeed without the UBF."""
        _, nodes, _ = open_fabric
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                       "c2", 5000)
        assert conn.open


class TestDenialObservability:
    def test_denial_logged(self, ubf_fabric, userdb):
        _, nodes, daemons = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)
        denials = [d for d in daemons["c2"].log if d.verdict is Verdict.DROP]
        assert len(denials) == 1
        assert denials[0].reason == "cross-user connection denied"

    def test_denied_flow_not_in_conntrack(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        before = len(nodes["c2"].net.firewall.conntrack)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)
        assert len(nodes["c2"].net.firewall.conntrack) == before


class TestConntrackAmortisation:
    def test_established_flow_skips_daemon(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        decisions_after_setup = len(daemons["c2"].log)
        for _ in range(100):
            conn.send(b"payload")
        assert len(daemons["c2"].log) == decisions_after_setup
        assert fabric.metrics.report()["conntrack_fastpath_packets"] >= 100

    def test_cost_concentrated_in_setup(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        setup_cost = firewall_cost_us(fabric.metrics)
        for _ in range(1000):
            conn.send(b"x")
        total_cost = firewall_cost_us(fabric.metrics)
        per_packet = (total_cost - setup_cost) / 1000
        assert per_packet < 1.0  # fast path is sub-microsecond
        assert setup_cost > 100  # setup paid the ident RTT

    def test_conntrack_disabled_reaches_daemon_repeatedly(self, userdb):
        """Ablation: with conntrack off, TCP *setup* of each new connection
        pays the full decision every time (no flow memory at all)."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                              conntrack=False, cache=False)
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        for _ in range(5):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)
        assert fabric.metrics.report()["ident_round_trips"] == 5


class TestDecisionCache:
    def test_cache_skips_ident(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        for _ in range(4):
            nodes["c1"].net.connect(client, "c2", 5000)
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == 4  # remote query still made
        assert rep["ubf_cache_hits"] == 3
        assert rep["ubf_full_decisions"] == 1

    def test_cache_disabled_full_decision_each_time(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=False)
        serve(nodes, userdb, "c2", "alice", 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        for _ in range(4):
            nodes["c1"].net.connect(client, "c2", 5000)
        assert fabric.metrics.report()["ubf_full_decisions"] == 4

    def test_sg_changes_cache_key(self, userdb):
        """After the listener switches egid, cached cross-user denials do not
        mask the now-legitimate group decision."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                              cache=True)
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5000))
        dave = proc_on(nodes, "c1", userdb, "dave")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(dave, "c2", 5000)
        carol.creds = carol.creds.with_egid(fusion)  # sg fusion
        conn = nodes["c1"].net.connect(dave, "c2", 5000)
        assert conn.open


class TestPortCollision:
    def test_two_users_same_port_no_crosstalk(self, ubf_fabric, userdb):
        """Section V: 'Even if two users accidentally choose the same port
        number for a network service, they cannot crosstalk and corrupt each
        others data.'  alice and bob both run port-5000 services on
        different nodes; each user's client lands only on their own server."""
        _, nodes, _ = ubf_fabric
        a_listener, _ = serve(nodes, userdb, "c1", "alice", 5000)
        b_listener, _ = serve(nodes, userdb, "c2", "bob", 5000)
        # alice's client hits bob's node by mistake: dropped
        with pytest.raises(TimedOut):
            nodes["c3"].net.connect(proc_on(nodes, "c3", userdb, "alice"),
                                    "c2", 5000)
        # and her own service still works
        conn = nodes["c3"].net.connect(proc_on(nodes, "c3", userdb, "alice"),
                                       "c1", 5000)
        conn.send(b"alice-data")
        assert nodes["c1"].net.accept(a_listener).recv() == b"alice-data"
