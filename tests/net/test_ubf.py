"""Unit + integration tests: the User-Based Firewall decision rule,
conntrack amortisation, cache, and cross-user denial semantics."""

import pytest

from repro.kernel.errors import ConnectionRefused, TimedOut
from repro.net import Proto, Verdict, firewall_cost_us

from tests.net.conftest import build_fabric, proc_on


def serve(nodes, userdb, host, user, port, proto=Proto.TCP):
    p = proc_on(nodes, host, userdb, user, argv=("server",))
    net = nodes[host].net
    if proto is Proto.TCP:
        return net.listen(net.bind(p, port)), p
    return net.bind(p, port, proto), p


class TestDecisionRule:
    def test_same_user_allowed(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        conn.send(b"mine")
        assert nodes["c2"].net.accept(listener).recv() == b"mine"

    def test_cross_user_dropped(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)

    def test_group_member_allowed_when_listener_sg(self, ubf_fabric, userdb):
        """carol listens with egid=fusion (via sg); dave (member) connects."""
        _, nodes, _ = ubf_fabric
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        carol.creds = carol.creds.with_egid(fusion)
        listener = nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5000))
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "dave"),
                                       "c2", 5000)
        conn.send(b"group data")
        assert nodes["c2"].net.accept(listener).recv() == b"group data"

    def test_group_rule_is_opt_in(self, ubf_fabric, userdb):
        """Without sg, carol's listener has her private egid: dave denied —
        sharing via the network is opt-in exactly like the paper says."""
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "carol", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "dave"),
                                    "c2", 5000)

    def test_non_member_denied_despite_sg(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        carol.creds = carol.creds.with_egid(fusion)
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5000))
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)

    def test_root_services_reachable(self, ubf_fabric, userdb):
        """A root-owned service on a user port accepts any user (e.g. a
        system daemon); the rule only bites for user-owned listeners."""
        _, nodes, _ = ubf_fabric
        listener, _ = serve(nodes, userdb, "c2", "root", 8080)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                       "c2", 8080)
        assert conn.open

    def test_udp_cross_user_dropped(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 6000, Proto.UDP)
        with pytest.raises(TimedOut):
            nodes["c1"].net.sendto(proc_on(nodes, "c1", userdb, "bob"),
                                   "c2", 6000, b"x")

    def test_udp_same_user_allowed(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        inbox, _ = serve(nodes, userdb, "c2", "alice", 6000, Proto.UDP)
        nodes["c1"].net.sendto(proc_on(nodes, "c1", userdb, "alice"),
                               "c2", 6000, b"dg")
        assert nodes["c2"].net.recvfrom(inbox).data == b"dg"

    def test_open_fabric_has_no_protection(self, open_fabric, userdb):
        """Baseline: cross-user connections succeed without the UBF."""
        _, nodes, _ = open_fabric
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                       "c2", 5000)
        assert conn.open


class TestDenialObservability:
    def test_denial_logged(self, ubf_fabric, userdb):
        _, nodes, daemons = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)
        denials = [d for d in daemons["c2"].log if d.verdict is Verdict.DROP]
        assert len(denials) == 1
        assert denials[0].reason == "cross-user connection denied"

    def test_denied_flow_not_in_conntrack(self, ubf_fabric, userdb):
        _, nodes, _ = ubf_fabric
        serve(nodes, userdb, "c2", "alice", 5000)
        before = len(nodes["c2"].net.firewall.conntrack)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)
        assert len(nodes["c2"].net.firewall.conntrack) == before


class TestConntrackAmortisation:
    def test_established_flow_skips_daemon(self, ubf_fabric, userdb):
        fabric, nodes, daemons = ubf_fabric
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        decisions_after_setup = len(daemons["c2"].log)
        for _ in range(100):
            conn.send(b"payload")
        assert len(daemons["c2"].log) == decisions_after_setup
        assert fabric.metrics.report()["conntrack_fastpath_packets"] >= 100

    def test_cost_concentrated_in_setup(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        setup_cost = firewall_cost_us(fabric.metrics)
        for _ in range(1000):
            conn.send(b"x")
        total_cost = firewall_cost_us(fabric.metrics)
        per_packet = (total_cost - setup_cost) / 1000
        assert per_packet < 1.0  # fast path is sub-microsecond
        assert setup_cost > 100  # setup paid the ident RTT

    def test_conntrack_disabled_reaches_daemon_repeatedly(self, userdb):
        """Ablation: with conntrack off, TCP *setup* of each new connection
        pays the full decision every time (no flow memory at all)."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                              conntrack=False, cache=False)
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        for _ in range(5):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)
        assert fabric.metrics.report()["ident_round_trips"] == 5


class TestDecisionCache:
    def test_cache_skips_ident(self, userdb):
        """A cache hit must answer without the ident RTT — the whole point
        of the cache (regression: the RTT used to be paid before the cache
        was even consulted)."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        for _ in range(4):
            nodes["c1"].net.connect(client, "c2", 5000)
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == 1  # only the first (the miss)
        assert rep["ubf_cache_hits"] == 3
        assert rep["ubf_full_decisions"] == 1

    def test_cache_hit_adds_no_round_trip(self, userdb):
        """The RTT counter is frozen across a hit, not merely slower-growing."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.connect(client, "c2", 5000)  # miss: pays the RTT
        rtts_after_miss = fabric.metrics.report()["ident_round_trips"]
        nodes["c1"].net.connect(client, "c2", 5000)  # hit
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == rtts_after_miss
        assert rep["ubf_cache_hits"] == 1

    def test_cached_denial_still_denies(self, userdb):
        """Hits serve DROPs too: bob is denied on the miss and on the hit,
        and the hit pays no RTT."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        bob = proc_on(nodes, "c1", userdb, "bob")
        for _ in range(2):
            with pytest.raises(TimedOut):
                nodes["c1"].net.connect(bob, "c2", 5000)
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == 1
        assert rep["ubf_cache_hits"] == 1
        assert rep["ubf_denials"] == 2

    def test_cache_does_not_leak_across_users(self, userdb):
        """alice's cached ACCEPT must not answer for bob from the same
        host: the key includes the initiator's identity."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                "c2", 5000)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                    "c2", 5000)
        # bob's decision was a fresh full one, not alice's cached entry
        assert fabric.metrics.report()["ubf_full_decisions"] == 2

    def test_cache_disabled_full_decision_each_time(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=False)
        serve(nodes, userdb, "c2", "alice", 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        for _ in range(4):
            nodes["c1"].net.connect(client, "c2", 5000)
        assert fabric.metrics.report()["ubf_full_decisions"] == 4

    def test_sg_changes_cache_key(self, userdb):
        """After the listener switches egid, cached cross-user denials do not
        mask the now-legitimate group decision."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                              cache=True)
        fusion = userdb.group("fusion").gid
        carol = proc_on(nodes, "c2", userdb, "carol")
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5000))
        dave = proc_on(nodes, "c1", userdb, "dave")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(dave, "c2", 5000)
        carol.creds = carol.creds.with_egid(fusion)  # sg fusion
        conn = nodes["c1"].net.connect(dave, "c2", 5000)
        assert conn.open


class TestConntrackHygiene:
    def test_udp_refusal_leaves_no_stale_entry(self, userdb):
        """Regression: an accepted-but-refused datagram (no receiver) used
        to leave its conntrack entry behind.  Whoever bound that port later
        was then reachable via the fast path with **no UBF decision** —
        here bob binds after alice's refusal, and alice must still be
        denied by the UBF, not silently delivered."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        alice = proc_on(nodes, "c1", userdb, "alice")
        src = nodes["c1"].net.bind_ephemeral(alice, Proto.UDP)
        with pytest.raises(ConnectionRefused):
            nodes["c1"].net.sendto(alice, "c2", 7000, b"x", src_sock=src)
        assert len(nodes["c2"].net.firewall.conntrack) == 0
        # bob now binds the port alice probed
        inbox, _ = serve(nodes, userdb, "c2", "bob", 7000, Proto.UDP)
        with pytest.raises(TimedOut):  # fresh UBF decision: cross-user DROP
            nodes["c1"].net.sendto(alice, "c2", 7000, b"x", src_sock=src)
        assert not inbox.datagrams

    def test_tcp_refusal_leaves_no_stale_entry(self, userdb):
        """The TCP twin: a refused connect must evict its conntrack entry."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        alice = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(ConnectionRefused):
            nodes["c1"].net.connect(alice, "c2", 7000)
        assert len(nodes["c2"].net.firewall.conntrack) == 0

    def test_close_evicts_both_hosts(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listener, _ = serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        assert len(nodes["c2"].net.firewall.conntrack) == 1
        conn.close()
        assert len(nodes["c1"].net.firewall.conntrack) == 0
        assert len(nodes["c2"].net.firewall.conntrack) == 0


class TestDecisionTracing:
    def test_span_finishes_when_decide_raises(self, userdb, monkeypatch):
        """Regression: a raising _decide used to leak the span open (the
        reason tag was read after the call, so finish was never reached)."""
        from repro.obs.trace import Tracer

        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        daemon = daemons["c2"]
        daemon.tracer = Tracer(clock=lambda: 0.0)
        monkeypatch.setattr(daemon, "_decide",
                            lambda pkt: (_ for _ in ()).throw(
                                RuntimeError("boom")))
        serve(nodes, userdb, "c2", "alice", 5000)
        with pytest.raises(RuntimeError):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)
        spans = [s for s in daemon.tracer.spans if s.name == "ubf.decide"]
        assert spans and all(s.finished for s in spans)
        assert spans[-1].tags["status"] == "error"
        assert spans[-1].tags["error"] == "RuntimeError"

    def test_span_tags_verdict_and_reason(self, userdb):
        from repro.obs.trace import Tracer

        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        daemons["c2"].tracer = Tracer(clock=lambda: 0.0)
        serve(nodes, userdb, "c2", "alice", 5000)
        nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                "c2", 5000)
        span = [s for s in daemons["c2"].tracer.finished_spans()
                if s.name == "ubf.decide"][-1]
        assert span.tags["verdict"] == "accept"
        assert span.tags["reason"] == "same user"


class TestPortCollision:
    def test_two_users_same_port_no_crosstalk(self, ubf_fabric, userdb):
        """Section V: 'Even if two users accidentally choose the same port
        number for a network service, they cannot crosstalk and corrupt each
        others data.'  alice and bob both run port-5000 services on
        different nodes; each user's client lands only on their own server."""
        _, nodes, _ = ubf_fabric
        a_listener, _ = serve(nodes, userdb, "c1", "alice", 5000)
        b_listener, _ = serve(nodes, userdb, "c2", "bob", 5000)
        # alice's client hits bob's node by mistake: dropped
        with pytest.raises(TimedOut):
            nodes["c3"].net.connect(proc_on(nodes, "c3", userdb, "alice"),
                                    "c2", 5000)
        # and her own service still works
        conn = nodes["c3"].net.connect(proc_on(nodes, "c3", userdb, "alice"),
                                       "c1", 5000)
        conn.send(b"alice-data")
        assert nodes["c1"].net.accept(a_listener).recv() == b"alice-data"
