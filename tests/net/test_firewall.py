"""Unit tests: rules, conntrack, nfqueue plumbing."""

from repro.net import (
    ConnState,
    ConntrackTable,
    Firewall,
    FiveTuple,
    Packet,
    Proto,
    Rule,
    Verdict,
    ubf_ruleset,
)


def flow(dport=5000, proto=Proto.TCP, src_port=50000):
    return FiveTuple(proto, "c1", src_port, "c2", dport)


class TestRules:
    def test_port_range_match(self):
        r = Rule(Verdict.NFQUEUE, dport_min=1024)
        assert r.matches(Packet(flow(5000), ConnState.NEW))
        assert not r.matches(Packet(flow(22), ConnState.NEW))

    def test_proto_match(self):
        r = Rule(Verdict.DROP, proto=Proto.UDP)
        assert r.matches(Packet(flow(proto=Proto.UDP), ConnState.NEW))
        assert not r.matches(Packet(flow(proto=Proto.TCP), ConnState.NEW))

    def test_state_match(self):
        r = Rule(Verdict.NFQUEUE, state=ConnState.NEW)
        assert not r.matches(Packet(flow(), ConnState.ESTABLISHED))

    def test_first_matching_rule_wins(self):
        fw = Firewall(rules=[
            Rule(Verdict.DROP, dport_min=5000, dport_max=5000),
            Rule(Verdict.ACCEPT),
        ])
        assert fw.evaluate(Packet(flow(5000), ConnState.NEW)) is Verdict.DROP
        assert fw.evaluate(Packet(flow(6000), ConnState.NEW)) is Verdict.ACCEPT

    def test_default_policy_when_no_match(self):
        fw = Firewall(rules=[Rule(Verdict.DROP, proto=Proto.UDP)],
                      default_policy=Verdict.ACCEPT)
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.ACCEPT


class TestConntrack:
    def test_lookup_both_directions(self):
        ct = ConntrackTable()
        f = flow()
        ct.commit(f)
        assert ct.lookup(f) is not None
        assert ct.lookup(f.reversed()) is not None

    def test_disabled_table_never_hits(self):
        ct = ConntrackTable(enabled=False)
        ct.commit(flow())
        assert ct.lookup(flow()) is None

    def test_evict(self):
        ct = ConntrackTable()
        ct.commit(flow())
        ct.evict(flow().reversed())
        assert ct.lookup(flow()) is None

    def test_fastpath_skips_rules(self):
        fw = Firewall(rules=[Rule(Verdict.DROP)])  # drop everything new
        fw.conntrack.commit(flow())
        pkt = Packet(flow(), ConnState.NEW, payload_len=100)
        assert fw.evaluate(pkt) is Verdict.ACCEPT
        assert fw.metrics.report()["conntrack_fastpath_packets"] == 1
        entry = fw.conntrack.lookup(flow())
        assert entry.packets == 1 and entry.bytes == 100

    def test_accept_commits_to_conntrack(self):
        fw = Firewall(rules=[Rule(Verdict.ACCEPT)])
        fw.evaluate(Packet(flow(), ConnState.NEW))
        assert fw.conntrack.lookup(flow()) is not None

    def test_drop_not_committed(self):
        fw = Firewall(rules=[Rule(Verdict.DROP)])
        fw.evaluate(Packet(flow(), ConnState.NEW))
        assert fw.conntrack.lookup(flow()) is None


class TestNfqueue:
    def test_handler_verdict_respected(self):
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        fw.bind_nfqueue(lambda pkt: Verdict.DROP)
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.DROP
        fw.bind_nfqueue(lambda pkt: Verdict.ACCEPT)
        assert fw.evaluate(Packet(flow(src_port=50001), ConnState.NEW)) is Verdict.ACCEPT

    def test_accepting_handler_commits_conntrack(self):
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        calls = []
        fw.bind_nfqueue(lambda pkt: (calls.append(pkt), Verdict.ACCEPT)[1])
        fw.evaluate(Packet(flow(), ConnState.NEW))
        fw.evaluate(Packet(flow(), ConnState.NEW))  # same flow again
        assert len(calls) == 1  # second packet rode conntrack

    def test_queue_without_daemon_fails_closed(self):
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.DROP


class TestUbfRuleset:
    def test_user_ports_queued(self):
        fw = Firewall(rules=ubf_ruleset())
        fw.bind_nfqueue(lambda pkt: Verdict.ACCEPT)
        fw.evaluate(Packet(flow(8888), ConnState.NEW))
        assert fw.metrics.report()["nfqueue_decisions"] == 1

    def test_privileged_ports_not_queued(self):
        fw = Firewall(rules=ubf_ruleset())
        fw.bind_nfqueue(lambda pkt: Verdict.DROP)  # would drop if queued
        assert fw.evaluate(Packet(flow(22), ConnState.NEW)) is Verdict.ACCEPT
