"""Unit tests: rules, conntrack, nfqueue plumbing."""

from repro.net import (
    ConnState,
    ConntrackTable,
    Firewall,
    FiveTuple,
    Packet,
    Proto,
    Rule,
    Verdict,
    ubf_ruleset,
)


def flow(dport=5000, proto=Proto.TCP, src_port=50000):
    return FiveTuple(proto, "c1", src_port, "c2", dport)


class TestRules:
    def test_port_range_match(self):
        r = Rule(Verdict.NFQUEUE, dport_min=1024)
        assert r.matches(Packet(flow(5000), ConnState.NEW))
        assert not r.matches(Packet(flow(22), ConnState.NEW))

    def test_proto_match(self):
        r = Rule(Verdict.DROP, proto=Proto.UDP)
        assert r.matches(Packet(flow(proto=Proto.UDP), ConnState.NEW))
        assert not r.matches(Packet(flow(proto=Proto.TCP), ConnState.NEW))

    def test_state_match(self):
        r = Rule(Verdict.NFQUEUE, state=ConnState.NEW)
        assert not r.matches(Packet(flow(), ConnState.ESTABLISHED))

    def test_first_matching_rule_wins(self):
        fw = Firewall(rules=[
            Rule(Verdict.DROP, dport_min=5000, dport_max=5000),
            Rule(Verdict.ACCEPT),
        ])
        assert fw.evaluate(Packet(flow(5000), ConnState.NEW)) is Verdict.DROP
        assert fw.evaluate(Packet(flow(6000), ConnState.NEW)) is Verdict.ACCEPT

    def test_default_policy_when_no_match(self):
        fw = Firewall(rules=[Rule(Verdict.DROP, proto=Proto.UDP)],
                      default_policy=Verdict.ACCEPT)
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.ACCEPT


class TestConntrack:
    def test_lookup_both_directions(self):
        ct = ConntrackTable()
        f = flow()
        ct.commit(f)
        assert ct.lookup(f) is not None
        assert ct.lookup(f.reversed()) is not None

    def test_disabled_table_never_hits(self):
        ct = ConntrackTable(enabled=False)
        ct.commit(flow())
        assert ct.lookup(flow()) is None

    def test_recommit_preserves_live_counters(self):
        # re-committing a tracked flow must not zero its packet/byte
        # counters with a fresh entry
        ct = ConntrackTable()
        f = flow()
        entry = ct.commit(f)
        entry.packets, entry.bytes = 7, 700
        again = ct.commit(f)
        assert again is entry
        assert again.packets == 7 and again.bytes == 700
        assert len(ct) == 1

    def test_reverse_commit_shares_the_entry(self):
        # both directions of a connection are one tracked flow: a commit
        # of the reverse direction must not double occupancy
        ct = ConntrackTable()
        f = flow()
        entry = ct.commit(f)
        entry.packets = 3
        assert ct.commit(f.reversed()) is entry
        assert len(ct) == 1
        # and purge sees exactly one entry for the connection
        assert ct.purge_host("c1") == 1

    def test_recommit_is_an_lru_touch(self):
        ct = ConntrackTable(capacity=2)
        f1, f2 = flow(5000), flow(5001)
        ct.commit(f1)
        ct.commit(f2)
        ct.commit(f1)          # touch: f1 now MRU
        ct.commit(flow(5002))  # evicts f2, not f1
        assert ct.lookup(f1) is not None
        assert ct.lookup(f2) is None

    def test_evict(self):
        ct = ConntrackTable()
        ct.commit(flow())
        ct.evict(flow().reversed())
        assert ct.lookup(flow()) is None

    def test_fastpath_skips_rules(self):
        fw = Firewall(rules=[Rule(Verdict.DROP)])  # drop everything new
        fw.conntrack.commit(flow())
        pkt = Packet(flow(), ConnState.NEW, payload_len=100)
        assert fw.evaluate(pkt) is Verdict.ACCEPT
        assert fw.metrics.report()["conntrack_fastpath_packets"] == 1
        entry = fw.conntrack.lookup(flow())
        assert entry.packets == 1 and entry.bytes == 100

    def test_accept_commits_to_conntrack(self):
        fw = Firewall(rules=[Rule(Verdict.ACCEPT)])
        fw.evaluate(Packet(flow(), ConnState.NEW))
        assert fw.conntrack.lookup(flow()) is not None

    def test_drop_not_committed(self):
        fw = Firewall(rules=[Rule(Verdict.DROP)])
        fw.evaluate(Packet(flow(), ConnState.NEW))
        assert fw.conntrack.lookup(flow()) is None


class TestConntrackBound:
    def test_capacity_enforced_lru(self):
        from repro.sim.metrics import MetricSet
        m = MetricSet()
        ct = ConntrackTable(capacity=3, metrics=m)
        flows = [flow(src_port=50000 + i) for i in range(5)]
        for f in flows:
            ct.commit(f)
        assert len(ct) == 3
        # oldest two fell off; newest three survive
        assert ct.lookup(flows[0]) is None
        assert ct.lookup(flows[1]) is None
        assert all(ct.lookup(f) is not None for f in flows[2:])
        assert m.counter("conntrack_evictions_total", reason="lru").value == 2

    def test_lookup_refreshes_lru_order(self):
        ct = ConntrackTable(capacity=2)
        a, b, c = (flow(src_port=50000 + i) for i in range(3))
        ct.commit(a)
        ct.commit(b)
        ct.lookup(a)  # a is now most-recently-used
        ct.commit(c)  # evicts b, not a
        assert ct.lookup(a) is not None
        assert ct.lookup(b) is None

    def test_set_capacity_trims_and_counts(self):
        from repro.sim.metrics import MetricSet
        m = MetricSet()
        ct = ConntrackTable(metrics=m)
        for i in range(6):
            ct.commit(flow(src_port=50000 + i))
        evicted = ct.set_capacity(2, reason="pressure")
        assert evicted == 4 and len(ct) == 2
        assert m.counter("conntrack_evictions_total",
                         reason="pressure").value == 4
        assert m.gauge("conntrack_table_size").value == 2

    def test_eviction_reasons_labeled(self):
        from repro.sim.metrics import MetricSet
        m = MetricSet()
        ct = ConntrackTable(metrics=m)
        ct.commit(flow())
        ct.evict(flow(), reason="close")
        ct.commit(flow(src_port=50001))
        ct.evict(flow(src_port=50001), reason="refused")
        ct.evict(flow(src_port=50001), reason="refused")  # no-op: gone
        assert m.counter("conntrack_evictions_total",
                         reason="close").value == 1
        assert m.counter("conntrack_evictions_total",
                         reason="refused").value == 1

    def test_evicted_flow_is_new_again(self):
        """An LRU-evicted flow's next packet misses the fast path and
        re-runs the rules — the degradation is a re-decision, not a drop."""
        fw = Firewall(rules=[Rule(Verdict.ACCEPT)])
        fw.conntrack.capacity = 1
        fw.evaluate(Packet(flow(src_port=50000), ConnState.NEW))
        fw.evaluate(Packet(flow(src_port=50001), ConnState.NEW))  # evicts #1
        assert fw.conntrack.lookup(flow(src_port=50000)) is None
        assert fw.evaluate(
            Packet(flow(src_port=50000), ConnState.NEW)) is Verdict.ACCEPT
        assert fw.conntrack.lookup(flow(src_port=50000)) is not None


class TestNfqueue:
    def test_handler_verdict_respected(self):
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        fw.bind_nfqueue(lambda pkt: Verdict.DROP)
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.DROP
        fw.bind_nfqueue(lambda pkt: Verdict.ACCEPT)
        assert fw.evaluate(Packet(flow(src_port=50001), ConnState.NEW)) is Verdict.ACCEPT

    def test_accepting_handler_commits_conntrack(self):
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        calls = []
        fw.bind_nfqueue(lambda pkt: (calls.append(pkt), Verdict.ACCEPT)[1])
        fw.evaluate(Packet(flow(), ConnState.NEW))
        fw.evaluate(Packet(flow(), ConnState.NEW))  # same flow again
        assert len(calls) == 1  # second packet rode conntrack

    def test_queue_without_daemon_fails_closed(self):
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.DROP

    def test_unbind_returns_handler_and_fails_closed(self):
        """unbind_nfqueue hands back the bound callable (so a restart can
        rebind a wrapped handler) and leaves the queue failing closed."""
        fw = Firewall(rules=[Rule(Verdict.NFQUEUE)])
        handler = lambda pkt: Verdict.ACCEPT  # noqa: E731
        fw.bind_nfqueue(handler)
        assert fw.unbind_nfqueue() is handler
        assert fw.unbind_nfqueue() is None
        assert fw.evaluate(Packet(flow(), ConnState.NEW)) is Verdict.DROP


class TestUbfRuleset:
    def test_user_ports_queued(self):
        fw = Firewall(rules=ubf_ruleset())
        fw.bind_nfqueue(lambda pkt: Verdict.ACCEPT)
        fw.evaluate(Packet(flow(8888), ConnState.NEW))
        assert fw.metrics.report()["nfqueue_decisions"] == 1

    def test_privileged_ports_not_queued(self):
        fw = Firewall(rules=ubf_ruleset())
        fw.bind_nfqueue(lambda pkt: Verdict.DROP)  # would drop if queued
        assert fw.evaluate(Packet(flow(22), ConnState.NEW)) is Verdict.ACCEPT
