"""Data-sensitivity zone tiers: per-partition UBF posture (SURF model).

STRICT zones force fail-closed, raise the ident retry budget, and put a
TTL on cached verdicts; STANDARD leaves the §IV-D defaults alone.  The
posture is monotone — applying a tier never loosens a knob the operator
set tighter — and wiring through ``SeparationConfig.strict_zones`` pushes
it onto exactly the daemons of the zoned partition's nodes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import Cluster
from repro.core.presets import LLSC
from repro.net.zones import POSTURES, ZoneTier, apply_tier, apply_zone_tiers
from repro.sched.partitions import Partition

from tests.net.conftest import build_fabric


class TestApplyTier:
    def test_strict_forces_fail_closed(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1"], ubf=True)
        daemon = daemons["c1"]
        daemon.fail_open = True
        apply_tier(daemon, ZoneTier.STRICT)
        assert daemon.fail_open is False
        assert daemon.tier == "strict"

    def test_strict_raises_retries_and_sets_ttl(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1"], ubf=True)
        daemon = daemons["c1"]
        posture = apply_tier(daemon, ZoneTier.STRICT)
        assert daemon.ident_retries == posture.ident_retries == 4
        assert daemon.cache_ttl == posture.cache_ttl == 4096
        # the live cache objects picked the TTL up
        assert daemon._sharded.ttl == 4096

    def test_posture_is_monotone_on_safety(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1"], ubf=True)
        daemon = daemons["c1"]
        daemon.ident_retries = 9      # operator set it higher
        daemon.cache_ttl = 100        # and the TTL tighter
        apply_tier(daemon, ZoneTier.STRICT)
        assert daemon.ident_retries == 9
        assert daemon.cache_ttl == 100

    def test_standard_leaves_defaults(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1"], ubf=True)
        daemon = daemons["c1"]
        daemon.fail_open = True
        apply_tier(daemon, ZoneTier.STANDARD)
        assert daemon.fail_open is True   # standard allows the ablation
        assert daemon.cache_ttl is None

    def test_application_is_counted(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1"], ubf=True)
        apply_tier(daemons["c1"], ZoneTier.STRICT)
        assert fabric.metrics.counter("ubf_tier_applied_total",
                                      tier="strict").value == 1

    def test_postures_table_shape(self):
        assert POSTURES[ZoneTier.STANDARD].fail_open_allowed
        assert not POSTURES[ZoneTier.STRICT].fail_open_allowed


class TestClusterWiring:
    def test_strict_zone_hardens_partition_nodes_only(self):
        cfg = replace(LLSC, strict_zones=("debug",), ubf_fail_open=True)
        cluster = Cluster.build(cfg, n_compute=2, n_debug=2)
        normal = cluster.scheduler.partitions["normal"]
        debug = cluster.scheduler.partitions["debug"]
        assert normal.tier is ZoneTier.STANDARD
        assert debug.tier is ZoneTier.STRICT
        for name in debug.node_names:
            d = cluster.ubf_daemons[name]
            assert d.tier == "strict" and d.fail_open is False
            assert d.cache_ttl == 4096
        for name in normal.node_names:
            d = cluster.ubf_daemons[name]
            assert d.tier == "standard" and d.fail_open is True

    def test_no_strict_zones_is_a_noop(self):
        cluster = Cluster.build(LLSC, n_compute=1)
        assert all(d.tier == "standard"
                   for d in cluster.ubf_daemons.values())

    def test_apply_zone_tiers_returns_daemon_count(self):
        cfg = replace(LLSC, strict_zones=("normal",))
        cluster = Cluster.build(cfg, n_compute=3, n_debug=0)
        # build already applied; calling again is idempotent
        assert apply_zone_tiers(cluster) == 3


class TestPartitionField:
    def test_default_tier_standard(self):
        p = Partition("p", ("c1",))
        assert p.tier is ZoneTier.STANDARD
