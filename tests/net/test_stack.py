"""Unit tests: sockets, TCP connections, UDP datagrams (no UBF)."""

import pytest

from repro.kernel.errors import (
    AddressInUse,
    ConnectionRefused,
    InvalidArgument,
    NotConnected,
    PermissionError_,
    TimedOut,
)
from repro.net import Proto

from tests.net.conftest import proc_on


class TestBind:
    def test_bind_and_lookup(self, open_fabric, userdb):
        fabric, nodes, _ = open_fabric
        p = proc_on(nodes, "c1", userdb, "alice")
        sock = nodes["c1"].net.bind(p, 5000)
        assert fabric.host("c1").lookup(Proto.TCP, 5000) is sock
        assert sock.owner_uid == p.creds.uid

    def test_double_bind_eaddrinuse(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        a = proc_on(nodes, "c1", userdb, "alice")
        b = proc_on(nodes, "c1", userdb, "bob")
        nodes["c1"].net.bind(a, 5000)
        with pytest.raises(AddressInUse):
            nodes["c1"].net.bind(b, 5000)

    def test_same_port_different_hosts_ok(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        nodes["c1"].net.bind(proc_on(nodes, "c1", userdb, "alice"), 5000)
        nodes["c2"].net.bind(proc_on(nodes, "c2", userdb, "bob"), 5000)

    def test_privileged_port_requires_root(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        with pytest.raises(PermissionError_):
            nodes["c1"].net.bind(proc_on(nodes, "c1", userdb, "alice"), 80)
        nodes["c1"].net.bind(proc_on(nodes, "c1", userdb, "root"), 80)

    def test_closed_port_rebindable(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        p = proc_on(nodes, "c1", userdb, "alice")
        s = nodes["c1"].net.bind(p, 5000)
        nodes["c1"].net.close(s)
        nodes["c1"].net.bind(p, 5000)

    def test_bad_port_rejected(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        p = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(InvalidArgument):
            nodes["c1"].net.bind(p, 70000)


class TestTcp:
    def _serve(self, nodes, userdb, host, user, port):
        p = proc_on(nodes, host, userdb, user, argv=("server",))
        return nodes[host].net.listen(nodes[host].net.bind(p, port)), p

    def test_connect_send_recv(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        listener, _ = self._serve(nodes, userdb, "c2", "alice", 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        conn = nodes["c1"].net.connect(client, "c2", 5000)
        conn.send(b"ping")
        server_end = nodes["c2"].net.accept(listener)
        assert server_end.recv() == b"ping"
        server_end.send(b"pong")
        assert conn.recv() == b"pong"

    def test_connect_no_listener_refused(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        client = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(ConnectionRefused):
            nodes["c1"].net.connect(client, "c2", 7777)

    def test_bound_but_not_listening_refused(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        p = proc_on(nodes, "c2", userdb, "bob")
        nodes["c2"].net.bind(p, 5000)
        client = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(ConnectionRefused):
            nodes["c1"].net.connect(client, "c2", 5000)

    def test_recv_empty_returns_blank(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        listener, _ = self._serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        assert conn.recv() == b""

    def test_closed_connection_raises(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        listener, _ = self._serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        conn.close()
        with pytest.raises(NotConnected):
            conn.send(b"x")

    def test_accept_empty_queue(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        listener, _ = self._serve(nodes, userdb, "c2", "alice", 5000)
        with pytest.raises(TimedOut):
            nodes["c2"].net.accept(listener)

    def test_accept_on_non_listening_socket(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        p = proc_on(nodes, "c2", userdb, "bob")
        sock = nodes["c2"].net.bind(p, 5000)
        with pytest.raises(InvalidArgument):
            nodes["c2"].net.accept(sock)

    def test_listen_on_udp_socket_rejected(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        p = proc_on(nodes, "c2", userdb, "bob")
        sock = nodes["c2"].net.bind(p, 5000, Proto.UDP)
        with pytest.raises(InvalidArgument):
            nodes["c2"].net.listen(sock)

    def test_loopback_connect_same_host(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        listener, _ = self._serve(nodes, userdb, "c1", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c1", 5000)
        conn.send(b"hi")
        assert nodes["c1"].net.accept(listener).recv() == b"hi"

    def test_metrics_count_connections(self, open_fabric, userdb):
        fabric, nodes, _ = open_fabric
        listener, _ = self._serve(nodes, userdb, "c2", "alice", 5000)
        nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"), "c2", 5000)
        rep = fabric.metrics.report()
        assert rep["connect_attempts"] == 1
        assert rep["connects_established"] == 1


class TestUdp:
    def test_datagram_roundtrip(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        srv = proc_on(nodes, "c2", userdb, "alice")
        inbox = nodes["c2"].net.bind(srv, 6000, Proto.UDP)
        cli = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.sendto(cli, "c2", 6000, b"dgram")
        d = nodes["c2"].net.recvfrom(inbox)
        assert d.data == b"dgram"
        assert d.src_host == "c1"

    def test_no_receiver_refused(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        cli = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(ConnectionRefused):
            nodes["c1"].net.sendto(cli, "c2", 6000, b"x")

    def test_recvfrom_empty(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        srv = proc_on(nodes, "c2", userdb, "alice")
        inbox = nodes["c2"].net.bind(srv, 6000, Proto.UDP)
        with pytest.raises(TimedOut):
            nodes["c2"].net.recvfrom(inbox)

    def test_reply_via_source_port(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        srv = proc_on(nodes, "c2", userdb, "alice")
        inbox = nodes["c2"].net.bind(srv, 6000, Proto.UDP)
        cli = proc_on(nodes, "c1", userdb, "alice")
        cli_sock = nodes["c1"].net.bind_ephemeral(cli, Proto.UDP)
        nodes["c1"].net.sendto(cli, "c2", 6000, b"q", src_sock=cli_sock)
        d = nodes["c2"].net.recvfrom(inbox)
        nodes["c2"].net.sendto(srv, d.src_host, d.src_port, b"a",
                               src_sock=inbox)
        assert nodes["c1"].net.recvfrom(cli_sock).data == b"a"


class TestAbstractUds:
    def test_flow_identity_deterministic(self, open_fabric, userdb):
        """Abstract-UDS flows get counter-allocated negative ports, not a
        PYTHONHASHSEED-salted hash of the name — flow keys, conntrack
        contents and exported traces must be identical across runs."""
        _, nodes, _ = open_fabric
        alice = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.abstract_bind(alice, "svc")
        first = nodes["c1"].net.abstract_connect(alice, "svc")
        second = nodes["c1"].net.abstract_connect(alice, "svc")
        flows = [c._conn.flow for c in (first, second)]
        assert [f.src_port for f in flows] == [-2, -3]
        assert all(f.dst_port == -1 for f in flows)
        assert flows[0] != flows[1]  # concurrent connects stay distinct

    def test_roundtrip(self, open_fabric, userdb):
        _, nodes, _ = open_fabric
        alice = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.abstract_bind(alice, "ipc")
        conn = nodes["c1"].net.abstract_connect(alice, "ipc")
        conn.send(b"hello")
        assert nodes["c1"].net.abstract_accept("ipc").recv() == b"hello"


class TestSocketAPI:
    def test_endpoint_via_syscalls(self, open_fabric, userdb):
        from repro.kernel import SyscallInterface
        _, nodes, _ = open_fabric
        srv_proc = proc_on(nodes, "c2", userdb, "alice")
        srv_sys = SyscallInterface(nodes["c2"], srv_proc)
        listener = srv_sys.socket().listen(5000)
        cli_proc = proc_on(nodes, "c1", userdb, "alice")
        cli_sys = SyscallInterface(nodes["c1"], cli_proc)
        conn = cli_sys.socket().connect("c2", 5000)
        conn.send(b"via syscalls")
        assert srv_sys.socket().accept(listener).recv() == b"via syscalls"
