"""Unit tests: the traditional PPS firewall baseline."""

import pytest

from repro.kernel.errors import TimedOut
from repro.net import PPSPolicy, Proto, Verdict
from repro.net.firewall import ConnState, FiveTuple, Packet

from tests.net.conftest import build_fabric, proc_on


def pkt(port, proto=Proto.TCP):
    return Packet(FiveTuple(proto, "c1", 50000, "c2", port), ConnState.NEW)


class TestPolicy:
    def test_default_drop(self):
        assert PPSPolicy().handler(pkt(8080)) is Verdict.DROP

    def test_approved_service_allowed(self):
        p = PPSPolicy()
        p.approve(Proto.TCP, 8080, "team webapp")
        assert p.handler(pkt(8080)) is Verdict.ACCEPT
        assert p.handler(pkt(8080, Proto.UDP)) is Verdict.DROP  # per-proto

    def test_revoke(self):
        p = PPSPolicy()
        p.approve(Proto.TCP, 8080)
        p.revoke(Proto.TCP, 8080)
        assert p.handler(pkt(8080)) is Verdict.DROP
        assert p.change_requests == 2

    def test_no_principal_in_decision(self):
        """The defining weakness: identical verdict regardless of who."""
        p = PPSPolicy()
        p.approve(Proto.TCP, 8080)
        a = Packet(FiveTuple(Proto.TCP, "c1", 1, "c2", 8080), ConnState.NEW)
        b = Packet(FiveTuple(Proto.TCP, "c9", 2, "c2", 8080), ConnState.NEW)
        assert p.handler(a) is p.handler(b) is Verdict.ACCEPT


class TestPPSOnFabric:
    def _fabric_with_pps(self, userdb, policy):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True)
        # replace the UBF daemon with the PPS handler on c2
        nodes["c2"].net.firewall.bind_nfqueue(policy.handler)
        return fabric, nodes

    def test_unapproved_port_blocks_own_traffic(self, userdb):
        """A 'version 0' app on a random port: the PPS firewall denies the
        developer's own legitimate client."""
        policy = PPSPolicy()
        fabric, nodes = self._fabric_with_pps(userdb, policy)
        srv = proc_on(nodes, "c2", userdb, "alice")
        nodes["c2"].net.listen(nodes["c2"].net.bind(srv, 7777))
        cli = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(cli, "c2", 7777)

    def test_approved_port_admits_everyone(self, userdb):
        """Once opened, the port carries no principal: strangers connect."""
        policy = PPSPolicy()
        policy.approve(Proto.TCP, 7777, "alice's sim (ticket #142)")
        fabric, nodes = self._fabric_with_pps(userdb, policy)
        srv = proc_on(nodes, "c2", userdb, "alice")
        nodes["c2"].net.listen(nodes["c2"].net.bind(srv, 7777))
        for username in ("alice", "bob"):
            cli = proc_on(nodes, "c1", userdb, username)
            conn = nodes["c1"].net.connect(cli, "c2", 7777)
            assert conn.open


class TestEncryptedChannel:
    def _pair(self, userdb, key_c=b"k" * 16, key_s=b"k" * 16):
        from repro.workloads import CryptoStats, EncryptedChannel
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=False)
        srv = proc_on(nodes, "c2", userdb, "alice")
        lst = nodes["c2"].net.listen(nodes["c2"].net.bind(srv, 5000))
        cli = proc_on(nodes, "c1", userdb, "alice")
        conn = nodes["c1"].net.connect(cli, "c2", 5000)
        server_end = nodes["c2"].net.accept(lst)
        stats = CryptoStats()
        return (EncryptedChannel(conn, key_c, stats),
                EncryptedChannel(server_end, key_s, stats), stats)

    def test_roundtrip(self, userdb):
        c, s, stats = self._pair(userdb)
        c.send(b"sensitive payload")
        assert s.recv() == b"sensitive payload"
        assert stats.messages == 2
        assert stats.bytes_processed == 2 * len(b"sensitive payload")

    def test_ciphertext_on_wire(self, userdb):
        c, s, _ = self._pair(userdb)
        c.send(b"AAAA" * 32)
        raw = s.end.recv()  # read the raw frame instead of opening it
        assert b"AAAA" not in raw

    def test_wrong_key_mac_failure(self, userdb):
        from repro.kernel.errors import InvalidArgument
        c, s, stats = self._pair(userdb, key_s=b"x" * 16)
        c.send(b"data")
        with pytest.raises(InvalidArgument):
            s.recv()
        assert stats.mac_failures == 1

    def test_multi_message_counters_stay_synced(self, userdb):
        c, s, _ = self._pair(userdb)
        for i in range(10):
            c.send(f"msg-{i}".encode())
        got = [s.recv() for _ in range(10)]
        assert got == [f"msg-{i}".encode() for i in range(10)]

    def test_short_key_rejected(self, userdb):
        from repro.kernel.errors import InvalidArgument
        c, s, _ = self._pair(userdb)
        with pytest.raises(InvalidArgument):
            from repro.workloads import EncryptedChannel
            EncryptedChannel(c.end, b"short")

    def test_empty_recv_passthrough(self, userdb):
        c, s, _ = self._pair(userdb)
        assert s.recv() == b""


class TestCostModels:
    def test_option1_scales_with_traffic(self):
        from repro.workloads import option1_exchange_cost_us
        small = option1_exchange_cost_us(100, 1024)
        big = option1_exchange_cost_us(10_000, 1024)
        assert big == pytest.approx(100 * small)

    def test_option2_flat_in_messages(self):
        from repro.workloads import option2_exchange_cost_us
        a = option2_exchange_cost_us(4, n_messages=100)
        b = option2_exchange_cost_us(4, n_messages=10_000)
        # dominated by per-connection setup, not message count
        assert b < a * 25
        assert option2_exchange_cost_us(4) == pytest.approx(4 * 155.0)
