"""UBF batch decisions: ident coalescing, sharded cache, allow-sets (E24).

``decide_batch`` parks all packets from the same initiating process on one
upstream ident exchange.  These tests pin the coalescing contract — one
query per initiator, every waiter receives the verdict derived from its
answer (or the degradation policy when the fault injector eats it), and
degraded verdicts still never reach the cache — plus the determinism of
the sharded cache and the generation-invalidated egid allow-sets.
"""

from __future__ import annotations

from repro.faults import FaultKind
from repro.net import ConnState, FiveTuple, Packet, Proto, Verdict
from repro.net.ubf import ShardedVerdictCache

from tests.net.conftest import build_fabric, proc_on


def listen_on(nodes, userdb, host, user, port):
    proc = proc_on(nodes, host, userdb, user, argv=("server",))
    net = nodes[host].net
    net.listen(net.bind(proc, port))
    return proc


def initiator_on(nodes, userdb, host, user, src_port):
    """A process holding *src_port* on *host*, so the remote identd can
    answer queries about it."""
    proc = proc_on(nodes, host, userdb, user, argv=("client",))
    nodes[host].net.bind(proc, src_port)
    return proc


def pkt(src_port, dst_port, *, src_uid=None, src="c1", dst="c2"):
    return Packet(FiveTuple(Proto.TCP, src, src_port, dst, dst_port),
                  ConnState.NEW, src_uid=src_uid)


class TestCoalescing:
    def test_one_query_serves_all_waiters(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        listen_on(nodes, userdb, "c2", "alice", 5001)
        listen_on(nodes, userdb, "c2", "alice", 5002)
        initiator_on(nodes, userdb, "c1", "alice", 40000)
        batch = [pkt(40000, p) for p in (5000, 5001, 5002)]
        verdicts = daemons["c2"].decide_batch(batch)
        assert verdicts == [Verdict.ACCEPT] * 3  # same user throughout
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == 1
        assert rep["ident_coalesced"] == 2
        assert rep["ubf_full_decisions"] == 3  # every waiter concluded

    def test_distinct_initiators_query_separately(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        initiator_on(nodes, userdb, "c1", "alice", 40000)
        initiator_on(nodes, userdb, "c1", "bob", 40001)
        verdicts = daemons["c2"].decide_batch(
            [pkt(40000, 5000), pkt(40001, 5000)])
        assert verdicts == [Verdict.ACCEPT, Verdict.DROP]
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == 2
        assert rep["ident_coalesced"] == 0

    def test_second_batch_hits_cache_with_no_queries(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        alice = initiator_on(nodes, userdb, "c1", "alice", 40000)
        stamped = [pkt(40000, 5000, src_uid=alice.creds.uid)] * 2
        daemons["c2"].decide_batch(stamped)
        assert fabric.metrics.report()["ident_round_trips"] == 1
        verdicts = daemons["c2"].decide_batch(stamped)
        assert verdicts == [Verdict.ACCEPT] * 2
        rep = fabric.metrics.report()
        assert rep["ident_round_trips"] == 1  # unchanged
        assert rep["ubf_cache_hits"] == 2


class TestCoalescingUnderFaults:
    def test_identd_down_all_waiters_share_degraded_verdict(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        listen_on(nodes, userdb, "c2", "alice", 5001)
        initiator_on(nodes, userdb, "c1", "alice", 40000)
        fault = fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        verdicts = daemons["c2"].decide_batch(
            [pkt(40000, 5000), pkt(40000, 5001)])
        assert verdicts == [Verdict.DROP] * 2  # fail-closed, identically
        assert fabric.metrics.counter("ubf_degraded_verdicts",
                                      policy="fail-closed").value == 2
        assert fabric.metrics.report()["ident_coalesced"] == 1
        fabric.faults.clear(fault)

    def test_slow_identd_burns_one_retry_budget_not_one_per_waiter(
            self, userdb):
        """The coalesced group performs ONE upstream query cycle: with a
        retry budget of 1+2 attempts, an IDENTD_SLOW fault eating 3
        attempts degrades the whole group — and the counters must show a
        single query's worth of timeouts, not one cycle per waiter."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        listen_on(nodes, userdb, "c2", "alice", 5001)
        listen_on(nodes, userdb, "c2", "alice", 5002)
        initiator_on(nodes, userdb, "c1", "alice", 40000)
        fabric.faults.inject(FaultKind.IDENTD_SLOW, "c1", fail_attempts=3)
        verdicts = daemons["c2"].decide_batch(
            [pkt(40000, p) for p in (5000, 5001, 5002)])
        assert verdicts == [Verdict.DROP] * 3
        rep = fabric.metrics.report()
        assert rep["ubf_ident_timeouts"] == 3   # one query's attempts
        assert rep["ubf_ident_retries"] == 2
        assert fabric.metrics.counter("ubf_degraded_verdicts",
                                      policy="fail-closed").value == 3

    def test_degraded_batch_verdicts_are_never_cached(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        alice = initiator_on(nodes, userdb, "c1", "alice", 40000)
        fault = fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        daemons["c2"].decide_batch(
            [pkt(40000, 5000, src_uid=alice.creds.uid)] * 2)
        assert len(daemons["c2"]._sharded) == 0
        fabric.faults.clear(fault)
        verdicts = daemons["c2"].decide_batch(
            [pkt(40000, 5000, src_uid=alice.creds.uid)])
        assert verdicts == [Verdict.ACCEPT]  # fresh authoritative decision

    def test_slow_identd_recovers_within_one_batch_retry_budget(self, userdb):
        """A fault eating fewer attempts than the retry budget is absorbed:
        the group's single query retries past it and every waiter gets the
        authoritative verdict."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        listen_on(nodes, userdb, "c2", "alice", 5001)
        initiator_on(nodes, userdb, "c1", "alice", 40000)
        fabric.faults.inject(FaultKind.IDENTD_SLOW, "c1", fail_attempts=2)
        verdicts = daemons["c2"].decide_batch(
            [pkt(40000, 5000), pkt(40000, 5001)])
        assert verdicts == [Verdict.ACCEPT] * 2
        assert fabric.metrics.report()["ident_round_trips"] == 1


class TestBatchMatchesNaive:
    def test_fault_free_verdicts_identical_to_sequential_reference(
            self, userdb):
        """Differential check across every rule outcome: same-user accept,
        project-group accept, cross-user deny, root service, no listener,
        unidentifiable initiator."""
        def scenario(naive):
            fabric, nodes, daemons = build_fabric(
                userdb, ["c1", "c2"], ubf=True)
            daemon = daemons["c2"]
            daemon.naive = naive
            listen_on(nodes, userdb, "c2", "alice", 5000)
            carol = proc_on(nodes, "c2", userdb, "carol", argv=("server",))
            carol.creds = carol.creds.with_egid(userdb.group("fusion").gid)
            nodes["c2"].net.listen(nodes["c2"].net.bind(carol, 5001))
            listen_on(nodes, userdb, "c2", "root", 5002)
            initiator_on(nodes, userdb, "c1", "alice", 40000)
            initiator_on(nodes, userdb, "c1", "bob", 40001)
            initiator_on(nodes, userdb, "c1", "dave", 40002)
            batch = [
                pkt(40000, 5000),   # same user -> ACCEPT
                pkt(40001, 5000),   # stranger -> DROP
                pkt(40002, 5001),   # dave in carol's fusion egid -> ACCEPT
                pkt(40001, 5002),   # root-owned service -> ACCEPT
                pkt(40001, 6000),   # nothing listening -> ACCEPT (stack)
                pkt(49999, 5000),   # nobody owns the port -> DROP
            ]
            return daemon.decide_batch(batch)
        assert scenario(naive=False) == scenario(naive=True)


class TestShardedCache:
    def test_shard_assignment_is_arithmetic_and_stable(self):
        cache = ShardedVerdictCache(shards=4)
        key = (1007, 1003, 1003)
        cache.put(key, Verdict.ACCEPT)
        assert cache.get(key) is Verdict.ACCEPT
        expected = (1007 * 1_000_003 + 1003 * 8_191 + 1003) % 4
        sizes = cache.shard_sizes()
        assert sizes[expected] == 1
        assert sum(sizes) == len(cache) == 1

    def test_keys_spread_over_shards(self):
        cache = ShardedVerdictCache(shards=8)
        for uid in range(1000, 1256):
            cache.put((uid, 2000, 2000), Verdict.ACCEPT)
        sizes = cache.shard_sizes()
        assert len(cache) == 256
        assert all(s > 0 for s in sizes)

    def test_clear_empties_every_shard(self):
        cache = ShardedVerdictCache(shards=2)
        cache.put((1, 2, 3), Verdict.DROP)
        cache.clear()
        assert len(cache) == 0
        assert cache.get((1, 2, 3)) is None


class TestAllowSets:
    def test_membership_change_invalidates_via_generation(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                              cache=False)
        daemon = daemons["c2"]
        fusion = userdb.group("fusion")
        carol_srv = proc_on(nodes, "c2", userdb, "carol", argv=("server",))
        carol_srv.creds = carol_srv.creds.with_egid(fusion.gid)
        nodes["c2"].net.listen(nodes["c2"].net.bind(carol_srv, 5001))
        dave = initiator_on(nodes, userdb, "c1", "dave", 40002)
        assert daemon.decide_batch([pkt(40002, 5001)]) == [Verdict.ACCEPT]
        assert dave.creds.uid in daemon._allow_sets[fusion.gid]
        # steward removes dave; the cached allow-set must not outlive it
        userdb.remove_from_project(fusion, userdb.user("dave"),
                                   approver=userdb.user("carol"))
        verdicts = daemon.decide_batch([pkt(40002, 5001)])
        # dave's *process* still carries the fusion gid in its credential
        # snapshot (real ident semantics) — the snapshot fallback accepts
        assert verdicts == [Verdict.ACCEPT]
        assert dave.creds.uid not in daemon._allow_sets[fusion.gid]
        assert fabric.metrics.report()["ubf_allowset_fallbacks"] == 1

    def test_flush_cache_resets_allow_sets(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True)
        listen_on(nodes, userdb, "c2", "alice", 5000)
        initiator_on(nodes, userdb, "c1", "bob", 40001)
        daemons["c2"].decide_batch([pkt(40001, 5000)])
        daemons["c2"].flush_cache()
        assert daemons["c2"]._allow_sets == {}
        assert len(daemons["c2"]._sharded) == 0
