"""Property-based tests: DAC algorithm and File Permission Handler
invariants over randomized modes, credentials, and ACLs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kernel import (
    AclEntry,
    Credentials,
    FileKind,
    R_OK,
    ROOT_CREDS,
    W_OK,
    X_OK,
    check_access,
)
from repro.kernel.smask import FilePermissionHandler
from repro.kernel.vfs import Inode

modes = st.integers(min_value=0, max_value=0o7777)
perm_bits = st.integers(min_value=0, max_value=7)
uids = st.integers(min_value=1, max_value=50)
gids = st.integers(min_value=1, max_value=50)
masks = st.integers(min_value=0, max_value=0o777)


def creds(uid, egid, groups=(), smask=0):
    return Credentials(uid=uid, egid=egid,
                       groups=frozenset(groups) | {egid}, smask=smask)


def inode(uid, gid, mode, acl=()):
    return Inode(ino=1, kind=FileKind.FILE, uid=uid, gid=gid,
                 mode=mode & 0o7777, acl=list(acl))


class TestHandlerProperties:
    @given(mode=modes, smask=masks, uid=uids)
    def test_smask_bits_never_survive(self, mode, smask, uid):
        h = FilePermissionHandler()
        c = creds(uid, uid, smask=smask)
        assert h.effective_mode(mode, c) & (smask & 0o777) == 0

    @given(mode=modes, smask=masks, uid=uids)
    def test_handler_only_removes_bits(self, mode, smask, uid):
        h = FilePermissionHandler()
        c = creds(uid, uid, smask=smask)
        eff = h.effective_mode(mode, c)
        assert eff & ~(mode & 0o7777) == 0  # no bit added

    @given(mode=modes, smask=masks)
    def test_root_untouched(self, mode, smask):
        h = FilePermissionHandler()
        assert h.effective_mode(mode, ROOT_CREDS) == mode & 0o7777

    @given(mode=modes, smask=masks, uid=uids)
    def test_idempotent(self, mode, smask, uid):
        h = FilePermissionHandler()
        c = creds(uid, uid, smask=smask)
        once = h.effective_mode(mode, c)
        assert h.effective_mode(once, c) == once

    @given(mode=modes, uid=uids)
    def test_disabled_handler_identity(self, mode, uid):
        h = FilePermissionHandler(enabled=False)
        c = creds(uid, uid, smask=0o777)
        assert h.effective_mode(mode, c) == mode & 0o7777


class TestDacProperties:
    @given(uid=uids, gid=gids, mode=modes, want=perm_bits.filter(bool))
    def test_root_always_passes(self, uid, gid, mode, want):
        assert check_access(inode(uid, gid, mode), ROOT_CREDS, want)

    @given(uid=uids, gid=gids, mode=modes, want=perm_bits.filter(bool))
    def test_owner_decision_matches_owner_bits(self, uid, gid, mode, want):
        c = creds(uid, gid)
        expected = ((mode >> 6) & want) == want
        assert check_access(inode(uid, gid, mode), c, want) == expected

    @given(owner=uids, viewer=uids, gid=gids, mode=modes,
           want=perm_bits.filter(bool))
    def test_stranger_decision_matches_other_bits(self, owner, viewer, gid,
                                                  mode, want):
        if owner == viewer:
            return
        c = creds(viewer, viewer + 1000)  # disjoint groups from gid range
        expected = (mode & want) == want
        assert check_access(inode(owner, gid, mode), c, want) == expected

    @given(owner=uids, viewer=uids, gid=gids, mode=modes,
           want=perm_bits.filter(bool))
    def test_group_member_never_reads_other_bits(self, owner, viewer, gid,
                                                 mode, want):
        """Group-class matching must not fall through to the other class."""
        if owner == viewer:
            return
        c = creds(viewer, gid)  # member of the owning group
        result = check_access(inode(owner, gid, mode), c, want)
        expected = ((mode >> 3) & want) == want
        assert result == expected

    @given(owner=uids, viewer=uids, gid=gids, mode=modes,
           acl_perm=perm_bits, want=perm_bits.filter(bool))
    def test_acl_user_entry_is_decisive(self, owner, viewer, gid, mode,
                                        acl_perm, want):
        if owner == viewer:
            return
        c = creds(viewer, viewer + 1000)
        node = inode(owner, gid, mode, acl=[AclEntry("user", viewer, acl_perm)])
        assert check_access(node, c, want) == ((acl_perm & want) == want)

    @given(uid=uids, gid=gids, mode=modes)
    def test_want_monotone(self, uid, gid, mode):
        """If R|W is granted then R alone is granted (monotone in want)."""
        c = creds(uid + 100, gid + 100)
        node = inode(uid, gid, mode)
        if check_access(node, c, R_OK | W_OK):
            assert check_access(node, c, R_OK)
            assert check_access(node, c, W_OK)
        if check_access(node, c, R_OK | W_OK | X_OK):
            assert check_access(node, c, X_OK)
