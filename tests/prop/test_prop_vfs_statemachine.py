"""Model-based testing: random VFS operation sequences vs a flat reference.

A hypothesis ``RuleBasedStateMachine`` drives the simulated VFS with random
creates/writes/chmods/unlinks by random principals and mirrors expected
state in a plain dict.  Invariants checked after every step:

* content of every file the model knows matches a root read;
* no file owned by an unprivileged user under the LLSC handler ever carries
  world bits, no matter which operation sequence produced it;
* read permission outcomes for a stranger agree with the model's
  prediction from (mode, owner) — i.e. the DAC code has no sequence-
  dependent behaviour.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.kernel import Credentials, LLSC_KERNEL, PAPER_SMASK, ROOT_CREDS, VFS
from repro.kernel.errors import KernelError
from repro.kernel.vfs import check_access, R_OK

USERS = {
    "u1": Credentials(uid=1001, egid=1001, groups=frozenset({1001}),
                      umask=0, smask=PAPER_SMASK),
    "u2": Credentials(uid=1002, egid=1002, groups=frozenset({1002}),
                      umask=0, smask=PAPER_SMASK),
}

user_names = st.sampled_from(sorted(USERS))
modes = st.integers(min_value=0, max_value=0o777)
contents = st.binary(max_size=32)


class VfsMachine(RuleBasedStateMachine):
    files = Bundle("files")

    def __init__(self):
        super().__init__()
        self.vfs = VFS(handler=LLSC_KERNEL)
        self.vfs.mkdir("/w", ROOT_CREDS, mode=0o1777)
        self.model: dict[str, dict] = {}  # path -> {owner, mode, data}
        self.counter = 0

    # -- rules ---------------------------------------------------------------

    @rule(target=files, user=user_names, mode=modes, data=contents)
    def create(self, user, mode, data):
        self.counter += 1
        path = f"/w/f{self.counter}"
        creds = USERS[user]
        inode = self.vfs.create(path, creds, mode=mode, data=data)
        self.model[path] = {"owner": user, "mode": inode.mode,
                            "data": bytes(data)}
        return path

    @rule(path=files, user=user_names, data=contents)
    def write(self, path, user, data):
        if path not in self.model:
            return
        creds = USERS[user]
        try:
            self.vfs.write(path, creds, data)
        except KernelError:
            return
        self.model[path]["data"] = bytes(data)

    @rule(path=files, user=user_names, mode=modes)
    def chmod(self, path, user, mode):
        if path not in self.model:
            return
        creds = USERS[user]
        try:
            stored = self.vfs.chmod(path, creds, mode)
        except KernelError:
            return
        self.model[path]["mode"] = stored

    @rule(path=files, user=user_names)
    def unlink(self, path, user):
        if path not in self.model:
            return
        creds = USERS[user]
        try:
            self.vfs.unlink(path, creds)
        except KernelError:
            return
        del self.model[path]

    # -- invariants ------------------------------------------------------------

    @invariant()
    def contents_match_model(self):
        for path, rec in self.model.items():
            assert self.vfs.read(path, ROOT_CREDS) == rec["data"], path

    @invariant()
    def no_world_bits_ever(self):
        """The smask invariant holds across EVERY operation sequence."""
        for path, rec in self.model.items():
            st_ = self.vfs.stat(path, ROOT_CREDS)
            assert st_.mode & 0o007 == 0, (path, oct(st_.mode))

    @invariant()
    def stranger_read_matches_mode_prediction(self):
        for path, rec in self.model.items():
            owner_creds = USERS[rec["owner"]]
            stranger = next(c for n, c in USERS.items()
                            if n != rec["owner"])
            inode = self.vfs.resolve(path, ROOT_CREDS)
            expected = check_access(inode, stranger, R_OK)
            try:
                self.vfs.read(path, stranger)
                observed = True
            except KernelError:
                observed = False
            assert observed == expected, path


TestVfsMachine = VfsMachine.TestCase
TestVfsMachine.settings = settings(max_examples=30,
                                   stateful_step_count=30,
                                   deadline=None)
