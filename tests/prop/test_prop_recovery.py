"""Property: crash anywhere, recover, end digest-identical to no-crash.

The E30 acceptance bar, Hypothesis-driven: for an arbitrary small
workload — staggered arrivals, optional GPU custody, optional node
failure with requeue, optional membership revocation — killing the
control plane at *any* event index and recovering must (a) rebuild the
exact crash-time control plane (``report.identical``) and (b) leave the
rest of the run bit-for-bit on the uncrashed reference trajectory
(equal :func:`state_digest` at drain), with the separation oracle armed
fail-fast at full sampling the whole time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster
from repro.core.config import SeparationConfig
from repro.oracle import attach_oracle
from repro.persist import attach_persistence, state_digest
from repro.sched.health import attach_health

scenarios = st.fixed_dictionaries({
    "n_jobs": st.integers(3, 9),
    "gpus": st.booleans(),
    "node_fail": st.booleans(),
    "revoke": st.booleans(),
    "crash_frac": st.floats(0.0, 1.0),
})


def _drive(params, crash_at=None):
    """Run the scenario; crash+recover after *crash_at* engine events."""
    cluster = Cluster.build(
        SeparationConfig(), n_compute=4, gpus_per_node=2,
        users=("alice", "bob"), projects={"fusion": ("alice", "bob")})
    cluster.scheduler.config.requeue_on_node_fail = True
    attach_persistence(cluster)
    attach_health(cluster).start()
    attach_oracle(cluster, sampling_rate=1.0, fail_fast=True)
    chaos = cluster.chaos()
    for i in range(params["n_jobs"]):
        cluster.submit(
            "alice" if i % 2 else "bob", name=f"j{i}", ntasks=1,
            gpus_per_task=1 if params["gpus"] else 0, exclusive=True,
            duration=20.0 + (i % 4) * 6.5 + i * 0.01, at=i * 0.9)
    if params["node_fail"]:
        chaos.crash_node("c2", for_=40.0)
    if params["revoke"]:
        db = cluster.userdb
        db.remove_from_project("fusion", db.user("bob"),
                               approver=db.user("alice"))
    steps = 0
    while True:
        if steps == crash_at:
            chaos.crash_scheduler()
            report = cluster.recover()
            assert report.identical, \
                f"recovery diverged at event {steps}"
        if not cluster.engine.step():
            break
        steps += 1
    return cluster, steps


@settings(max_examples=20)
@given(scenarios)
def test_crash_at_any_event_is_digest_invisible(params):
    reference, total = _drive(params)
    ref_digest = state_digest(reference)
    crash_at = min(int(params["crash_frac"] * total), max(total - 1, 0))
    recovered, _ = _drive(params, crash_at=crash_at)
    assert state_digest(recovered) == ref_digest, \
        f"post-recovery trajectory diverged (crash at event {crash_at})"
