"""Property-based tests: engine ordering, metrics integrals, RNG."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Engine, TimeWeighted, make_rng, poisson_arrivals

times = st.lists(st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=50)


@given(ts=times)
def test_events_fire_in_nondecreasing_order(ts):
    eng = Engine()
    fired = []
    for t in ts:
        eng.at(t, lambda t=t: fired.append(t))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ts)
    assert eng.now == max(ts)


@given(ts=times, cut=st.integers(min_value=0, max_value=49))
def test_cancellation_removes_exactly_that_event(ts, cut):
    eng = Engine()
    fired = []
    events = [eng.at(t, lambda i=i: fired.append(i))
              for i, t in enumerate(ts)]
    victim = cut % len(events)
    eng.cancel(events[victim])
    eng.run()
    assert victim not in fired
    assert len(fired) == len(ts) - 1


segments = st.lists(
    st.tuples(st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
              st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
    min_size=1, max_size=30)


@given(segs=segments)
def test_time_weighted_integral_matches_manual_sum(segs):
    tw = TimeWeighted()
    t = 0.0
    manual = 0.0
    prev_v = 0.0
    for dt, v in segs:
        manual += prev_v * dt
        t += dt
        tw.set(t, v)
        prev_v = v
    horizon = t + 10.0
    manual += prev_v * 10.0
    assert np.isclose(tw.integral(horizon), manual, rtol=1e-9, atol=1e-6)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       rate=st.floats(min_value=0.01, max_value=5.0),
       horizon=st.floats(min_value=1.0, max_value=200.0))
def test_poisson_arrivals_sorted_and_bounded(seed, rate, horizon):
    t = poisson_arrivals(make_rng(seed), rate, horizon, start=3.0)
    assert np.all(np.diff(t) > 0)
    if t.size:
        assert t.min() >= 3.0
        assert t.max() < 3.0 + horizon
