"""Property: sharding is invisible.

For random multi-zone cluster configurations — zone counts, seeds,
cross-zone traffic mix, churn — every shard count K in {1, 2, 4, 8}
produces the *identical* simulation as the single-engine reference:
event-for-event trace digests, finish totals, exact core-second
accounting, cross-zone message counts.  Runs with a per-zone fail-fast
separation oracle armed at a sampled rate, so any violating scheduling
decision aborts the example.  The CI matrix replays this file under two
``PYTHONHASHSEED`` values, which is what makes digest equality a real
hash-seed-independence claim.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import make_zone_factories
from repro.sim import ShardedEngine

configs = st.fixed_dictionaries({
    "n_zones": st.sampled_from([2, 3, 4, 8]),
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
    "jobs_per_zone": st.integers(min_value=20, max_value=80),
    "transfer_frac": st.sampled_from([0.0, 0.1, 0.3]),
    "probe_frac": st.sampled_from([0.0, 0.1]),
    "churn_per_chunk": st.sampled_from([0.0, 0.0, 0.5]),
})


def _factories(cfg):
    return make_zone_factories(
        cfg["n_zones"], seed=cfg["seed"], nodes_per_zone=6,
        jobs_per_zone=cfg["jobs_per_zone"], chunk_jobs=25,
        transfer_frac=cfg["transfer_frac"], probe_frac=cfg["probe_frac"],
        churn_per_chunk=cfg["churn_per_chunk"], oracle_rate=0.05)


def _identity(rep):
    """Everything that must match across shardings, in one comparable."""
    return (rep.digest, rep.zones, rep.total_events, rep.msgs_routed,
            [s for s in rep.zone_stats])


@settings(max_examples=15)
@given(cfg=configs)
def test_every_sharding_matches_the_single_engine_reference(cfg):
    facs = _factories(cfg)
    ref = ShardedEngine(facs, n_shards=1, window=5.0).run()
    assert ref.ok
    total = cfg["n_zones"] * cfg["jobs_per_zone"]
    finished = sum(z["finished"] for z in ref.zones)
    if cfg["churn_per_chunk"] == 0.0:
        assert finished == total
    else:
        # a requeued NODE_FAIL victim finishes more than once
        assert finished >= total
    assert all(s["oracle_violations"] == 0 for s in ref.zone_stats)
    want = _identity(ref)
    for k in (2, 4, 8):
        if k > cfg["n_zones"]:
            continue
        rep = ShardedEngine(facs, n_shards=k, window=5.0).run()
        assert _identity(rep) == want, f"K={k} diverged from reference"


@settings(max_examples=5)
@given(cfg=configs)
def test_worker_processes_match_serial(cfg):
    facs = _factories(cfg)
    k = min(4, cfg["n_zones"])
    serial = ShardedEngine(facs, n_shards=k, window=5.0).run()
    mp = ShardedEngine(facs, n_shards=k, window=5.0, workers=2).run()
    assert mp.ok
    assert _identity(mp) == _identity(serial)
