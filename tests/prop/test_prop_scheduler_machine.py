"""Model-based testing: scheduler resource-accounting invariants.

Random submit/advance/cancel sequences against the scheduler; after every
step, structural invariants must hold regardless of order:

* no node is ever over-committed (used ≤ total for cores, memory, GPUs);
* under WHOLE_NODE_USER no node ever hosts jobs of two different uids;
* a GPU index is never double-allocated;
* finished jobs hold no allocations, and every running job's allocations
  are mirrored on the nodes.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.kernel import LinuxNode, NodeSpec, UserDB
from repro.sched import (
    ComputeNode,
    JobSpec,
    JobState,
    NodeSharing,
    Scheduler,
    SchedulerConfig,
)
from repro.sim import Engine

policies = st.sampled_from([NodeSharing.SHARED, NodeSharing.EXCLUSIVE,
                            NodeSharing.WHOLE_NODE_USER])


class SchedulerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.userdb = UserDB()
        self.users = [self.userdb.add_user(f"user{i}") for i in range(3)]
        self.engine = Engine()
        self.cnodes = [
            ComputeNode.create(LinuxNode(f"n{i}", self.userdb,
                                         spec=NodeSpec(cores=8,
                                                       mem_mb=8000,
                                                       gpus=2)))
            for i in range(3)
        ]
        self.policy = NodeSharing.WHOLE_NODE_USER
        self.sched = Scheduler(self.engine, self.cnodes,
                               SchedulerConfig(policy=self.policy))
        self.submitted = []

    @rule(user_i=st.integers(0, 2), ntasks=st.integers(1, 6),
          gpus=st.integers(0, 1), duration=st.floats(1.0, 50.0),
          mem=st.integers(100, 4000))
    def submit(self, user_i, ntasks, gpus, duration, mem):
        spec = JobSpec(user=self.users[user_i], name="j", ntasks=ntasks,
                       mem_mb_per_task=mem, gpus_per_task=gpus)
        self.submitted.append(self.sched.submit(spec, duration))

    @rule(dt=st.floats(0.5, 30.0))
    def advance(self, dt):
        self.engine.run(until=self.engine.now + dt)

    @rule(idx=st.integers(0, 200))
    def cancel(self, idx):
        if not self.submitted:
            return
        job = self.submitted[idx % len(self.submitted)]
        if not job.state.finished:
            self.sched.cancel(job, by=job.spec.user)

    @invariant()
    def no_overcommit(self):
        for node in self.cnodes:
            assert 0 <= node.used_cores <= node.total_cores
            assert 0 <= node.used_mem_mb <= node.total_mem_mb
            assert len(node.used_gpu_indices) <= len(node.gpus)

    @invariant()
    def single_user_per_node(self):
        for node in self.cnodes:
            uids = node.running_uids(self.sched.jobs)
            assert len(uids) <= 1, uids

    @invariant()
    def gpu_indices_unique(self):
        for node in self.cnodes:
            indices = [i for a in node.allocations.values()
                       for i in a.gpu_indices]
            assert len(indices) == len(set(indices))

    @invariant()
    def allocations_consistent(self):
        for job in self.sched.jobs.values():
            if job.state.finished:
                for node in self.cnodes:
                    assert job.job_id not in node.allocations
            elif job.state is JobState.RUNNING:
                for alloc in job.allocations:
                    node = self.sched.nodes[alloc.node]
                    assert node.allocations.get(job.job_id) is alloc


TestSchedulerMachine = SchedulerMachine.TestCase
TestSchedulerMachine.settings = settings(max_examples=25,
                                         stateful_step_count=30,
                                         deadline=None)
