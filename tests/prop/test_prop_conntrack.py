"""Property-based tests: conntrack table semantics under arbitrary
commit/lookup/evict interleavings, with and without an LRU bound."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net import ConntrackTable, FiveTuple, Proto
from repro.sim.metrics import MetricSet


def flow(i: int) -> FiveTuple:
    return FiveTuple(Proto.TCP, "c1", 50000 + i, "c2", 5000)


flow_ids = st.integers(min_value=0, max_value=20)


class TestConntrackProperties:
    @given(ids=st.lists(flow_ids, max_size=40))
    def test_bidirectional_lookup(self, ids):
        ct = ConntrackTable()
        for i in ids:
            ct.commit(flow(i))
        for i in set(ids):
            assert ct.lookup(flow(i)) is not None
            assert ct.lookup(flow(i).reversed()) is not None

    @given(ids=st.lists(flow_ids, max_size=40),
           capacity=st.integers(min_value=1, max_value=8))
    def test_capacity_never_exceeded(self, ids, capacity):
        """Bound invariant, checked against an independent LRU oracle."""
        from collections import OrderedDict

        m = MetricSet()
        ct = ConntrackTable(capacity=capacity, metrics=m)
        oracle: OrderedDict = OrderedDict()
        expected_evictions = 0
        for i in ids:
            ct.commit(flow(i))
            assert len(ct) <= capacity
            oracle[flow(i)] = True
            oracle.move_to_end(flow(i))
            while len(oracle) > capacity:
                oracle.popitem(last=False)
                expected_evictions += 1
        assert ct.flows() == list(oracle)
        assert m.counter("conntrack_evictions_total",
                         reason="lru").value == expected_evictions

    @given(ids=st.lists(flow_ids, max_size=40),
           capacity=st.integers(min_value=1, max_value=8))
    def test_survivors_are_most_recent(self, ids, capacity):
        ct = ConntrackTable(capacity=capacity)
        for i in ids:
            ct.commit(flow(i))
        # dedupe keeping last occurrence: the LRU survivors
        recent = list(dict.fromkeys(reversed(ids)))[:capacity]
        for i in recent:
            assert ct.lookup(flow(i)) is not None

    @given(ids=st.lists(flow_ids, max_size=40),
           evict_ids=st.lists(flow_ids, max_size=40),
           reversed_evict=st.booleans())
    def test_evicted_flows_are_gone_others_stay(self, ids, evict_ids,
                                                reversed_evict):
        ct = ConntrackTable()
        for i in ids:
            ct.commit(flow(i))
        for i in evict_ids:
            ct.evict(flow(i).reversed() if reversed_evict else flow(i),
                     reason="close")
        for i in set(ids):
            if i in evict_ids:
                assert ct.lookup(flow(i)) is None
            else:
                assert ct.lookup(flow(i)) is not None

    @given(ids=st.lists(flow_ids, max_size=40))
    def test_disabled_table_stays_empty(self, ids):
        ct = ConntrackTable(enabled=False)
        for i in ids:
            ct.commit(flow(i))
            assert ct.lookup(flow(i)) is None
        assert len(ct) == 0

    @given(ids=st.lists(flow_ids, max_size=40),
           capacity=st.integers(min_value=0, max_value=8))
    def test_set_capacity_returns_trim_count(self, ids, capacity):
        ct = ConntrackTable()
        for i in ids:
            ct.commit(flow(i))
        before = len(ct)
        evicted = ct.set_capacity(capacity, reason="pressure")
        assert evicted == max(0, before - capacity)
        assert len(ct) == min(before, capacity)
