"""Differential property test: indexed dispatch ≡ the naive reference.

The free-capacity index (``repro.sched.dispatch_index``) is a superset
filter over the naive full-partition scan, and the event-driven wakeups
skip only jobs that provably cannot have become placeable.  If either
claim is off by one node or one event, placements diverge.  This suite
runs random job streams — mixed sizes, policies, backfill settings, GPU
demands, node failures and drains — through both implementations and
requires byte-identical outcomes: per-job allocations, start/end times,
final states, and the accounting record sequence (completion order).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import LinuxNode, NodeSpec, UserDB
from repro.sched import (
    ComputeNode,
    JobSpec,
    NodeSharing,
    Partition,
    Scheduler,
    SchedulerConfig,
)
from repro.sim import Engine

policies = st.sampled_from([NodeSharing.SHARED, NodeSharing.EXCLUSIVE,
                            NodeSharing.WHOLE_NODE_USER])

jobs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),        # user index
        st.integers(min_value=1, max_value=6),        # ntasks
        st.integers(min_value=1, max_value=4),        # cores_per_task
        st.sampled_from([0, 500, 2000]),              # mem_mb_per_task
        st.integers(min_value=0, max_value=1),        # gpus_per_task
        st.booleans(),                                # --exclusive
        st.integers(min_value=1, max_value=40),       # duration
        st.integers(min_value=0, max_value=20),       # arrival offset
    ),
    min_size=1, max_size=25,
)

admin_strategy = st.lists(
    st.tuples(
        st.sampled_from(["fail", "drain", "resume"]),
        st.integers(min_value=0, max_value=5),        # node index
        st.integers(min_value=1, max_value=30),       # event time
    ),
    max_size=4,
)


def _run_side(*, naive, jobs, admin, n_nodes, cores, mem_mb, gpus,
              policy, backfill, requeue):
    userdb = UserDB()
    users = [userdb.add_user(f"user{i}") for i in range(4)]
    engine = Engine()
    cnodes = [
        ComputeNode.create(
            LinuxNode(f"n{i}", userdb,
                      spec=NodeSpec(cores=cores, mem_mb=mem_mb, gpus=gpus)))
        for i in range(n_nodes)
    ]
    names = tuple(n.name for n in cnodes)
    partitions = [Partition("normal", names),
                  Partition("debug", names[:max(1, n_nodes // 2)],
                            policy_override=NodeSharing.SHARED)]
    sched = Scheduler(engine, cnodes,
                      SchedulerConfig(policy=policy, backfill=backfill,
                                      requeue_on_node_fail=requeue,
                                      naive=naive),
                      partitions=partitions)
    for i, (u, ntasks, cpt, mpt, gpt, excl, dur, at) in enumerate(jobs):
        spec = JobSpec(user=users[u], name=f"j{i}", ntasks=ntasks,
                       cores_per_task=cpt, mem_mb_per_task=mpt,
                       gpus_per_task=gpt, exclusive=excl,
                       partition="debug" if i % 3 == 2 else "normal")
        sched.submit(spec, float(dur), at=float(at))
    for kind, idx, t in admin:
        name = f"n{idx % n_nodes}"
        if kind == "fail":
            engine.at(float(t), lambda n=name: sched.fail_node(n))
        elif kind == "drain":
            engine.at(float(t), lambda n=name: sched.drain(n))
        else:
            engine.at(float(t), lambda n=name: sched.resume(n))
    engine.run()
    outcome = {
        job_id: (job.state, job.start_time, job.end_time,
                 [(a.node, a.tasks, a.cores, a.mem_mb, tuple(a.gpu_indices))
                  for a in job.allocations])
        for job_id, job in sched.jobs.items()
    }
    completions = [(r.job_id, r.state, r.end_time)
                   for r in sched.accounting.all_records()]
    return outcome, completions, sched


@settings(max_examples=50)
@given(jobs=jobs_strategy, admin=admin_strategy,
       n_nodes=st.integers(min_value=1, max_value=6),
       cores=st.integers(min_value=2, max_value=8),
       mem_mb=st.sampled_from([4000, 16000]),
       gpus=st.integers(min_value=0, max_value=2),
       policy=policies, backfill=st.booleans(), requeue=st.booleans())
def test_indexed_dispatch_identical_to_naive(jobs, admin, n_nodes, cores,
                                             mem_mb, gpus, policy, backfill,
                                             requeue):
    kw = dict(jobs=jobs, admin=admin, n_nodes=n_nodes, cores=cores,
              mem_mb=mem_mb, gpus=gpus, policy=policy, backfill=backfill,
              requeue=requeue)
    naive_out, naive_seq, _ = _run_side(naive=True, **kw)
    fast_out, fast_seq, fast_sched = _run_side(naive=False, **kw)
    assert fast_out == naive_out
    assert fast_seq == naive_seq
    # the indexed run's incremental queues must agree with ground truth
    from repro.sched import JobState
    assert {j.job_id for j in fast_sched.running()} == {
        j.job_id for j in fast_sched.jobs.values()
        if j.state is JobState.RUNNING}
    assert {j.job_id for j in fast_sched.pending()} == {
        j.job_id for j in fast_sched.jobs.values()
        if j.state is JobState.PENDING}


@settings(max_examples=25)
@given(jobs=jobs_strategy,
       n_nodes=st.integers(min_value=2, max_value=6),
       policy=policies, backfill=st.booleans())
def test_indexed_utilization_matches_naive(jobs, n_nodes, policy, backfill):
    """utilization()/occupancy() come from incrementally accumulated
    core-seconds; they must equal the naive run's at every horizon."""
    kw = dict(jobs=jobs, admin=[], n_nodes=n_nodes, cores=8, mem_mb=16000,
              gpus=0, policy=policy, backfill=backfill, requeue=False)
    _, _, naive_sched = _run_side(naive=True, **kw)
    _, _, fast_sched = _run_side(naive=False, **kw)
    horizon = max(naive_sched.engine.now, 1.0)
    assert fast_sched.utilization(horizon) == naive_sched.utilization(horizon)
    assert fast_sched.occupancy(horizon) == naive_sched.occupancy(horizon)
