"""Property test: every denial in a chaos run has a resolvable attribution.

The forensic acceptance bar (ISSUE 6 / experiment E26): after an arbitrary
interleaving of job submissions, cross-user probes, fault injections, and
node failures, **every** deny-kind audit record carrying a real uid must
resolve — via the audit query API alone — to a causal root: the submit
record of the offending job, or the login record of the offending session.
Hypothesis drives random interleavings; the invariant must hold on all of
them, not just the golden scenario of the unit tests.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, LLSC
from repro.faults import FaultKind
from repro.kernel.errors import KernelError, TimedOut
from repro.monitor.events import EventKind
from repro.obs import attach_forensics

USERS = ("alice", "bob", "mallory")
DENY_KINDS = {EventKind.NET_DENY, EventKind.PAM_DENY, EventKind.FS_DENY,
              EventKind.PROC_DENY, EventKind.SCHED_DENY, EventKind.GPU_DENY,
              EventKind.PORTAL_DENY}

actions = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 2),
                  st.integers(5, 50), st.integers(0, 1)),
        st.tuples(st.just("advance"), st.integers(1, 20)),
        st.tuples(st.just("gpu_probe"), st.integers(0, 2)),
        st.tuples(st.just("ssh_probe"), st.integers(0, 2),
                  st.integers(1, 3)),
        st.tuples(st.just("net_probe"), st.integers(0, 2)),
        st.tuples(st.just("fault"), st.integers(1, 3)),
        st.tuples(st.just("fail"), st.integers(1, 3)),
    ),
    min_size=4, max_size=14)


def _drive(cluster, sessions, plan):
    """Execute *plan* against *cluster*; exceptions denials raise are the
    point, not a failure."""
    port = 5000
    jobs = []
    for step in plan:
        kind = step[0]
        if kind == "submit":
            _, u, duration, gpus = step
            jobs.append(cluster.submit(USERS[u], duration=float(duration),
                                       gpus_per_task=gpus))
            cluster.run(until=cluster.engine.now + 1.0)
        elif kind == "advance":
            cluster.run(until=cluster.engine.now + float(step[1]))
        elif kind == "gpu_probe":
            victim = USERS[step[1]]
            for job in jobs:
                if job.spec.user.name == victim and job.state.name == \
                        "RUNNING" and job.spec.gpus_per_task == 0:
                    try:
                        cluster.job_session(job).sys.open_read(
                            "/dev/nvidia0")
                    except KernelError:
                        pass
                    break
        elif kind == "ssh_probe":
            _, u, node = step
            try:
                cluster.ssh(USERS[u], f"c{node}")
            except KernelError:
                pass
        elif kind == "net_probe":
            attacker = USERS[step[1]]
            for job in jobs:
                if job.state.name == "RUNNING" and \
                        job.spec.user.name != attacker:
                    shell = cluster.job_session(job)
                    port += 1
                    shell.node.net.listen(
                        shell.node.net.bind(shell.process, port))
                    try:
                        sessions[attacker].socket().connect(
                            shell.node.name, port)
                    except (TimedOut, KernelError):
                        pass
                    break
        elif kind == "fault":
            cluster.fabric.faults.inject(
                FaultKind.IDENTD_UNRESPONSIVE, f"c{step[1]}")
        elif kind == "fail":
            name = f"c{step[1]}"
            if name in cluster.scheduler.nodes and \
                    not cluster.scheduler.nodes[name].failed:
                cluster.scheduler.fail_node(name)
    cluster.run(until=cluster.engine.now + 5.0)


@settings(max_examples=12)
@given(plan=actions)
def test_every_denial_resolves_to_job_or_session(plan):
    cluster = Cluster.build(LLSC, n_compute=3, gpus_per_node=1,
                            users=USERS, staff=("sam",))
    bundle = attach_forensics(cluster)
    # every principal logs in first, so even a job-less probe has a
    # causal root (its interactive session) to resolve to
    sessions = {u: cluster.login(u) for u in USERS}
    _drive(cluster, sessions, plan)

    denies = [r for r in bundle.audit.records
              if r.action == "deny" and r.uid >= 0]
    # every deny-kind *event* with a real uid landed in the trail ...
    n_deny_events = sum(1 for e in bundle.events.events
                        if e.kind in DENY_KINDS and e.subject_uid >= 0)
    assert len(denies) == n_deny_events
    # ... and 100% of them resolve through the query API to a causal root
    for rec in denies:
        res = bundle.audit.resolution(rec)
        assert res["resolved"], (rec, res)
        assert res["root"].action in ("submit", "login")
        assert res["uid"] == rec.uid
