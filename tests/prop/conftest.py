"""Hypothesis profile for the property suites.

Deadlines are disabled directory-wide: an example's first execution can
pay one-time lazy-import or warm-up costs that have nothing to do with
the property under test, and hypothesis reports the resulting timing
flake as a FlakyFailure.  The heavier suites already opted out with
``deadline=None``; this makes that the floor for all of tests/prop.
"""

from hypothesis import settings

settings.register_profile("repro-prop", deadline=None)
settings.load_profile("repro-prop")
