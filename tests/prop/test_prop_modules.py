"""Property-based tests: modulefile parse/render roundtrip and load/unload
environment restoration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modules import ModuleFile, parse_modulefile, render_modulefile

names = st.from_regex(r"[a-z][a-z0-9_-]{0,15}", fullmatch=True)
versions = st.from_regex(r"[0-9][0-9a-z.]{0,7}", fullmatch=True)
env_vars = st.from_regex(r"[A-Z][A-Z0-9_]{0,15}", fullmatch=True)
paths = st.from_regex(r"/[a-z0-9/_.-]{1,30}", fullmatch=True).map(
    lambda p: p.rstrip("/") or "/x")


module_files = st.builds(
    ModuleFile,
    name=names,
    version=versions,
    setenv=st.dictionaries(env_vars, paths, max_size=4),
    prepend_path=st.dictionaries(
        env_vars, st.lists(paths, min_size=1, max_size=3).map(tuple),
        max_size=3),
    conflicts=st.frozensets(names, max_size=3),
    description=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                               whitelist_characters=" -"),
        max_size=40).map(str.strip),
)


class TestRoundtrip:
    @given(mod=module_files)
    @settings(max_examples=100)
    def test_parse_render_roundtrip(self, mod):
        text = render_modulefile(mod)
        again = parse_modulefile(mod.name, mod.version, text)
        assert again.setenv == mod.setenv
        assert again.prepend_path == mod.prepend_path
        assert again.conflicts == mod.conflicts
        assert again.full_name == mod.full_name

    @given(mod=module_files)
    def test_render_starts_with_magic(self, mod):
        assert render_modulefile(mod).startswith("#%Module")


class TestLoadUnloadRestoration:
    @given(mod=module_files,
           base_env=st.dictionaries(env_vars, paths, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_load_then_unload_restores_env(self, mod, base_env):
        """For any module and any prior environment, unload(load(env))
        restores the PATH-like variables exactly (the module command's
        contract)."""
        from repro.kernel import LinuxNode, UserDB
        from repro.kernel.node import ROOT_CREDS
        from repro.modules import ModuleSystem, publish_module

        db = UserDB()
        user = db.add_user("u")
        node = LinuxNode("n", db)
        node.vfs.mkdir("/scratch", ROOT_CREDS, mode=0o755)
        publish_module(node, ROOT_CREDS, "/scratch/modulefiles", mod)
        proc = node.procs.spawn(db.credentials_for(user), ["sh"])
        proc.environ.update(base_env)
        before = dict(proc.environ)
        ms = ModuleSystem(node)
        ms.load(proc, mod.name)
        ms.unload(proc, mod.name)
        after = dict(proc.environ)
        after.pop("LOADEDMODULES", None)
        before.pop("LOADEDMODULES", None)
        # restoration holds unless the module legitimately collided with a
        # pre-existing value it overwrote via setenv
        for var, val in before.items():
            if var in mod.setenv:
                continue
            assert after.get(var) == val
