"""Property-based tests: the UBF decision rule and hidepid visibility."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kernel import Credentials, ProcMountOptions, ProcFS, ProcessTable
from repro.net import Verdict
from repro.net.ubf import UBFDaemon

uids = st.integers(min_value=1, max_value=30)
gids = st.integers(min_value=100, max_value=130)
group_sets = st.sets(st.integers(min_value=100, max_value=130), max_size=5)


def rule(init_uid, init_groups, listen_uid, listen_egid):
    # static access to the decision rule without a live fabric
    return UBFDaemon._rule(None, init_uid, frozenset(init_groups),
                           listen_uid, listen_egid)[0]


class TestUbfRuleProperties:
    @given(uid=uids, groups=group_sets, egid=gids)
    def test_same_user_always_allowed(self, uid, groups, egid):
        assert rule(uid, groups, uid, egid) is Verdict.ACCEPT

    @given(init=uids, listen=uids, groups=group_sets, egid=gids)
    def test_member_of_listener_egid_allowed(self, init, listen, groups,
                                             egid):
        assert rule(init, groups | {egid}, listen, egid) is Verdict.ACCEPT

    @given(init=uids, listen=uids, groups=group_sets, egid=gids)
    def test_stranger_never_allowed(self, init, listen, groups, egid):
        if init == listen or init == 0 or egid in groups:
            return
        assert rule(init, groups, listen, egid) is Verdict.DROP

    @given(listen=uids, groups=group_sets, egid=gids)
    def test_root_initiator_allowed(self, listen, groups, egid):
        assert rule(0, groups, listen, egid) is Verdict.ACCEPT

    @given(init=uids, listen=uids, groups=group_sets, egid=gids)
    def test_decision_deterministic(self, init, listen, groups, egid):
        assert rule(init, groups, listen, egid) is rule(init, groups,
                                                        listen, egid)


proc_specs = st.lists(uids, min_size=1, max_size=20)


class TestHidepidProperties:
    def _table(self, owner_uids):
        t = ProcessTable()
        for u in owner_uids:
            t.spawn(Credentials(uid=u, egid=u, groups=frozenset({u})),
                    [f"prog-{u}"])
        return t

    @given(owners=proc_specs, viewer=uids)
    def test_hidepid2_shows_exactly_own(self, owners, viewer):
        t = self._table(owners)
        view = ProcFS(t, ProcMountOptions(hidepid=2))
        creds = Credentials(uid=viewer, egid=viewer,
                            groups=frozenset({viewer}))
        visible = view.list_pids(creds)
        expected = [p.pid for p in t.processes() if p.creds.uid == viewer]
        assert visible == expected

    @given(owners=proc_specs, viewer=uids)
    def test_hidepid_monotone(self, owners, viewer):
        """Raising hidepid never reveals more."""
        t = self._table(owners)
        creds = Credentials(uid=viewer, egid=viewer,
                            groups=frozenset({viewer}))
        seen = [set(ProcFS(t, ProcMountOptions(hidepid=h)).list_pids(creds))
                for h in (0, 1, 2)]
        assert seen[2] <= seen[1] <= seen[0]

    @given(owners=proc_specs)
    def test_root_sees_all_at_any_level(self, owners):
        t = self._table(owners)
        root = Credentials(uid=0, egid=0, groups=frozenset({0}))
        for h in (0, 1, 2):
            view = ProcFS(t, ProcMountOptions(hidepid=h))
            assert view.list_pids(root) == t.pids()

    @given(owners=proc_specs, viewer=uids)
    def test_ps_never_shows_foreign_cmdline_at_hidepid2(self, owners, viewer):
        t = self._table(owners)
        view = ProcFS(t, ProcMountOptions(hidepid=2))
        creds = Credentials(uid=viewer, egid=viewer,
                            groups=frozenset({viewer}))
        assert all(r.uid == viewer for r in view.ps(creds))
