"""Property-based tests: node-sharing policy invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sched.policies import NodeSharing, tasks_placeable

policies = st.sampled_from(list(NodeSharing))
small = st.integers(min_value=0, max_value=64)
pos = st.integers(min_value=1, max_value=64)
uid_sets = st.sets(st.integers(min_value=1, max_value=9), max_size=3)
uid = st.integers(min_value=1, max_value=9)


@given(policy=policies, free_cores=small, free_mem=small, free_gpus=small,
       cpt=pos, mpt=pos, gpt=st.integers(min_value=0, max_value=4),
       idle=st.booleans(), uids=uid_sets, job_uid=uid,
       excl=st.booleans())
def test_never_exceeds_resources(policy, free_cores, free_mem, free_gpus,
                                 cpt, mpt, gpt, idle, uids, job_uid, excl):
    uids = uids if not idle else set()
    n = tasks_placeable(policy, free_cores=free_cores, free_mem_mb=free_mem,
                        free_gpus=free_gpus, cores_per_task=cpt,
                        mem_mb_per_task=mpt, gpus_per_task=gpt,
                        node_idle=idle, node_uids=uids, job_uid=job_uid,
                        job_exclusive=excl)
    assert n >= 0
    assert n * cpt <= free_cores
    assert n * mpt <= free_mem
    if gpt:
        assert n * gpt <= free_gpus


@given(free=pos, cpt=pos, uids=uid_sets.filter(bool), job_uid=uid,
       excl=st.booleans())
def test_whole_node_user_never_mixes_strangers(free, cpt, uids, job_uid,
                                               excl):
    n = tasks_placeable(NodeSharing.WHOLE_NODE_USER, free_cores=free,
                        free_mem_mb=10**6, free_gpus=0, cores_per_task=cpt,
                        mem_mb_per_task=1, gpus_per_task=0, node_idle=False,
                        node_uids=uids, job_uid=job_uid, job_exclusive=excl)
    if uids != {job_uid}:
        assert n == 0


@given(free=pos, cpt=pos, uids=uid_sets.filter(bool), job_uid=uid)
def test_exclusive_requires_idle(free, cpt, uids, job_uid):
    n = tasks_placeable(NodeSharing.EXCLUSIVE, free_cores=free,
                        free_mem_mb=10**6, free_gpus=0, cores_per_task=cpt,
                        mem_mb_per_task=1, gpus_per_task=0, node_idle=False,
                        node_uids=uids, job_uid=job_uid, job_exclusive=False)
    assert n == 0


@given(free=pos, cpt=pos, job_uid=uid, policy=policies)
def test_idle_node_always_accepts_fitting_job(free, cpt, job_uid, policy):
    if cpt > free:
        return
    n = tasks_placeable(policy, free_cores=free, free_mem_mb=10**6,
                        free_gpus=0, cores_per_task=cpt, mem_mb_per_task=1,
                        gpus_per_task=0, node_idle=True, node_uids=set(),
                        job_uid=job_uid, job_exclusive=False)
    assert n >= 1


@given(free=pos, cpt=pos, job_uid=uid)
def test_shared_ignores_residents(free, cpt, job_uid):
    a = tasks_placeable(NodeSharing.SHARED, free_cores=free,
                        free_mem_mb=10**6, free_gpus=0, cores_per_task=cpt,
                        mem_mb_per_task=1, gpus_per_task=0, node_idle=False,
                        node_uids={job_uid + 1}, job_uid=job_uid,
                        job_exclusive=False)
    b = tasks_placeable(NodeSharing.SHARED, free_cores=free,
                        free_mem_mb=10**6, free_gpus=0, cores_per_task=cpt,
                        mem_mb_per_task=1, gpus_per_task=0, node_idle=True,
                        node_uids=set(), job_uid=job_uid,
                        job_exclusive=False)
    assert a == b
