"""Model-based testing: network stack + UBF invariants.

Random bind/listen/connect/send/close sequences by two users across two
UBF-protected hosts, with a mirror model of who listens where.  Invariants:

* the UBF never admits a cross-user connection (listener egid = private);
* same-user connections always succeed when a listener exists;
* a port is never owned by two live sockets;
* conntrack only ever contains flows whose setup was accepted.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.kernel import LinuxNode, UserDB
from repro.kernel.errors import KernelError, TimedOut
from repro.net import Fabric, Firewall, HostStack, Proto, UBFDaemon, ubf_ruleset

PORTS = [5000, 5001, 5002]
HOSTS = ["h1", "h2"]
USERS = ["u1", "u2"]

ports = st.sampled_from(PORTS)
hosts = st.sampled_from(HOSTS)
users = st.sampled_from(USERS)


class NetMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.userdb = UserDB()
        self.uids = {}
        for name in USERS:
            self.uids[name] = self.userdb.add_user(name).uid
        self.fabric = Fabric()
        self.nodes = {}
        for h in HOSTS:
            node = LinuxNode(h, self.userdb)
            stack = HostStack(node, self.fabric,
                              firewall=Firewall(rules=ubf_ruleset()))
            UBFDaemon(stack, self.fabric, self.userdb).install()
            self.nodes[h] = node
        # model: (host, port) -> (user, socket) for live listeners
        self.listeners: dict[tuple[str, int], tuple[str, object]] = {}
        self.open_conns: list[tuple[str, object]] = []  # (client_user, end)

    def _proc(self, host, user):
        creds = self.userdb.credentials_for(self.userdb.user(user))
        return self.nodes[host].procs.spawn(creds, [f"{user}-app"])

    @rule(host=hosts, port=ports, user=users)
    def listen(self, host, port, user):
        net = self.nodes[host].net
        try:
            sock = net.listen(net.bind(self._proc(host, user), port))
        except KernelError:
            assert (host, port) in self.listeners  # only EADDRINUSE
            return
        assert (host, port) not in self.listeners
        self.listeners[(host, port)] = (user, sock)

    @rule(host=hosts, port=ports)
    def close_listener(self, host, port):
        entry = self.listeners.pop((host, port), None)
        if entry is not None:
            self.nodes[host].net.close(entry[1])

    @rule(src=hosts, dst=hosts, port=ports, user=users)
    def connect(self, src, dst, port, user):
        net = self.nodes[src].net
        proc = self._proc(src, user)
        entry = self.listeners.get((dst, port))
        try:
            end = net.connect(proc, dst, port)
        except TimedOut:
            # UBF drop: must have been cross-user
            assert entry is not None and entry[0] != user
            return
        except KernelError:
            # refused: nothing listening
            assert entry is None
            return
        assert entry is not None and entry[0] == user
        self.open_conns.append((user, end))

    @rule(idx=st.integers(0, 100))
    def send_on_open(self, idx):
        if not self.open_conns:
            return
        user, end = self.open_conns[idx % len(self.open_conns)]
        if end.open:
            end.send(b"data")  # established flows never fail

    @rule(idx=st.integers(0, 100))
    def close_conn(self, idx):
        if not self.open_conns:
            return
        _, end = self.open_conns.pop(idx % len(self.open_conns))
        end.close()

    @invariant()
    def listener_table_consistent(self):
        for (host, port), (user, sock) in self.listeners.items():
            live = self.nodes[host].net.lookup(Proto.TCP, port)
            assert live is sock
            assert live.owner_uid == self.uids[user]

    @invariant()
    def no_cross_user_flow_ever_established(self):
        for user, end in self.open_conns:
            if end.open:
                assert end.peer_uid == self.uids[user]


TestNetMachine = NetMachine.TestCase
TestNetMachine.settings = settings(max_examples=25,
                                   stateful_step_count=30,
                                   deadline=None)
