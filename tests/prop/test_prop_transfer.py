"""Property-based tests: scp round-trips arbitrary payloads faithfully."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, LLSC
from repro.transfer import scp

payloads = st.binary(min_size=0, max_size=4096)
names = st.from_regex(r"[a-z][a-z0-9_.-]{0,20}", fullmatch=True)


@settings(max_examples=25, deadline=None)
@given(data=payloads, name=names)
def test_scp_roundtrip_preserves_bytes(data, name):
    cluster = Cluster.build(LLSC, n_compute=1, n_dtn=1, users=("alice",))
    alice = cluster.login("alice")
    src = f"/tmp/{name}"
    alice.sys.create(src, mode=0o600, data=data)
    res = scp(cluster, alice, src, f"dtn1:/tmp/{name}")
    assert res.bytes_moved == len(data)
    back = f"/tmp/back-{name}"
    scp(cluster, alice, f"dtn1:/tmp/{name}", back)
    assert alice.sys.open_read(back) == data


@settings(max_examples=15, deadline=None)
@given(data=payloads)
def test_scp_never_leaks_mode_bits(data):
    """Whatever is transferred, the destination carries no world bits
    under the LLSC smask."""
    cluster = Cluster.build(LLSC, n_compute=1, n_dtn=1, users=("alice",))
    alice = cluster.login("alice")
    alice.sys.create("/tmp/f", mode=0o600, data=data)
    scp(cluster, alice, "/tmp/f", "dtn1:/tmp/f", mode=0o777)
    dtn = cluster.node("dtn1")
    st_ = dtn.vfs.stat("/tmp/f", alice.creds)
    assert st_.mode & 0o007 == 0
