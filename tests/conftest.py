"""Shared fixtures: a small user population and node factories."""

from __future__ import annotations

import pytest

from repro.kernel import (
    Credentials,
    Filesystem,
    LinuxNode,
    LLSC_KERNEL,
    PAPER_SMASK,
    PamSmask,
    PamStack,
    PamUnix,
    ProcMountOptions,
    ROOT_CREDS,
    STOCK_KERNEL,
    UserDB,
)


@pytest.fixture
def userdb() -> UserDB:
    """UPG-scheme user database: alice, bob (strangers), carol+dave sharing
    the 'fusion' project group stewarded by carol, and staff member sam."""
    db = UserDB(upg=True)
    db.add_user("alice")
    db.add_user("bob")
    carol = db.add_user("carol")
    dave = db.add_user("dave")
    db.add_user("sam", support_staff=True)
    grp = db.add_project_group("fusion", steward=carol)
    db.add_to_project(grp, dave, approver=carol)
    return db


@pytest.fixture
def flat_userdb() -> UserDB:
    """Stock (non-UPG) database: everyone shares gid 100 'users'."""
    db = UserDB(upg=False)
    for name in ("alice", "bob", "carol"):
        db.add_user(name)
    return db


def creds_of(db: UserDB, name: str, **kw) -> Credentials:
    return db.credentials_for(db.user(name), **kw)


@pytest.fixture
def stock_node(userdb) -> LinuxNode:
    """A node with stock-kernel semantics (no smask, hidepid=0)."""
    return LinuxNode("n1", userdb, handler=STOCK_KERNEL)


@pytest.fixture
def llsc_node(userdb) -> LinuxNode:
    """A node configured the paper's way: smask kernel patch + hidepid=2
    with a staff exemption gid, pam_smask in the stack."""
    exempt = userdb.add_system_group("seepid", members={userdb.user("sam").uid})
    node = LinuxNode(
        "n1", userdb, handler=LLSC_KERNEL,
        proc_options=ProcMountOptions(hidepid=2, gid=exempt.gid),
        pam=PamStack([PamUnix(), PamSmask(PAPER_SMASK)]),
    )
    return node


@pytest.fixture
def shared_home(userdb) -> Filesystem:
    """A central filesystem with paper-style home directories: owned by
    root, group = the user's private group, mode 0770."""
    fs = Filesystem("lustre-home")
    vfs_holder = LinuxNode("fsbuilder", userdb)
    vfs_holder.mount_shared("/home", fs)
    for u in userdb.users():
        if u.is_root:
            continue
        vfs_holder.vfs.mkdir(f"/home/{u.name}", ROOT_CREDS, mode=0o770)
        vfs_holder.vfs.chown(f"/home/{u.name}", ROOT_CREDS, gid=u.primary_gid)
    return fs
