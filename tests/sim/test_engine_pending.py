"""Engine.pending O(1) live counter + heap compaction (E24 satellite)."""

from __future__ import annotations

from repro.sim import Engine


def noop():
    pass


class TestPendingCounter:
    def test_counts_live_events_only(self):
        eng = Engine()
        events = [eng.at(float(i), noop) for i in range(10)]
        assert eng.pending == 10
        for ev in events[:4]:
            eng.cancel(ev)
        assert eng.pending == 6

    def test_double_cancel_counts_once(self):
        eng = Engine()
        ev = eng.at(1.0, noop)
        eng.at(2.0, noop)
        eng.cancel(ev)
        eng.cancel(ev)
        assert eng.pending == 1

    def test_cancel_after_fire_is_noop(self):
        eng = Engine()
        ev = eng.at(1.0, noop)
        eng.at(2.0, noop)
        eng.run(until=1.5)
        assert eng.pending == 1
        eng.cancel(ev)  # already fired: must not corrupt the counter
        assert eng.pending == 1
        eng.run()
        assert eng.pending == 0

    def test_step_decrements(self):
        eng = Engine()
        for i in range(3):
            eng.at(float(i), noop)
        assert eng.step()
        assert eng.pending == 2

    def test_cancelled_event_never_fires(self):
        eng = Engine()
        fired = []
        ev = eng.at(1.0, lambda: fired.append(1))
        eng.cancel(ev)
        eng.run()
        assert fired == []
        assert eng.pending == 0


class TestCompaction:
    def test_mass_cancellation_shrinks_the_heap(self):
        eng = Engine()
        events = [eng.at(float(i), noop) for i in range(100)]
        for ev in events[:80]:
            eng.cancel(ev)
        # cancel() itself is O(1): tombstones stay put until the next
        # schedule/drain boundary runs the amortized sweep
        assert len(eng._heap) == 100
        assert eng.compactions == 0
        eng.at(200.0, noop)  # boundary: sweep triggers here
        assert eng.compactions == 1
        assert eng._cancelled_in_heap == 0
        assert len(eng._heap) <= 30
        assert eng.pending == 21

    def test_run_boundary_compacts_before_draining(self):
        eng = Engine()
        events = [eng.at(float(i), noop) for i in range(100)]
        for ev in events[:90]:
            eng.cancel(ev)
        eng.run()
        assert eng.compactions == 1
        assert eng.events_processed == 10
        assert eng.pending == 0

    def test_compaction_preserves_firing_order(self):
        eng = Engine()
        fired = []
        events = [eng.at(float(i), lambda i=i: fired.append(i))
                  for i in range(50)]
        for ev in events[1::2]:  # cancel all odd-timed events
            eng.cancel(ev)
        eng.run()
        assert fired == list(range(0, 50, 2))
        assert eng.events_processed == 25

    def test_interleaved_schedule_cancel_run(self):
        eng = Engine()
        fired = []
        survivors = []
        for round_ in range(5):
            evs = [eng.at(eng.now + 1.0 + i, lambda v=(round_, i): fired.append(v))
                   for i in range(10)]
            for ev in evs[:7]:
                eng.cancel(ev)
            survivors.extend((round_, i) for i in range(7, 10))
            eng.run(until=eng.now + 5.0)
        eng.run()
        assert fired == survivors
        assert eng.pending == 0


class TestCancelStorm:
    """Node-churn regression: storms of cancel+reschedule must stay linear.

    The churn shape mirrors what ``Scheduler.fail_node`` + requeue does at
    fleet scale: every requeued job cancels its completion timer and
    schedules a new one.  The old implementation compacted synchronously
    inside ``cancel()``; this pins the amortized-sweep contract instead —
    O(1) cancels, a bounded number of O(n) sweeps, a heap proportional to
    live events — which together rule out the O(n²) blowup.
    """

    def test_storm_keeps_heap_linear_and_sweeps_bounded(self):
        eng = Engine()
        live = [eng.at(1000.0 + i, noop) for i in range(2_000)]
        cancels = 0
        for wave in range(40):  # 40 churn waves of 1000 cancel+reschedule
            for i in range(1_000):
                victim = live[(wave * 997 + i * 31) % len(live)]
                if victim.cancelled:
                    continue
                eng.cancel(victim)
                cancels += 1
                live[(wave * 997 + i * 31) % len(live)] = eng.at(
                    2000.0 + wave + i * 1e-3, noop)
        # the heap never holds more than live + the tombstones one sweep
        # threshold allows — i.e. it stays O(live), not O(total cancels)
        assert len(eng._heap) <= 2 * eng.pending + 64
        assert eng.pending == 2_000
        # each sweep needs >= len(heap)//2 fresh tombstones, so ~40k
        # cancels amortize to a handful of sweeps, not one per storm wave
        assert 1 <= eng.compactions <= cancels // 500
        eng.run()
        assert eng.pending == 0
        assert eng.events_processed == 2_000

    def test_pure_cancel_storm_never_rebuilds_inline(self):
        eng = Engine()
        events = [eng.at(float(i), noop) for i in range(50_000)]
        for ev in events:
            eng.cancel(ev)
        # no schedule/drain boundary was crossed: cancel() did zero
        # compaction work of its own
        assert eng.compactions == 0
        assert eng.pending == 0
        eng.run()
        assert eng.events_processed == 0
