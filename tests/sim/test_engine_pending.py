"""Engine.pending O(1) live counter + heap compaction (E24 satellite)."""

from __future__ import annotations

from repro.sim import Engine


def noop():
    pass


class TestPendingCounter:
    def test_counts_live_events_only(self):
        eng = Engine()
        events = [eng.at(float(i), noop) for i in range(10)]
        assert eng.pending == 10
        for ev in events[:4]:
            eng.cancel(ev)
        assert eng.pending == 6

    def test_double_cancel_counts_once(self):
        eng = Engine()
        ev = eng.at(1.0, noop)
        eng.at(2.0, noop)
        eng.cancel(ev)
        eng.cancel(ev)
        assert eng.pending == 1

    def test_cancel_after_fire_is_noop(self):
        eng = Engine()
        ev = eng.at(1.0, noop)
        eng.at(2.0, noop)
        eng.run(until=1.5)
        assert eng.pending == 1
        eng.cancel(ev)  # already fired: must not corrupt the counter
        assert eng.pending == 1
        eng.run()
        assert eng.pending == 0

    def test_step_decrements(self):
        eng = Engine()
        for i in range(3):
            eng.at(float(i), noop)
        assert eng.step()
        assert eng.pending == 2

    def test_cancelled_event_never_fires(self):
        eng = Engine()
        fired = []
        ev = eng.at(1.0, lambda: fired.append(1))
        eng.cancel(ev)
        eng.run()
        assert fired == []
        assert eng.pending == 0


class TestCompaction:
    def test_mass_cancellation_shrinks_the_heap(self):
        eng = Engine()
        events = [eng.at(float(i), noop) for i in range(100)]
        for ev in events[:80]:
            eng.cancel(ev)
        # compaction keeps tombstones bounded by half the (live) heap —
        # the heap must have shrunk far below the 100 entries pushed
        assert eng._cancelled_in_heap <= len(eng._heap) // 2
        assert len(eng._heap) <= 30
        assert eng.pending == 20

    def test_compaction_preserves_firing_order(self):
        eng = Engine()
        fired = []
        events = [eng.at(float(i), lambda i=i: fired.append(i))
                  for i in range(50)]
        for ev in events[1::2]:  # cancel all odd-timed events
            eng.cancel(ev)
        eng.run()
        assert fired == list(range(0, 50, 2))
        assert eng.events_processed == 25

    def test_interleaved_schedule_cancel_run(self):
        eng = Engine()
        fired = []
        survivors = []
        for round_ in range(5):
            evs = [eng.at(eng.now + 1.0 + i, lambda v=(round_, i): fired.append(v))
                   for i in range(10)]
            for ev in evs[:7]:
                eng.cancel(ev)
            survivors.extend((round_, i) for i in range(7, 10))
            eng.run(until=eng.now + 5.0)
        eng.run()
        assert fired == survivors
        assert eng.pending == 0
