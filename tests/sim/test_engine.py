"""Unit tests: discrete-event engine, metrics, RNG helpers."""

import numpy as np
import pytest

from repro.sim import Engine, MetricSet, Samples, TimeWeighted, make_rng, poisson_arrivals, spawn


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.at(5.0, lambda: order.append("b"))
        eng.at(1.0, lambda: order.append("a"))
        eng.at(9.0, lambda: order.append("c"))
        eng.run()
        assert order == ["a", "b", "c"]
        assert eng.now == 9.0

    def test_ties_fire_in_insertion_order(self):
        eng = Engine()
        order = []
        for tag in "abc":
            eng.at(1.0, lambda t=tag: order.append(t))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_after_is_relative(self):
        eng = Engine()
        times = []
        eng.at(2.0, lambda: eng.after(3.0, lambda: times.append(eng.now)))
        eng.run()
        assert times == [5.0]

    def test_run_until_stops_clock(self):
        eng = Engine()
        fired = []
        eng.at(10.0, lambda: fired.append(1))
        assert eng.run(until=4.0) == 4.0
        assert not fired
        eng.run()
        assert fired

    def test_cancel(self):
        eng = Engine()
        fired = []
        ev = eng.at(1.0, lambda: fired.append(1))
        eng.cancel(ev)
        eng.run()
        assert not fired

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.at(5.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            eng.after(-1.0, lambda: None)

    def test_step(self):
        eng = Engine()
        eng.at(1.0, lambda: None)
        assert eng.step()
        assert not eng.step()

    def test_events_scheduled_during_run(self):
        eng = Engine()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                eng.after(1.0, lambda: chain(n + 1))

        eng.at(0.0, lambda: chain(0))
        eng.run()
        assert seen == [0, 1, 2, 3]
        assert eng.now == 3.0


class TestTimeWeighted:
    def test_integral_piecewise(self):
        tw = TimeWeighted()
        tw.set(0.0, 2.0)
        tw.set(5.0, 4.0)
        assert tw.integral(10.0) == pytest.approx(2 * 5 + 4 * 5)

    def test_mean(self):
        tw = TimeWeighted()
        tw.set(0.0, 1.0)
        tw.set(5.0, 0.0)
        assert tw.mean(10.0) == pytest.approx(0.5)

    def test_add_delta(self):
        tw = TimeWeighted()
        tw.add(0.0, 3.0)
        tw.add(2.0, -1.0)
        assert tw.current == 2.0
        assert tw.integral(4.0) == pytest.approx(3 * 2 + 2 * 2)

    def test_time_backwards_rejected(self):
        tw = TimeWeighted()
        tw.set(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.set(4.0, 2.0)


class TestMetrics:
    def test_counter_registry(self):
        m = MetricSet()
        m.counter("x").inc()
        m.counter("x").inc(2)
        assert m.report()["x"] == 3

    def test_samples_summary(self):
        s = Samples("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            s.add(v)
        r = s.summary()
        assert r["n"] == 4
        assert r["mean"] == pytest.approx(2.5)
        assert r["max"] == 4.0

    def test_empty_samples(self):
        assert Samples("x").summary()["n"] == 0


class TestRng:
    def test_determinism(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_spawn_independence(self):
        kids = spawn(make_rng(1), 3)
        draws = [k.random(4) for k in kids]
        assert not np.array_equal(draws[0], draws[1])

    def test_poisson_arrivals_in_window(self):
        t = poisson_arrivals(make_rng(7), rate=2.0, horizon=100.0, start=10.0)
        assert t.size > 100  # ~200 expected
        assert t.min() >= 10.0 and t.max() < 110.0
        assert np.all(np.diff(t) > 0)

    def test_zero_rate(self):
        assert poisson_arrivals(make_rng(1), 0.0, 10.0).size == 0
