"""ShardedEngine: epoch/merge determinism, backends, crash fencing.

Uses a small self-contained token-passing zone (no scheduler) so these
tests pin the *engine* contract in isolation; the full multi-zone cluster
identity lives in tests/sched/test_multizone.py and tests/prop.
"""

from __future__ import annotations

import functools
import hashlib

import pytest

from repro.sim import (
    MergeProtocolError,
    Outbox,
    ShardedEngine,
    ShardMessage,
    ShardReport,
)
from repro.sim.rng import substream


class TokenZone:
    """Test zone: fires local ticks and passes rng-routed tokens around.

    Each tick does some local work (events) and occasionally sends a token
    to a peer; tokens bounce a fixed number of hops.  All randomness comes
    from ``substream(seed, zone_id)``, so behaviour is a pure function of
    (seed, zone count) — never of sharding.
    """

    def __init__(self, zone_id: int, n_zones: int, seed: int = 99,
                 ticks: int = 30, crash_at: float | None = None):
        self.zone_id = zone_id
        self.n_zones = n_zones
        self.rng = substream(seed, zone_id)
        self.ticks_left = ticks
        self.crash_at = crash_at
        self.tokens_seen = 0
        self.ticks_done = 0
        self._digest = hashlib.blake2b(digest_size=16)
        self.engine = None
        self.outbox = None

    def bind(self, engine, outbox) -> None:
        self.engine = engine
        self.outbox = outbox
        engine.at(float(self.zone_id % 3), self._tick)

    def _record(self, *parts) -> None:
        self._digest.update(
            ("|".join(repr(p) for p in parts) + ";").encode())

    def _tick(self) -> None:
        now = self.engine.now
        if self.crash_at is not None and now >= self.crash_at:
            raise RuntimeError(f"zone {self.zone_id} crashed at {now}")
        self.ticks_done += 1
        self._record("tick", now)
        if self.rng.random() < 0.5:
            dst = int(self.rng.integers(self.n_zones))
            if dst != self.zone_id:
                hops = int(self.rng.integers(1, 4))
                self.outbox.send(dst, "token", (self.zone_id, hops))
                self._record("send", dst, hops, now)
        self.ticks_left -= 1
        if self.ticks_left > 0:
            self.engine.at(now + 1.0, self._tick)

    def handle(self, msg: ShardMessage) -> None:
        self.tokens_seen += 1
        origin, hops = msg.payload
        self._record("recv", msg.src, msg.seq, origin, hops,
                     self.engine.now)
        if hops > 1:
            self.outbox.send(origin, "token", (self.zone_id, hops - 1))

    def quiescent(self) -> bool:
        return self.ticks_left <= 0

    def stats(self) -> dict:
        return {"zone": self.zone_id, "tokens_seen": self.tokens_seen}

    def fingerprint(self) -> dict:
        return {
            "zone": self.zone_id,
            "digest": self._digest.hexdigest(),
            "ticks": self.ticks_done,
            "tokens_seen": self.tokens_seen,
        }


def _factories(n_zones: int, **kw):
    return [functools.partial(TokenZone, z, n_zones, **kw)
            for z in range(n_zones)]


def _run(n_zones=8, n_shards=1, workers=0, **kw) -> ShardReport:
    eng = ShardedEngine(_factories(n_zones, **kw), n_shards=n_shards,
                        window=5.0, workers=workers)
    return eng.run()


class TestDeterministicMerge:
    def test_single_engine_reference_runs_to_quiescence(self):
        rep = _run(n_shards=1)
        assert rep.ok
        assert rep.total_events > 8 * 30  # ticks + token deliveries
        assert rep.msgs_routed > 0
        assert len(rep.zones) == 8

    def test_shard_count_invariance(self):
        ref = _run(n_shards=1)
        for k in (2, 4, 8):
            rep = _run(n_shards=k)
            assert rep.zones == ref.zones, f"K={k} diverged"
            assert rep.digest == ref.digest
            assert rep.total_events == ref.total_events
            assert rep.msgs_routed == ref.msgs_routed

    def test_same_shard_messages_still_cross_the_barrier(self):
        # zones packed onto ONE shard still talk via the barrier router,
        # which is why packing cannot change behaviour
        rep = _run(n_zones=4, n_shards=1)
        assert rep.msgs_routed > 0

    def test_report_digest_is_stable_across_runs(self):
        assert _run().digest == _run().digest

    def test_epoch_count_and_final_time(self):
        rep = _run(n_shards=4)
        assert rep.epochs >= 30 / 5  # >= ticks horizon / window
        assert rep.final_time == rep.epochs * 5.0


class TestWorkers:
    def test_mp_identical_to_serial(self):
        ref = _run(n_shards=4, workers=0)
        for w in (1, 2, 4):
            rep = _run(n_shards=4, workers=w)
            assert rep.ok
            assert rep.zones == ref.zones, f"workers={w} diverged"
            assert rep.total_events == ref.total_events

    def test_worker_crash_fences_its_shards(self):
        # zone 5 (shard 2 of 4) dies mid-run: its worker's shards fence,
        # survivors still drain to quiescence, report turns not-ok
        facs = _factories(8)
        facs[5] = functools.partial(TokenZone, 5, 8, crash_at=12.0)
        eng = ShardedEngine(facs, n_shards=4, window=5.0, workers=4)
        rep = eng.run(max_epochs=40)
        assert not rep.ok
        assert 2 in rep.fenced_shards
        # fenced zones publish no fingerprints; survivors all do
        fenced_zones = {z for s in rep.fenced_shards
                        for z in (2 * s, 2 * s + 1)}
        assert {z["zone"] for z in rep.zones} == set(range(8)) - fenced_zones
        assert rep.msgs_dropped_fenced >= 0
        assert eng.metrics.counter("shard_fenced_total").value >= 1

    def test_serial_crash_propagates(self):
        facs = _factories(4)
        facs[1] = functools.partial(TokenZone, 1, 4, crash_at=3.0)
        eng = ShardedEngine(facs, n_shards=2, window=5.0, workers=0)
        with pytest.raises(RuntimeError, match="crashed"):
            eng.run()


class TestProtocolValidation:
    def test_latency_below_window_rejected(self):
        box = Outbox(0, min_latency=5.0)
        with pytest.raises(MergeProtocolError):
            box.send(1, "x", (), delay=1.0)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(_factories(4), n_shards=5, window=1.0)
        with pytest.raises(ValueError):
            ShardedEngine(_factories(4), n_shards=0, window=1.0)
        with pytest.raises(ValueError):
            ShardedEngine(_factories(4), n_shards=2, window=0.0)

    def test_outbox_stamps_merge_key(self):
        box = Outbox(3, min_latency=1.0)
        box.now = lambda: 10.0
        a = box.send(0, "x", (1,))
        b = box.send(1, "y", (2,), delay=2.0)
        assert (a.src, a.seq, a.deliver_time) == (3, 0, 11.0)
        assert (b.src, b.seq, b.deliver_time) == (3, 1, 12.0)


class TestMetrics:
    def test_per_shard_metrics_recorded(self):
        eng = ShardedEngine(_factories(8), n_shards=4, window=5.0)
        eng.run()
        assert eng.metrics.counter("shard_msgs_total", kind="token").value > 0
        rates = [eng.metrics.gauge("shard_events_per_sec", shard=s).value
                 for s in range(4)]
        assert all(r > 0 for r in rates)
        assert eng.metrics.histogram("shard_barrier_wait_seconds").count > 0
