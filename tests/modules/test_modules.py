"""Unit + integration tests: environment modules (parser, load/unload,
DAC-governed visibility, staff publishing via smask_relax)."""

import pytest

from repro import LLSC, smask_relax
from repro.core import standard_cluster
from repro.kernel.errors import (
    Exists,
    InvalidArgument,
    NoSuchEntity,
)
from repro.modules import (
    ModuleFile,
    ModuleSystem,
    parse_modulefile,
    publish_module,
    render_modulefile,
)

ANACONDA = """#%Module
## anaconda 2024a - site python stack
setenv        CONDA_ROOT /software/anaconda/2024a
prepend-path  PATH /software/anaconda/2024a/bin
prepend-path  LD_LIBRARY_PATH /software/anaconda/2024a/lib
conflict      mamba
"""


class TestParser:
    def test_parse_roundtrip(self):
        mod = parse_modulefile("anaconda", "2024a", ANACONDA)
        assert mod.full_name == "anaconda/2024a"
        assert mod.setenv == {"CONDA_ROOT": "/software/anaconda/2024a"}
        assert mod.prepend_path["PATH"] == ("/software/anaconda/2024a/bin",)
        assert mod.conflicts == {"mamba"}
        assert "site python stack" in mod.description
        again = parse_modulefile("anaconda", "2024a",
                                 render_modulefile(mod))
        assert again == mod

    def test_missing_magic(self):
        with pytest.raises(InvalidArgument):
            parse_modulefile("x", "1", "setenv A B\n")

    def test_unknown_directive(self):
        with pytest.raises(InvalidArgument):
            parse_modulefile("x", "1", "#%Module\nappend-path PATH /x\n")

    def test_bad_arity(self):
        with pytest.raises(InvalidArgument):
            parse_modulefile("x", "1", "#%Module\nsetenv ONLYVAR\n")

    def test_comments_and_blanks_ignored(self):
        mod = parse_modulefile("x", "1",
                               "#%Module\n\n# a comment\nsetenv A B\n")
        assert mod.setenv == {"A": "B"}


@pytest.fixture
def modcluster():
    cluster = standard_cluster(LLSC)
    sam = smask_relax(cluster, cluster.login("sam"))
    node = sam.node
    for name, version, path in (("anaconda", "2023b", "/sw/ana/2023b"),
                                ("anaconda", "2024a", "/sw/ana/2024a"),
                                ("mamba", "1.5", "/sw/mamba/1.5")):
        mod = ModuleFile(name=name, version=version,
                         prepend_path={"PATH": (f"{path}/bin",)},
                         setenv={f"{name.upper()}_ROOT": path},
                         conflicts=frozenset({"mamba"})
                         if name == "anaconda" else frozenset({"anaconda"}))
        publish_module(node, sam.creds, "/scratch/modulefiles", mod)
    return cluster


class TestLoadUnload:
    def test_avail_lists_published(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        assert ms.avail(alice.process) == [
            "anaconda/2023b", "anaconda/2024a", "mamba/1.5"]

    def test_load_sets_environment(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        ms.load(alice.process, "anaconda/2024a")
        env = alice.process.environ
        assert env["ANACONDA_ROOT"] == "/sw/ana/2024a"
        assert env["PATH"].startswith("/sw/ana/2024a/bin")
        assert ms.loaded(alice.process) == ["anaconda/2024a"]

    def test_unversioned_load_picks_highest(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        mod = ms.load(alice.process, "anaconda")
        assert mod.version == "2024a"

    def test_double_load_same_module_rejected(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        ms.load(alice.process, "anaconda/2024a")
        with pytest.raises(Exists):
            ms.load(alice.process, "anaconda/2023b")

    def test_conflict_rejected_both_directions(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        ms.load(alice.process, "anaconda/2024a")
        with pytest.raises(InvalidArgument):
            ms.load(alice.process, "mamba/1.5")

    def test_unload_restores_environment(self, modcluster):
        alice = modcluster.login("alice")
        alice.process.environ["PATH"] = "/usr/bin"
        ms = ModuleSystem(alice.node)
        ms.load(alice.process, "anaconda/2024a")
        ms.unload(alice.process, "anaconda")
        env = alice.process.environ
        assert env["PATH"] == "/usr/bin"
        assert "ANACONDA_ROOT" not in env
        assert ms.loaded(alice.process) == []

    def test_unload_not_loaded(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        with pytest.raises(NoSuchEntity):
            ms.unload(alice.process, "anaconda")

    def test_load_then_load_other_tool(self, modcluster):
        alice = modcluster.login("alice")
        ms = ModuleSystem(alice.node)
        sam = smask_relax(modcluster, modcluster.login("sam"))
        publish_module(sam.node, sam.creds, "/scratch/modulefiles",
                       ModuleFile(name="gcc", version="13.2",
                                  prepend_path={"PATH": ("/sw/gcc/bin",)}))
        ms.load(alice.process, "anaconda/2024a")
        ms.load(alice.process, "gcc")
        assert alice.process.environ["PATH"].split(":")[:2] == [
            "/sw/gcc/bin", "/sw/ana/2024a/bin"]


class TestDacVisibility:
    def test_unpublished_module_invisible_to_strangers(self, modcluster):
        """A module in carol's project dir is visible to dave (member via
        setgid group dir) but not to alice."""
        carol = modcluster.login("carol").sg("fusion")
        publish_module(carol.node, carol.creds,
                       "/home/proj/fusion/modulefiles",
                       ModuleFile(name="plasma-tools", version="0.1",
                                  prepend_path={"PATH": ("/proj/bin",)}),
                       mode=0o640)
        ms = ModuleSystem(carol.node,
                          modulepath=("/scratch/modulefiles",
                                      "/home/proj/fusion/modulefiles"))
        dave = modcluster.login("dave")
        assert "plasma-tools/0.1" in ms.avail(dave.process)
        alice = modcluster.login("alice")
        assert "plasma-tools/0.1" not in ms.avail(alice.process)
        with pytest.raises(NoSuchEntity):
            ms.load(alice.process, "plasma-tools")

    def test_plain_user_cannot_publish_world_readable(self, modcluster):
        """Without smask_relax, a user's 'published' module carries no
        world bits, so other users never see it (the smask regime extends
        to software publishing exactly as Section IV-C intends)."""
        alice = modcluster.login("alice")
        alice.sys.mkdir("/home/alice/modulefiles", mode=0o755)
        publish_module(alice.node, alice.creds, "/home/alice/modulefiles",
                       ModuleFile(name="mytool", version="0.0.1"))
        ms = ModuleSystem(alice.node,
                          modulepath=("/home/alice/modulefiles",))
        assert ms.avail(alice.process) == ["mytool/0.0.1"]
        bob = modcluster.login("bob")
        assert ms.avail(bob.process) == []

    def test_module_survives_across_nodes(self, modcluster):
        """Modulefiles live on the shared FS: published once, loadable on
        every node."""
        job = modcluster.submit("alice", duration=100.0)
        modcluster.run(until=1.0)
        shell = modcluster.job_session(job)
        ms = ModuleSystem(shell.node)
        ms.load(shell.process, "anaconda/2024a")
        assert shell.process.environ["ANACONDA_ROOT"] == "/sw/ana/2024a"
