"""Unit tests: sbatch/scancel/scontrol command-line front-end."""

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import InvalidArgument
from repro.sched import JobState
from repro.shell.slurm_cli import (
    parse_array,
    parse_mem,
    parse_time,
    sbatch,
    scancel,
    scontrol_show_job,
)


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=2, n_debug=1, gpus_per_node=2,
                         users=("alice", "bob"), staff=("sam",))


class TestParsers:
    @pytest.mark.parametrize("spec,want", [
        ("30", 1800.0), ("10:30", 630.0), ("2:10:30", 7830.0),
        ("1-2:10:30", 94230.0), ("1-12", 129600.0), ("1-12:30", 131400.0),
        ("0-0:0:59", 59.0),
    ])
    def test_time_specs(self, spec, want):
        assert parse_time(spec) == want

    def test_bad_time(self):
        with pytest.raises(InvalidArgument):
            parse_time("abc")

    @pytest.mark.parametrize("spec,want", [
        ("500", 500), ("500M", 500), ("2G", 2048), ("2g", 2048),
    ])
    def test_mem_specs(self, spec, want):
        assert parse_mem(spec) == want

    def test_bad_mem(self):
        with pytest.raises(InvalidArgument):
            parse_mem("2T")

    @pytest.mark.parametrize("spec,want", [
        ("0-4", [0, 1, 2, 3, 4]), ("1,3,7", [1, 3, 7]),
        ("0-3%2", [0, 1, 2, 3]), ("5", [5]),
    ])
    def test_array_specs(self, spec, want):
        assert parse_array(spec) == want

    def test_bad_array_range(self):
        with pytest.raises(InvalidArgument):
            parse_array("5-1")


class TestSbatch:
    def test_full_option_line(self, cluster):
        alice = cluster.login("alice")
        out, jobs = sbatch(
            alice,
            "-J climate -n 4 -c 2 --mem-per-cpu 2G --gres=gpu:1 "
            "-t 1:00:00 ./model --resolution fine")
        job = jobs[0]
        assert out == f"Submitted batch job {job.job_id}"
        assert job.spec.name == "climate"
        assert job.spec.ntasks == 4
        assert job.spec.cores_per_task == 2
        assert job.spec.mem_mb_per_task == 2048
        assert job.spec.gpus_per_task == 1
        assert job.duration == 3600.0
        assert job.spec.command == "./model --resolution fine"
        cluster.run()
        assert job.state is JobState.COMPLETED

    def test_equals_style_options(self, cluster):
        alice = cluster.login("alice")
        _, jobs = sbatch(alice, "--job-name=x --ntasks=2 --time=30 ./a")
        assert jobs[0].spec.name == "x"
        assert jobs[0].spec.ntasks == 2
        assert jobs[0].duration == 1800.0

    def test_partition_and_limit(self, cluster):
        alice = cluster.login("alice")
        with pytest.raises(InvalidArgument):
            sbatch(alice, "-p debug -t 2:00:00 ./long")  # over debug limit
        _, jobs = sbatch(alice, "-p debug -t 30 ./quick")
        assert jobs[0].spec.partition == "debug"

    def test_array_submission(self, cluster):
        alice = cluster.login("alice")
        out, jobs = sbatch(alice, "--array=0-3 -t 10 ./sweep.sh")
        assert len(jobs) == 4
        assert "array of 4" in out
        assert [j.array_index for j in jobs] == [0, 1, 2, 3]

    def test_unsupported_option(self, cluster):
        alice = cluster.login("alice")
        with pytest.raises(InvalidArgument):
            sbatch(alice, "--begin=now+1hour ./x")

    def test_exclusive_flag(self, cluster):
        alice = cluster.login("alice")
        _, jobs = sbatch(alice, "--exclusive -t 10 ./solo")
        assert jobs[0].spec.exclusive


class TestScancelScontrol:
    def test_owner_cancel(self, cluster):
        alice = cluster.login("alice")
        _, jobs = sbatch(alice, "-t 60 ./x")
        cluster.run(until=1.0)
        assert scancel(alice, jobs[0].job_id) == ""
        assert jobs[0].state is JobState.CANCELLED

    def test_foreign_cancel_gets_invalid_id(self, cluster):
        """PrivateData: the stranger is told the id doesn't exist, not
        that it's someone else's."""
        alice = cluster.login("alice")
        bob = cluster.login("bob")
        _, jobs = sbatch(alice, "-t 60 ./x")
        cluster.run(until=1.0)
        out = scancel(bob, jobs[0].job_id)
        assert "Invalid job id" in out
        assert jobs[0].state is JobState.RUNNING

    def test_scontrol_own_job(self, cluster):
        alice = cluster.login("alice")
        _, jobs = sbatch(alice, "-J secret-run -n 2 -t 60 ./go")
        cluster.run(until=1.0)
        out = scontrol_show_job(alice, jobs[0].job_id)
        assert "JobName=secret-run" in out
        assert "JobState=RUNNING" in out
        assert "NumTasks=2" in out
        assert f"StdOut=/home/alice/slurm-{jobs[0].job_id}.out" in out

    def test_scontrol_foreign_job_hidden(self, cluster):
        alice = cluster.login("alice")
        bob = cluster.login("bob")
        _, jobs = sbatch(alice, "-J secret-run -t 60 ./go")
        cluster.run(until=1.0)
        out = scontrol_show_job(bob, jobs[0].job_id)
        assert "Invalid job id" in out
        assert "secret-run" not in out

    def test_scontrol_operator_sees_all(self, cluster):
        alice = cluster.login("alice")
        sam = cluster.login("sam")
        _, jobs = sbatch(alice, "-J audit-me -t 60 ./go")
        cluster.run(until=1.0)
        out = scontrol_show_job(sam, jobs[0].job_id)
        assert "JobName=audit-me" in out

    def test_scontrol_array_fields(self, cluster):
        alice = cluster.login("alice")
        _, jobs = sbatch(alice, "--array=0-1 -t 10 ./s")
        out = scontrol_show_job(alice, jobs[1].job_id)
        assert f"ArrayJobId={jobs[1].array_id}" in out
        assert "ArrayTaskId=1" in out


class TestScontrolShowNode:
    def test_states_and_capacity(self, cluster):
        from repro.shell import scontrol_show_node
        alice = cluster.login("alice")
        out = scontrol_show_node(alice, "c1")
        assert "NodeName=c1 State=IDLE" in out
        assert "CPUTot=16 CPUAlloc=0" in out
        sbatch(alice, "-n 4 -t 60 ./x")
        cluster.run(until=1.0)
        busy = [n for n in ("c1", "c2")
                if "MIXED" in scontrol_show_node(alice, n)
                or "ALLOCATED" in scontrol_show_node(alice, n)]
        assert busy
        cluster.scheduler.drain("c2")
        assert "State=DRAIN" in scontrol_show_node(alice, "c2")
        cluster.scheduler.fail_node("c1")
        assert "State=DOWN" in scontrol_show_node(alice, "c1")

    def test_alloc_users_gated(self, cluster):
        from repro.shell import scontrol_show_node
        alice = cluster.login("alice")
        sbatch(alice, "-n 2 -t 60 ./x")
        cluster.run(until=1.0)
        node = cluster.scheduler.running()[0].nodes[0]
        assert "AllocUsers" not in scontrol_show_node(
            cluster.login("bob"), node)
        sam_out = scontrol_show_node(cluster.login("sam"), node)
        assert "AllocUsers=alice" in sam_out

    def test_unknown_node(self, cluster):
        from repro.shell import scontrol_show_node
        assert "not found" in scontrol_show_node(cluster.login("alice"),
                                                 "zz9")
