"""Unit tests: shell command rendering (credentials-respecting output)."""

import pytest

from repro import Cluster, LLSC
from repro.kernel import AclEntry
from repro.kernel.errors import AccessDenied
from repro.modules import ModuleFile, ModuleSystem, publish_module
from repro.shell import (
    getfacl_cmd,
    id_cmd,
    ls_l,
    module_avail_cmd,
    ps_aux,
    sacct_cmd,
    sinfo_cmd,
    squeue_cmd,
)


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=2, n_debug=1,
                         users=("alice", "bob", "carol", "dave"),
                         staff=("sam",),
                         projects={"fusion": ("carol", "dave")})


class TestLs:
    def test_ls_l_directory(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/data.csv", mode=0o640, data=b"1,2")
        alice.sys.mkdir("/home/alice/results", mode=0o750)
        out = ls_l(alice, "/home/alice")
        assert "-rw-r-----" in out
        assert "drwxr-x---" in out
        assert "alice" in out and "data.csv" in out

    def test_ls_l_single_file(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/f", mode=0o600, data=b"abcd")
        out = ls_l(alice, "/home/alice/f")
        assert out.startswith("-rw-------")
        assert "       4 " in out  # size column

    def test_ls_shows_smask_stripped_mode(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/f", mode=0o666)
        alice.sys.chmod("/home/alice/f", 0o777)
        out = ls_l(alice, "/home/alice/f")
        assert out.startswith("-rwxrwx---")  # world bits visibly absent

    def test_ls_special_bits(self, cluster):
        alice = cluster.login("alice")
        out = ls_l(alice, "/tmp")
        # /tmp listing works; check the sticky rendering via stat of /tmp
        row = ls_l(alice, "/home")  # root-owned
        assert row  # sanity

    def test_ls_denied_dir(self, cluster):
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            ls_l(bob, "/home/alice")

    def test_symlink_rendered_with_l(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/t", mode=0o600)
        alice.sys.symlink("t", "/home/alice/lnk")
        out = ls_l(alice, "/home/alice")
        assert any(line.startswith("lrwx") for line in out.splitlines())


class TestPsId:
    def test_ps_aux_own_only(self, cluster):
        cluster.login("alice").sys.spawn_child(["train.py"])
        bob = cluster.login("bob")
        bob.sys.spawn_child(["bob-tool"])
        out = ps_aux(bob)
        assert "bob-tool" in out
        assert "train.py" not in out
        assert out.splitlines()[0].startswith("USER")

    def test_id_output(self, cluster):
        dave = cluster.login("dave")
        out = id_cmd(dave)
        assert f"uid={dave.user.uid}(dave)" in out
        assert "fusion" in out  # supplementary group listed

    def test_id_after_sg(self, cluster):
        carol = cluster.login("carol").sg("fusion")
        assert "gid=" in id_cmd(carol)
        fusion_gid = cluster.userdb.group("fusion").gid
        assert f"gid={fusion_gid}(fusion)" in id_cmd(carol)


class TestGetfacl:
    def test_basic_rendering(self, cluster):
        carol = cluster.login("carol")
        carol.sys.create("/home/carol/f", mode=0o640)
        fusion = cluster.userdb.group("fusion").gid
        carol.sys.setfacl("/home/carol/f", AclEntry("group", fusion, 5))
        out = getfacl_cmd(carol, "/home/carol/f")
        assert "# owner: carol" in out
        assert "user::rw-" in out
        assert "group:fusion:r-x" in out
        assert "other::---" in out


class TestSchedulerCommands:
    def test_squeue_private(self, cluster):
        cluster.submit("alice", name="mysim", duration=100.0)
        cluster.submit("bob", name="bobsim", duration=100.0)
        cluster.run(until=1.0)
        out = squeue_cmd(cluster.login("alice"))
        assert "mysim" in out and "bobsim" not in out
        assert "normal" in out

    def test_sacct_private(self, cluster):
        cluster.submit("alice", name="done1", duration=5.0)
        cluster.submit("bob", name="done2", duration=5.0)
        cluster.run(until=20.0)
        out = sacct_cmd(cluster.login("bob"))
        assert "done2" in out and "done1" not in out
        assert "COMPLETED" in out

    def test_sinfo_lists_partitions(self, cluster):
        out = sinfo_cmd(cluster)
        assert "normal" in out and "debug" in out
        assert "whole_node_user" in out and "shared" in out


class TestModuleAvail:
    def test_rendering(self, cluster):
        from repro import smask_relax
        sam = smask_relax(cluster, cluster.login("sam"))
        for v in ("1.0", "2.0"):
            publish_module(sam.node, sam.creds, "/scratch/modulefiles",
                           ModuleFile(name="gcc", version=v))
        alice = cluster.login("alice")
        out = module_avail_cmd(alice, ModuleSystem(alice.node))
        assert "gcc/1.0" in out and "gcc/2.0" in out

    def test_empty(self, cluster):
        alice = cluster.login("alice")
        out = module_avail_cmd(alice, ModuleSystem(alice.node))
        assert out == "No modules available."


class TestSreportCmd:
    def test_gated_rendering(self, cluster):
        from repro.shell import sreport_cmd
        cluster.submit("alice", ntasks=4, duration=100.0)
        cluster.submit("bob", ntasks=1, duration=100.0)
        cluster.run(until=600.0)
        out = sreport_cmd(cluster.login("alice"), t_end=600.0)
        assert "alice" in out and "bob" not in out
        sam_out = sreport_cmd(cluster.login("sam"), t_end=600.0)
        assert "alice" in sam_out and "bob" in sam_out
        assert "400" in sam_out  # alice's 4x100 core-seconds
