"""Tests for the control-plane persistence layer (repro.persist)."""
