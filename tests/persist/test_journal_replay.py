"""Journal semantics: envelope, cadence, vocabulary, replayability.

Every mutating control-plane operation must land exactly one versioned
record; every recorded op must have a replay handler (a record replay
cannot apply is a record recovery silently loses); and the synchronous
snapshot cadence must bound the replay suffix.
"""

from __future__ import annotations

import pytest

from repro.persist import (
    JOURNAL_STREAM,
    PERSIST_SCHEMA_VERSION,
    Journal,
    MemoryRunStore,
)
from repro.persist.recovery import _REPLAY
from repro.sched.health import attach_health
from repro.sched.jobs import JobState

from tests.persist.conftest import build_cluster, submit_batch


class TestEnvelope:
    def test_every_record_carries_the_envelope(self, persisted_cluster):
        submit_batch(persisted_cluster, 4)
        persisted_cluster.engine.run()
        records = persisted_cluster.persist.journal.records()
        assert records, "workload journaled nothing"
        for i, rec in enumerate(records):
            assert rec["v"] == PERSIST_SCHEMA_VERSION
            assert rec["seq"] == i          # dense, gap-free
            assert isinstance(rec["t"], float)
            assert rec["op"] in _REPLAY, \
                f"op {rec['op']!r} has no replay handler"

    def test_virtual_time_monotone(self, persisted_cluster):
        submit_batch(persisted_cluster, 4)
        persisted_cluster.engine.run()
        times = [r["t"] for r in persisted_cluster.persist.journal.records()]
        assert times == sorted(times)

    def test_snapshot_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Journal(MemoryRunStore(), clock=lambda: 0.0, snapshot_every=0)


class TestOpVocabulary:
    def test_job_lifecycle_ops_recorded_in_order(self, persisted_cluster):
        submit_batch(persisted_cluster, 1)
        persisted_cluster.engine.run()
        ops = [r["op"] for r in persisted_cluster.persist.journal.records()
               if r.get("job_id") == 1]
        assert ops == ["submit", "arrive", "dispatch", "finish"]

    def test_cancel_recorded(self, persisted_cluster):
        job = persisted_cluster.submit("alice", name="doomed", ntasks=1,
                                       duration=50.0, at=100.0)
        persisted_cluster.scheduler.cancel(
            job, persisted_cluster.user("alice"))
        ops = [r["op"] for r in persisted_cluster.persist.journal.records()
               if r.get("job_id") == job.job_id]
        assert ops == ["submit", "cancel"]

    def test_account_mutations_carry_generation(self, persisted_cluster):
        db = persisted_cluster.userdb
        eve = db.add_user("eve")
        grp = db.group("fusion")
        steward = db._users_by_uid[next(iter(grp.stewards))]
        db.add_to_project(grp, eve, approver=steward)
        db.remove_from_project(grp, eve, approver=steward)
        tail = persisted_cluster.persist.journal.records()[-3:]
        assert [r["op"] for r in tail] == ["user", "member_add",
                                           "member_del"]
        gens = [r["gen"] for r in tail]
        assert gens == sorted(gens)
        assert gens[-1] == db.generation

    def test_node_admin_and_health_ops(self):
        cluster = build_cluster(requeue=True)
        attach_health(cluster).start()
        for i in range(6):  # exclusive → one per node, running at fence
            cluster.submit("alice" if i % 2 else "bob", name=f"j{i}",
                           ntasks=1, duration=60.0, exclusive=True,
                           at=i * 0.5)
        cluster.chaos().crash_node("c2", for_=40.0)
        cluster.engine.run()
        ops = {r["op"] for r in cluster.persist.journal.records()}
        assert {"fence", "resume", "remediate", "requeue",
                "hb", "residue", "residue_clear",
                "tick", "tick_fired", "unreach", "unreach_clear"} <= ops

    def test_gpu_custody_ops(self):
        cluster = build_cluster(gpus=2)
        submit_batch(cluster, 3, gpus_per_task=1)
        cluster.engine.run()
        records = cluster.persist.journal.records()
        grants = [r for r in records if r["op"] == "gpu_grant"]
        scrubs = [r for r in records if r["op"] == "gpu_scrub"]
        assert len(grants) == 3 and len(scrubs) == 3
        assert {(g["job_id"], g["node"]) for g in grants} \
            == {(s["job_id"], s["node"]) for s in scrubs}


class TestSnapshotCadence:
    def test_periodic_snapshot_bounds_the_replay_suffix(self):
        cluster = build_cluster(snapshot_every=10)
        submit_batch(cluster, 10)
        cluster.engine.run()
        journal = cluster.persist.journal
        snap = cluster.persist.store.get("snapshot")
        assert journal.seq > 10, "workload too small to trigger a snapshot"
        assert snap["seq"] >= 10          # genesis was superseded
        assert journal.seq - snap["seq"] < 10

    def test_snapshot_digest_stable_across_identical_runs(self):
        digests = []
        for _ in range(2):
            cluster = build_cluster(snapshot_every=10)
            submit_batch(cluster, 10)
            cluster.engine.run()
            digests.append(cluster.persist.store.get("snapshot")["digest"])
        assert digests[0] == digests[1]


class TestReplayRebuild:
    def test_replay_rebuilds_job_tables(self):
        """Crash mid-run: replay must land jobs in their exact pre-crash
        states, with running jobs linked to live allocations."""
        cluster = build_cluster()
        submit_batch(cluster, 8)
        for _ in range(12):
            cluster.engine.step()
        pre = {j.job_id: j.state for j in cluster.scheduler.jobs.values()}
        pre_running = dict(cluster.scheduler._running)
        cluster.chaos().crash_scheduler()
        assert cluster.scheduler.jobs == {}
        report = cluster.recover()
        assert report.identical
        sched = cluster.scheduler
        assert {j.job_id: j.state for j in sched.jobs.values()} == pre
        assert set(sched._running) == set(pre_running)
        for jid, job in sched._running.items():
            node = sched.nodes[job.allocations[0].node]
            # re-linked to the *surviving* allocation object, not a copy
            assert job.allocations[0] is node.allocations[jid]

    def test_replayed_ids_never_collide(self):
        cluster = build_cluster()
        submit_batch(cluster, 5)
        cluster.engine.run()
        cluster.chaos().crash_scheduler()
        cluster.recover()
        new = cluster.submit("alice", name="after", ntasks=1, duration=1.0)
        assert new.job_id == 6
        cluster.engine.run()
        assert new.state is JobState.COMPLETED
