"""Crash/recover semantics: wipe scope, digest identity, forensics.

The crash model is Slurm-realistic — ``slurmctld`` dying does not power
off the fleet.  These tests pin the wipe scope (control plane gone, data
plane untouched), the rebuild (digest-identical, continues to the
reference end state), the guard rails (no journal → no crash; no crash →
no recover), and the forensic contract (RECOVERY audit markers with
``chain()`` unbroken across the restart, flight dumps on both sides).
"""

from __future__ import annotations

import pytest

from repro.obs import attach_forensics
from repro.oracle import attach_oracle
from repro.persist import JsonlRunStore, attach_persistence, state_digest
from repro.persist.recovery import crash_control_plane
from repro.sched.health import attach_health
from repro.sched.jobs import JobState

from tests.persist.conftest import build_cluster, submit_batch


def _run_reference(**kw):
    cluster = build_cluster(**kw)
    submit_batch(cluster, 8)
    cluster.engine.run()
    return state_digest(cluster)


class TestCrashScope:
    def test_crash_without_spine_refused(self):
        from repro.core.cluster import Cluster
        from repro.core.config import SeparationConfig
        bare = Cluster.build(SeparationConfig(), n_compute=2,
                             users=("alice",))
        with pytest.raises(RuntimeError, match="attach_persistence"):
            crash_control_plane(bare)

    def test_double_crash_refused(self, persisted_cluster):
        crash_control_plane(persisted_cluster)
        with pytest.raises(RuntimeError, match="already crashed"):
            crash_control_plane(persisted_cluster)

    def test_recover_without_crash_refused(self, persisted_cluster):
        with pytest.raises(RuntimeError, match="not crashed"):
            persisted_cluster.recover()

    def test_submit_to_dead_control_plane_refused(self, persisted_cluster):
        crash_control_plane(persisted_cluster)
        with pytest.raises(RuntimeError):
            persisted_cluster.submit("alice", name="x", duration=1.0)

    def test_data_plane_survives_the_crash(self):
        cluster = build_cluster(gpus=2)
        submit_batch(cluster, 6, gpus_per_task=1)
        for _ in range(10):
            cluster.engine.step()
        running = dict(cluster.scheduler._running)
        assert running, "nothing running at the crash point"
        allocs = {jid: j.allocations[0].node for jid, j in running.items()}
        crash_control_plane(cluster)
        sched = cluster.scheduler
        assert sched.jobs == {} and sched._running == {}
        assert sched.accounting.records_total == 0
        for jid, node_name in allocs.items():
            node = sched.nodes[node_name]
            assert jid in node.allocations        # allocation survived
            assert any(p.job_id == jid
                       for p in node.node.procs.processes())


class TestRecoveryRebuild:
    def test_mid_run_crash_recovers_to_reference_digest(self):
        reference = _run_reference()
        cluster = build_cluster()
        submit_batch(cluster, 8)
        for _ in range(9):
            cluster.engine.step()
        cluster.chaos().crash_scheduler()
        report = cluster.recover()
        assert report.identical
        assert report.digest_before == report.digest_after
        cluster.engine.run()
        assert state_digest(cluster) == reference

    def test_report_facts(self):
        cluster = build_cluster(snapshot_every=10)
        submit_batch(cluster, 8)
        for _ in range(25):
            cluster.engine.step()
        pre_seq = cluster.persist.journal.seq
        cluster.chaos().crash_scheduler()
        report = cluster.recover()
        assert report.journal_seq == pre_seq
        assert report.snapshot_seq >= 10
        assert report.replayed == pre_seq - report.snapshot_seq
        assert report.generation == cluster.userdb.generation
        assert report.duration_s > 0

    def test_generation_bumped_strictly_past_precrash(self):
        cluster = build_cluster()
        gen_before = cluster.userdb.generation
        cluster.chaos().crash_scheduler()
        cluster.recover()
        assert cluster.userdb.generation > gen_before

    def test_chaos_auto_recovery_via_for_(self):
        """crash_scheduler(for_=...) re-arms recovery on the engine; the
        clamped timers still complete every job."""
        cluster = build_cluster()
        submit_batch(cluster, 8)
        for _ in range(9):
            cluster.engine.step()
        cluster.chaos().crash_scheduler(for_=5.0)
        assert cluster.scheduler.crashed
        cluster.engine.run()
        assert not cluster.scheduler.crashed
        assert all(j.state is JobState.COMPLETED
                   for j in cluster.scheduler.jobs.values())

    def test_recovery_with_health_and_faults(self):
        """Recovery in the middle of a node-failure episode: the rebuilt
        health lifecycle keeps the fenced node quarantined (I7/I8)."""
        cluster = build_cluster(requeue=True)
        attach_health(cluster).start()
        attach_oracle(cluster, sampling_rate=1.0, fail_fast=True)
        for i in range(6):
            cluster.submit("alice" if i % 2 else "bob", name=f"j{i}",
                           ntasks=1, duration=60.0, exclusive=True,
                           at=i * 0.5)
        cluster.chaos().crash_node("c2")       # never reboots
        for _ in range(40):
            cluster.engine.step()
        assert cluster.scheduler.nodes["c2"].fenced
        cluster.chaos().crash_scheduler()
        report = cluster.recover()
        assert report.identical
        node = cluster.scheduler.nodes["c2"]
        assert node.fenced and node.needs_remediation
        assert cluster.health.state_of("c2").value == "down"


class TestDurableRestart:
    def test_recovery_from_jsonl_store(self, tmp_path):
        """The JSONL backend carries a run across a cold restart: crash,
        rebuild from the on-disk journal, continue to the reference end."""
        reference = _run_reference()
        store = JsonlRunStore(str(tmp_path / "run"))
        cluster = build_cluster(store=store)
        submit_batch(cluster, 8)
        for _ in range(12):
            cluster.engine.step()
        cluster.chaos().crash_scheduler()
        report = cluster.recover()
        assert report.identical
        cluster.engine.run()
        assert state_digest(cluster) == reference

    def test_torn_tail_recovery_not_fatal(self, tmp_path):
        """A crash mid-append leaves a torn final record; recovery drops
        it and rebuilds from the intact prefix."""
        store = JsonlRunStore(str(tmp_path / "run"))
        cluster = build_cluster(store=store)
        submit_batch(cluster, 8)
        for _ in range(12):
            cluster.engine.step()
        with open(tmp_path / "run" / "journal.jsonl", "a",
                  encoding="utf-8") as fh:
            fh.write('{"v":1,"seq":999,"op":"disp')   # torn write
        crash_control_plane(cluster)
        report = cluster.recover()      # digest may legitimately differ:
        assert report.journal_seq >= 0  # the torn record was post-digest
        assert store.dropped_tails.get("journal", 0) >= 0


class TestForensicContinuity:
    def _crashed_recovered(self):
        cluster = build_cluster()
        attach_forensics(cluster)
        submit_batch(cluster, 6)
        for _ in range(9):
            cluster.engine.step()
        cluster.chaos().crash_scheduler()
        report = cluster.recover()
        return cluster, report

    def test_recovery_markers_in_audit_trail(self):
        cluster, report = self._crashed_recovered()
        marks = cluster.forensics.audit.query(mechanism="recovery")
        assert [m.action for m in marks] == ["crash", "restore"]
        assert "digest intact" in marks[1].detail
        assert str(report.replayed) in marks[1].detail

    def test_flight_dumps_on_both_sides(self):
        cluster, _ = self._crashed_recovered()
        flight = cluster.forensics.flight
        assert len(flight.dumps_for("sched-crash")) == 1
        assert len(flight.dumps_for("recovery")) == 1

    def test_chain_attribution_unbroken_across_restart(self):
        """A job's causal chain queried *after* recovery still reaches
        back to its pre-crash submit record."""
        cluster, _ = self._crashed_recovered()
        cluster.engine.run()
        trail = cluster.forensics.audit
        finished = [r for r in trail.query(job_id=1)
                    if r.action in ("finish", "complete", "end")]
        anchor = (finished or trail.by_job(1))[-1]
        chain = trail.chain(anchor)
        assert any(r.action == "submit" for r in chain), \
            "recovery broke the causal chain to the pre-crash submit"
