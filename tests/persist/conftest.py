"""Fixtures for the persistence suite: a small persisted cluster."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.config import SeparationConfig
from repro.persist import attach_persistence


def build_cluster(*, nodes: int = 4, gpus: int = 0, store=None,
                  snapshot_every: int = 256, requeue: bool = False):
    """A small cluster with the persistence spine armed."""
    cluster = Cluster.build(
        SeparationConfig(), n_compute=nodes, gpus_per_node=gpus,
        users=("alice", "bob"), projects={"fusion": ("alice", "bob")})
    if requeue:
        cluster.scheduler.config.requeue_on_node_fail = True
    attach_persistence(cluster, store, snapshot_every=snapshot_every)
    return cluster


def submit_batch(cluster, n: int = 8, *, gpus_per_task: int = 0):
    """Deterministic staggered-arrival workload."""
    for i in range(n):
        cluster.submit(
            "alice" if i % 2 else "bob", name=f"j{i}", ntasks=1,
            gpus_per_task=gpus_per_task,
            duration=9.5 + (i % 5) * 2.25 + i * 0.01, at=i * 0.5)


@pytest.fixture
def persisted_cluster():
    return build_cluster()
