"""RunStore backend contract: append order, CRC guard, torn tails.

The JSONL backend is the crash-survival story: a control plane dying
mid-``write`` leaves a torn final line, and recovery must shrug that off
(drop it, replay the intact prefix).  Damage anywhere *earlier* is bit
rot or tampering — replaying past it would rebuild a silently wrong
control plane, so it must refuse loudly instead.
"""

from __future__ import annotations

import pytest

from repro.persist import CorruptJournal, JsonlRunStore, MemoryRunStore


@pytest.fixture(params=["memory", "jsonl"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryRunStore()
    return JsonlRunStore(str(tmp_path / "run"))


class TestRunStoreContract:
    def test_append_read_order(self, store):
        for i in range(5):
            assert store.append("j", {"seq": i}) == i + 1
        assert [r["seq"] for r in store.read("j")] == [0, 1, 2, 3, 4]
        assert [r["seq"] for r in store.read("j", start=3)] == [3, 4]
        assert store.length("j") == 5

    def test_unknown_stream_is_empty(self, store):
        assert store.read("nope") == []
        assert store.length("nope") == 0

    def test_read_returns_copies(self, store):
        store.append("j", {"op": "x", "rows": [1, 2]})
        store.read("j")[0]["op"] = "mutated"
        assert store.read("j")[0]["op"] == "x"

    def test_put_get_roundtrip(self, store):
        assert store.get("snap") is None
        store.put("snap", {"seq": 7, "nodes": ["c1", "c2"]})
        assert store.get("snap") == {"seq": 7, "nodes": ["c1", "c2"]}
        store.put("snap", {"seq": 9, "nodes": []})  # last write wins
        assert store.get("snap") == {"seq": 9, "nodes": []}


class TestJsonlCrashArtifacts:
    def test_reload_from_disk(self, tmp_path):
        root = str(tmp_path / "run")
        first = JsonlRunStore(root)
        for i in range(3):
            first.append("j", {"seq": i})
        first.put("snap", {"seq": 2})
        again = JsonlRunStore(root)  # fresh process, same directory
        assert [r["seq"] for r in again.read("j")] == [0, 1, 2]
        assert again.get("snap") == {"seq": 2}

    def test_torn_final_record_dropped_not_fatal(self, tmp_path):
        root = tmp_path / "run"
        store = JsonlRunStore(str(root))
        store.append("j", {"seq": 0})
        store.append("j", {"seq": 1})
        with open(root / "j.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "op": "disp')  # crash mid-write
        again = JsonlRunStore(str(root))
        assert [r["seq"] for r in again.read("j")] == [0, 1]
        assert again.length("j") == 2
        assert again.dropped_tails["j"] == 1

    def test_final_record_crc_mismatch_also_dropped(self, tmp_path):
        root = tmp_path / "run"
        store = JsonlRunStore(str(root))
        store.append("j", {"seq": 0})
        with open(root / "j.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"seq":1}|deadbeef\n')
        again = JsonlRunStore(str(root))
        assert [r["seq"] for r in again.read("j")] == [0]
        assert again.dropped_tails["j"] == 1

    def test_mid_stream_damage_raises(self, tmp_path):
        root = tmp_path / "run"
        path = root / "j.jsonl"
        store = JsonlRunStore(str(root))
        for i in range(3):
            store.append("j", {"seq": i})
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = '{"seq":1,"op":"evil"}|00000000\n'
        path.write_text("".join(lines))
        with pytest.raises(CorruptJournal):
            JsonlRunStore(str(root)).read("j")

    def test_torn_tail_truncated_then_appendable(self, tmp_path):
        """Loading past a torn tail truncates the file to the intact
        prefix, so appends from the recovered process never leave the
        torn line stranded mid-stream for the next reader."""
        root = tmp_path / "run"
        store = JsonlRunStore(str(root))
        store.append("j", {"seq": 0})
        with open(root / "j.jsonl", "a", encoding="utf-8") as fh:
            fh.write("torn")
        again = JsonlRunStore(str(root))
        assert again.length("j") == 1
        again.append("j", {"seq": 1})
        assert [r["seq"] for r in JsonlRunStore(str(root)).read("j")] \
            == [0, 1]

    def test_snapshot_put_is_atomic(self, tmp_path):
        """A crash between tmp-write and rename leaves the previous good
        snapshot in place — get() never sees the half-written one."""
        root = tmp_path / "run"
        store = JsonlRunStore(str(root))
        store.put("snap", {"seq": 1})
        with open(root / "snap.json.tmp", "w", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "trunc')  # crashed before os.replace
        assert JsonlRunStore(str(root)).get("snap") == {"seq": 1}

    def test_garbage_snapshot_reads_none(self, tmp_path):
        root = tmp_path / "run"
        store = JsonlRunStore(str(root))
        with open(root / "snap.json", "w", encoding="utf-8") as fh:
            fh.write("not json")
        assert store.get("snap") is None
