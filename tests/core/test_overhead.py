"""Unit tests: the Spectre/Meltdown-style overhead model (E15)."""

import numpy as np
import pytest

from repro.core import (
    MITIGATION_EXTRA_NS,
    SYSCALL_NS,
    WorkloadProfile,
    llsc_control_costs,
    make_profiles,
    mitigated_runtime_ns,
    slowdown,
    sweep_syscall_fraction,
)


class TestSlowdownModel:
    def test_compute_bound_near_zero(self):
        p = WorkloadProfile("numpy", compute_ns=1e9, syscalls=100)
        assert slowdown(p) < 0.001

    def test_syscall_bound_in_published_band(self):
        """The paper's cited measurement: 15-40% for affected workloads.
        Our syscall-heavy profiles must land in (or near) that band."""
        heavy = [p for p in make_profiles() if p.syscall_fraction > 0.05]
        assert len(heavy) >= 3, "profile mix must include syscall-heavy work"
        for p in heavy:
            s = slowdown(p)
            assert 0.10 < s < 0.55, f"{p.name}: {s:.2f}"
        in_band = [p for p in heavy if 0.15 <= slowdown(p) <= 0.40]
        assert len(in_band) >= 2, "most affected workloads in 15-40% band"

    def test_slowdown_monotone_in_syscall_fraction(self):
        profiles = sorted(make_profiles(), key=lambda p: p.syscall_fraction)
        slows = [slowdown(p) for p in profiles]
        assert slows == sorted(slows)

    def test_zero_extra_zero_slowdown(self):
        for p in make_profiles():
            assert slowdown(p, extra_ns=0.0) == pytest.approx(0.0)

    def test_mitigated_runtime_exceeds_base(self):
        for p in make_profiles():
            assert mitigated_runtime_ns(p) >= p.base_runtime_ns

    def test_sweep_is_linear_and_bounded(self):
        frac, slow = sweep_syscall_fraction(100)
        assert frac.shape == slow.shape == (100,)
        assert slow[0] == 0.0
        # linearity: second differences vanish
        assert np.allclose(np.diff(slow, 2), 0.0)
        assert slow[-1] == pytest.approx(0.95 * MITIGATION_EXTRA_NS / SYSCALL_NS)

    def test_syscall_fraction_bounds(self):
        for p in make_profiles():
            assert 0.0 < p.syscall_fraction < 1.0


class TestLLSCControlCosts:
    def test_no_control_on_hot_path(self):
        """The design principle: none of the Section-IV controls pays per
        operation on the data path."""
        assert all(not c.per_operation_hot_path
                   for c in llsc_control_costs())

    def test_all_sections_covered(self):
        names = {c.control for c in llsc_control_costs()}
        for expect in ("hidepid=2", "PrivateData", "pam_slurm", "smask",
                       "UBF", "GPU epilog scrub", "portal auth"):
            assert expect in names
