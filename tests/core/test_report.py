"""Unit tests: the Markdown posture-report generator."""

import pytest

from repro import BASELINE, LLSC, run_battery
from repro.core import check_compliance, posture_report, standard_cluster
from repro.kernel import ProcMountOptions
from repro.monitor import instrument_cluster


@pytest.fixture(scope="module")
def llsc_audit():
    return run_battery(LLSC)


class TestPostureReport:
    def test_minimal_report(self):
        cluster = standard_cluster(LLSC)
        doc = posture_report(cluster)
        assert doc.startswith("# Security posture — configuration 'LLSC'")
        assert "## Deployed controls" in doc
        assert "| hidepid | 2 |" in doc
        assert "## Fleet" in doc
        assert "c1, c2, c3, c4" in doc
        # optional sections absent when not provided
        assert "## Adversarial audit" not in doc
        assert "## Configuration compliance" not in doc

    def test_clean_compliance_section(self):
        cluster = standard_cluster(LLSC)
        doc = posture_report(cluster,
                             compliance=check_compliance(cluster))
        assert "checks passed; no drift detected" in doc

    def test_drifted_compliance_section(self):
        cluster = standard_cluster(LLSC)
        cluster.compute_nodes[0].node.set_proc_options(
            ProcMountOptions(hidepid=0))
        doc = posture_report(cluster,
                             compliance=check_compliance(cluster))
        assert "finding(s) across" in doc
        assert "| c1 | proc.hidepid | 2 | 0 |" in doc

    def test_audit_section(self, llsc_audit):
        cluster = standard_cluster(LLSC)
        doc = posture_report(cluster, audit=llsc_audit)
        assert "3 of 32 cross-user probes" in doc
        assert "0 unexpected, 3 documented residuals" in doc
        assert "tmp-filename-enum" in doc
        assert "Sanctioned project-group sharing: functional." in doc

    def test_telemetry_section(self):
        cluster = standard_cluster(LLSC)
        log = instrument_cluster(cluster)
        doc = posture_report(cluster)
        assert "No denial events recorded." in doc
        from repro.monitor import EventKind
        log.emit(1.0, EventKind.NET_DENY, 1001, "c1:5000", "x")
        doc = posture_report(cluster)
        assert "| net-deny | 1 |" in doc

    def test_baseline_report_shows_open_posture(self):
        cluster = standard_cluster(BASELINE)
        doc = posture_report(cluster)
        assert "configuration 'BASELINE'" in doc
        assert "| hidepid | 0 |" in doc
