"""Integration tests: the attack battery / leakage audit (E14) and
single-knob ablations showing which control closes which path."""

import pytest

from repro import BASELINE, LLSC, ablate, blast_radius_trial, run_battery
from repro.core.attacks import (
    AbstractUds,
    AclUserGrant,
    ChmodWorldHome,
    GpuResidue,
    ProcArgvSecret,
    ProjectGroupShare,
    PsSnoop,
    RdmaCmBypass,
    SacctUsage,
    ScratchWorldCreate,
    SqueueSnoop,
    SshIdleNode,
    TcpCrossUser,
    TmpFilenameEnum,
    TmpWorldFile,
)
from repro.sched import NodeSharing


@pytest.fixture(scope="module")
def llsc_report():
    return run_battery(LLSC)


@pytest.fixture(scope="module")
def baseline_report():
    return run_battery(BASELINE)


class TestHeadlineResult:
    def test_llsc_only_documented_residuals_open(self, llsc_report):
        assert llsc_report.unexpected_paths == []
        names = {r.name for r in llsc_report.residual_paths}
        assert names == {"tmp-filename-enum", "abstract-uds",
                         "rdma-cm-bypass"}

    def test_baseline_leaks_broadly(self, baseline_report):
        # nearly everything is open on a stock cluster
        assert len(baseline_report.open_paths) >= 24

    def test_llsc_massive_reduction(self, llsc_report, baseline_report):
        assert len(llsc_report.open_paths) <= 3
        assert len(baseline_report.open_paths) >= 8 * len(
            llsc_report.open_paths)

    def test_intended_sharing_preserved_in_both(self, llsc_report,
                                                baseline_report):
        assert llsc_report.intended_sharing_works
        assert baseline_report.intended_sharing_works

    def test_every_area_clean_under_llsc(self, llsc_report):
        for area, (open_n, total) in llsc_report.by_area().items():
            residuals = sum(1 for r in llsc_report.residual_paths
                            if r.area == area)
            assert open_n == residuals, f"unexpected leak in {area}"

    def test_report_format_mentions_counts(self, llsc_report):
        text = llsc_report.format()
        assert "open paths: 3/32" in text
        assert "works" in text

    def test_summary_rows_shape(self, llsc_report):
        rows = llsc_report.summary_rows()
        assert len(rows) == len(llsc_report.probes)
        assert {"attack", "area", "outcome", "residual",
                "detail"} <= set(rows[0])


class TestSingleKnobAblations:
    """Turning one control off must reopen exactly its paths."""

    def _run(self, config, attacks):
        return {r.name: r.leaked
                for r in run_battery(config, attacks=tuple(attacks)).results}

    def test_hidepid_off_reopens_proc(self):
        leaks = self._run(ablate(LLSC, hidepid=0),
                          [PsSnoop(), ProcArgvSecret()])
        assert leaks == {"ps-snoop": True, "proc-argv-secret": True}

    def test_privatedata_off_reopens_scheduler(self):
        from repro.sched.privatedata import PrivateData
        leaks = self._run(ablate(LLSC, private_data=PrivateData()),
                          [SqueueSnoop(), SacctUsage()])
        assert leaks == {"squeue-snoop": True, "sacct-usage": True}

    def test_pam_slurm_off_reopens_ssh(self):
        leaks = self._run(ablate(LLSC, pam_slurm=False), [SshIdleNode()])
        assert leaks["ssh-without-job"]

    def test_handler_off_reopens_world_bits(self):
        leaks = self._run(
            ablate(LLSC, file_permission_handler=False, smask=0),
            [TmpWorldFile()])
        assert leaks["tmp-world-file"]

    def test_acl_grant_guarded_by_two_layers(self):
        """The ACL leak needs BOTH the handler off (grant allowed) and a
        traversable home; root-owned 0770 homes alone keep it closed."""
        one_layer = self._run(
            ablate(LLSC, file_permission_handler=False, smask=0),
            [AclUserGrant()])
        assert not one_layer["acl-user-grant"]
        both_layers = self._run(
            ablate(LLSC, file_permission_handler=False, smask=0,
                   root_owned_homes=False, home_mode=0o755),
            [AclUserGrant()])
        assert both_layers["acl-user-grant"]

    def test_handler_off_home_still_guarded_by_root_ownership(self):
        """Defense in depth: without smask the root-owned 0770 home still
        blocks the chmod-world-home path (two independent layers)."""
        leaks = self._run(
            ablate(LLSC, file_permission_handler=False, smask=0),
            [ChmodWorldHome()])
        assert not leaks["chmod-world-home"]

    def test_old_lustre_reopens_scratch_create(self):
        leaks = self._run(ablate(LLSC, lustre_honors_smask=False),
                          [ScratchWorldCreate()])
        assert leaks["scratch-world-create"]

    def test_ubf_off_reopens_network(self):
        leaks = self._run(ablate(LLSC, ubf=False), [TcpCrossUser()])
        assert leaks["tcp-connect-cross-user"]

    def test_gpu_scrub_off_reopens_residue(self):
        leaks = self._run(ablate(LLSC, gpu_scrub=False), [GpuResidue()])
        assert leaks["gpu-residue"]

    def test_portal_auth_off_reopens_unauth(self):
        from repro.core.attacks import PortalUnauthenticated
        leaks = self._run(ablate(LLSC, portal_auth=False),
                          [PortalUnauthenticated()])
        assert leaks["portal-unauthenticated"]

    def test_shared_policy_reopens_coresidency(self):
        from repro.core.attacks import CoResidency
        leaks = self._run(ablate(LLSC, node_policy=NodeSharing.SHARED),
                          [CoResidency()])
        assert leaks["co-residency"]

    def test_link_sysctls_cover_tmp_attacks(self):
        """protected_symlinks blocks the /tmp redirect under both presets;
        with the sysctl off under LLSC the redirect reopens, while the
        hardlink pin stays closed because the smask already denies the
        read (defense in depth across independent layers)."""
        from repro.core.attacks import TmpHardlinkPin, TmpSymlinkRedirect
        for cfg in (BASELINE, LLSC):
            leaks = self._run(cfg, [TmpSymlinkRedirect(), TmpHardlinkPin()])
            assert leaks == {"tmp-symlink-redirect": False,
                             "tmp-hardlink-pin": False}, cfg.name
        off = self._run(ablate(LLSC, protected_symlinks=False,
                               protected_hardlinks=False),
                        [TmpSymlinkRedirect(), TmpHardlinkPin()])
        assert off["tmp-symlink-redirect"] is True
        assert off["tmp-hardlink-pin"] is False  # smask still covers
        both_off = self._run(
            ablate(BASELINE, protected_symlinks=False,
                   protected_hardlinks=False),
            [TmpHardlinkPin()])
        assert both_off["tmp-hardlink-pin"] is True

    def test_residuals_stay_open_regardless(self):
        leaks = self._run(LLSC, [TmpFilenameEnum(), AbstractUds(),
                                 RdmaCmBypass()])
        assert all(leaks.values())

    def test_project_sharing_survives_every_knob(self):
        for cfg in (LLSC, BASELINE, ablate(LLSC, ubf=False),
                    ablate(LLSC, file_permission_handler=False, smask=0)):
            rep = run_battery(cfg, attacks=(ProjectGroupShare(),))
            assert rep.intended_sharing_works, cfg.name


class TestBlastRadius:
    def test_llsc_contains_blast(self):
        out = blast_radius_trial(LLSC)
        assert out["innocent_failed"] == 0
        assert out["innocent_completed"] == 6

    def test_baseline_collateral_damage(self):
        out = blast_radius_trial(BASELINE)
        assert out["innocent_failed"] >= 1
