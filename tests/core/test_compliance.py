"""Unit + integration tests: the configuration-compliance checker."""

from repro import BASELINE, LLSC
from repro.core import standard_cluster
from repro.core.compliance import check_compliance
from repro.kernel import ProcMountOptions, ROOT_CREDS


class TestCleanClusters:
    def test_llsc_cluster_is_compliant(self):
        report = check_compliance(standard_cluster(LLSC))
        assert report.compliant, [str(f) for f in report.findings]
        assert report.checks_run > 30

    def test_baseline_cluster_is_compliant_with_itself(self):
        report = check_compliance(standard_cluster(BASELINE))
        assert report.compliant, [str(f) for f in report.findings]

    def test_baseline_fails_llsc_posture(self):
        """Auditing a stock cluster against the LLSC config enumerates the
        whole gap — the deployment checklist, effectively."""
        report = check_compliance(standard_cluster(BASELINE), config=LLSC)
        controls = set(report.by_control())
        assert "proc.hidepid" in controls
        assert "kernel.file-permission-handler" in controls
        assert "net.ubf-ruleset" in controls
        assert "sched.node-policy" in controls
        assert "portal.require-auth" in controls
        assert any(c.startswith("home.") for c in controls)


class TestDriftDetection:
    def test_one_node_missing_hidepid(self):
        cluster = standard_cluster(LLSC)
        rogue = cluster.compute_nodes[1].node
        rogue.set_proc_options(ProcMountOptions(hidepid=0))
        report = check_compliance(cluster)
        assert not report.compliant
        assert [f.node for f in report.findings
                if f.control == "proc.hidepid"] == [rogue.name]

    def test_home_dir_chmod_detected(self):
        cluster = standard_cluster(LLSC)
        v = cluster.login_nodes[0].vfs
        v.chmod("/home/alice", ROOT_CREDS, 0o777)  # triage leftovers
        report = check_compliance(cluster)
        assert any(f.control == "home.mode:alice"
                   and f.observed == "0o777" for f in report.findings)

    def test_unbound_nfqueue_flagged(self):
        cluster = standard_cluster(LLSC)
        stack = cluster.compute_nodes[0].node.net
        stack.firewall._nfqueue = None  # daemon crashed
        report = check_compliance(cluster)
        assert any(f.control == "net.ubf-daemon" for f in report.findings)

    def test_firewall_flush_flagged(self):
        cluster = standard_cluster(LLSC)
        node = cluster.compute_nodes[0].node
        node.net.firewall.rules = []  # iptables -F
        report = check_compliance(cluster)
        assert any(f.control == "net.ubf-ruleset"
                   and f.node == node.name for f in report.findings)

    def test_gpu_devmode_drift_flagged(self):
        cluster = standard_cluster(LLSC)
        cn = cluster.compute_nodes[0]
        cn.node.vfs.chmod("/dev/nvidia0", ROOT_CREDS, 0o666)
        report = check_compliance(cluster)
        assert any(f.control == "gpu.devmode:nvidia0"
                   for f in report.findings)

    def test_gpu_assigned_mode_is_expected_during_job(self):
        """Live allocations are NOT drift: an assigned GPU is supposed to
        be 0660/private-group while the job runs."""
        cluster = standard_cluster(LLSC)
        job = cluster.submit("alice", gpus_per_task=1, duration=100.0)
        cluster.run(until=1.0)
        report = check_compliance(cluster)
        assert report.compliant, [str(f) for f in report.findings]

    def test_pam_stack_tamper_flagged(self):
        from repro.kernel.pam import PamStack, PamUnix
        cluster = standard_cluster(LLSC)
        cluster.compute_nodes[0].node.pam = PamStack([PamUnix()])
        report = check_compliance(cluster)
        controls = {f.control for f in report.findings}
        assert "pam.pam_slurm" in controls
        assert "pam.pam_smask" in controls

    def test_findings_name_the_node(self):
        cluster = standard_cluster(LLSC)
        cluster.compute_nodes[2].node.set_proc_options(
            ProcMountOptions(hidepid=1))
        report = check_compliance(cluster)
        assert report.findings[0].node == cluster.compute_nodes[2].name
        assert "hidepid" in str(report.findings[0])
