"""Unit + integration tests: cluster assembly, sessions, storage layout,
support tools (seepid / smask_relax)."""

import pytest

from repro import BASELINE, LLSC, seepid, smask_relax
from repro.core import standard_cluster
from repro.kernel import PAPER_SMASK, ROOT_CREDS
from repro.kernel.errors import AccessDenied, PermissionError_
from repro.sched import NodeSharing


@pytest.fixture(scope="module")
def llsc():
    return standard_cluster(LLSC)


@pytest.fixture(scope="module")
def baseline():
    return standard_cluster(BASELINE)


class TestBuild:
    def test_topology(self, llsc):
        assert len(llsc.compute_nodes) == 4
        assert len(llsc.login_nodes) == 1
        assert llsc.portal_node.name == "portal"
        assert llsc.scheduler.total_cores == 4 * 16

    def test_ubf_daemons_per_host(self, llsc, baseline):
        assert set(llsc.ubf_daemons) == {"login1", "c1", "c2", "c3", "c4",
                                         "portal"}
        assert baseline.ubf_daemons == {}

    def test_policy_wired(self, llsc, baseline):
        assert llsc.scheduler.config.policy is NodeSharing.WHOLE_NODE_USER
        assert baseline.scheduler.config.policy is NodeSharing.SHARED

    def test_project_group_created(self, llsc):
        grp = llsc.userdb.group("fusion")
        carol = llsc.user("carol")
        dave = llsc.user("dave")
        assert grp.stewards == {carol.uid}
        assert dave.uid in grp.members

    def test_seepid_group_only_when_configured(self, llsc, baseline):
        assert llsc.seepid_group is not None
        assert baseline.seepid_group is None

    def test_config_describe(self):
        d = LLSC.describe()
        assert d["name"] == "LLSC" and d["hidepid"] == 2
        assert d["smask"] == "0o7"


class TestStorageLayout:
    def test_llsc_homes_root_owned(self, llsc):
        st = llsc.login_nodes[0].vfs.stat("/home/alice", ROOT_CREDS)
        assert st.uid == 0
        assert st.gid == llsc.user("alice").primary_gid
        assert st.mode == 0o770

    def test_baseline_homes_user_owned_755(self, baseline):
        st = baseline.login_nodes[0].vfs.stat("/home/alice", ROOT_CREDS)
        assert st.uid == baseline.user("alice").uid
        assert st.mode == 0o755

    def test_project_dir_setgid(self, llsc):
        st = llsc.login_nodes[0].vfs.stat("/home/proj/fusion", ROOT_CREDS)
        assert st.mode == 0o2770
        assert st.gid == llsc.userdb.group("fusion").gid

    def test_home_shared_across_nodes(self, llsc):
        alice = llsc.login("alice")
        alice.sys.create("/home/alice/x.dat", mode=0o600, data=b"d")
        creds = llsc.userdb.credentials_for(llsc.user("alice"))
        for cn in llsc.compute_nodes:
            assert cn.node.vfs.read("/home/alice/x.dat", creds) == b"d"

    def test_scratch_world_writable_sticky(self, llsc):
        st = llsc.login_nodes[0].vfs.stat("/scratch", ROOT_CREDS)
        assert st.mode == 0o1777


class TestSessions:
    def test_login_session_smask(self, llsc, baseline):
        assert llsc.login("alice").creds.smask == PAPER_SMASK
        assert baseline.login("alice").creds.smask == 0

    def test_pam_slurm_blocks_jobless_ssh(self, llsc):
        with pytest.raises(AccessDenied):
            llsc.ssh("alice", "c1")

    def test_ssh_allowed_with_running_job(self):
        cluster = standard_cluster(LLSC)
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        session = cluster.ssh("alice", job.nodes[0])
        assert session.creds.uid == cluster.user("alice").uid

    def test_baseline_ssh_unrestricted(self, baseline):
        session = baseline.ssh("alice", "c1")
        assert session.node.name == "c1"

    def test_job_session_binds_job(self):
        cluster = standard_cluster(LLSC)
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        assert shell.process.job_id == job.job_id
        assert shell.creds.smask == PAPER_SMASK

    def test_sg_switches_egid(self):
        cluster = standard_cluster(LLSC)
        carol = cluster.login("carol").sg("fusion")
        assert carol.creds.egid == cluster.userdb.group("fusion").gid

    def test_node_lookup_unknown(self, llsc):
        from repro.kernel.errors import NoSuchEntity
        with pytest.raises(NoSuchEntity):
            llsc.node("zzz")


class TestSeepid:
    def test_staff_gains_visibility(self):
        cluster = standard_cluster(LLSC)
        cluster.login("alice").sys.spawn_child(["secret-job"])
        sam = cluster.login("sam")
        before = {r.uid for r in sam.sys.ps()}
        seepid(cluster, sam)
        after = {r.uid for r in sam.sys.ps()}
        assert cluster.user("alice").uid not in before
        assert cluster.user("alice").uid in after

    def test_non_staff_denied(self):
        cluster = standard_cluster(LLSC)
        bob = cluster.login("bob")
        with pytest.raises(PermissionError_):
            seepid(cluster, bob)

    def test_unconfigured_system_denied(self):
        cluster = standard_cluster(BASELINE)
        sam = cluster.login("sam")
        with pytest.raises(PermissionError_):
            seepid(cluster, sam)


class TestSmaskRelax:
    def test_staff_can_publish_world_readable(self):
        cluster = standard_cluster(LLSC)
        sam = cluster.login("sam")
        # before relax: smask strips world bits
        st = sam.sys.create("/scratch/model-v1.bin", mode=0o644, data=b"w")
        assert st.mode & 0o007 == 0
        smask_relax(cluster, sam)
        st2 = sam.sys.create("/scratch/model-v2.bin", mode=0o644, data=b"w")
        assert st2.mode == 0o644
        # any user can now read the published artifact
        bob = cluster.login("bob")
        assert bob.sys.open_read("/scratch/model-v2.bin") == b"w"

    def test_world_write_still_blocked(self):
        cluster = standard_cluster(LLSC)
        sam = smask_relax(cluster, cluster.login("sam"))
        st = sam.sys.create("/scratch/tool.sh", mode=0o777, data=b"#!")
        assert st.mode & 0o002 == 0  # w bit for other never granted

    def test_non_staff_denied(self):
        cluster = standard_cluster(LLSC)
        with pytest.raises(PermissionError_):
            smask_relax(cluster, cluster.login("alice"))


class TestSubmitApi:
    def test_submit_and_run(self):
        cluster = standard_cluster(LLSC)
        job = cluster.submit("alice", ntasks=4, duration=10.0)
        cluster.run()
        assert job.state.finished
        assert job.core_seconds() == pytest.approx(40.0)

    def test_gpu_job(self):
        cluster = standard_cluster(LLSC)
        job = cluster.submit("alice", gpus_per_task=1, duration=10.0)
        cluster.run(until=1.0)
        assert job.allocations[0].gpu_indices
