"""Docstring coverage gate for the public API under ``src/repro``.

The traceability layer (docs/TRACEABILITY.md) maps paper sections to
modules; that map is only useful if the modules explain themselves.  This
gate holds the line reached in PR 4: every module, every public
module-level class, and every public module-level function must carry a
docstring.  It is stdlib-``ast`` based (no ruff/interrogate dependency)
and runs as part of tier-1, so a regression fails CI like any other test.
"""

from __future__ import annotations

import ast
import pathlib

import repro

SRC = pathlib.Path(repro.__file__).parent


def public_docstring_gaps() -> list[str]:
    """Return ``path:line kind name`` for each missing public docstring."""
    gaps: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC.parent)
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None and path.name != "__init__.py":
            gaps.append(f"{rel}:1 module")
        for node in tree.body:
            if not isinstance(node, (ast.ClassDef, ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                kind = ("class" if isinstance(node, ast.ClassDef)
                        else "def")
                gaps.append(f"{rel}:{node.lineno} {kind} {node.name}")
    return gaps


def test_public_api_is_documented():
    gaps = public_docstring_gaps()
    assert not gaps, (
        f"{len(gaps)} public definitions lack docstrings:\n"
        + "\n".join(gaps))


def test_package_inits_export_documented_package():
    """Every package ``__init__`` either has a docstring or only re-exports."""
    for path in sorted(SRC.rglob("__init__.py")):
        tree = ast.parse(path.read_text())
        has_defs = any(isinstance(n, (ast.ClassDef, ast.FunctionDef))
                       for n in tree.body)
        if has_defs:
            assert ast.get_docstring(tree) is not None, path
