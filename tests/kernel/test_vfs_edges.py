"""Edge-case coverage: walk, access, perm_string, node roles, errors."""

import pytest

from repro.kernel import (
    FileKind,
    KernelError,
    LinuxNode,
    NodeRole,
    NodeSpec,
    R_OK,
    ROOT_CREDS,
    VFS,
    W_OK,
)
from repro.kernel.errors import NoSuchEntity
from repro.kernel.vfs import Inode

from tests.conftest import creds_of


class TestWalk:
    def test_walk_descends_tree(self, userdb):
        v = VFS()
        alice = creds_of(userdb, "alice")
        v.mkdir("/w", ROOT_CREDS, mode=0o777)
        v.mkdir("/w/a", alice, mode=0o755)
        v.mkdir("/w/a/b", alice, mode=0o755)
        v.create("/w/a/b/f", alice, mode=0o644)
        seen = dict(v.walk("/w", alice))
        assert set(seen) == {"/w", "/w/a", "/w/a/b"}
        assert seen["/w/a/b"] == ["f"]

    def test_walk_skips_unreadable_subtrees(self, userdb):
        v = VFS()
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        v.mkdir("/w", ROOT_CREDS, mode=0o777)
        v.mkdir("/w/open", alice, mode=0o755)
        v.mkdir("/w/closed", alice, mode=0o700)
        v.create("/w/closed/hidden", alice)
        seen = dict(v.walk("/w", bob))
        assert "/w/open" in seen
        assert "/w/closed" not in seen

    def test_walk_does_not_loop_on_symlinks(self, userdb):
        v = VFS()
        alice = creds_of(userdb, "alice")
        v.mkdir("/w", ROOT_CREDS, mode=0o777)
        v.mkdir("/w/d", alice, mode=0o755)
        v.symlink("/w", "/w/d/up", alice)
        assert len(list(v.walk("/w", alice))) == 2  # terminates


class TestAccessHelper:
    def test_access_true_false_and_missing(self, userdb):
        v = VFS()
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        v.mkdir("/w", ROOT_CREDS, mode=0o777)
        v.create("/w/f", alice, mode=0o640)
        assert v.access("/w/f", alice, R_OK | W_OK)
        assert not v.access("/w/f", bob, R_OK)
        assert not v.access("/w/missing", alice, R_OK)


class TestPermString:
    @pytest.mark.parametrize("mode,want", [
        (0o755, "rwxr-xr-x"),
        (0o640, "rw-r-----"),
        (0o1777, "rwxrwxrwt"),
        (0o1666, "rw-rw-rwT"),
        (0o000, "---------"),
    ])
    def test_rendering(self, mode, want):
        inode = Inode(ino=1, kind=FileKind.FILE, uid=0, gid=0, mode=mode)
        assert inode.perm_string() == want


class TestNodeBasics:
    def test_roles_and_spec(self, userdb):
        n = LinuxNode("gpu1", userdb, role=NodeRole.COMPUTE,
                      spec=NodeSpec(cores=128, mem_mb=10 ** 6, gpus=8))
        assert n.spec.gpus == 8
        assert n.role is NodeRole.COMPUTE
        assert "gpu1" in repr(n)

    def test_kernel_error_str_contains_errname(self):
        err = NoSuchEntity("/x")
        assert "ENOENT" in str(err)
        assert err.errno == 2
        assert isinstance(err, KernelError)

    def test_mount_listing(self, userdb):
        n = LinuxNode("n", userdb)
        paths = [m.path for m in n.vfs.mounts()]
        assert paths == ["/", "/dev", "/tmp"]
