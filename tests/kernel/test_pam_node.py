"""Unit tests: PAM stack, node sessions, syscall façade."""

import pytest

from repro.kernel import (
    PAPER_SMASK,
    PamSlurm,
    PamSmask,
    PamStack,
    PamUnix,
    SyscallInterface,
)
from repro.kernel.errors import AccessDenied, InvalidArgument, PermissionError_

from tests.conftest import creds_of


class TestPamSmask:
    def test_session_installs_smask(self, userdb):
        stack = PamStack([PamUnix(), PamSmask(PAPER_SMASK)])
        alice = userdb.user("alice")
        creds = stack.open_session(alice, "n1", userdb.credentials_for(alice))
        assert creds.smask == PAPER_SMASK

    def test_root_session_not_masked(self, userdb):
        stack = PamStack([PamUnix(), PamSmask(PAPER_SMASK)])
        root = userdb.user("root")
        creds = stack.open_session(root, "n1", userdb.credentials_for(root))
        assert creds.smask == 0


class TestPamSlurm:
    def _stack(self, jobs, exempt=()):
        return PamStack([
            PamUnix(),
            PamSlurm(has_job_on=lambda uid, node: (uid, node) in jobs,
                     exempt_nodes=frozenset(exempt)),
        ])

    def test_denied_without_job(self, userdb):
        alice = userdb.user("alice")
        stack = self._stack(jobs=set())
        with pytest.raises(AccessDenied):
            stack.open_session(alice, "c1", userdb.credentials_for(alice))

    def test_allowed_with_job(self, userdb):
        alice = userdb.user("alice")
        stack = self._stack(jobs={(alice.uid, "c1")})
        creds = stack.open_session(alice, "c1", userdb.credentials_for(alice))
        assert creds.uid == alice.uid

    def test_job_on_other_node_does_not_help(self, userdb):
        alice = userdb.user("alice")
        stack = self._stack(jobs={(alice.uid, "c2")})
        with pytest.raises(AccessDenied):
            stack.open_session(alice, "c1", userdb.credentials_for(alice))

    def test_login_node_exempt(self, userdb):
        alice = userdb.user("alice")
        stack = self._stack(jobs=set(), exempt=("login1",))
        stack.open_session(alice, "login1", userdb.credentials_for(alice))

    def test_root_exempt(self, userdb):
        root = userdb.user("root")
        stack = self._stack(jobs=set())
        stack.open_session(root, "c1", userdb.credentials_for(root))


class TestNodeSessions:
    def test_llsc_node_session_has_smask(self, llsc_node, userdb):
        creds = llsc_node.open_session(userdb.user("alice"))
        assert creds.smask == PAPER_SMASK

    def test_stock_node_session_has_no_smask(self, stock_node, userdb):
        creds = stock_node.open_session(userdb.user("alice"))
        assert creds.smask == 0

    def test_node_local_layout(self, stock_node):
        from repro.kernel import ROOT_CREDS
        st = stock_node.vfs.stat("/tmp", ROOT_CREDS)
        assert st.mode == 0o1777
        assert stock_node.vfs.stat("/dev/shm", ROOT_CREDS).mode == 0o1777
        assert "null" in stock_node.vfs.listdir("/dev", ROOT_CREDS)


class TestSyscallInterface:
    @pytest.fixture
    def sys_alice(self, stock_node, userdb):
        creds = stock_node.open_session(userdb.user("alice"))
        proc = stock_node.procs.spawn(creds, ["bash"])
        return SyscallInterface(stock_node, proc)

    def test_file_roundtrip(self, sys_alice):
        sys_alice.create("/tmp/x", mode=0o600, data=b"hello")
        assert sys_alice.open_read("/tmp/x") == b"hello"

    def test_umask_change_applies(self, sys_alice):
        sys_alice.umask(0o077)
        st = sys_alice.create("/tmp/y", mode=0o666)
        assert st.mode == 0o600

    def test_ps_sees_self(self, sys_alice):
        assert any(r.pid == sys_alice.process.pid for r in sys_alice.ps())

    def test_kill_foreign_denied(self, sys_alice, stock_node, userdb):
        bob = stock_node.procs.spawn(creds_of(userdb, "bob"), ["sleep"])
        with pytest.raises(PermissionError_):
            sys_alice.kill(bob.pid)

    def test_spawn_child_inherits(self, sys_alice):
        child = sys_alice.spawn_child(["worker"])
        assert child.creds.uid == sys_alice.creds.uid
        assert child.process.ppid == sys_alice.process.pid

    def test_newgrp(self, stock_node, userdb):
        creds = stock_node.open_session(userdb.user("dave"))
        proc = stock_node.procs.spawn(creds, ["bash"])
        sys = SyscallInterface(stock_node, proc)
        fusion = userdb.group("fusion").gid
        sys.newgrp(fusion)
        assert sys.creds.egid == fusion

    def test_newgrp_foreign_denied(self, sys_alice, userdb):
        fusion = userdb.group("fusion").gid
        with pytest.raises(PermissionError_):
            sys_alice.newgrp(fusion)

    def test_socket_without_network_raises(self, sys_alice):
        with pytest.raises(InvalidArgument):
            sys_alice.socket()

    def test_exit_reaps(self, sys_alice, stock_node):
        pid = sys_alice.process.pid
        sys_alice.exit(3)
        assert not stock_node.procs.get(pid).alive
        assert stock_node.procs.get(pid).exit_code == 3
