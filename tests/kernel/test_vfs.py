"""Unit tests: VFS resolution, DAC algorithm, ACLs, sticky bit, mounts."""

import pytest

from repro.kernel import (
    AclEntry,
    FileKind,
    Filesystem,
    R_OK,
    ROOT_CREDS,
    VFS,
    W_OK,
    X_OK,
    check_access,
)
from repro.kernel.errors import (
    AccessDenied,
    Exists,
    InvalidArgument,
    IsADirectory,
    NoSuchEntity,
    NotADirectory,
    NotEmpty,
    PermissionError_,
)
from repro.kernel.vfs import Inode, split_path

from tests.conftest import creds_of


@pytest.fixture
def vfs(userdb):
    v = VFS()
    v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
    v.mkdir("/data", ROOT_CREDS, mode=0o755)
    return v


class TestPathHandling:
    def test_relative_path_rejected(self, vfs):
        with pytest.raises(InvalidArgument):
            vfs.resolve("tmp", ROOT_CREDS)

    def test_dot_and_dotdot_normalized(self, vfs):
        a = vfs.resolve("/tmp/./../tmp", ROOT_CREDS)
        b = vfs.resolve("/tmp", ROOT_CREDS)
        assert a is b

    def test_dotdot_cannot_escape_root(self, vfs):
        assert vfs.resolve("/../../tmp", ROOT_CREDS) is vfs.resolve("/tmp", ROOT_CREDS)

    def test_split_path(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        assert split_path("/a") == ("/", "a")
        with pytest.raises(InvalidArgument):
            split_path("/")

    def test_missing_path_raises_enoent(self, vfs, userdb):
        with pytest.raises(NoSuchEntity):
            vfs.resolve("/nope", creds_of(userdb, "alice"))

    def test_file_component_raises_enotdir(self, vfs, userdb):
        vfs.create("/data/f", ROOT_CREDS, mode=0o644)
        with pytest.raises(NotADirectory):
            vfs.resolve("/data/f/x", ROOT_CREDS)


class TestDacAlgorithm:
    """Direct tests of check_access() — the POSIX class algorithm."""

    def _inode(self, uid, gid, mode, acl=()):
        return Inode(ino=9, kind=FileKind.FILE, uid=uid, gid=gid, mode=mode,
                     acl=list(acl))

    def test_root_always_allowed(self):
        inode = self._inode(1000, 1000, 0o000)
        assert check_access(inode, ROOT_CREDS, R_OK | W_OK | X_OK)

    def test_owner_uses_owner_bits(self, userdb):
        alice = creds_of(userdb, "alice")
        inode = self._inode(alice.uid, alice.egid, 0o400)
        assert check_access(inode, alice, R_OK)
        assert not check_access(inode, alice, W_OK)

    def test_owner_class_does_not_fall_through(self, userdb):
        """Owner denied by owner bits even if group/other bits would allow."""
        alice = creds_of(userdb, "alice")
        inode = self._inode(alice.uid, alice.egid, 0o077)
        assert not check_access(inode, alice, R_OK)

    def test_group_member_uses_group_bits(self, userdb):
        dave = creds_of(userdb, "dave")
        fusion = userdb.group("fusion").gid
        inode = self._inode(userdb.user("carol").uid, fusion, 0o640)
        assert check_access(inode, dave, R_OK)
        assert not check_access(inode, dave, W_OK)

    def test_group_class_does_not_fall_through_to_other(self, userdb):
        dave = creds_of(userdb, "dave")
        fusion = userdb.group("fusion").gid
        inode = self._inode(userdb.user("carol").uid, fusion, 0o604)
        assert not check_access(inode, dave, R_OK)

    def test_other_bits_for_strangers(self, userdb):
        bob = creds_of(userdb, "bob")
        alice = userdb.user("alice")
        inode = self._inode(alice.uid, alice.primary_gid, 0o604)
        assert check_access(inode, bob, R_OK)
        assert not check_access(inode, bob, W_OK)

    def test_acl_user_entry_beats_group_and_other(self, userdb):
        bob = creds_of(userdb, "bob")
        alice = userdb.user("alice")
        inode = self._inode(alice.uid, alice.primary_gid, 0o600,
                            acl=[AclEntry("user", bob.uid, 4)])
        assert check_access(inode, bob, R_OK)
        assert not check_access(inode, bob, W_OK)

    def test_acl_group_entry_grants(self, userdb):
        dave = creds_of(userdb, "dave")
        alice = userdb.user("alice")
        fusion = userdb.group("fusion").gid
        inode = self._inode(alice.uid, alice.primary_gid, 0o600,
                            acl=[AclEntry("group", fusion, 4)])
        assert check_access(inode, dave, R_OK)

    def test_acl_group_match_blocks_other_fallthrough(self, userdb):
        """A user matched by a zero-perm ACL group entry is in the group
        class and must NOT fall through to the permissive other bits."""
        dave = creds_of(userdb, "dave")
        alice = userdb.user("alice")
        fusion = userdb.group("fusion").gid
        inode = self._inode(alice.uid, alice.primary_gid, 0o604,
                            acl=[AclEntry("group", fusion, 0)])
        assert not check_access(inode, dave, R_OK)

    def test_any_matching_group_entry_suffices(self, userdb):
        dave = creds_of(userdb, "dave")
        alice = userdb.user("alice")
        fusion = userdb.group("fusion").gid
        inode = self._inode(alice.uid, fusion, 0o600,
                            acl=[AclEntry("group", fusion, 6)])
        assert check_access(inode, dave, R_OK | W_OK)


class TestCreateSemantics:
    def test_create_needs_parent_write(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        with pytest.raises(AccessDenied):
            vfs.create("/data/f", alice)  # /data is 0755 root-owned

    def test_umask_applied_on_create(self, vfs, userdb):
        alice = creds_of(userdb, "alice").with_umask(0o077)
        inode = vfs.create("/tmp/f", alice, mode=0o666)
        assert inode.mode == 0o600

    def test_new_file_owned_by_creator_egid(self, vfs, userdb):
        dave = creds_of(userdb, "dave")
        fusion = userdb.group("fusion").gid
        inode = vfs.create("/tmp/d1", dave.with_egid(fusion), mode=0o660)
        assert inode.gid == fusion

    def test_setgid_dir_propagates_group(self, vfs, userdb):
        carol = creds_of(userdb, "carol")
        fusion = userdb.group("fusion").gid
        vfs.mkdir("/data/proj", ROOT_CREDS, mode=0o2770)
        vfs.chown("/data/proj", ROOT_CREDS, gid=fusion)
        inode = vfs.create("/data/proj/f", carol, mode=0o660)
        assert inode.gid == fusion

    def test_setgid_propagates_to_subdir(self, vfs, userdb):
        carol = creds_of(userdb, "carol")
        fusion = userdb.group("fusion").gid
        vfs.mkdir("/data/proj", ROOT_CREDS, mode=0o2770)
        vfs.chown("/data/proj", ROOT_CREDS, gid=fusion)
        sub = vfs.mkdir("/data/proj/sub", carol, mode=0o770)
        assert sub.setgid and sub.gid == fusion

    def test_duplicate_create_raises_eexist(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/f", alice)
        with pytest.raises(Exists):
            vfs.create("/tmp/f", alice)

    def test_exist_ok_returns_existing(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        a = vfs.mkdir("/tmp/d", alice)
        b = vfs.mkdir("/tmp/d", alice, exist_ok=True)
        assert a is b

    def test_makedirs(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.makedirs("/tmp/a/b/c", alice, mode=0o700)
        assert vfs.resolve("/tmp/a/b/c", alice).is_dir


class TestReadWrite:
    def test_read_own_file(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/f", alice, mode=0o600, data=b"hi")
        assert vfs.read("/tmp/f", alice) == b"hi"

    def test_stranger_cannot_read_0600(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/f", alice, mode=0o600, data=b"secret")
        with pytest.raises(AccessDenied):
            vfs.read("/tmp/f", bob)

    def test_write_then_read_roundtrip(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/f", alice, mode=0o600)
        vfs.write("/tmp/f", alice, b"abc")
        vfs.write("/tmp/f", alice, b"def", append=True)
        assert vfs.read("/tmp/f", alice) == b"abcdef"

    def test_write_truncates_by_default(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/f", alice, mode=0o600, data=b"longcontent")
        vfs.write("/tmp/f", alice, b"x")
        assert vfs.read("/tmp/f", alice) == b"x"

    def test_read_directory_raises_eisdir(self, vfs, userdb):
        with pytest.raises(IsADirectory):
            vfs.read("/tmp", ROOT_CREDS)

    def test_listdir_requires_read_bit(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.mkdir("/tmp/priv", alice, mode=0o700)
        with pytest.raises(AccessDenied):
            vfs.listdir("/tmp/priv", bob)

    def test_search_permission_checked_along_path(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.mkdir("/tmp/priv", alice, mode=0o700)
        vfs.create("/tmp/priv/open", alice, mode=0o666)
        with pytest.raises(AccessDenied):
            vfs.read("/tmp/priv/open", bob)  # file is 0666 but dir is 0700


class TestStickyBit:
    def test_sticky_blocks_foreign_unlink(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/af", alice, mode=0o644)
        with pytest.raises(PermissionError_):
            vfs.unlink("/tmp/af", bob)

    def test_owner_can_unlink_in_sticky_dir(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/af", alice, mode=0o644)
        vfs.unlink("/tmp/af", alice)
        assert not vfs.exists("/tmp/af", alice)

    def test_root_can_unlink_anything(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/af", alice, mode=0o644)
        vfs.unlink("/tmp/af", ROOT_CREDS)

    def test_non_sticky_dir_allows_foreign_unlink_with_write(self, vfs, userdb):
        alice = creds_of(userdb, "alice").with_umask(0)
        bob = creds_of(userdb, "bob")
        vfs.mkdir("/tmp/shared", alice, mode=0o777)
        vfs.create("/tmp/shared/f", alice, mode=0o644)
        vfs.unlink("/tmp/shared/f", bob)  # classic non-sticky hazard

    def test_unlink_nonempty_dir_raises(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.mkdir("/tmp/d", alice)
        vfs.create("/tmp/d/f", alice)
        with pytest.raises(NotEmpty):
            vfs.unlink("/tmp/d", alice)


class TestChmodChownAcl:
    def test_chmod_by_owner(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/f", alice, mode=0o600)
        assert vfs.chmod("/tmp/f", alice, 0o644) == 0o644

    def test_chmod_by_non_owner_denied(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/f", alice, mode=0o666)
        with pytest.raises(PermissionError_):
            vfs.chmod("/tmp/f", bob, 0o777)

    def test_chown_user_requires_root(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/f", alice)
        with pytest.raises(PermissionError_):
            vfs.chown("/tmp/f", alice, uid=creds_of(userdb, "bob").uid)
        vfs.chown("/tmp/f", ROOT_CREDS, uid=creds_of(userdb, "bob").uid)
        assert vfs.stat("/tmp/f", ROOT_CREDS).uid == creds_of(userdb, "bob").uid

    def test_chgrp_to_member_group_allowed(self, vfs, userdb):
        carol = creds_of(userdb, "carol")
        fusion = userdb.group("fusion").gid
        vfs.create("/tmp/f", carol)
        vfs.chown("/tmp/f", carol, gid=fusion)
        assert vfs.stat("/tmp/f", carol).gid == fusion

    def test_chgrp_to_foreign_group_denied(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        fusion = userdb.group("fusion").gid
        vfs.create("/tmp/f", alice)
        with pytest.raises(PermissionError_):
            vfs.chown("/tmp/f", alice, gid=fusion)

    def test_setfacl_only_by_owner(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/f", alice)
        with pytest.raises(PermissionError_):
            vfs.setfacl("/tmp/f", bob, AclEntry("user", bob.uid, 7))

    def test_setfacl_replaces_same_qualifier(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/f", alice)
        vfs.setfacl("/tmp/f", alice, AclEntry("user", bob.uid, 4))
        vfs.setfacl("/tmp/f", alice, AclEntry("user", bob.uid, 6))
        entries = vfs.getfacl("/tmp/f", alice)
        assert entries == [AclEntry("user", bob.uid, 6)]

    def test_bad_acl_entry_rejected(self):
        with pytest.raises(InvalidArgument):
            AclEntry("mask", 5, 7)
        with pytest.raises(InvalidArgument):
            AclEntry("user", 5, 9)


class TestMounts:
    def test_shared_fs_visible_from_two_nodes(self, userdb, shared_home):
        from repro.kernel import LinuxNode
        n1 = LinuxNode("c1", userdb)
        n2 = LinuxNode("c2", userdb)
        n1.mount_shared("/home", shared_home)
        n2.mount_shared("/home", shared_home)
        alice = creds_of(userdb, "alice")
        n1.vfs.create("/home/alice/data.txt", alice, mode=0o600, data=b"x")
        assert n2.vfs.read("/home/alice/data.txt", alice) == b"x"

    def test_mount_requires_root(self, userdb):
        v = VFS()
        with pytest.raises(PermissionError_):
            v.mount("/x", Filesystem("x"), creds=creds_of(userdb, "alice"))

    def test_longest_prefix_mount_wins(self, userdb):
        v = VFS()
        outer, inner = Filesystem("outer"), Filesystem("inner")
        v.mount("/a", outer, creds=ROOT_CREDS)
        v.mount("/a/b", inner, creds=ROOT_CREDS)
        v.create("/a/f", ROOT_CREDS)
        v.create("/a/b/g", ROOT_CREDS)
        assert "f" in outer.root.children
        assert "g" in inner.root.children

    def test_local_tmp_not_shared(self, userdb):
        from repro.kernel import LinuxNode
        n1 = LinuxNode("c1", userdb)
        n2 = LinuxNode("c2", userdb)
        alice = creds_of(userdb, "alice")
        n1.vfs.create("/tmp/f", alice, mode=0o600)
        assert not n2.vfs.exists("/tmp/f", alice)


class TestHomeDirectoryScheme:
    def test_owner_cannot_chmod_root_owned_home(self, userdb, shared_home):
        from repro.kernel import LinuxNode
        node = LinuxNode("c1", userdb)
        node.mount_shared("/home", shared_home)
        alice = creds_of(userdb, "alice")
        with pytest.raises(PermissionError_):
            node.vfs.chmod("/home/alice", alice, 0o777)

    def test_user_reaches_home_via_private_group(self, userdb, shared_home):
        from repro.kernel import LinuxNode
        node = LinuxNode("c1", userdb)
        node.mount_shared("/home", shared_home)
        alice = creds_of(userdb, "alice")
        node.vfs.create("/home/alice/f", alice, mode=0o600, data=b"ok")
        assert node.vfs.read("/home/alice/f", alice) == b"ok"

    def test_stranger_cannot_enter_home(self, userdb, shared_home):
        from repro.kernel import LinuxNode
        node = LinuxNode("c1", userdb)
        node.mount_shared("/home", shared_home)
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        node.vfs.create("/home/alice/f", alice, mode=0o666)
        with pytest.raises(AccessDenied):
            node.vfs.read("/home/alice/f", bob)
