"""Unit tests: users, groups, UPG scheme, project groups, credentials."""

import pytest

from repro.kernel import Credentials
from repro.kernel.errors import Exists, InvalidArgument, NoSuchEntity, PermissionError_


class TestUPGScheme:
    def test_user_gets_private_group(self, userdb):
        alice = userdb.user("alice")
        grp = userdb.group(alice.primary_gid)
        assert grp.private_for == alice.uid
        assert grp.members == {alice.uid}
        assert grp.name == "alice"

    def test_private_groups_are_disjoint(self, userdb):
        alice = userdb.user("alice")
        bob = userdb.user("bob")
        assert alice.primary_gid != bob.primary_gid
        assert bob.uid not in userdb.group(alice.primary_gid).members

    def test_non_upg_users_share_group(self, flat_userdb):
        alice = flat_userdb.user("alice")
        bob = flat_userdb.user("bob")
        assert alice.primary_gid == bob.primary_gid == 100

    def test_strangers_share_no_group(self, userdb):
        assert not userdb.shares_group(userdb.user("alice"), userdb.user("bob"))

    def test_project_members_share_group(self, userdb):
        assert userdb.shares_group(userdb.user("carol"), userdb.user("dave"))

    def test_flat_scheme_everyone_shares(self, flat_userdb):
        assert flat_userdb.shares_group(flat_userdb.user("alice"),
                                        flat_userdb.user("bob"))

    def test_duplicate_user_rejected(self, userdb):
        with pytest.raises(Exists):
            userdb.add_user("alice")

    def test_unknown_user_lookup(self, userdb):
        with pytest.raises(NoSuchEntity):
            userdb.user("mallory")
        with pytest.raises(NoSuchEntity):
            userdb.user(99999)

    def test_uid_lookup_roundtrip(self, userdb):
        alice = userdb.user("alice")
        assert userdb.user(alice.uid) is alice


class TestProjectGroups:
    def test_steward_can_add_member(self, userdb):
        carol = userdb.user("carol")
        alice = userdb.user("alice")
        userdb.add_to_project("fusion", alice, approver=carol)
        assert alice.uid in userdb.group("fusion").members

    def test_non_steward_cannot_add(self, userdb):
        dave = userdb.user("dave")  # member but not steward
        alice = userdb.user("alice")
        with pytest.raises(PermissionError_):
            userdb.add_to_project("fusion", alice, approver=dave)

    def test_root_can_add(self, userdb):
        root = userdb.user("root")
        alice = userdb.user("alice")
        userdb.add_to_project("fusion", alice, approver=root)
        assert alice.uid in userdb.group("fusion").members

    def test_steward_can_remove(self, userdb):
        carol = userdb.user("carol")
        dave = userdb.user("dave")
        userdb.remove_from_project("fusion", dave, approver=carol)
        assert dave.uid not in userdb.group("fusion").members

    def test_private_group_is_not_project(self, userdb):
        alice = userdb.user("alice")
        with pytest.raises(InvalidArgument):
            userdb.add_to_project(userdb.group(alice.primary_gid).name,
                                  userdb.user("bob"),
                                  approver=userdb.user("root"))

    def test_membership_reflected_in_credentials(self, userdb):
        dave = userdb.user("dave")
        creds = userdb.credentials_for(dave)
        assert userdb.group("fusion").gid in creds.groups


class TestCredentials:
    def test_newgrp_to_member_group(self, userdb):
        dave = userdb.user("dave")
        creds = userdb.credentials_for(dave)
        fusion = userdb.group("fusion").gid
        assert creds.with_egid(fusion).egid == fusion

    def test_newgrp_to_foreign_group_denied(self, userdb):
        alice = userdb.user("alice")
        creds = userdb.credentials_for(alice)
        fusion = userdb.group("fusion").gid
        with pytest.raises(PermissionError_):
            creds.with_egid(fusion)

    def test_root_may_switch_to_any_group(self, userdb):
        root_creds = userdb.credentials_for(userdb.user("root"))
        fusion = userdb.group("fusion").gid
        assert root_creds.with_egid(fusion).egid == fusion

    def test_in_group_covers_egid_and_supplementary(self, userdb):
        dave = userdb.user("dave")
        creds = userdb.credentials_for(dave)
        assert creds.in_group(dave.primary_gid)
        assert creds.in_group(userdb.group("fusion").gid)
        assert not creds.in_group(userdb.user("alice").primary_gid)

    def test_credentials_are_immutable(self, userdb):
        creds = userdb.credentials_for(userdb.user("alice"))
        with pytest.raises(AttributeError):
            creds.uid = 0  # type: ignore[misc]

    def test_umask_and_smask_masked_to_9_bits(self):
        c = Credentials(uid=1, egid=1, groups=frozenset({1}))
        assert c.with_umask(0o7777).umask == 0o777
        assert c.with_smask(0o7007).smask == 0o007

    def test_support_staff_flag(self, userdb):
        assert userdb.user("sam").is_support_staff
        assert not userdb.user("alice").is_support_staff
