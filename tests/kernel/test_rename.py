"""Unit tests: rename(2) semantics incl. sticky-bit protection."""

import pytest

from repro.kernel import Filesystem, ROOT_CREDS, VFS
from repro.kernel.errors import (
    AccessDenied,
    InvalidArgument,
    IsADirectory,
    NoSuchEntity,
    NotADirectory,
    NotEmpty,
    PermissionError_,
)

from tests.conftest import creds_of


@pytest.fixture
def vfs(userdb):
    v = VFS()
    v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
    v.mkdir("/work", ROOT_CREDS, mode=0o777)
    return v


class TestRename:
    def test_simple_move(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/work/a", alice, mode=0o600, data=b"x")
        vfs.rename("/work/a", "/work/b", alice)
        assert vfs.read("/work/b", alice) == b"x"
        assert not vfs.exists("/work/a", alice)

    def test_move_between_directories(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.mkdir("/work/src", alice, mode=0o700)
        vfs.mkdir("/work/dst", alice, mode=0o700)
        vfs.create("/work/src/f", alice, mode=0o600, data=b"d")
        vfs.rename("/work/src/f", "/work/dst/f", alice)
        assert vfs.read("/work/dst/f", alice) == b"d"

    def test_move_directory(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.mkdir("/work/d", alice, mode=0o700)
        vfs.create("/work/d/inner", alice, mode=0o600, data=b"i")
        vfs.rename("/work/d", "/work/renamed", alice)
        assert vfs.read("/work/renamed/inner", alice) == b"i"

    def test_overwrite_existing_file(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/work/a", alice, mode=0o600, data=b"new")
        vfs.create("/work/b", alice, mode=0o600, data=b"old")
        vfs.rename("/work/a", "/work/b", alice)
        assert vfs.read("/work/b", alice) == b"new"

    def test_overwrite_nonempty_dir_rejected(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.mkdir("/work/a", alice)
        vfs.mkdir("/work/b", alice)
        vfs.create("/work/b/f", alice)
        with pytest.raises(NotEmpty):
            vfs.rename("/work/a", "/work/b", alice)

    def test_file_over_dir_rejected(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/work/f", alice)
        vfs.mkdir("/work/d", alice)
        with pytest.raises(IsADirectory):
            vfs.rename("/work/f", "/work/d", alice)
        with pytest.raises(NotADirectory):
            vfs.rename("/work/d", "/work/f", alice)

    def test_rename_to_self_is_noop(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/work/a", alice, mode=0o600, data=b"x")
        vfs.rename("/work/a", "/work/a", alice)
        assert vfs.read("/work/a", alice) == b"x"

    def test_missing_source(self, vfs, userdb):
        with pytest.raises(NoSuchEntity):
            vfs.rename("/work/none", "/work/x", creds_of(userdb, "alice"))

    def test_needs_write_on_both_parents(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.mkdir("/work/mine", alice, mode=0o755)
        vfs.create("/work/mine/f", alice)
        with pytest.raises(AccessDenied):
            vfs.rename("/work/mine/f", "/tmp/f", bob)

    def test_sticky_blocks_foreign_move(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/alicefile", alice, mode=0o644)
        with pytest.raises(PermissionError_):
            vfs.rename("/tmp/alicefile", "/tmp/stolen", bob)

    def test_sticky_blocks_foreign_replace(self, vfs, userdb):
        alice = creds_of(userdb, "alice").with_umask(0)
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/target", alice, mode=0o666)
        vfs.create("/tmp/mine", bob, mode=0o600)
        with pytest.raises(PermissionError_):
            vfs.rename("/tmp/mine", "/tmp/target", bob)

    def test_cross_filesystem_rejected(self, vfs, userdb):
        scratch = Filesystem("scratch")
        vfs.mount("/scratch", scratch, creds=ROOT_CREDS)
        scratch.root.mode = 0o1777
        alice = creds_of(userdb, "alice")
        vfs.create("/work/f", alice)
        with pytest.raises(InvalidArgument):
            vfs.rename("/work/f", "/scratch/f", alice)

    def test_root_moves_anything(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/tmp/af", alice, mode=0o600)
        vfs.rename("/tmp/af", "/tmp/moved", ROOT_CREDS)
        assert vfs.exists("/tmp/moved", ROOT_CREDS)
