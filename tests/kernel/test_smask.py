"""Unit tests: the File Permission Handler (smask + ACL restriction).

These exercise the exact claims of Section IV-C and the appendix: world bits
blocked on create *and chmod* for unprivileged users, ACL grants limited to
the caller's own groups, root exempt, and the Lustre LU-4746 create bypass
when a filesystem does not honor the smask accessor.
"""

import pytest

from repro.kernel import (
    AclEntry,
    Filesystem,
    LLSC_KERNEL,
    PAPER_SMASK,
    RELAXED_SMASK,
    ROOT_CREDS,
    STOCK_KERNEL,
    VFS,
)
from repro.kernel.errors import PermissionError_
from repro.kernel.smask import FilePermissionHandler

from tests.conftest import creds_of


@pytest.fixture
def llsc_vfs(userdb):
    v = VFS(handler=LLSC_KERNEL)
    v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
    return v


def smasked(userdb, name):
    return creds_of(userdb, name, smask=PAPER_SMASK)


class TestEffectiveMode:
    def test_world_bits_stripped(self):
        h = FilePermissionHandler()
        creds = smasked_creds = None
        from repro.kernel.users import Credentials
        c = Credentials(uid=1000, egid=1000, groups=frozenset({1000}),
                        smask=PAPER_SMASK)
        assert h.effective_mode(0o777, c) == 0o770
        assert h.effective_mode(0o666, c) == 0o660
        assert h.effective_mode(0o644, c) == 0o640

    def test_root_exempt(self):
        h = FilePermissionHandler()
        assert h.effective_mode(0o777, ROOT_CREDS) == 0o777

    def test_disabled_handler_is_noop(self):
        from repro.kernel.users import Credentials
        c = Credentials(uid=1000, egid=1000, groups=frozenset({1000}),
                        smask=PAPER_SMASK)
        assert STOCK_KERNEL.effective_mode(0o777, c) == 0o777

    def test_relaxed_smask_allows_world_rx(self):
        from repro.kernel.users import Credentials
        c = Credentials(uid=1000, egid=1000, groups=frozenset({1000}),
                        smask=RELAXED_SMASK)
        h = FilePermissionHandler()
        assert h.effective_mode(0o755, c) == 0o755
        assert h.effective_mode(0o757, c) == 0o755  # w still blocked

    def test_setuid_setgid_sticky_preserved(self):
        from repro.kernel.users import Credentials
        c = Credentials(uid=1000, egid=1000, groups=frozenset({1000}),
                        smask=PAPER_SMASK)
        h = FilePermissionHandler()
        assert h.effective_mode(0o2770, c) == 0o2770


class TestSmaskOnCreate:
    def test_create_cannot_produce_world_bits(self, llsc_vfs, userdb):
        alice = smasked(userdb, "alice").with_umask(0)
        inode = llsc_vfs.create("/tmp/f", alice, mode=0o666)
        assert inode.mode == 0o660

    def test_mkdir_cannot_produce_world_bits(self, llsc_vfs, userdb):
        alice = smasked(userdb, "alice").with_umask(0)
        inode = llsc_vfs.mkdir("/tmp/d", alice, mode=0o777)
        assert inode.mode == 0o770

    def test_root_create_keeps_world_bits(self, llsc_vfs):
        inode = llsc_vfs.create("/tmp/pub", ROOT_CREDS, mode=0o644)
        assert inode.mode == 0o644


class TestSmaskOnChmod:
    """'similar to setting umask 007, but it is immutable and enforced
    (even on chmod)'."""

    def test_chmod_777_silently_stripped_to_770(self, llsc_vfs, userdb):
        alice = smasked(userdb, "alice")
        llsc_vfs.create("/tmp/f", alice, mode=0o600)
        assert llsc_vfs.chmod("/tmp/f", alice, 0o777) == 0o770

    def test_chmod_cannot_expose_to_stranger(self, llsc_vfs, userdb):
        alice = smasked(userdb, "alice")
        bob = creds_of(userdb, "bob")
        llsc_vfs.create("/tmp/f", alice, mode=0o600, data=b"secret")
        llsc_vfs.chmod("/tmp/f", alice, 0o666)
        from repro.kernel.errors import AccessDenied
        with pytest.raises(AccessDenied):
            llsc_vfs.read("/tmp/f", bob)

    def test_stock_kernel_chmod_leaks(self, userdb):
        v = VFS(handler=STOCK_KERNEL)
        v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        v.create("/tmp/f", alice, mode=0o600, data=b"secret")
        v.chmod("/tmp/f", alice, 0o666)
        assert v.read("/tmp/f", bob) == b"secret"  # the leak smask blocks

    def test_root_chmod_unaffected(self, llsc_vfs):
        llsc_vfs.create("/tmp/pub", ROOT_CREDS, mode=0o600)
        assert llsc_vfs.chmod("/tmp/pub", ROOT_CREDS, 0o644) == 0o644


class TestAclRestriction:
    def test_grant_to_own_group_allowed(self, llsc_vfs, userdb):
        carol = smasked(userdb, "carol")
        fusion = userdb.group("fusion").gid
        llsc_vfs.create("/tmp/f", carol)
        llsc_vfs.setfacl("/tmp/f", carol, AclEntry("group", fusion, 4))
        assert llsc_vfs.getfacl("/tmp/f", carol)

    def test_grant_to_foreign_group_denied(self, llsc_vfs, userdb):
        alice = smasked(userdb, "alice")
        fusion = userdb.group("fusion").gid
        llsc_vfs.create("/tmp/f", alice)
        with pytest.raises(PermissionError_):
            llsc_vfs.setfacl("/tmp/f", alice, AclEntry("group", fusion, 4))

    def test_grant_to_foreign_uid_denied(self, llsc_vfs, userdb):
        alice = smasked(userdb, "alice")
        bob = creds_of(userdb, "bob")
        llsc_vfs.create("/tmp/f", alice)
        with pytest.raises(PermissionError_):
            llsc_vfs.setfacl("/tmp/f", alice, AclEntry("user", bob.uid, 4))

    def test_stock_kernel_allows_foreign_acl(self, userdb):
        v = VFS(handler=STOCK_KERNEL)
        v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        v.create("/tmp/f", alice, mode=0o600, data=b"s")
        v.setfacl("/tmp/f", alice, AclEntry("user", bob.uid, 4))
        assert v.read("/tmp/f", bob) == b"s"  # leak blocked by the patch

    def test_root_can_grant_anything(self, llsc_vfs, userdb):
        bob = creds_of(userdb, "bob")
        llsc_vfs.create("/tmp/f", ROOT_CREDS)
        llsc_vfs.setfacl("/tmp/f", ROOT_CREDS, AclEntry("user", bob.uid, 4))


class TestLustreBypass:
    """Pre-LU-4746 Lustre read the raw umask: smask bypassed on create."""

    def _mounted(self, userdb, honors):
        v = VFS(handler=LLSC_KERNEL)
        fs = Filesystem("lustre", honors_smask=honors)
        v.mount("/scratch", fs, creds=ROOT_CREDS)
        # scratch root must be writable by users
        v.resolve("/scratch", ROOT_CREDS).mode = 0o1777
        return v

    def test_old_lustre_create_bypasses_smask(self, userdb):
        v = self._mounted(userdb, honors=False)
        alice = smasked(userdb, "alice").with_umask(0)
        inode = v.create("/scratch/f", alice, mode=0o666)
        assert inode.mode == 0o666  # the bug

    def test_patched_lustre_honors_smask(self, userdb):
        v = self._mounted(userdb, honors=True)
        alice = smasked(userdb, "alice").with_umask(0)
        inode = v.create("/scratch/f", alice, mode=0o666)
        assert inode.mode == 0o660

    def test_chmod_still_enforced_on_old_lustre(self, userdb):
        """The chmod path goes through the generic kernel, so even the buggy
        Lustre cannot re-add world bits via chmod."""
        v = self._mounted(userdb, honors=False)
        alice = smasked(userdb, "alice")
        v.create("/scratch/f", alice, mode=0o600)
        assert v.chmod("/scratch/f", alice, 0o666) == 0o660
