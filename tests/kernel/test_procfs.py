"""Unit tests: process table, /proc hidepid semantics, signals."""

import pytest

from repro.kernel import ProcMountOptions, ProcFS, ProcessTable, SIGKILL
from repro.kernel.errors import AccessDenied, NoSuchProcess, PermissionError_

from tests.conftest import creds_of


@pytest.fixture
def table(userdb):
    t = ProcessTable("n1")
    t.spawn(creds_of(userdb, "alice"), ["python", "train.py", "--lr", "0.1"])
    t.spawn(creds_of(userdb, "bob"),
            ["mysql", "--password=hunter2"])  # CVE-2020-27746-style argv secret
    t.spawn(creds_of(userdb, "root"), ["slurmd"], daemon=True)
    return t


class TestProcessTable:
    def test_init_always_present(self, table):
        assert 1 in table.pids()
        assert table.get(1).comm == "init"

    def test_spawn_assigns_increasing_pids(self, table, userdb):
        a = table.spawn(creds_of(userdb, "alice"), ["a"])
        b = table.spawn(creds_of(userdb, "alice"), ["b"])
        assert b.pid > a.pid

    def test_comm_truncated_to_15_chars(self, table, userdb):
        p = table.spawn(creds_of(userdb, "alice"),
                        ["/usr/bin/averyveryverylongname"])
        assert p.comm == "averyveryverylo"

    def test_kill_own_process(self, table, userdb):
        alice = creds_of(userdb, "alice")
        p = table.spawn(alice, ["x"])
        table.kill(alice, p.pid, SIGKILL)
        assert not table.get(p.pid).alive

    def test_kill_foreign_process_denied(self, table, userdb):
        bob_proc = next(p for p in table.processes()
                        if p.creds.uid == creds_of(userdb, "bob").uid)
        with pytest.raises(PermissionError_):
            table.kill(creds_of(userdb, "alice"), bob_proc.pid)
        assert table.get(bob_proc.pid).alive

    def test_root_kills_anyone(self, table, userdb):
        p = next(p for p in table.processes() if p.creds.uid != 0)
        table.kill(creds_of(userdb, "root"), p.pid, SIGKILL)
        assert not table.get(p.pid).alive

    def test_kill_dead_process_raises(self, table, userdb):
        alice = creds_of(userdb, "alice")
        p = table.spawn(alice, ["x"])
        table.kill(alice, p.pid, SIGKILL)
        with pytest.raises(NoSuchProcess):
            table.kill(alice, p.pid, SIGKILL)

    def test_kill_job_reaps_all_job_processes(self, table, userdb):
        alice = creds_of(userdb, "alice")
        p1 = table.spawn(alice, ["t1"], job_id=7)
        p2 = table.spawn(alice, ["t2"], job_id=7)
        other = table.spawn(alice, ["t3"], job_id=8)
        killed = table.kill_job(7)
        assert set(killed) == {p1.pid, p2.pid}
        assert table.get(other.pid).alive

    def test_total_rss(self, userdb):
        t = ProcessTable()
        t.spawn(creds_of(userdb, "alice"), ["a"], rss_mb=100)
        t.spawn(creds_of(userdb, "alice"), ["b"], rss_mb=50)
        assert t.total_rss_mb() == 160  # + init's 10


def fs(table, hidepid, gid=None):
    return ProcFS(table, ProcMountOptions(hidepid=hidepid, gid=gid))


class TestHidepid0:
    def test_everyone_sees_everything(self, table, userdb):
        view = fs(table, 0)
        alice = creds_of(userdb, "alice")
        assert view.list_pids(alice) == table.pids()
        bob_pid = next(p.pid for p in table.processes()
                       if "mysql" in p.cmdline)
        assert "hunter2" in view.read_cmdline(alice, bob_pid)

    def test_visible_users_includes_all(self, table, userdb):
        view = fs(table, 0)
        alice = creds_of(userdb, "alice")
        assert len(view.visible_users(alice)) >= 3


class TestHidepid1:
    def test_foreign_pids_listed_but_unreadable(self, table, userdb):
        view = fs(table, 1)
        alice = creds_of(userdb, "alice")
        bob_pid = next(p.pid for p in table.processes()
                       if "mysql" in p.cmdline)
        assert bob_pid in view.list_pids(alice)  # dir visible
        with pytest.raises(AccessDenied):
            view.read_cmdline(alice, bob_pid)  # contents not

    def test_own_process_readable(self, table, userdb):
        view = fs(table, 1)
        alice = creds_of(userdb, "alice")
        own = next(p.pid for p in table.processes()
                   if p.creds.uid == alice.uid)
        assert "train.py" in view.read_cmdline(alice, own)


class TestHidepid2:
    def test_foreign_pids_invisible(self, table, userdb):
        view = fs(table, 2)
        alice = creds_of(userdb, "alice")
        pids = view.list_pids(alice)
        assert all(table.get(p).creds.uid == alice.uid for p in pids)

    def test_foreign_pid_read_is_esrch_not_eacces(self, table, userdb):
        """hidepid=2 makes other pids indistinguishable from nonexistent."""
        view = fs(table, 2)
        alice = creds_of(userdb, "alice")
        bob_pid = next(p.pid for p in table.processes()
                       if "mysql" in p.cmdline)
        with pytest.raises(NoSuchProcess):
            view.read_cmdline(alice, bob_pid)

    def test_daemons_hidden_too(self, table, userdb):
        view = fs(table, 2)
        alice = creds_of(userdb, "alice")
        assert all(view.read_status(alice, p)["Uid"] == alice.uid
                   for p in view.list_pids(alice))

    def test_root_sees_everything(self, table, userdb):
        view = fs(table, 2)
        assert view.list_pids(creds_of(userdb, "root")) == table.pids()

    def test_cve_2020_27746_mitigated(self, table, userdb):
        """The argv secret is unreachable by other users under hidepid=2."""
        view = fs(table, 2)
        alice = creds_of(userdb, "alice")
        leaked = [row.cmdline for row in view.ps(alice)]
        assert not any("hunter2" in c for c in leaked)
        with pytest.raises(NoSuchProcess):
            bob_pid = next(p.pid for p in table.processes()
                           if "mysql" in p.cmdline)
            view.read_cmdline(alice, bob_pid)


class TestGidExemption:
    def test_exempt_group_sees_all(self, table, userdb):
        sam = userdb.user("sam")
        grp = userdb.add_system_group("seepid", members={sam.uid})
        view = fs(table, 2, gid=grp.gid)
        sam_creds = userdb.credentials_for(sam)
        assert view.list_pids(sam_creds) == table.pids()

    def test_non_member_staff_still_blind(self, table, userdb):
        grp = userdb.add_system_group("seepid", members=set())
        view = fs(table, 2, gid=grp.gid)
        alice = creds_of(userdb, "alice")
        assert all(table.get(p).creds.uid == alice.uid
                   for p in view.list_pids(alice))

    def test_proc_exempt_flag_works(self, table, userdb):
        """seepid sets proc_exempt on the session credentials."""
        grp = userdb.add_system_group("seepid", members=set())
        view = fs(table, 2, gid=grp.gid)
        from dataclasses import replace
        alice = replace(creds_of(userdb, "alice"), proc_exempt=True)
        assert view.list_pids(alice) == table.pids()


class TestBadOptions:
    def test_invalid_hidepid_rejected(self):
        with pytest.raises(ValueError):
            ProcMountOptions(hidepid=3)
