"""Process-table indexes and the procfs fast paths (E24).

The table keeps per-uid and per-job live indexes so hidepid-filtered
views and the scheduler epilog touch O(own processes).  The fast paths
must be invisible: every query answers identically to the naive
filter-the-whole-table reference (``ProcFS(naive=True)``).
"""

from __future__ import annotations

import pytest

from repro.kernel import ProcMountOptions, UserDB
from repro.kernel.errors import NoSuchProcess
from repro.kernel.process import ProcessTable
from repro.kernel.procfs import ProcFS


@pytest.fixture
def populated(userdb):
    """A table with daemons and two users' job processes."""
    table = ProcessTable("n1")
    root = userdb.credentials_for(userdb.user("root"))
    table.spawn(root, ["slurmd"], daemon=True, rss_mb=50)
    for user, job in (("alice", 7), ("alice", 7), ("alice", 8),
                      ("bob", 9), ("bob", 9)):
        creds = userdb.credentials_for(userdb.user(user))
        table.spawn(creds, [f"{user}-app"], job_id=job, rss_mb=100)
    return table


def viewers(userdb, exempt_gid=None):
    out = {}
    for name in ("root", "alice", "bob", "carol", "sam"):
        creds = userdb.credentials_for(userdb.user(name))
        if name == "sam" and exempt_gid is not None:
            creds = creds.with_extra_group(exempt_gid)
        out[name] = creds
    return out


class TestProcfsFastPathsMatchNaive:
    @pytest.mark.parametrize("hidepid", [0, 1, 2])
    def test_all_views_identical_to_naive(self, userdb, populated, hidepid):
        exempt = userdb.add_system_group(
            "seepid", members={userdb.user("sam").uid})
        opts = ProcMountOptions(hidepid=hidepid, gid=exempt.gid)
        fast = ProcFS(populated, opts)
        naive = ProcFS(populated, opts, naive=True)
        for name, creds in viewers(userdb, exempt.gid).items():
            assert fast.list_pids(creds) == naive.list_pids(creds), name
            assert fast.ps(creds) == naive.ps(creds), name
            assert fast.visible_users(creds) == naive.visible_users(creds), \
                name

    def test_views_follow_process_death(self, userdb, populated):
        opts = ProcMountOptions(hidepid=2)
        fast = ProcFS(populated, opts)
        naive = ProcFS(populated, opts, naive=True)
        alice = userdb.credentials_for(userdb.user("alice"))
        before = fast.list_pids(alice)
        assert len(before) == 3
        populated.kill_job(7)
        assert fast.list_pids(alice) == naive.list_pids(alice)
        assert len(fast.list_pids(alice)) == 1
        assert fast.visible_users(alice) == {alice.uid}
        populated.kill_job(8)
        assert fast.visible_users(alice) == set()
        assert naive.visible_users(alice) == set()


class TestTableIndexes:
    def test_kill_job_reaps_only_that_job(self, userdb, populated):
        killed = populated.kill_job(7)
        assert len(killed) == 2
        assert killed == sorted(killed)
        for pid in killed:
            assert not populated.get(pid).alive
        # alice's job 8 and bob's job 9 untouched
        alice = userdb.user("alice").uid
        bob = userdb.user("bob").uid
        assert len(populated.of_user(alice)) == 1
        assert len(populated.of_user(bob)) == 2
        assert populated.kill_job(7) == []  # idempotent

    def test_of_user_is_pid_sorted_and_live_only(self, userdb, populated):
        alice = userdb.user("alice").uid
        procs = populated.of_user(alice)
        assert [p.pid for p in procs] == sorted(p.pid for p in procs)
        populated.kill(userdb.credentials_for(userdb.user("alice")),
                       procs[0].pid)
        assert len(populated.of_user(alice)) == 2

    def test_total_rss_tracks_spawn_and_reap(self, userdb):
        table = ProcessTable("n1")
        base = table.total_rss_mb()  # init
        creds = userdb.credentials_for(userdb.user("alice"))
        p1 = table.spawn(creds, ["a"], rss_mb=123)
        table.spawn(creds, ["b"], rss_mb=77)
        assert table.total_rss_mb() == base + 200
        table.reap(p1.pid)
        assert table.total_rss_mb() == base + 77

    def test_double_reap_does_not_corrupt_indexes(self, userdb):
        table = ProcessTable("n1")
        creds = userdb.credentials_for(userdb.user("alice"))
        p = table.spawn(creds, ["a"], rss_mb=40, job_id=3)
        base = table.total_rss_mb()
        table.reap(p.pid)
        table.reap(p.pid)
        assert table.total_rss_mb() == base - 40
        assert table.of_user(creds.uid) == []
        assert table.kill_job(3) == []

    def test_dead_pids_leave_listings_but_stay_gettable(self, userdb):
        table = ProcessTable("n1")
        creds = userdb.credentials_for(userdb.user("alice"))
        p = table.spawn(creds, ["a"])
        table.reap(p.pid, exit_code=1)
        assert p.pid not in table.pids()
        assert table.get(p.pid).exit_code == 1  # history retained
        with pytest.raises(NoSuchProcess):
            table.kill(creds, p.pid)
