"""Unit tests: symlinks, hardlinks, protected_symlinks/hardlinks sysctls.

The /tmp symlink attack is the classic hazard of the world-writable shared
directories Section IV-C worries about; ``fs.protected_symlinks`` (default
on, as on every modern distribution) is the kernel-side mitigation, and the
smask keeps attack *payloads* unreadable regardless.
"""

import pytest

from repro.kernel import FileKind, ROOT_CREDS, VFS
from repro.kernel.errors import (
    AccessDenied,
    Exists,
    InvalidArgument,
    NoSuchEntity,
    PermissionError_,
)

from tests.conftest import creds_of


@pytest.fixture
def vfs(userdb):
    v = VFS()
    v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
    v.mkdir("/home", ROOT_CREDS, mode=0o755)
    v.mkdir("/home/alice", ROOT_CREDS, mode=0o755)
    v.chown("/home/alice", ROOT_CREDS,
            uid=userdb.user("alice").uid,
            gid=userdb.user("alice").primary_gid)
    return v


class TestSymlinkBasics:
    def test_create_and_follow(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/data", alice, mode=0o644, data=b"content")
        vfs.symlink("/home/alice/data", "/home/alice/lnk", alice)
        assert vfs.read("/home/alice/lnk", alice) == b"content"

    def test_relative_target(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/data", alice, mode=0o644, data=b"x")
        vfs.symlink("data", "/home/alice/rel", alice)
        assert vfs.read("/home/alice/rel", alice) == b"x"

    def test_readlink(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.symlink("/etc/passwd", "/home/alice/l", alice)
        assert vfs.readlink("/home/alice/l", alice) == "/etc/passwd"

    def test_readlink_on_regular_file(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/f", alice)
        with pytest.raises(InvalidArgument):
            vfs.readlink("/home/alice/f", alice)

    def test_lstat_vs_stat(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/data", alice, mode=0o644, data=b"content")
        vfs.symlink("data", "/home/alice/l", alice)
        assert vfs.lstat("/home/alice/l", alice).kind is FileKind.SYMLINK
        assert vfs.stat("/home/alice/l", alice).kind is FileKind.FILE

    def test_dangling_link(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.symlink("/nope", "/home/alice/dangle", alice)
        with pytest.raises(NoSuchEntity):
            vfs.read("/home/alice/dangle", alice)
        # but lstat works
        assert vfs.lstat("/home/alice/dangle", alice).kind is FileKind.SYMLINK

    def test_symlink_loop_eloop(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.symlink("/home/alice/b", "/home/alice/a", alice)
        vfs.symlink("/home/alice/a", "/home/alice/b", alice)
        with pytest.raises(InvalidArgument):
            vfs.read("/home/alice/a", alice)

    def test_symlink_to_directory_traversal(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.mkdir("/home/alice/d", alice, mode=0o755)
        vfs.create("/home/alice/d/f", alice, mode=0o644, data=b"deep")
        vfs.symlink("/home/alice/d", "/home/alice/dl", alice)
        assert vfs.read("/home/alice/dl/f", alice) == b"deep"

    def test_unlink_removes_link_not_target(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/data", alice, mode=0o644, data=b"x")
        vfs.symlink("data", "/home/alice/l", alice)
        vfs.unlink("/home/alice/l", alice)
        assert vfs.read("/home/alice/data", alice) == b"x"

    def test_duplicate_linkpath(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.symlink("/a", "/home/alice/l", alice)
        with pytest.raises(Exists):
            vfs.symlink("/b", "/home/alice/l", alice)

    def test_symlink_permissions_of_target_enforced(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/home/alice/secret", alice, mode=0o600, data=b"s")
        vfs.symlink("/home/alice/secret", "/tmp/pointer", bob)
        with pytest.raises(AccessDenied):
            vfs.read("/tmp/pointer", bob)  # link grants nothing


class TestProtectedSymlinks:
    def test_foreign_link_in_tmp_not_followed(self, vfs, userdb):
        """The classic attack: bob plants /tmp/report -> alice's file;
        alice's job writes there blindly.  protected_symlinks refuses."""
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/home/alice/.bashrc", alice, mode=0o644, data=b"PS1=ok")
        vfs.symlink("/home/alice/.bashrc", "/tmp/report", bob)
        with pytest.raises(AccessDenied):
            vfs.write("/tmp/report", alice, b"pwned")
        assert vfs.read("/home/alice/.bashrc", alice) == b"PS1=ok"

    def test_own_link_in_tmp_followed(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/out", alice, mode=0o644)
        vfs.symlink("/home/alice/out", "/tmp/mylink", alice)
        vfs.write("/tmp/mylink", alice, b"fine")
        assert vfs.read("/home/alice/out", alice) == b"fine"

    def test_sysctl_off_reopens_attack(self, userdb):
        v = VFS(protected_symlinks=False)
        v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
        v.mkdir("/home", ROOT_CREDS, mode=0o755)
        v.mkdir("/home/alice", ROOT_CREDS, mode=0o777)
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        v.create("/home/alice/target", alice, mode=0o666)
        v.symlink("/home/alice/target", "/tmp/report", bob)
        v.write("/tmp/report", alice, b"redirected")  # attack works
        assert v.read("/home/alice/target", alice) == b"redirected"

    def test_links_outside_sticky_dirs_unrestricted(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.mkdir("/home/alice/pub", alice, mode=0o755)
        vfs.create("/home/alice/pub/data", alice, mode=0o644, data=b"d")
        vfs.symlink("/home/alice/pub/data", "/home/alice/pub/l", alice)
        assert vfs.read("/home/alice/pub/l", bob) == b"d"

    def test_root_follows_anything(self, vfs, userdb):
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/bobfile", bob, mode=0o644, data=b"b")
        vfs.symlink("/tmp/bobfile", "/tmp/boblink", bob)
        assert vfs.read("/tmp/boblink", ROOT_CREDS) == b"b"


class TestHardlinks:
    def test_link_shares_inode(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/a", alice, mode=0o644, data=b"x")
        vfs.link("/home/alice/a", "/home/alice/b", alice)
        vfs.write("/home/alice/a", alice, b"updated")
        assert vfs.read("/home/alice/b", alice) == b"updated"
        assert vfs.stat("/home/alice/b", alice).nlink == 2

    def test_unlink_decrements_nlink(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/a", alice, mode=0o644, data=b"x")
        vfs.link("/home/alice/a", "/home/alice/b", alice)
        vfs.unlink("/home/alice/a", alice)
        assert vfs.stat("/home/alice/b", alice).nlink == 1
        assert vfs.read("/home/alice/b", alice) == b"x"

    def test_no_directory_hardlinks(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.mkdir("/home/alice/d", alice)
        with pytest.raises(PermissionError_):
            vfs.link("/home/alice/d", "/home/alice/d2", alice)

    def test_protected_hardlinks_blocks_foreign_pin(self, vfs, userdb):
        """bob cannot pin alice's 0644 file into /tmp (the hardlink attack
        that preserves a vulnerable file across the owner's deletion)."""
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        vfs.create("/home/alice/pub", alice, mode=0o644, data=b"v1")
        vfs.chmod("/home/alice", alice, 0o755)
        with pytest.raises(PermissionError_):
            vfs.link("/home/alice/pub", "/tmp/pinned", bob)

    def test_foreign_link_allowed_with_rw_access(self, vfs, userdb):
        alice = creds_of(userdb, "alice").with_umask(0)
        bob = creds_of(userdb, "bob")
        vfs.create("/tmp/shared", alice, mode=0o666, data=b"x")
        vfs.link("/tmp/shared", "/tmp/shared2", bob)  # rw access: allowed

    def test_sysctl_off_allows_foreign_pin(self, userdb):
        v = VFS(protected_hardlinks=False)
        v.mkdir("/tmp", ROOT_CREDS, mode=0o1777)
        alice = creds_of(userdb, "alice")
        bob = creds_of(userdb, "bob")
        v.create("/tmp/af", alice, mode=0o644, data=b"v")
        v.link("/tmp/af", "/tmp/pinned", bob)
        assert v.stat("/tmp/pinned", bob).nlink == 2

    def test_cross_filesystem_link_rejected(self, vfs, userdb):
        from repro.kernel import Filesystem
        other = Filesystem("scratch")
        vfs.mount("/scratch", other, creds=ROOT_CREDS)
        other.root.mode = 0o1777
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/a", alice, mode=0o644)
        with pytest.raises(InvalidArgument):
            vfs.link("/home/alice/a", "/scratch/b", alice)

    def test_root_links_anything(self, vfs, userdb):
        alice = creds_of(userdb, "alice")
        vfs.create("/home/alice/a", alice, mode=0o600)
        vfs.link("/home/alice/a", "/home/alice/rootlink", ROOT_CREDS)
