"""Unit tests: /proc aggregate files (loadavg, meminfo) under hidepid."""

from repro.kernel import ProcMountOptions, ProcFS, ProcessTable

from tests.conftest import creds_of


class TestAggregates:
    def _table(self, userdb):
        t = ProcessTable()
        t.spawn(creds_of(userdb, "alice"), ["a"], rss_mb=100)
        t.spawn(creds_of(userdb, "alice"), ["b"], rss_mb=50)
        t.spawn(creds_of(userdb, "bob"), ["c"], rss_mb=30)
        return t

    def test_loadavg_counts_user_processes(self, userdb):
        view = ProcFS(self._table(userdb), ProcMountOptions(hidepid=2))
        bob = creds_of(userdb, "bob")
        load = view.loadavg(bob)
        assert load["running"] == 3  # all user procs, not just bob's
        assert load["total"] == 4    # + init

    def test_meminfo_aggregates_all_rss(self, userdb):
        view = ProcFS(self._table(userdb), ProcMountOptions(hidepid=2))
        bob = creds_of(userdb, "bob")
        assert view.meminfo(bob)["used_mb"] == 100 + 50 + 30 + 10  # + init

    def test_aggregates_identical_across_hidepid(self, userdb):
        """hidepid hides attribution, not the aggregate — the seepid
        rationale in one assertion."""
        t = self._table(userdb)
        bob = creds_of(userdb, "bob")
        results = [
            (ProcFS(t, ProcMountOptions(hidepid=h)).loadavg(bob),
             ProcFS(t, ProcMountOptions(hidepid=h)).meminfo(bob))
            for h in (0, 1, 2)
        ]
        assert results[0] == results[1] == results[2]
        # while per-process attribution collapses
        assert len(ProcFS(t, ProcMountOptions(hidepid=2)).ps(bob)) == 1
