"""Integration tests: the canned application library end-to-end."""

import pickle

import numpy as np
import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied, TimedOut
from repro.sched import JobState
from repro.workloads.apps import (
    collect_sweep_results,
    serve_pending,
    submit_monte_carlo_pi,
    submit_service,
    submit_sweep,
    submit_training,
)


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=4, gpus_per_node=1,
                         users=("alice", "bob"))


class TestMonteCarloPi:
    def test_estimate_written_and_plausible(self, cluster):
        job = submit_monte_carlo_pi(cluster, "alice", samples=200_000,
                                    seed=7)
        cluster.run()
        assert job.state is JobState.COMPLETED
        alice = cluster.login("alice")
        text = alice.sys.open_read("/home/alice/pi-estimate.txt").decode()
        pi_hat = float(text.split()[0])
        assert abs(pi_hat - np.pi) < 0.05
        out = alice.sys.open_read(job.stdout_path).decode()
        assert "pi ~=" in out

    def test_deterministic_given_seed(self, cluster):
        j1 = submit_monte_carlo_pi(cluster, "alice", seed=3)
        j2 = submit_monte_carlo_pi(cluster, "bob", seed=3)
        cluster.run()
        a = cluster.login("alice").sys.open_read("/home/alice/pi-estimate.txt")
        b = cluster.login("bob").sys.open_read("/home/bob/pi-estimate.txt")
        assert a == b

    def test_result_private(self, cluster):
        submit_monte_carlo_pi(cluster, "alice")
        cluster.run()
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            bob.sys.open_read("/home/alice/pi-estimate.txt")


class TestSweep:
    def test_sweep_results_collected(self, cluster):
        params = [0.5, 1.0, 1.5, 2.0]
        jobs = submit_sweep(cluster, "alice", parameters=params)
        cluster.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        results = collect_sweep_results(cluster, "alice")
        assert results.shape == (4, 3)
        assert np.allclose(results[:, 1], params)
        # sin^2 integral over [0, 2pi] ~ pi for integer frequencies
        assert abs(results[1, 2] - np.pi) < 0.01
        assert abs(results[3, 2] - np.pi) < 0.01

    def test_empty_collection(self, cluster):
        assert collect_sweep_results(cluster, "alice").shape == (0, 3)


class TestService:
    def test_owner_roundtrip(self, cluster):
        job = submit_service(cluster, "alice", port=7777,
                             payload=b"hello v0")
        cluster.run(until=1.0)
        alice = cluster.login("alice")
        conn = alice.socket().connect(job.nodes[0], 7777)
        conn.send(b"GET /")
        assert serve_pending(job) == 1
        assert conn.recv() == b"hello v0"

    def test_stranger_blocked(self, cluster):
        job = submit_service(cluster, "alice", port=7777)
        cluster.run(until=1.0)
        bob = cluster.login("bob")
        with pytest.raises(TimedOut):
            bob.socket().connect(job.nodes[0], 7777)
        assert serve_pending(job) == 0


class TestTraining:
    def test_checkpoint_converges(self, cluster):
        run = submit_training(cluster, "alice", steps=100, seed=5)
        cluster.run()
        assert run.job.state is JobState.COMPLETED
        alice = cluster.login("alice")
        w = pickle.loads(alice.sys.open_read(run.checkpoint_path))
        target = np.random.default_rng(5).standard_normal(16)
        assert np.allclose(w, target, atol=1e-3)

    def test_gpu_residue_scrubbed_by_epilog(self, cluster):
        run = submit_training(cluster, "alice", duration=10.0)
        cluster.run(until=1.0)
        node = cluster.compute(run.job.nodes[0])
        idx = run.job.allocations[0].gpu_indices[0]
        assert node.gpu(idx).dirty  # weights resident during the job
        cluster.run()
        assert not node.gpu(idx).dirty  # epilog scrubbed

    def test_stdout_reports_loss(self, cluster):
        run = submit_training(cluster, "alice", steps=100)
        cluster.run()
        out = cluster.login("alice").sys.open_read(
            run.job.stdout_path).decode()
        assert "final loss" in out
