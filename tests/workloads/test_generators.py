"""Unit tests: job generators and multi-user traces."""

import pytest

from repro.sim import make_rng
from repro.workloads import (
    UserProfile,
    build_trace,
    monte_carlo_jobs,
    mpi_jobs,
    submit_all,
    sweep_jobs,
)

from tests.sched.conftest import build_sched


class TestGenerators:
    def test_sweep_shape(self, userdb):
        reqs = sweep_jobs(userdb.user("alice"), make_rng(1), n_jobs=50,
                          horizon=1000.0)
        assert len(reqs) == 50
        assert all(r.spec.ntasks == 1 for r in reqs)
        assert all(0 <= r.arrival < 1000.0 for r in reqs)
        assert all(r.duration >= 1.0 for r in reqs)
        arr = [r.arrival for r in reqs]
        assert arr == sorted(arr)

    def test_sweep_deterministic(self, userdb):
        a = sweep_jobs(userdb.user("alice"), make_rng(7), n_jobs=10,
                       horizon=100.0)
        b = sweep_jobs(userdb.user("alice"), make_rng(7), n_jobs=10,
                       horizon=100.0)
        assert [r.arrival for r in a] == [r.arrival for r in b]
        assert [r.duration for r in a] == [r.duration for r in b]

    def test_monte_carlo_within_horizon(self, userdb):
        reqs = monte_carlo_jobs(userdb.user("bob"), make_rng(2), n_jobs=30,
                                horizon=500.0)
        assert all(r.arrival < 500.0 for r in reqs)

    def test_mpi_width(self, userdb):
        reqs = mpi_jobs(userdb.user("carol"), make_rng(3), n_jobs=5,
                        horizon=1000.0, ntasks=16)
        assert all(r.spec.ntasks == 16 for r in reqs)
        assert all(r.duration >= 10.0 for r in reqs)

    def test_submit_all_runs(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=4, cores=8)
        reqs = sweep_jobs(userdb.user("alice"), make_rng(4), n_jobs=20,
                          horizon=100.0, mean_duration=10.0)
        jobs = submit_all(sched, reqs)
        engine.run()
        assert all(j.state.finished for j in jobs)


class TestTraces:
    def _profiles(self, userdb):
        return [
            UserProfile(userdb.user("alice"), "sweep", weight=2.0),
            UserProfile(userdb.user("bob"), "mc", weight=1.0),
            UserProfile(userdb.user("carol"), "mpi", weight=1.0),
        ]

    def test_offered_load_tracks_target(self, userdb):
        trace = build_trace(self._profiles(userdb), make_rng(5),
                            horizon=10_000.0, total_cores=64, load=0.5)
        capacity = 64 * 10_000.0
        offered = trace.total_core_seconds / capacity
        assert 0.25 < offered < 0.9  # stochastic but in the right regime

    def test_higher_load_more_work(self, userdb):
        lo = build_trace(self._profiles(userdb), make_rng(5),
                         horizon=5000.0, total_cores=64, load=0.3)
        hi = build_trace(self._profiles(userdb), make_rng(5),
                         horizon=5000.0, total_cores=64, load=0.9)
        assert hi.total_core_seconds > lo.total_core_seconds * 2

    def test_sorted_by_arrival(self, userdb):
        trace = build_trace(self._profiles(userdb), make_rng(6),
                            horizon=1000.0, total_cores=32, load=0.5)
        arr = [r.arrival for r in trace.sorted()]
        assert arr == sorted(arr)

    def test_unknown_kind_rejected(self, userdb):
        with pytest.raises(ValueError):
            build_trace([UserProfile(userdb.user("alice"), "weird")],
                        make_rng(1), horizon=10.0, total_cores=8, load=0.5)

    def test_empty_profiles(self):
        trace = build_trace([], make_rng(1), horizon=10.0, total_cores=8,
                            load=0.5)
        assert trace.requests == []
