"""Unit + integration tests: simulated MPI over the (UBF-governed) fabric."""

import numpy as np
import pytest

from repro.kernel.errors import InvalidArgument, TimedOut
from repro.workloads import MPICommunicator

from tests.net.conftest import build_fabric, proc_on


def make_comm(userdb, usernames, *, ubf: bool, size=None):
    """One rank per entry of *usernames* (cycled over 3 hosts)."""
    hosts = ["c1", "c2", "c3"]
    fabric, nodes, _ = build_fabric(userdb, hosts, ubf=ubf)
    tasks = []
    for i, uname in enumerate(usernames):
        host = hosts[i % len(hosts)]
        tasks.append((nodes[host], proc_on(nodes, host, userdb, uname,
                                           argv=("mpi-rank", str(i)))))
    return MPICommunicator(fabric, tasks)


class TestPointToPoint:
    def test_send_recv_roundtrip(self, userdb):
        comm = make_comm(userdb, ["alice"] * 4, ubf=True)
        comm.send({"x": 1}, src=0, dest=3)
        assert comm.recv(source=0, dest=3) == {"x": 1}

    def test_numpy_payload(self, userdb):
        comm = make_comm(userdb, ["alice"] * 2, ubf=True)
        a = np.arange(100, dtype=np.float64)
        comm.send(a, src=0, dest=1)
        out = comm.recv(source=0, dest=1)
        assert np.array_equal(out, a)

    def test_channels_cached(self, userdb):
        comm = make_comm(userdb, ["alice"] * 2, ubf=True)
        comm.send(1, src=0, dest=1)
        comm.recv(source=0, dest=1)
        comm.send(2, src=0, dest=1)
        assert comm.recv(source=0, dest=1) == 2
        assert comm.fabric.metrics.report()["connects_established"] == 1

    def test_empty_communicator_rejected(self, userdb):
        from repro.net import Fabric
        with pytest.raises(InvalidArgument):
            MPICommunicator(Fabric(), [])


class TestCollectives:
    def test_bcast(self, userdb):
        comm = make_comm(userdb, ["alice"] * 4, ubf=True)
        out = comm.bcast([1, 2, 3], root=0)
        assert out == [[1, 2, 3]] * 4

    def test_scatter(self, userdb):
        comm = make_comm(userdb, ["alice"] * 3, ubf=True)
        out = comm.scatter(["a", "b", "c"], root=0)
        assert out == ["a", "b", "c"]

    def test_scatter_wrong_arity(self, userdb):
        comm = make_comm(userdb, ["alice"] * 3, ubf=True)
        with pytest.raises(InvalidArgument):
            comm.scatter(["a", "b"], root=0)

    def test_gather(self, userdb):
        comm = make_comm(userdb, ["alice"] * 3, ubf=True)
        out = comm.gather([10, 20, 30], root=0)
        assert out == [10, 20, 30]

    def test_allgather(self, userdb):
        comm = make_comm(userdb, ["alice"] * 3, ubf=True)
        assert comm.allgather([1, 2, 3]) == [1, 2, 3]

    def test_allreduce_sum(self, userdb):
        comm = make_comm(userdb, ["alice"] * 4, ubf=True)
        arrays = [np.full(8, float(r)) for r in range(4)]
        out = comm.allreduce(arrays)
        assert np.array_equal(out, np.full(8, 6.0))

    def test_allreduce_max(self, userdb):
        comm = make_comm(userdb, ["alice"] * 3, ubf=True)
        arrays = [np.array([1.0, 5.0]), np.array([4.0, 2.0]),
                  np.array([3.0, 3.0])]
        out = comm.allreduce(arrays, op=np.maximum)
        assert np.array_equal(out, np.array([4.0, 5.0]))

    def test_barrier(self, userdb):
        comm = make_comm(userdb, ["alice"] * 3, ubf=True)
        comm.barrier()  # must simply not raise / deadlock

    def test_single_rank_barrier(self, userdb):
        comm = make_comm(userdb, ["alice"], ubf=True)
        comm.barrier()


class TestUbfInteraction:
    def test_same_user_mpi_unaffected_by_ubf(self, userdb):
        """The headline compatibility claim: a normal (single-user) MPI job
        runs identically with and without the UBF."""
        for ubf in (False, True):
            comm = make_comm(userdb, ["alice"] * 4, ubf=ubf)
            out = comm.allreduce([np.ones(4) for _ in range(4)])
            assert np.array_equal(out, np.full(4, 4.0))

    def test_cross_user_rank_blocked(self, userdb):
        """A 'job' whose ranks run as different users (i.e. an attack
        masquerading as MPI) cannot wire its channels under the UBF."""
        comm = make_comm(userdb, ["alice", "bob"], ubf=True)
        with pytest.raises(TimedOut):
            comm.send(b"x", src=0, dest=1)

    def test_cross_user_rank_allowed_without_ubf(self, userdb):
        comm = make_comm(userdb, ["alice", "bob"], ubf=False)
        comm.send(b"x", src=0, dest=1)
        assert comm.recv(source=0, dest=1) == b"x"

    def test_close_releases_ports(self, userdb):
        comm = make_comm(userdb, ["alice"] * 2, ubf=True)
        comm.send(1, src=0, dest=1)
        comm.close()
        comm2 = make_comm(userdb, ["alice"] * 2, ubf=True)
        comm2.send(2, src=0, dest=1)
        assert comm2.recv(source=0, dest=1) == 2
