"""Unit + integration tests: scp over the fabric (PAM + UBF + DAC)."""

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied, NoSuchEntity
from repro.transfer import RemoteSpec, TransferResult, scp


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=2, n_dtn=1,
                         users=("alice", "bob"))


class TestSpecParsing:
    def test_remote_spec(self):
        s = RemoteSpec.parse("dtn1:/scratch/data.bin")
        assert s.host == "dtn1" and s.path == "/scratch/data.bin"
        assert s.render() == "dtn1:/scratch/data.bin"

    def test_local_spec(self):
        s = RemoteSpec.parse("/home/alice/x")
        assert s.host is None
        assert s.render() == "/home/alice/x"

    def test_absolute_path_with_colon_is_local(self):
        assert RemoteSpec.parse("/home/a:b").host is None


class TestTransfers:
    def test_local_to_dtn(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/tmp/results.csv", mode=0o600, data=b"a,b,c")
        res = scp(cluster, alice, "/tmp/results.csv",
                  "dtn1:/tmp/results.csv")
        assert res == TransferResult("/tmp/results.csv",
                                     "dtn1:/tmp/results.csv", 5)
        dtn = cluster.node("dtn1")
        assert dtn.vfs.read("/tmp/results.csv", alice.creds) == b"a,b,c"

    def test_remote_to_local(self, cluster):
        alice = cluster.login("alice")
        dtn = cluster.node("dtn1")
        dtn.vfs.create("/tmp/incoming.dat", alice.creds, mode=0o600,
                       data=b"payload")
        scp(cluster, alice, "dtn1:/tmp/incoming.dat", "/tmp/incoming.dat")
        assert alice.sys.open_read("/tmp/incoming.dat") == b"payload"

    def test_remote_to_remote(self, cluster):
        """Through-client copy dtn1 -> compute node (with a running job)."""
        alice = cluster.login("alice")
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        dtn = cluster.node("dtn1")
        dtn.vfs.create("/tmp/model.pt", alice.creds, mode=0o600,
                       data=b"weights")
        target = job.nodes[0]
        res = scp(cluster, alice, "dtn1:/tmp/model.pt",
                  f"{target}:/tmp/model.pt")
        assert res.bytes_moved == 7
        node = cluster.node(target)
        assert node.vfs.read("/tmp/model.pt", alice.creds) == b"weights"

    def test_overwrite_existing(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/tmp/f", mode=0o600, data=b"v1")
        scp(cluster, alice, "/tmp/f", "dtn1:/tmp/f")
        alice.sys.open_write("/tmp/f", b"v2-longer")
        scp(cluster, alice, "/tmp/f", "dtn1:/tmp/f")
        dtn = cluster.node("dtn1")
        assert dtn.vfs.read("/tmp/f", alice.creds) == b"v2-longer"

    def test_home_is_shared_so_scp_matches(self, cluster):
        """Copying within the shared /home is trivially consistent."""
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/a.txt", mode=0o600, data=b"x")
        scp(cluster, alice, "/home/alice/a.txt", "dtn1:/home/alice/b.txt")
        assert alice.sys.open_read("/home/alice/b.txt") == b"x"


class TestSecurityGates:
    def test_cannot_fetch_foreign_file(self, cluster):
        """The remote side runs as the authenticated user: DAC applies."""
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/secret", mode=0o600, data=b"s")
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            scp(cluster, bob, "dtn1:/home/alice/secret", "/tmp/loot")

    def test_scp_to_compute_requires_job(self, cluster):
        """pam_slurm gates the transfer exactly like interactive ssh."""
        alice = cluster.login("alice")
        alice.sys.create("/tmp/f", mode=0o600, data=b"x")
        with pytest.raises(AccessDenied):
            scp(cluster, alice, "/tmp/f", "c1:/tmp/f")
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        res = scp(cluster, alice, "/tmp/f", f"{job.nodes[0]}:/tmp/f")
        assert res.bytes_moved == 1

    def test_dtn_exempt_from_pam_slurm(self, cluster):
        """DTNs are multi-user transfer endpoints: no job required."""
        bob = cluster.login("bob")
        bob.sys.create("/tmp/up.bin", mode=0o600, data=b"u")
        scp(cluster, bob, "/tmp/up.bin", "dtn1:/tmp/up.bin")

    def test_missing_source(self, cluster):
        alice = cluster.login("alice")
        with pytest.raises(NoSuchEntity):
            scp(cluster, alice, "dtn1:/tmp/nope", "/tmp/x")

    def test_smask_applies_to_transferred_files(self, cluster):
        """A file scp'd with mode 666 lands without world bits."""
        alice = cluster.login("alice")
        alice.sys.create("/tmp/f", mode=0o600, data=b"x")
        scp(cluster, alice, "/tmp/f", "dtn1:/tmp/g", mode=0o666)
        dtn = cluster.node("dtn1")
        st = dtn.vfs.stat("/tmp/g", alice.creds)
        assert st.mode & 0o007 == 0

    def test_transfer_traffic_counted(self, cluster):
        alice = cluster.login("alice")
        alice.sys.create("/tmp/f", mode=0o600, data=b"z" * 100)
        before = cluster.metrics.report().get("packets_sent", 0)
        scp(cluster, alice, "/tmp/f", "dtn1:/tmp/f")
        assert cluster.metrics.report()["packets_sent"] > before
