"""Unit + integration tests: partitions, debug queue, job arrays, and the
staff load-attribution tool."""

import pytest

from repro import Cluster, LLSC, seepid
from repro.core.tools import attribute_load
from repro.kernel.errors import InvalidArgument, NoSuchEntity
from repro.sched import JobState, Partition


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=2, n_debug=2,
                         users=("alice", "bob"), staff=("sam",))


class TestPartitions:
    def test_default_partition_exists(self, cluster):
        parts = cluster.scheduler.partitions
        assert set(parts) == {"normal", "debug"}
        assert parts["normal"].node_names == ("c1", "c2")
        assert parts["debug"].node_names == ("d1", "d2")

    def test_unknown_partition_rejected(self, cluster):
        with pytest.raises(NoSuchEntity):
            cluster.submit("alice", duration=10.0, partition="gpu")

    def test_debug_time_limit_enforced(self, cluster):
        with pytest.raises(InvalidArgument):
            cluster.submit("alice", duration=7200.0, partition="debug")
        cluster.submit("alice", duration=600.0, partition="debug")

    def test_jobs_stay_inside_their_partition(self, cluster):
        a = cluster.submit("alice", ntasks=2, duration=50.0)
        d = cluster.submit("bob", ntasks=1, duration=50.0,
                           partition="debug")
        cluster.run(until=1.0)
        assert set(a.nodes) <= {"c1", "c2"}
        assert set(d.nodes) <= {"d1", "d2"}

    def test_debug_partition_is_shared_despite_llsc_policy(self, cluster):
        """The interactive/debug queue runs SHARED even under the
        whole-node-per-user batch policy — the multi-user nodes the paper
        says keep needing hidepid."""
        a = cluster.submit("alice", ntasks=1, duration=100.0,
                           partition="debug")
        b = cluster.submit("bob", ntasks=1, duration=100.0,
                           partition="debug")
        cluster.run(until=1.0)
        assert a.state is JobState.RUNNING and b.state is JobState.RUNNING
        assert a.nodes == b.nodes  # co-resident, by design

    def test_normal_partition_still_whole_node_user(self, cluster):
        a = cluster.submit("alice", ntasks=1, duration=100.0)
        b = cluster.submit("bob", ntasks=1, duration=100.0)
        cluster.run(until=1.0)
        assert set(a.nodes) != set(b.nodes)

    def test_hidepid_still_protects_debug_nodes(self, cluster):
        """Defense in depth on the shared partition: co-resident users
        still cannot see each other's processes."""
        a = cluster.submit("alice", ntasks=1, duration=100.0,
                           partition="debug")
        b = cluster.submit("bob", ntasks=1, duration=100.0,
                           partition="debug")
        cluster.run(until=1.0)
        bshell = cluster.job_session(b)
        assert all(r.uid == bshell.creds.uid for r in bshell.sys.ps())

    def test_partition_accepts_duration_none_limit(self):
        p = Partition("x", ("n1",))
        assert p.accepts_duration(1e12)


class TestJobArrays:
    def test_array_submission(self, cluster):
        jobs = cluster.submit_array("alice", durations=[10.0, 20.0, 30.0],
                                    name="sweep")
        assert len(jobs) == 3
        assert len({j.array_id for j in jobs}) == 1
        assert [j.array_index for j in jobs] == [0, 1, 2]
        cluster.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_array_jobs_lookup(self, cluster):
        jobs = cluster.submit_array("alice", durations=[5.0] * 4)
        found = cluster.scheduler.array_jobs(jobs[0].array_id)
        assert [j.job_id for j in found] == [j.job_id for j in jobs]

    def test_array_elements_pack_under_whole_node_user(self, cluster):
        jobs = cluster.submit_array("alice", durations=[100.0] * 8)
        cluster.run(until=1.0)
        running_nodes = {n for j in jobs
                         if j.state is JobState.RUNNING for n in j.nodes}
        assert len(running_nodes) <= 2  # packed onto alice's nodes

    def test_non_array_jobs_have_no_array_id(self, cluster):
        j = cluster.submit("alice", duration=1.0)
        assert j.array_id is None and j.array_index is None


class TestAttribution:
    def _load_up(self, cluster):
        cluster.submit("alice", ntasks=2, duration=500.0)
        cluster.submit("bob", ntasks=1, duration=500.0)
        cluster.run(until=1.0)

    def test_plain_staff_sees_nothing_foreign(self, cluster):
        self._load_up(cluster)
        sam = cluster.login("sam")
        report = attribute_load(cluster, sam)
        # operator status shows *jobs*, but hidepid hides the processes
        assert all(r["procs"] == 0 for name, r in report.items()
                   if name != "_aggregate")
        assert report["alice"]["running_jobs"] == 1
        # the aggregate hotspot is visible even without seepid
        assert report["_aggregate"]["running_procs"] >= 3

    def test_seepid_staff_attributes_hotspots(self, cluster):
        self._load_up(cluster)
        sam = seepid(cluster, cluster.login("sam"))
        report = attribute_load(cluster, sam)
        assert report["alice"]["procs"] == 2
        assert report["bob"]["procs"] == 1
        assert report["alice"]["rss_mb"] > 0
        assert report["alice"]["nodes"]

    def test_regular_user_sees_only_self(self, cluster):
        self._load_up(cluster)
        alice = cluster.login("alice")
        report = attribute_load(cluster, alice)
        assert set(report) == {"alice", "_aggregate"}
