"""Unit tests: usage summaries (sreport) and their PrivateData gating."""

import numpy as np
import pytest

from repro import Cluster, LLSC
from repro.sched.accounting import usage_summary


@pytest.fixture
def cluster():
    c = Cluster.build(LLSC, n_compute=4, users=("alice", "bob"),
                      staff=("sam",))
    c.submit("alice", ntasks=4, duration=100.0, at=0.0)
    c.submit("alice", ntasks=2, duration=50.0, at=200.0)
    c.submit("bob", ntasks=1, duration=300.0, at=0.0)
    c.run(until=1000.0)
    return c


class TestUsageSummary:
    def test_totals_match_accounting(self, cluster):
        recs = cluster.scheduler.accounting.all_records()
        summary = usage_summary(recs, t_end=1000.0)
        assert summary.by_user["alice"] == pytest.approx(4 * 100 + 2 * 50)
        assert summary.by_user["bob"] == pytest.approx(300.0)
        assert summary.jobs_by_user == {"alice": 2, "bob": 1}

    def test_series_sums_to_total(self, cluster):
        recs = cluster.scheduler.accounting.all_records()
        summary = usage_summary(recs, t_end=1000.0, n_buckets=7)
        for user, series in summary.series.items():
            assert series.sum() == pytest.approx(summary.by_user[user])
            assert series.shape == (7,)

    def test_bucket_placement(self, cluster):
        recs = cluster.scheduler.accounting.all_records()
        summary = usage_summary(recs, t_end=1000.0, n_buckets=10)
        # alice's first job ran [0,100): entirely in bucket 0
        assert summary.series["alice"][0] == pytest.approx(400.0)
        # her second job [200,250): bucket 2
        assert summary.series["alice"][2] == pytest.approx(100.0)
        # nothing after t=300 for anyone
        assert all(summary.series[u][4:].sum() == 0
                   for u in summary.series)

    def test_job_spanning_buckets_split_proportionally(self, cluster):
        recs = cluster.scheduler.accounting.all_records()
        summary = usage_summary(recs, t_end=1000.0, n_buckets=10)
        # bob's job [0,300) at 1 core: 100 core-s per 100-s bucket
        assert np.allclose(summary.series["bob"][:3], [100.0] * 3)

    def test_top_users(self, cluster):
        recs = cluster.scheduler.accounting.all_records()
        summary = usage_summary(recs, t_end=1000.0)
        assert summary.top_users(1) == [("alice", pytest.approx(500.0))]

    def test_empty_records(self):
        summary = usage_summary([], t_end=10.0)
        assert summary.by_user == {}


class TestSreportGating:
    def test_plain_user_sees_only_self(self, cluster):
        summary = cluster.scheduler_view.sreport(cluster.user("bob"),
                                                 t_end=1000.0)
        assert set(summary.by_user) == {"bob"}

    def test_operator_sees_fleet(self, cluster):
        summary = cluster.scheduler_view.sreport(cluster.user("sam"),
                                                 t_end=1000.0)
        assert set(summary.by_user) == {"alice", "bob"}

    def test_root_sees_fleet(self, cluster):
        summary = cluster.scheduler_view.sreport(cluster.user("root"),
                                                 t_end=1000.0)
        assert set(summary.by_user) == {"alice", "bob"}
