"""Unit + integration tests: batch scripts and slurm-<id>.out."""

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied
from repro.sched import JobState, JobSpec


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=2, users=("alice", "bob"))


def submit_script(cluster, username, script, duration=10.0, **kw):
    spec = JobSpec(user=cluster.user(username), name="batch",
                   workdir=f"/home/{username}", script=script, **kw)
    return cluster.scheduler.submit(spec, duration)


class TestBatchScripts:
    def test_script_runs_as_user_on_head_node(self, cluster):
        seen = {}

        def script(ctx):
            seen["uid"] = ctx.sys.creds.uid
            seen["node"] = ctx.node.name
            seen["job_id"] = ctx.sys.process.job_id

        job = submit_script(cluster, "alice", script)
        cluster.run(until=1.0)
        assert seen["uid"] == cluster.user("alice").uid
        assert seen["node"] == job.nodes[0]
        assert seen["job_id"] == job.job_id

    def test_script_writes_results_to_home(self, cluster):
        def script(ctx):
            ctx.sys.create(f"{ctx.job.spec.workdir}/result.dat",
                           mode=0o640, data=b"42")
            ctx.print("wrote result.dat")

        job = submit_script(cluster, "alice", script)
        cluster.run()
        alice = cluster.login("alice")
        assert alice.sys.open_read("/home/alice/result.dat") == b"42"

    def test_stdout_file_materialised(self, cluster):
        def script(ctx):
            ctx.print("step 1 done")
            ctx.print("loss =", 0.123)

        job = submit_script(cluster, "alice", script)
        cluster.run()
        assert job.state is JobState.COMPLETED
        alice = cluster.login("alice")
        out = alice.sys.open_read(job.stdout_path).decode()
        assert out == "step 1 done\nloss = 0.123\n"

    def test_stdout_private_to_owner(self, cluster):
        def script(ctx):
            ctx.print("sensitive progress info")

        job = submit_script(cluster, "alice", script)
        cluster.run()
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            bob.sys.open_read(job.stdout_path)

    def test_failing_script_fails_job(self, cluster):
        def script(ctx):
            ctx.print("about to crash")
            raise RuntimeError("segfault in user code")

        job = submit_script(cluster, "alice", script)
        cluster.run()
        assert job.state is JobState.FAILED
        assert cluster.scheduler.metrics.report()["script_failures"] == 1
        alice = cluster.login("alice")
        out = alice.sys.open_read(job.stdout_path).decode()
        assert "about to crash" in out
        assert "segfault" in out

    def test_script_denied_by_smask_fails_cleanly(self, cluster):
        """A script hitting an enforcement wall fails its job, nothing
        else (blast radius: one job)."""

        def script(ctx):
            ctx.sys.open_read("/home/bob/data")  # EACCES

        job = submit_script(cluster, "alice", script)
        other = cluster.submit("alice", duration=5.0)
        cluster.run()
        assert job.state is JobState.FAILED
        assert other.state is JobState.COMPLETED

    def test_script_can_serve_network(self, cluster):
        """A batch script opening a service is reachable by its owner."""
        holder = {}

        def script(ctx):
            sock = ctx.node.net.listen(
                ctx.node.net.bind(ctx.sys.process, 9999))
            holder["sock"] = sock
            ctx.print("serving on 9999")

        job = submit_script(cluster, "alice", script, duration=100.0)
        cluster.run(until=1.0)
        alice = cluster.login("alice")
        conn = alice.socket().connect(job.nodes[0], 9999)
        assert conn.open

    def test_no_stdout_file_without_output(self, cluster):
        job = cluster.submit("alice", duration=5.0)
        cluster.run()
        alice = cluster.login("alice")
        assert not alice.sys.access(job.stdout_path, 4)
