"""Unit tests: dispatch, policies, backfill, cancel, OOM blast radius."""

import pytest

from repro.kernel.errors import PermissionError_
from repro.sched import JobState, NodeSharing

from tests.sched.conftest import build_sched, spec


class TestBasicDispatch:
    def test_single_job_lifecycle(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb), duration=10.0)
        engine.run()
        assert job.state is JobState.COMPLETED
        assert job.start_time == 0.0 and job.end_time == 10.0
        assert job.wait_time == 0.0

    def test_tasks_spawn_processes(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb, ntasks=3), duration=5.0)
        engine.run(until=1.0)
        node_procs = [p for n in sched.nodes.values()
                      for p in n.node.procs.processes()
                      if p.job_id == job.job_id]
        assert len(node_procs) == 3

    def test_processes_reaped_at_completion(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb, ntasks=2), duration=5.0)
        engine.run()
        leftovers = [p for n in sched.nodes.values()
                     for p in n.node.procs.processes()
                     if p.job_id == job.job_id]
        assert not leftovers

    def test_multi_node_spread(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        job = sched.submit(spec(userdb, ntasks=12), duration=1.0)
        engine.run()
        assert job.state is JobState.COMPLETED
        assert len(job.allocations) == 2

    def test_job_waits_for_free_resources(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        first = sched.submit(spec(userdb, ntasks=8), duration=10.0)
        second = sched.submit(spec(userdb, ntasks=8), duration=10.0)
        engine.run()
        assert second.start_time == 10.0
        assert second.wait_time == 10.0

    def test_too_big_job_never_starts(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        job = sched.submit(spec(userdb, ntasks=9), duration=1.0)
        engine.run()
        assert job.state is JobState.PENDING

    def test_memory_constrains_placement(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8, mem_mb=4000)
        job = sched.submit(spec(userdb, ntasks=4, mem_mb_per_task=2000),
                           duration=5.0)
        other = sched.submit(spec(userdb, "bob", ntasks=1,
                                  mem_mb_per_task=2000), duration=5.0)
        engine.run()
        # 4 tasks x 2000MB won't fit in 4000MB: stays pending, despite
        # plenty of cores; the small job backfills around it
        assert job.state is JobState.PENDING
        assert other.state is JobState.COMPLETED

    def test_arrival_in_future(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb), duration=1.0, at=100.0)
        engine.run()
        assert job.start_time == 100.0


class TestPolicies:
    def test_shared_mixes_users_on_node(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.SHARED)
        a = sched.submit(spec(userdb, "alice", ntasks=2), duration=10.0)
        b = sched.submit(spec(userdb, "bob", ntasks=2), duration=10.0)
        engine.run(until=1.0)
        assert a.state is JobState.RUNNING and b.state is JobState.RUNNING
        assert a.nodes == b.nodes

    def test_whole_node_user_excludes_strangers(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.WHOLE_NODE_USER)
        a = sched.submit(spec(userdb, "alice", ntasks=2), duration=10.0)
        b = sched.submit(spec(userdb, "bob", ntasks=2), duration=10.0)
        engine.run(until=1.0)
        assert a.state is JobState.RUNNING
        assert b.state is JobState.PENDING  # node belongs to alice now

    def test_whole_node_user_packs_same_user(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.WHOLE_NODE_USER)
        a1 = sched.submit(spec(userdb, "alice", ntasks=2), duration=10.0)
        a2 = sched.submit(spec(userdb, "alice", ntasks=2), duration=10.0)
        engine.run(until=1.0)
        assert a1.state is JobState.RUNNING and a2.state is JobState.RUNNING
        assert a1.nodes == a2.nodes

    def test_whole_node_user_frees_node_after_owner_leaves(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.WHOLE_NODE_USER)
        a = sched.submit(spec(userdb, "alice", ntasks=1), duration=5.0)
        b = sched.submit(spec(userdb, "bob", ntasks=1), duration=5.0)
        engine.run()
        assert b.start_time == 5.0
        assert b.state is JobState.COMPLETED

    def test_exclusive_one_job_per_node(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.EXCLUSIVE)
        a1 = sched.submit(spec(userdb, "alice", ntasks=1), duration=10.0)
        a2 = sched.submit(spec(userdb, "alice", ntasks=1), duration=10.0)
        engine.run(until=1.0)
        assert a1.state is JobState.RUNNING
        assert a2.state is JobState.PENDING  # even same user: per-job exclusive

    def test_exclusive_charges_whole_node(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.EXCLUSIVE)
        a = sched.submit(spec(userdb, ntasks=1), duration=10.0)
        engine.run(until=1.0)
        assert a.allocations[0].cores == 8

    def test_per_job_exclusive_flag_under_shared(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.SHARED)
        a = sched.submit(spec(userdb, "alice", ntasks=1, exclusive=True),
                         duration=10.0)
        b = sched.submit(spec(userdb, "alice", ntasks=1), duration=10.0)
        engine.run(until=1.0)
        assert a.state is JobState.RUNNING
        assert b.state is JobState.PENDING


class TestBackfill:
    def test_backfill_lets_small_job_jump(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8, backfill=True)
        blocker = sched.submit(spec(userdb, "alice", ntasks=6), duration=10.0)
        wide = sched.submit(spec(userdb, "bob", ntasks=8), duration=5.0)
        small = sched.submit(spec(userdb, "carol", ntasks=2), duration=2.0)
        engine.run()
        assert small.start_time == 0.0  # backfilled around the wide job

    def test_no_backfill_strict_fifo(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8, backfill=False)
        blocker = sched.submit(spec(userdb, "alice", ntasks=6), duration=10.0)
        wide = sched.submit(spec(userdb, "bob", ntasks=8), duration=5.0)
        small = sched.submit(spec(userdb, "carol", ntasks=2), duration=2.0)
        engine.run()
        assert small.start_time >= 10.0  # waited behind the wide job


class TestCancel:
    def test_owner_cancels_pending(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        blocker = sched.submit(spec(userdb, "alice", ntasks=8), duration=10.0)
        waiting = sched.submit(spec(userdb, "bob", ntasks=8), duration=10.0)
        engine.run(until=1.0)
        sched.cancel(waiting, by=userdb.user("bob"))
        assert waiting.state is JobState.CANCELLED

    def test_owner_cancels_running(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb, "alice"), duration=10.0)
        engine.run(until=2.0)
        sched.cancel(job, by=userdb.user("alice"))
        assert job.state is JobState.CANCELLED
        assert job.end_time == 2.0

    def test_stranger_cannot_cancel(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb, "alice"), duration=10.0)
        engine.run(until=1.0)
        with pytest.raises(PermissionError_):
            sched.cancel(job, by=userdb.user("bob"))
        assert job.state is JobState.RUNNING

    def test_root_can_cancel(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb, "alice"), duration=10.0)
        engine.run(until=1.0)
        sched.cancel(job, by=userdb.user("root"))
        assert job.state is JobState.CANCELLED


class TestPamSlurmIntegration:
    def test_user_has_job_on(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        job = sched.submit(spec(userdb, "alice", ntasks=1), duration=10.0)
        engine.run(until=1.0)
        node = job.nodes[0]
        other = next(n for n in sched.nodes if n != node)
        assert sched.user_has_job_on(job.uid, node)
        assert not sched.user_has_job_on(job.uid, other)
        assert not sched.user_has_job_on(userdb.user("bob").uid, node)

    def test_presence_expires_with_job(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1)
        job = sched.submit(spec(userdb, "alice"), duration=5.0)
        engine.run()
        assert not sched.user_has_job_on(job.uid, job.nodes[0])


class TestOomBlastRadius:
    def test_shared_node_oom_kills_innocents(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.SHARED)
        bomb = sched.submit(spec(userdb, "alice", ntasks=1, oom_bomb=True),
                            duration=10.0)
        victim = sched.submit(spec(userdb, "bob", ntasks=1), duration=20.0)
        engine.run()
        assert bomb.state is JobState.FAILED
        assert victim.state is JobState.NODE_FAIL
        assert sched.metrics.report()["innocent_job_failures"] == 1

    def test_whole_node_user_contains_blast(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8,
                                    policy=NodeSharing.WHOLE_NODE_USER)
        bomb = sched.submit(spec(userdb, "alice", ntasks=1, oom_bomb=True),
                            duration=10.0)
        victim = sched.submit(spec(userdb, "bob", ntasks=1), duration=20.0)
        engine.run()
        assert bomb.state is JobState.FAILED
        assert victim.state is JobState.COMPLETED
        assert "innocent_job_failures" not in sched.metrics.report()

    def test_oom_kills_own_sibling_jobs_on_node(self, userdb):
        """Blast radius is contained to the *user*, not to the job: the
        bomber's own co-resident job still dies."""
        engine, sched = build_sched(userdb, n_nodes=1, cores=8,
                                    policy=NodeSharing.WHOLE_NODE_USER)
        bomb = sched.submit(spec(userdb, "alice", ntasks=1, oom_bomb=True),
                            duration=10.0)
        sibling = sched.submit(spec(userdb, "alice", ntasks=1), duration=20.0)
        engine.run()
        assert sibling.state is JobState.NODE_FAIL


class TestUtilizationAccounting:
    def test_utilization_exact(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.submit(spec(userdb, ntasks=4), duration=10.0)
        engine.run(until=20.0)
        # 4 cores busy for 10s of a 20s horizon over 8 cores = 0.25
        assert sched.utilization(20.0) == pytest.approx(0.25)

    def test_accounting_records_core_seconds(self, userdb):
        engine, sched = build_sched(userdb)
        job = sched.submit(spec(userdb, ntasks=2), duration=10.0)
        engine.run()
        rec = sched.accounting.all_records()[0]
        assert rec.core_seconds == pytest.approx(20.0)
        assert rec.state is JobState.COMPLETED

    def test_wait_time_samples(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.submit(spec(userdb, ntasks=8), duration=10.0)
        sched.submit(spec(userdb, ntasks=8), duration=10.0)
        engine.run()
        summary = sched.metrics.report()["wait_time"]
        assert summary["n"] == 2
        assert summary["max"] == pytest.approx(10.0)
