"""Unit tests: PrivateData filtering, GPU prolog/epilog, accounting views."""

import pytest

from repro.kernel import ROOT_CREDS
from repro.kernel.errors import AccessDenied as EACCES
from repro.sched import (
    GPU_MODE_ASSIGNED,
    GPU_MODE_UNASSIGNED,
    GpuSeparationConfig,
    JobState,
    PrivateData,
    SchedulerView,
    gpu_dev_path,
)

from tests.sched.conftest import build_sched, spec


def populated_sched(userdb, private: PrivateData, operators=frozenset()):
    engine, sched = build_sched(userdb, n_nodes=2, cores=8)
    a = sched.submit(spec(userdb, "alice", name="secret-proj",
                          command="./classified.sh"), duration=5.0)
    b = sched.submit(spec(userdb, "bob", name="bob-job"), duration=50.0)
    engine.run(until=10.0)  # alice finished, bob running
    return engine, sched, SchedulerView(sched, private, operators)


class TestSqueue:
    def test_default_shows_everyone(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData())
        rows = view.squeue(userdb.user("alice"))
        assert {r.user_name for r in rows} == {"bob"}

    def test_private_jobs_hides_others(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData.all_private())
        rows = view.squeue(userdb.user("alice"))
        assert rows == []  # alice's job finished; bob's is hidden
        rows_bob = view.squeue(userdb.user("bob"))
        assert {r.user_name for r in rows_bob} == {"bob"}

    def test_private_jobs_hides_command_and_name(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData.all_private())
        leaked = [r for r in view.squeue(userdb.user("bob"))
                  if "classified" in r.command or r.job_name == "secret-proj"]
        assert not leaked

    def test_root_sees_all(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData.all_private())
        rows = view.squeue(userdb.user("root"))
        assert {r.user_name for r in rows} == {"bob"}

    def test_operator_sees_all(self, userdb):
        sam = userdb.user("sam")
        _, _, view = populated_sched(userdb, PrivateData.all_private(),
                                     operators=frozenset({sam.uid}))
        rows = view.squeue(sam)
        assert {r.user_name for r in rows} == {"bob"}


class TestSacct:
    def test_private_usage_restricts_accounting(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData.all_private())
        recs = view.sacct(userdb.user("bob"))
        assert all(r.user_name == "bob" for r in recs)
        recs_alice = view.sacct(userdb.user("alice"))
        assert {r.user_name for r in recs_alice} == {"alice"}

    def test_open_usage_shows_all(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData())
        recs = view.sacct(userdb.user("bob"))
        assert {r.user_name for r in recs} == {"alice"}

    def test_user_enumeration_blocked(self, userdb):
        _, _, view = populated_sched(userdb, PrivateData.all_private())
        names = view.sreport_users(userdb.user("alice"))
        assert "bob" not in names


class TestGpuProlog:
    def _gpu_sched(self, userdb, separation: bool):
        cfg = GpuSeparationConfig() if separation else None
        return build_sched(
            userdb, n_nodes=1, cores=8, gpus=2,
            gpu_separation=cfg,
            gpu_dev_mode=GPU_MODE_UNASSIGNED if separation else 0o666)

    def test_allocated_gpu_owned_by_user_private_group(self, userdb):
        engine, sched = self._gpu_sched(userdb, separation=True)
        job = sched.submit(spec(userdb, "alice", gpus_per_task=1),
                           duration=10.0)
        engine.run(until=1.0)
        node = sched.nodes[job.nodes[0]]
        idx = job.allocations[0].gpu_indices[0]
        st = node.node.vfs.stat(gpu_dev_path(idx), ROOT_CREDS)
        assert st.mode == GPU_MODE_ASSIGNED
        assert st.gid == userdb.user("alice").primary_gid

    def test_unallocated_gpu_invisible(self, userdb):
        engine, sched = self._gpu_sched(userdb, separation=True)
        job = sched.submit(spec(userdb, "alice", gpus_per_task=1),
                           duration=10.0)
        engine.run(until=1.0)
        node = sched.nodes[job.nodes[0]]
        used = set(job.allocations[0].gpu_indices)
        free = next(i for i in range(2) if i not in used)
        creds = userdb.credentials_for(userdb.user("alice"))
        with pytest.raises(EACCES):
            node.node.vfs.read(gpu_dev_path(free), creds)

    def test_stranger_cannot_open_allocated_gpu(self, userdb):
        engine, sched = self._gpu_sched(userdb, separation=True)
        job = sched.submit(spec(userdb, "alice", gpus_per_task=1),
                           duration=10.0)
        engine.run(until=1.0)
        node = sched.nodes[job.nodes[0]]
        idx = job.allocations[0].gpu_indices[0]
        bob = userdb.credentials_for(userdb.user("bob"))
        with pytest.raises(EACCES):
            node.node.vfs.read(gpu_dev_path(idx), bob)

    def test_epilog_scrubs_and_resets_perms(self, userdb):
        engine, sched = self._gpu_sched(userdb, separation=True)
        job = sched.submit(spec(userdb, "alice", gpus_per_task=1),
                           duration=5.0)
        engine.run(until=1.0)
        node = sched.nodes[job.nodes[0]]
        idx = job.allocations[0].gpu_indices[0]
        alice = userdb.credentials_for(userdb.user("alice"))
        node.node.vfs.write(gpu_dev_path(idx), alice, b"model-weights")
        assert node.gpu(idx).dirty
        engine.run()
        assert job.state is JobState.COMPLETED
        assert not node.gpu(idx).dirty
        assert node.gpu(idx).scrub_count == 1
        st = node.node.vfs.stat(gpu_dev_path(idx), ROOT_CREDS)
        assert st.mode == GPU_MODE_UNASSIGNED

    def test_stock_config_leaks_gpu_memory(self, userdb):
        """BASELINE: no prolog/epilog, 0666 devices: the next user reads the
        previous user's residue (Section IV-F hazard)."""
        engine, sched = self._gpu_sched(userdb, separation=False)
        job = sched.submit(spec(userdb, "alice", gpus_per_task=1),
                           duration=5.0)
        engine.run(until=1.0)
        node = sched.nodes[job.nodes[0]]
        idx = job.allocations[0].gpu_indices[0]
        alice = userdb.credentials_for(userdb.user("alice"))
        node.node.vfs.write(gpu_dev_path(idx), alice, b"alice-weights")
        engine.run()  # alice's job ends; no scrub
        bob = userdb.credentials_for(userdb.user("bob"))
        residue = node.node.vfs.read(gpu_dev_path(idx), bob)
        assert residue.startswith(b"alice-weights")
