"""Scheduler test fixtures."""

from __future__ import annotations

import pytest

from repro.kernel import LinuxNode, NodeSpec
from repro.sched import (
    ComputeNode,
    GpuSeparationConfig,
    NodeSharing,
    Scheduler,
    SchedulerConfig,
    make_epilog,
    make_prolog,
)
from repro.sim import Engine


def build_sched(userdb, *, n_nodes=4, cores=8, mem_mb=16000, gpus=0,
                policy=NodeSharing.SHARED, backfill=True,
                gpu_separation: GpuSeparationConfig | None = None,
                gpu_dev_mode=0o666):
    engine = Engine()
    nodes = [
        ComputeNode.create(
            LinuxNode(f"c{i}", userdb,
                      spec=NodeSpec(cores=cores, mem_mb=mem_mb, gpus=gpus)),
            gpu_dev_mode=gpu_dev_mode)
        for i in range(1, n_nodes + 1)
    ]
    prolog = epilog = None
    if gpu_separation is not None:
        prolog = make_prolog(gpu_separation)
        epilog = make_epilog(gpu_separation)
    sched = Scheduler(engine, nodes,
                      SchedulerConfig(policy=policy, backfill=backfill),
                      prolog=prolog, epilog=epilog)
    return engine, sched


@pytest.fixture
def shared_sched(userdb):
    return build_sched(userdb)


def spec(userdb, user="alice", **kw):
    from repro.sched import JobSpec
    defaults = dict(name="job", ntasks=1, cores_per_task=1,
                    mem_mb_per_task=1000)
    defaults.update(kw)
    return JobSpec(user=userdb.user(user), **defaults)
