"""Unit tests: node drain/resume, hardware failure, requeue."""

from repro.sched import JobState

from tests.sched.conftest import build_sched, spec


class TestDrain:
    def test_drained_node_gets_no_new_jobs(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.drain("c1")
        job = sched.submit(spec(userdb, ntasks=4), duration=10.0)
        engine.run(until=1.0)
        assert job.nodes == ["c2"]

    def test_running_jobs_survive_drain(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        job = sched.submit(spec(userdb, ntasks=2), duration=10.0)
        engine.run(until=1.0)
        sched.drain("c1")
        engine.run()
        assert job.state is JobState.COMPLETED

    def test_resume_reopens_node(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.drain("c1")
        job = sched.submit(spec(userdb), duration=5.0)
        engine.run(until=1.0)
        assert job.state is JobState.PENDING
        sched.resume("c1")
        engine.run()
        assert job.state is JobState.COMPLETED

    def test_all_drained_queue_waits(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.drain("c1")
        sched.drain("c2")
        job = sched.submit(spec(userdb), duration=5.0)
        engine.run()
        assert job.state is JobState.PENDING


class TestNodeFailure:
    def test_fail_kills_running_jobs(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        job = sched.submit(spec(userdb, ntasks=2), duration=100.0)
        engine.run(until=1.0)
        victims = sched.fail_node("c1")
        assert victims == [job]
        assert job.state is JobState.NODE_FAIL
        assert sched.nodes["c1"].allocations == {}

    def test_failed_node_excluded_from_placement(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.fail_node("c1")
        job = sched.submit(spec(userdb, ntasks=4), duration=5.0)
        engine.run()
        assert job.nodes == ["c2"]

    def test_fenced_node_keeps_residue_until_remediation(self, userdb):
        """A crashed node cannot run its epilog or kill its processes —
        the orphans stay put until the separation-safe rejoin path."""
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        job = sched.submit(spec(userdb, ntasks=3), duration=100.0)
        engine.run(until=1.0)
        sched.fail_node("c1")
        node = sched.nodes["c1"]
        assert node.fenced and node.needs_remediation
        orphans = [p for p in node.node.procs.processes()
                   if p.job_id == job.job_id]
        assert len(orphans) == 3
        assert sched.metrics.report()["epilog_skipped_fenced"] == 1
        sched.resume("c1")
        assert not [p for p in node.node.procs.processes()
                    if p.job_id == job.job_id]
        assert not node.fenced and not node.needs_remediation

    def test_remediation_runs_exactly_once_per_reboot(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        job = sched.submit(spec(userdb, ntasks=2), duration=100.0)
        engine.run(until=1.0)
        sched.fail_node("c1")
        summary = sched.remediate("c1")
        assert summary["processes_reaped"] == 2
        assert sched.remediate("c1") == {}  # idempotent until next fence
        sched.resume("c1")
        assert sched.nodes["c1"].remediations == 1


class TestRequeue:
    def _sched(self, userdb, requeue):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.config.requeue_on_node_fail = requeue
        return engine, sched

    def test_requeue_restarts_on_another_node(self, userdb):
        engine, sched = self._sched(userdb, requeue=True)
        job = sched.submit(spec(userdb, ntasks=2), duration=50.0)
        engine.run(until=1.0)
        first_node = job.nodes[0]
        sched.fail_node(first_node)
        engine.run()
        assert job.state is JobState.COMPLETED
        assert job.nodes[0] != first_node
        assert sched.metrics.report()["jobs_requeued"] == 1
        assert job.reason == "requeued after node failure"

    def test_no_requeue_by_default(self, userdb):
        engine, sched = self._sched(userdb, requeue=False)
        job = sched.submit(spec(userdb, ntasks=2), duration=50.0)
        engine.run(until=1.0)
        sched.fail_node(job.nodes[0])
        engine.run()
        assert job.state is JobState.NODE_FAIL

    def test_requeued_job_waits_if_no_capacity(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.config.requeue_on_node_fail = True
        job = sched.submit(spec(userdb), duration=50.0)
        engine.run(until=1.0)
        sched.fail_node("c1")
        engine.run()
        assert job.state is JobState.PENDING  # only node is dead
        sched.resume("c1")
        engine.run()
        assert job.state is JobState.COMPLETED
