"""Tests: node health state machine, fencing, remediation, flap damping.

The separation stakes: a crashed node never ran its victims' epilogs, so
its residue (orphan processes, dirty GPUs, assigned /dev perms, peers'
conntrack state) must stay quarantined behind the fence until the
remediation-gated rejoin path — and a flapping node must never take work
while unremediated (oracle invariant I7).
"""

from __future__ import annotations

import pytest

from repro import Cluster, LLSC
from repro.faults import FaultInjector, FaultKind
from repro.monitor import EventKind, instrument_cluster
from repro.oracle import attach_oracle
from repro.sched import JobState, NodeHealth
from repro.sched.health import HealthMonitor, attach_health

from tests.sched.conftest import build_sched, spec


def monitor_for(sched, engine, *, seed=7, **kw):
    """A raw HealthMonitor + injector over a build_sched scheduler."""
    faults = FaultInjector(sched.metrics, seed=seed)
    kw.setdefault("interval", 1.0)
    kw.setdefault("down_after", 3)
    mon = HealthMonitor(sched, engine, faults, sched.metrics, **kw).start()
    return mon, faults


class TestStateMachine:
    def test_up_suspect_down_fences_and_requeues(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.config.requeue_on_node_fail = True
        mon, faults = monitor_for(sched, engine)
        job = sched.submit(spec(userdb, ntasks=2), duration=100.0)
        engine.run(until=0.5)
        assert job.nodes == ["c1"]
        faults.inject(FaultKind.NODE_CRASH, "c1")
        engine.run(until=1.5)  # 1 miss
        assert mon.state_of("c1") is NodeHealth.SUSPECT
        engine.run(until=3.5)  # 3 misses -> DOWN, fenced
        assert mon.state_of("c1") is NodeHealth.DOWN
        assert sched.nodes["c1"].fenced
        residue = mon.nodes["c1"].residue
        assert residue.jobs == (job.job_id,)
        assert len(residue.orphan_pids) == 2  # never killed: node is dead
        # the victim restarted on the survivor, next attempt
        assert job.state is JobState.RUNNING
        assert job.nodes == ["c2"]
        assert job.attempt == 2

    def test_suspect_recovers_without_fencing(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        mon, faults = monitor_for(sched, engine)
        fault = faults.inject(FaultKind.NODE_CRASH, "c1")
        engine.run(until=1.5)
        assert mon.state_of("c1") is NodeHealth.SUSPECT
        faults.clear(fault)
        engine.run(until=2.5)
        assert mon.state_of("c1") is NodeHealth.UP
        assert not sched.nodes["c1"].fenced
        assert sched.metrics.counter("node_fencings_total").value == 0

    def test_reboot_rejoins_after_remediation(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.config.requeue_on_node_fail = True
        mon, faults = monitor_for(sched, engine)
        job = sched.submit(spec(userdb), duration=5.0)
        engine.run(until=0.5)
        fault = faults.inject(FaultKind.NODE_CRASH, "c1")
        engine.run(until=3.5)
        assert mon.state_of("c1") is NodeHealth.DOWN
        assert job.state is JobState.PENDING  # only node is fenced
        faults.clear(fault)
        engine.run(until=4.5)  # heartbeat returns -> remediate -> rejoin
        assert mon.state_of("c1") is NodeHealth.UP
        node = sched.nodes["c1"]
        assert node.remediations == 1
        assert not node.fenced and not node.needs_remediation
        live = set(node.allocations)  # the requeued job restarted here
        assert not [p for p in node.node.procs.processes()
                    if p.job_id is not None and p.job_id not in live]
        engine.run(until=15.0)
        assert job.state is JobState.COMPLETED
        assert sched.metrics.counter("node_rejoins_total").value == 1

    def test_idle_healthy_cluster_ticks_stop(self, userdb):
        """The tick loop must go dormant with nothing to watch, or a bare
        engine.run() would never drain the heap."""
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        monitor_for(sched, engine)
        job = sched.submit(spec(userdb), duration=5.0)
        engine.run()  # terminates: the monitor stopped rescheduling itself
        assert job.state is JobState.COMPLETED


class TestFlapDamping:
    def _bounce(self, mon, faults, engine, *, cycles):
        """Crash/reboot *cycles* times; returns after the last reboot."""
        for _ in range(cycles):
            fault = faults.inject(FaultKind.NODE_CRASH, "c1")
            mon.wake()
            while mon.state_of("c1") is not NodeHealth.DOWN:
                engine.run(until=engine.now + 1.0)
            faults.clear(fault)
            mon.wake()
            engine.run(until=engine.now + 2.0)

    def test_flapping_node_is_quarantined_not_trusted(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        mon, faults = monitor_for(sched, engine, down_after=2,
                                  flap_threshold=2, flap_hold=10.0)
        self._bounce(mon, faults, engine, cycles=2)  # two clean rejoins
        assert mon.state_of("c1") is NodeHealth.UP
        assert sched.nodes["c1"].remediations == 2
        # third bounce crosses the threshold: the return is quarantined
        self._bounce(mon, faults, engine, cycles=1)
        assert mon.state_of("c1") is NodeHealth.DOWN
        assert sched.nodes["c1"].failed  # not schedulable while held
        assert sched.metrics.counter(
            "node_flap_quarantines_total").value == 1
        # the hold served in full, the node rejoins cleanly
        engine.run(until=engine.now + 12.0)
        assert mon.state_of("c1") is NodeHealth.UP
        assert sched.nodes["c1"].remediations == 3

    def test_quarantined_node_never_double_allocates(self, userdb):
        """While c1 bounces, the requeued job must land exactly one live
        allocation — never on the fenced/unremediated flapper."""
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.config.requeue_on_node_fail = True
        mon, faults = monitor_for(sched, engine, down_after=2,
                                  flap_threshold=1, flap_hold=30.0)
        job = sched.submit(spec(userdb, ntasks=2), duration=300.0)
        engine.run(until=0.5)
        assert job.nodes == ["c1"]
        self._bounce(mon, faults, engine, cycles=2)
        assert job.state is JobState.RUNNING
        assert job.nodes == ["c2"]
        assert len(job.allocations) == 1
        node = sched.nodes["c1"]
        assert job.job_id not in node.allocations
        assert not (node.fenced and job.job_id in node.allocations)


class TestRequeueBudget:
    def test_requeue_exhaustion_ends_node_fail(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.config.requeue_on_node_fail = True
        sched.config.max_requeues = 2
        job = sched.submit(spec(userdb), duration=100.0)
        engine.run(until=1.0)
        for _ in range(3):
            sched.fail_node("c1")
            sched.resume("c1")
            engine.run(until=engine.now + 1.0)
        assert job.state is JobState.NODE_FAIL
        assert job.attempt == 3  # 1 + max_requeues runs, no more
        assert "exhausted" in job.reason
        assert sched.metrics.counter("jobs_requeue_exhausted").value == 1
        assert sched.pending() == []

    def test_requeued_attempt_ignores_stale_timers(self, userdb):
        """The first attempt's completion timer must not fire into the
        second attempt and complete it early."""
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.config.requeue_on_node_fail = True
        job = sched.submit(spec(userdb), duration=10.0)
        engine.run(until=1.0)  # attempt 1: completion armed for t=10
        sched.fail_node(job.nodes[0])  # attempt 2 starts at t=1
        engine.run(until=10.5)
        assert job.state is JobState.RUNNING  # stale t=10 timer: cancelled
        engine.run()
        assert job.state is JobState.COMPLETED
        assert job.end_time == 11.0


class TestHookHardening:
    def test_epilog_failure_drains_node_for_remediation(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)

        def bad_epilog(job, node):
            raise RuntimeError("scrub tool missing")

        sched.epilog = bad_epilog
        job = sched.submit(spec(userdb), duration=5.0)
        engine.run(until=6.0)
        assert job.state is JobState.COMPLETED  # the job itself is fine
        node = sched.nodes[job.allocations[0].node]
        assert node.drained and node.needs_remediation
        assert not node.fenced  # drained, not dead: other epilogs may run
        assert sched.metrics.counter("hook_failures_total",
                                     hook="epilog").value == 1
        # nothing new lands there until remediation
        job2 = sched.submit(spec(userdb, ntasks=8), duration=1.0)
        engine.run(until=8.0)
        assert job2.nodes == ["c2"]
        sched.epilog = None
        sched.resume(node.name)
        assert node.remediations == 1 and not node.drained

    def test_prolog_failure_fails_job_not_scheduler(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)

        def bad_prolog(job, node):
            raise RuntimeError("device cgroup refused")

        sched.prolog = bad_prolog
        job = sched.submit(spec(userdb), duration=5.0)
        engine.run(until=1.0)
        assert job.state is JobState.FAILED  # no separation setup, no run
        sched.prolog = None
        job2 = sched.submit(spec(userdb), duration=1.0)
        engine.run()
        assert job2.state is JobState.COMPLETED  # dispatch loop survived


class TestClusterChurn:
    @pytest.fixture
    def cluster(self):
        cluster = Cluster.build(LLSC, n_compute=3, cores=8,
                                gpus_per_node=2)
        attach_oracle(cluster, fail_fast=True)
        instrument_cluster(cluster)
        attach_health(cluster, interval=1.0, down_after=2).start()
        cluster.scheduler.config.requeue_on_node_fail = True
        return cluster

    def test_crash_reboot_cycle_is_separation_safe(self, cluster):
        chaos = cluster.chaos()
        job = cluster.submit("alice", duration=60.0, ntasks=2,
                             gpus_per_task=1)
        cluster.run(until=0.5)
        target = job.nodes[0]
        chaos.crash_node(target)
        cluster.run(until=4.0)
        node = cluster.scheduler.nodes[target]
        assert node.fenced
        assert job.state is JobState.RUNNING and target not in job.nodes
        # the dead tenant's GPU residue is behind the fence, untouched
        assert cluster.health.nodes[target].residue is not None
        chaos.reboot_node(target)
        cluster.run(until=8.0)
        assert cluster.health.state_of(target) is NodeHealth.UP
        assert node.remediations == 1
        # remediation restored the IV-F post-conditions (oracle I7 checked
        # them on rejoin; fail_fast would have raised here otherwise)
        assert cluster.oracle.checks_for("I7") > 0
        assert not cluster.oracle.violations
        kinds = {e.kind for e in cluster.security_log.events}
        assert EventKind.NODE_LIFECYCLE in kinds

    def test_dead_host_ttl_purges_peer_state(self, cluster):
        # alice -> alice flow from login1 into c1 seeds c1's conntrack
        # and its UBF decision cache with login1-derived state
        c1, login = cluster.node("c1"), cluster.node("login1")
        creds = cluster.userdb.credentials_for(cluster.user("alice"))
        server = c1.procs.spawn(creds, ["server"])
        c1.net.listen(c1.net.bind(server, 5000))
        client = login.procs.spawn(creds, ["client"])
        assert login.net.connect(client, "c1", 5000).open
        ct = cluster.fabric.host("c1").firewall.conntrack
        assert any("login1" in (f.src_host, f.dst_host)
                   for f in ct.flows())
        cluster.chaos().partition("login1")
        cluster.run(until=cluster.engine.now + 65.0)  # past the 60s TTL
        assert not any("login1" in (f.src_host, f.dst_host)
                       for f in ct.flows())
        assert cluster.metrics.counter("ubf_cache_purged_total",
                                       reason="dead-host").value >= 1
        assert cluster.metrics.counter("dead_host_purges_total").value == 1
        assert cluster.metrics.counter("conntrack_evictions_total",
                                       reason="dead-host").value >= 1
