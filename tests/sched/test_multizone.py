"""Multi-zone cluster zones under the sharded engine (E28 substrate).

Pins the cluster-level determinism contract — every sharding and worker
count produces the identical per-zone trace digests — plus the
long-horizon hygiene satellites: job-table pruning via ``on_finish``,
bounded accounting retention with exact grand totals, and churn-driven
fencing/requeue staying deterministic.
"""

from __future__ import annotations

from repro.kernel import LinuxNode, UserDB
from repro.sched import (
    AccountingDB,
    ComputeNode,
    JobSpec,
    Scheduler,
    ZoneConfig,
    ZoneSim,
    make_zone_factories,
)
from repro.sched.jobs import JobState
from repro.sim import Engine, ShardedEngine


def _run(facs, n_shards=1, workers=0, window=5.0):
    return ShardedEngine(facs, n_shards=n_shards, window=window,
                         workers=workers).run()


class TestZoneDeterminism:
    def test_shard_and_worker_invariance(self):
        facs = make_zone_factories(4, seed=7, nodes_per_zone=8,
                                   jobs_per_zone=120, chunk_jobs=40)
        ref = _run(facs, n_shards=1)
        assert ref.ok and ref.total_events > 4 * 120
        for k in (2, 4):
            rep = _run(facs, n_shards=k)
            assert rep.zones == ref.zones, f"K={k} diverged"
            assert rep.total_events == ref.total_events
        mp = _run(facs, n_shards=4, workers=2)
        assert mp.zones == ref.zones
        assert mp.digest == ref.digest

    def test_churn_and_oracle_stay_deterministic(self):
        facs = make_zone_factories(4, seed=11, nodes_per_zone=8,
                                   jobs_per_zone=150, chunk_jobs=30,
                                   churn_per_chunk=0.5, oracle_rate=0.1)
        ref = _run(facs, n_shards=1)
        rep = _run(facs, n_shards=4, workers=2)
        assert rep.digest == ref.digest
        stats = {s["zone"]: s for s in ref.zone_stats}
        assert sum(s["fail_injections"] for s in stats.values()) > 0
        assert sum(s["purges_seen"] for s in stats.values()) > 0
        assert sum(s["oracle_checks"] for s in stats.values()) > 0
        assert all(s["oracle_violations"] == 0 for s in stats.values())

    def test_cross_zone_traffic_flows(self):
        facs = make_zone_factories(3, seed=3, nodes_per_zone=8,
                                   jobs_per_zone=200, chunk_jobs=50,
                                   transfer_frac=0.2, probe_frac=0.1)
        rep = _run(facs)
        totals = {s["zone"]: s for s in rep.zone_stats}
        assert sum(s["transfers_in"] for s in totals.values()) \
            == sum(s["transfers_out"] for s in totals.values()) > 0
        assert sum(s["ident_served"] for s in totals.values()) > 0
        assert sum(s["portal_served"] for s in totals.values()) > 0
        # every transferred job ran somewhere: zone finish totals cover
        # local + transferred submissions
        assert sum(s["finished"] for s in totals.values()) == 3 * 200

    def test_zone_alone_runs_without_peers(self):
        cfg = ZoneConfig(zone_id=0, n_zones=1, seed=5, n_nodes=4,
                         n_jobs=50, chunk_jobs=25)
        rep = _run([lambda: ZoneSim(cfg)])
        assert rep.ok
        assert rep.zones[0]["finished"] == 50
        assert rep.zones[0]["transfers_out"] == 0


class TestLongHorizonHygiene:
    def test_finished_jobs_pruned_from_job_table(self):
        facs = make_zone_factories(1, seed=9, nodes_per_zone=4,
                                   jobs_per_zone=300, chunk_jobs=100)
        zone = facs[0]()
        eng = Engine()
        from repro.sim.shard import Outbox
        box = Outbox(0, min_latency=5.0)
        box.now = lambda: eng.now
        zone.bind(eng, box)
        eng.run()
        assert zone.finished == 300
        # the table holds only live jobs (none, at quiescence) — not the
        # full 300-job history
        assert len(zone.sched.jobs) == 0
        assert zone.sched.accounting.records_total == 300

    def test_accounting_retention_bounds_rows_keeps_totals(self):
        userdb = UserDB()
        user = userdb.add_user("u")
        engine = Engine()
        nodes = [ComputeNode.create(LinuxNode("n0", userdb))]
        sched = Scheduler(engine, nodes)
        sched.accounting = AccountingDB(max_records=10)
        for i in range(50):
            sched.submit(JobSpec(user=user, name="j"), 1.0, at=float(i * 2))
        engine.run()
        acct = sched.accounting
        assert acct.records_total == 50
        assert len(acct.all_records()) <= 20  # trims in 2x blocks
        assert acct.core_seconds_total > 0
        # retained window still answers queries
        assert all(r.state is JobState.COMPLETED for r in acct.all_records())

    def test_default_accounting_unbounded(self):
        db = AccountingDB()
        assert db.max_records is None and db.records_total == 0
