"""Unit tests for the free-capacity dispatch index (E24 tentpole).

The property suite (tests/prop/test_prop_dispatch.py) proves indexed ≡
naive on random streams; these tests pin the *mechanics*: what the index
contains after each lifecycle event, that the skip logic actually skips
(via the ``sched_dispatch_scan`` counter), and that the incrementally
maintained queues and core-second accumulators stay truthful.
"""

from __future__ import annotations

from repro.sched import JobState, NodeSharing, SchedulerConfig
from repro.sched.dispatch_index import PartitionIndex
from tests.sched.conftest import build_sched, spec


def _index(sched, part="normal") -> PartitionIndex:
    return sched._pindex[part]


class TestIndexMaintenance:
    def test_fresh_cluster_is_all_idle(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=3)
        idx = _index(sched)
        assert idx.idle == {0, 1, 2}
        assert idx.open_all == {0, 1, 2}
        assert idx.user_nodes == {}

    def test_allocation_moves_node_between_buckets(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        sched.submit(spec(userdb, ntasks=3), duration=10.0)
        engine.run(until=1.0)
        idx = _index(sched)
        assert idx.idle == {1}
        # n1 has 5 free cores, n2 the full 8
        assert idx.by_cores == {5: {0}, 8: {1}}
        alice = userdb.user("alice").uid
        assert idx.user_nodes == {alice: {0}}

    def test_full_node_leaves_open_set(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=4)
        sched.submit(spec(userdb, ntasks=4), duration=10.0)
        engine.run(until=1.0)
        idx = _index(sched)
        assert idx.open_all == set()
        assert idx.idle == set()
        engine.run()  # job completes, node returns
        assert idx.idle == {0}
        assert idx.by_cores == {4: {0}}

    def test_drain_and_fail_evict_resume_restores(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=3)
        idx = _index(sched)
        sched.drain("c2")
        assert idx.idle == {0, 2}
        sched.fail_node("c3")
        assert idx.idle == {0}
        sched.resume("c2")
        sched.resume("c3")
        assert idx.idle == {0, 1, 2}

    def test_mixed_uid_node_has_no_sole_owner(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=8)
        sched.submit(spec(userdb, "alice"), duration=10.0)
        sched.submit(spec(userdb, "bob"), duration=10.0)
        engine.run(until=1.0)
        assert _index(sched).user_nodes == {}

    def test_candidates_preserve_declaration_order(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=4)
        names = _index(sched).candidates(
            policy=NodeSharing.SHARED, whole=False,
            uid=userdb.user("alice").uid, cores_per_task=1)
        assert names == ["c1", "c2", "c3", "c4"]


class TestDispatchBehaviour:
    def test_whole_node_user_packs_onto_own_node(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8,
                                    policy=NodeSharing.WHOLE_NODE_USER)
        a1 = sched.submit(spec(userdb, "alice"), duration=50.0)
        b1 = sched.submit(spec(userdb, "bob"), duration=50.0)
        a2 = sched.submit(spec(userdb, "alice"), duration=50.0, at=1.0)
        engine.run(until=2.0)
        assert a2.state is JobState.RUNNING
        assert a2.nodes == a1.nodes
        assert b1.nodes != a1.nodes

    def test_saturated_cluster_examines_no_nodes(self, userdb):
        """Once the cluster is full, further submissions must not rescan
        the node list — the whole point of the index."""
        engine, sched = build_sched(userdb, n_nodes=4, cores=2)
        for _ in range(4):
            sched.submit(spec(userdb, ntasks=2, mem_mb_per_task=0),
                         duration=100.0)
        engine.run(until=1.0)
        scanned_when_full = sched.metrics.counter("sched_dispatch_scan").value
        for i in range(20):
            sched.submit(spec(userdb, ntasks=1, mem_mb_per_task=0),
                         duration=5.0, at=2.0 + i * 0.01)
        engine.run(until=3.0)
        assert sched.metrics.counter("sched_dispatch_scan").value \
            == scanned_when_full

    def test_indexed_scans_fewer_nodes_than_naive(self, userdb):
        def churn(naive):
            engine, sched = build_sched(userdb, n_nodes=16, cores=2)
            sched.config.naive = naive
            for i in range(40):
                sched.submit(spec(userdb, ntasks=1), duration=3.0,
                             at=float(i % 7))
            engine.run()
            return sched.metrics.counter("sched_dispatch_scan").value
        assert churn(naive=False) < churn(naive=True)

    def test_running_and_pending_track_incrementally(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=1, cores=2)
        j1 = sched.submit(spec(userdb, ntasks=2), duration=10.0)
        j2 = sched.submit(spec(userdb, ntasks=2), duration=10.0)
        engine.run(until=1.0)
        assert [j.job_id for j in sched.running()] == [j1.job_id]
        assert [j.job_id for j in sched.pending()] == [j2.job_id]
        sched.cancel(j2, by=userdb.user("root"))
        assert sched.pending() == []
        engine.run()
        assert sched.running() == []
        assert j1.state is JobState.COMPLETED

    def test_requeued_job_redispatches_via_index(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=2)
        sched.config.requeue_on_node_fail = True
        job = sched.submit(spec(userdb, ntasks=2, mem_mb_per_task=0),
                           duration=10.0)
        blocker = sched.submit(spec(userdb, ntasks=2, mem_mb_per_task=0),
                               duration=10.0)
        engine.run(until=1.0)
        assert job.state is JobState.RUNNING
        failed_on = job.nodes[0]
        sched.fail_node(failed_on)
        engine.run(until=2.0)
        # requeued instantly onto the surviving node once it frees
        engine.run()
        assert job.state is JobState.COMPLETED
        assert blocker.state is JobState.COMPLETED
        assert job.nodes[0] != failed_on

    def test_exclusive_job_waits_for_idle_node(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2, cores=8)
        small = sched.submit(spec(userdb, "alice"), duration=5.0)
        sched.submit(spec(userdb, "bob", ntasks=8), duration=5.0)
        wide = sched.submit(spec(userdb, "carol", exclusive=True),
                            duration=5.0, at=1.0)
        engine.run(until=2.0)
        assert wide.state is JobState.PENDING  # no idle node yet
        engine.run()
        assert wide.state is JobState.COMPLETED
        assert small.state is JobState.COMPLETED

    def test_user_has_job_on_tracks_allocations(self, userdb):
        engine, sched = build_sched(userdb, n_nodes=2)
        job = sched.submit(spec(userdb, "alice"), duration=10.0)
        engine.run(until=1.0)
        node = job.nodes[0]
        alice = userdb.user("alice").uid
        bob = userdb.user("bob").uid
        assert sched.user_has_job_on(alice, node)
        assert not sched.user_has_job_on(bob, node)
        engine.run()
        assert not sched.user_has_job_on(alice, node)
