"""Seed determinism: identical runs, identical classified outcomes.

The campaign inherits the simulator's end-to-end seeding (virtual clock,
seeded RNGs, ordered data structures), so rerunning any attack under any
preset must reproduce the same outcome, attribution, and trace ids —
byte-identical report regeneration depends on it.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import CAMPAIGN_PRESETS, CATALOG, CampaignRunner, \
    run_campaign

_IDS = [a.id for a in CATALOG]


class TestDeterminism:
    def test_full_campaign_rows_identical_across_runs(self):
        r1 = [o.row() for o in run_campaign("full").outcomes]
        r2 = [o.row() for o in run_campaign("full").outcomes]
        assert r1 == r2

    def test_ablation_campaign_identical_across_runs(self):
        r1 = [o.row() for o in run_campaign("no-ubf").outcomes]
        r2 = [o.row() for o in run_campaign("no-ubf").outcomes]
        assert r1 == r2

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(attack_id=st.sampled_from(_IDS),
           preset_key=st.sampled_from(sorted(CAMPAIGN_PRESETS)))
    def test_any_attack_any_preset_reproduces(self, attack_id, preset_key):
        from repro.attacks import by_id
        attack = by_id(attack_id)
        first = CampaignRunner(preset_key).run_attack(attack).row()
        second = CampaignRunner(preset_key).run_attack(attack).row()
        assert first == second
