"""Oracle attack-window semantics: tagging, fail-fast suspension, nesting."""

from __future__ import annotations

import pytest

from repro.oracle.oracle import SeparationOracle, SeparationViolation


def _trip(oracle, invariant="I2", subject="c1->c2", detail="probe"):
    oracle._violation(invariant, subject, detail)


class TestAttackContext:
    def test_violation_inside_window_is_tagged(self):
        oracle = SeparationOracle(fail_fast=True)
        with oracle.attack_context("A7"):
            _trip(oracle)  # no raise: fail-fast suspended in-window
        assert [v.attack for v in oracle.violations] == ["A7"]
        assert oracle.violations_for_attack("A7")
        assert oracle.organic_violations == []

    def test_violation_outside_window_stays_fail_fast(self):
        oracle = SeparationOracle(fail_fast=True)
        with pytest.raises(SeparationViolation):
            _trip(oracle)
        assert oracle.organic_violations and \
            oracle.organic_violations[0].attack is None

    def test_window_disarms_after_exit(self):
        oracle = SeparationOracle(fail_fast=True)
        with oracle.attack_context("A1"):
            pass
        with pytest.raises(SeparationViolation):
            _trip(oracle)

    def test_window_disarms_after_probe_exception(self):
        oracle = SeparationOracle(fail_fast=True)
        with pytest.raises(ValueError):
            with oracle.attack_context("A1"):
                raise ValueError("probe blew up")
        with pytest.raises(SeparationViolation):
            _trip(oracle)

    def test_windows_do_not_nest(self):
        oracle = SeparationOracle()
        with oracle.attack_context("A1"):
            with pytest.raises(RuntimeError, match="already armed"):
                with oracle.attack_context("A2"):
                    pass

    def test_tags_separate_across_windows(self):
        oracle = SeparationOracle()
        with oracle.attack_context("A1"):
            _trip(oracle, detail="first")
        with oracle.attack_context("A2"):
            _trip(oracle, detail="second")
        assert len(oracle.violations_for_attack("A1")) == 1
        assert len(oracle.violations_for_attack("A2")) == 1

    def test_metrics_still_counted_in_window(self):
        from repro.sim.metrics import MetricSet
        oracle = SeparationOracle(metrics=MetricSet())
        with oracle.attack_context("A3"):
            _trip(oracle, invariant="I3")
        assert oracle.metrics.counter("oracle_violations_total",
                                      invariant="I3").value == 1
