"""Campaign outcomes: the paper's composed-defence claim, attack by attack.

Under ``full`` every probe must be BLOCKED (0 silent crossings, 0 oracle
violations at full sampling), every benign twin must work, and blocked
outcomes must carry audit attribution.  Under each ablation the declared
attacks — and only those — flip.
"""

from __future__ import annotations

import pytest

from repro.attacks import CATALOG, CampaignRunner, Outcome, by_id
from repro.attacks.runner import CampaignError
from repro.obs.dashboard import campaign_posture

from tests.attacks.conftest import outcome_of

IDS = [a.id for a in CATALOG]


class TestFullPreset:
    @pytest.mark.parametrize("attack_id", IDS)
    def test_attack_blocked(self, full_campaign, attack_id):
        out = outcome_of(full_campaign, attack_id)
        assert out.outcome is Outcome.BLOCKED, out.malicious_detail

    def test_no_silent_crossings(self, full_campaign):
        assert full_campaign.succeeded == []
        assert full_campaign.counts()["BLOCKED"] == len(CATALOG)

    @pytest.mark.parametrize("attack_id", IDS)
    def test_benign_twin_ran_clean(self, full_campaign, attack_id):
        # CampaignRunner raises CampaignError on a dirty twin, so the
        # detail string existing at all means the twin passed; sanity-check
        # it carries a real description.
        out = outcome_of(full_campaign, attack_id)
        assert len(out.benign_detail) > 10

    def test_blocked_outcomes_are_attributed(self, full_campaign):
        for out in full_campaign.outcomes:
            assert out.blocked_by, out.attack_id
        # denial-backed blocks carry the causal trace from the audit trail
        traced = [o for o in full_campaign.outcomes if o.deny_records]
        assert len(traced) >= 8
        assert any(o.audit_trace for o in traced)

    def test_enforcement_denials_match_mechanism(self, full_campaign):
        """Where a deny record attributed the block, it names the
        mechanism the catalog declared (the portal's cross-user hop is
        legitimately the UBF's kill)."""
        for out in full_campaign.outcomes:
            if out.deny_records and out.attack_id != "A9":
                assert out.blocked_by == out.mechanism, out.attack_id
        a9 = outcome_of(full_campaign, "A9")
        if a9.deny_records:
            assert a9.blocked_by in ("portal", "ubf")


class TestAblations:
    def test_expected_outcome_everywhere(self, matrix):
        for attack in CATALOG:
            for key, result in matrix.items():
                out = outcome_of(result, attack.id)
                assert out.outcome.value == attack.expected(key), \
                    (f"{attack.id} under {key}: {out.outcome.value}, "
                     f"expected {attack.expected(key)} — "
                     f"{out.malicious_detail}")

    def test_every_ablation_flips_something(self, matrix):
        for key, result in matrix.items():
            if key in ("full",):
                continue
            flipped = [o for o in result.outcomes
                       if o.outcome is not Outcome.BLOCKED]
            assert flipped, f"ablation {key} flipped nothing"

    def test_baseline_all_succeed(self, matrix):
        assert len(matrix["baseline"].succeeded) == len(CATALOG)

    def test_succeeded_outcomes_have_no_attribution(self, matrix):
        for o in matrix["baseline"].outcomes:
            assert o.blocked_by is None and o.audit_trace is None


class TestDetection:
    def test_portal_crossing_detected_without_ubf(self):
        """A9 under no-ubf: the crossing happens but the armed portal
        invariant tags a violation in-window -> DETECTED, not silent."""
        out = CampaignRunner("no-ubf").run_attack(by_id("A9"))
        assert out.outcome is Outcome.DETECTED
        assert out.tagged_violations >= 1

    def test_detected_is_never_silent_success(self, matrix):
        for result in matrix.values():
            for o in result.outcomes:
                if o.outcome is Outcome.DETECTED:
                    assert o.tagged_violations >= 1, o.attack_id


class TestRunnerPlumbing:
    def test_attack_events_bracket_the_probe(self):
        """The probe start/outcome markers land in the audit trail as
        attack/probe records (the per-tenant forensic story)."""
        runner = CampaignRunner("full")
        runner.run_attack(by_id("A6"))
        # the runner uses a fresh cluster per attack; re-run one attack
        # with a hand-built runner to inspect its cluster
        cluster = runner._arm()
        from repro.monitor.events import EventKind
        uid = cluster.user("bob").uid
        cluster.security_log.emit(0.0, EventKind.ATTACK, uid, "A6", "probe")
        recs = cluster.forensics.audit.by_mechanism("attack")
        assert recs and recs[-1].action == "probe"

    def test_campaign_metrics_counted(self, full_campaign):
        # run a tiny campaign with its own runner to observe counters
        runner = CampaignRunner("full", attacks=(by_id("A2"), by_id("A4")))
        runner.run()
        counted = runner.metrics.counter("attacks_run_total",
                                         outcome="BLOCKED").value
        assert counted == 2

    def test_benign_twin_failure_is_loud(self):
        """A twin that raises fails the campaign with CampaignError."""
        broken = by_id("A6").__class__()
        broken.benign = lambda cluster: (_ for _ in ()).throw(
            RuntimeError("twin broke"))
        with pytest.raises(CampaignError, match="benign twin failed"):
            CampaignRunner("full").run_attack(broken)


class TestDashboardSection:
    def test_campaign_posture_renders(self, full_campaign):
        text = campaign_posture(full_campaign)
        assert "Attack campaign posture" in text
        assert "state ok" in text
        assert any(ln.startswith("| A1 ") for ln in text.splitlines())

    def test_posture_flags_red_state(self, matrix):
        text = campaign_posture(matrix["baseline"])
        assert "RED" in text
        # silent crossings sort first
        first_row = [ln for ln in text.splitlines() if ln.startswith("| A")][0]
        assert "SUCCEEDED" in first_row
