"""Catalog sanity: coverage, metadata integrity, preset declarations."""

from __future__ import annotations

import pytest

from repro.attacks import ABLATIONS, CAMPAIGN_PRESETS, CATALOG, by_id
from repro.attacks.presets import preset


class TestCatalogShape:
    def test_at_least_twelve_numbered_attacks(self):
        assert len(CATALOG) >= 12

    def test_ids_are_unique_and_numbered(self):
        ids = [a.id for a in CATALOG]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith("A") and i[1:].isdigit() for i in ids)

    def test_every_paper_mechanism_area_covered(self):
        """At least one adversary per Section IV-A..G mechanism."""
        sections = {a.section.split("/")[0] for a in CATALOG}
        for letter in "ABCDEFG":
            assert any(s.startswith(f"IV-{letter}") for s in sections), \
                f"no attack stresses Section IV-{letter}"

    def test_metadata_complete(self):
        for a in CATALOG:
            assert a.story != "?" and len(a.story) > 20, a.id
            assert a.mechanism != "?", a.id
            assert a.blocked_by != "?", a.id
            assert a.invariant.startswith("I"), a.id
            assert a.attacker in ("alice", "bob", "carol", "dave"), a.id

    def test_by_id_resolves_and_rejects(self):
        assert by_id("a7").id == "A7"
        with pytest.raises(KeyError, match="A99"):
            by_id("A99")


class TestPresetDeclarations:
    def test_flipped_by_names_real_presets(self):
        for a in CATALOG:
            for key in a.flipped_by + a.detected_in:
                assert key in CAMPAIGN_PRESETS, f"{a.id} -> {key}"

    def test_every_attack_flips_under_baseline(self):
        """baseline is the all-off bookend: nothing may stay blocked."""
        for a in CATALOG:
            assert "baseline" in a.flipped_by, a.id

    def test_every_ablation_declared_load_bearing(self):
        """Each ablation must appear in >=1 attack's flip/detect sets."""
        for key in ABLATIONS:
            flippers = [a.id for a in CATALOG
                        if key in a.flipped_by or key in a.detected_in]
            assert flippers, f"ablation {key} flips no attack"

    def test_full_preset_is_all_mechanisms_on(self):
        cfg = preset("full")
        assert cfg.ubf and cfg.pam_slurm and cfg.file_permission_handler
        assert cfg.hidepid == 2 and cfg.gpu_scrub and cfg.portal_auth

    def test_preset_lookup_rejects_typo(self):
        with pytest.raises(KeyError, match="no-such"):
            preset("no-such")

    def test_expected_matrix_is_total(self):
        for a in CATALOG:
            for key in CAMPAIGN_PRESETS:
                assert a.expected(key) in ("BLOCKED", "DETECTED",
                                           "SUCCEEDED")
