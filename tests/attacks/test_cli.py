"""CLI smoke tests: list / run / campaign entry points."""

from __future__ import annotations

from repro.attacks.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "A14" in out and "presets:" in out

    def test_run_single_attack_blocked(self, capsys):
        assert main(["run", "A6", "--preset", "full"]) == 0
        out = capsys.readouterr().out
        assert "BLOCKED" in out and "benign twin : ok" in out

    def test_run_exit_code_reflects_expectation(self, capsys):
        # A1 is *expected* to succeed under no-hidepid: exit 0
        assert main(["run", "A1", "--preset", "no-hidepid"]) == 0
        assert "SUCCEEDED" in capsys.readouterr().out

    def test_campaign_fail_on_success_green_on_full(self, capsys):
        assert main(["campaign", "--preset", "full",
                     "--fail-on-success"]) == 0
        assert "succeeded: 0" in capsys.readouterr().out

    def test_campaign_fail_on_success_red_on_baseline(self, capsys):
        assert main(["campaign", "--preset", "baseline",
                     "--fail-on-success"]) == 1
        err = capsys.readouterr().err
        assert "silent crossings" in err
