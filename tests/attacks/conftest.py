"""Campaign fixtures: the full attack x preset matrix, run once.

The whole matrix (14 attacks x 12 presets, two clusters each) runs in
about a second, so the suite executes it a single time per session and
every test asserts against the shared result.
"""

from __future__ import annotations

import pytest

from repro.attacks import run_matrix


@pytest.fixture(scope="session")
def matrix():
    """attack x preset campaign results, keyed by preset."""
    return run_matrix()


@pytest.fixture(scope="session")
def full_campaign(matrix):
    """The ``full``-preset campaign result."""
    return matrix["full"]


def outcome_of(result, attack_id):
    """The one AttackOutcome for *attack_id* in a CampaignResult."""
    return next(o for o in result.outcomes if o.attack_id == attack_id)
