"""Generated report: deterministic rendering and the freshness gate."""

from __future__ import annotations

from pathlib import Path

from repro.attacks.report import check_report, render_report, write_report

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRenderDeterminism:
    def test_two_renders_are_byte_identical(self, matrix):
        assert render_report(matrix) == render_report(matrix)

    def test_fresh_matrix_renders_identically(self, matrix):
        """A freshly executed campaign matrix renders the same bytes as a
        cached one — the rendering has no hidden order or time dependence."""
        assert render_report(None) == render_report(matrix)

    def test_report_structure(self, matrix):
        text = render_report(matrix)
        assert text.startswith("# Attack matrix")
        assert "GENERATED FILE" in text
        assert "## Campaign summary - `full` preset" in text
        assert "## Verdict matrix - attack x preset" in text
        assert "## Ablation flips" in text
        for attack_id in ("A1", "A7", "A14"):
            assert f"| {attack_id} |" in text


class TestFreshnessGate:
    def test_committed_report_is_fresh(self, matrix):
        """docs/ATTACKS.md in the tree matches a regeneration (the same
        check CI runs via `python -m repro.attacks report --check`)."""
        fresh, message = check_report(REPO_ROOT)
        assert fresh, message

    def test_stale_report_detected(self, tmp_path, matrix):
        write_report(tmp_path, matrix)
        ok, _ = check_report(tmp_path)
        assert ok
        p = tmp_path / "docs" / "ATTACKS.md"
        p.write_text(p.read_text() + "\ndrift\n", encoding="utf-8")
        ok, message = check_report(tmp_path)
        assert not ok and "stale" in message

    def test_missing_report_detected(self, tmp_path):
        ok, message = check_report(tmp_path)
        assert not ok and "missing" in message
