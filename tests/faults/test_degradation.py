"""Integration tests: how the UBF data path degrades and recovers.

The acceptance story (experiment E23): with identd down on one peer, new
cross-host connections fail closed, established flows keep flowing via
conntrack, and recovery after the fault clears needs no manual flush.
"""

import pytest

from repro import Cluster, LLSC
from repro.faults import FaultKind
from repro.kernel.errors import TimedOut
from repro.monitor import EventKind, detect_probe_patterns, instrument_cluster
from repro.net import Proto, Verdict

from tests.net.conftest import build_fabric, proc_on


def serve(nodes, userdb, host, user, port):
    p = proc_on(nodes, host, userdb, user, argv=("server",))
    net = nodes[host].net
    return net.listen(net.bind(p, port)), p


class TestFailClosed:
    def test_identd_down_blast_radius_and_recovery(self, userdb):
        """The headline contract, cache disabled so every decision needs
        ident: established flows survive, NEW fails closed, clearance alone
        restores service."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=False)
        serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        fault = fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        conn.send(b"still flowing")  # conntrack fast path: untouched
        with pytest.raises(TimedOut):  # NEW needs ident: fail closed
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)
        assert fabric.metrics.counter("ubf_degraded_verdicts",
                                      policy="fail-closed").value == 1
        fabric.faults.clear(fault)
        conn2 = nodes["c1"].net.connect(  # no manual flush needed
            proc_on(nodes, "c1", userdb, "alice"), "c2", 5000)
        assert conn2.open

    def test_cached_principal_survives_identd_outage(self, userdb):
        """Resilience bonus of the fixed cache: a principal whose decision
        is cached needs no RTT, so the outage doesn't touch them — while an
        uncached principal fails closed."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        alice = proc_on(nodes, "c1", userdb, "alice")
        nodes["c1"].net.connect(alice, "c2", 5000)  # populates the cache
        fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        assert nodes["c1"].net.connect(alice, "c2", 5000).open  # cache hit
        with pytest.raises(TimedOut):  # carol is uncached: fail closed
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "carol"),
                                    "c2", 5000)

    def test_degraded_verdict_is_not_cached(self, userdb):
        """A fail-closed DROP reflects the fault, not the principal; it must
        vanish with the fault instead of poisoning the cache."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        alice = proc_on(nodes, "c1", userdb, "alice")
        fault = fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(alice, "c2", 5000)
        fabric.faults.clear(fault)
        assert nodes["c1"].net.connect(alice, "c2", 5000).open

    def test_fail_open_ablation_accepts(self, userdb):
        """fail_open=True trades separation for availability: even a
        cross-user connection is admitted while identity is unknowable."""
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                              cache=False)
        daemons["c2"].fail_open = True
        serve(nodes, userdb, "c2", "alice", 5000)
        fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "bob"),
                                       "c2", 5000)
        assert conn.open
        assert fabric.metrics.counter("ubf_degraded_verdicts",
                                      policy="fail-open").value == 1


class TestRetryWithBackoff:
    def test_retry_rides_out_slow_identd(self, userdb):
        """fail_attempts=2 < 3 total attempts: the third answers, the
        connection goes through, and nobody saw a degraded verdict."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=False)
        serve(nodes, userdb, "c2", "alice", 5000)
        fabric.faults.inject(FaultKind.IDENTD_SLOW, "c1", fail_attempts=2)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        assert conn.open
        rep = fabric.metrics.report()
        assert rep["ubf_ident_retries"] == 2
        assert rep["ubf_ident_timeouts"] == 2
        assert not any(k.startswith("ubf_degraded_verdicts") for k in rep)
        backoffs = fabric.metrics.samples("ubf_ident_backoff_us").values
        assert backoffs == [200.0, 400.0]  # exponential

    def test_retries_exhausted_degrades(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=True,
                                        cache=False)
        serve(nodes, userdb, "c2", "alice", 5000)
        fabric.faults.inject(FaultKind.IDENTD_SLOW, "c1", fail_attempts=99)
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)
        rep = fabric.metrics.report()
        assert rep["ubf_ident_timeouts"] == 3  # first try + 2 retries
        assert rep["ubf_ident_retries"] == 2

    def test_unknown_peer_degrades_without_retries(self, userdb):
        """A packet claiming an unknown source host cannot get better by
        waiting: one degraded DROP, no retry loop, no daemon crash."""
        from repro.net.firewall import ConnState, FiveTuple, Packet

        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        pkt = Packet(FiveTuple(Proto.TCP, "ghost", 50000, "c2", 5000),
                     ConnState.NEW)
        assert daemons["c2"].decide(pkt) is Verdict.DROP
        assert daemons["c2"].log[-1].reason.startswith("degraded")
        assert "ident_round_trips" not in fabric.metrics.report()


class TestCrashRestart:
    def test_crash_fails_closed_established_survive(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        daemons["c2"].crash()
        assert not daemons["c2"].alive
        conn.send(b"x")  # conntrack survives the daemon
        with pytest.raises(TimedOut):  # NEW: nobody to ask → DROP
            nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                    "c2", 5000)

    def test_restart_resyncs_without_manual_flush(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        serve(nodes, userdb, "c2", "alice", 5000)
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        daemons["c2"].crash()
        daemons["c2"].restart()
        assert daemons["c2"].alive
        assert daemons["c2"]._cache == {}  # stale identity state dropped
        conn.send(b"x")  # survivor untouched
        assert nodes["c1"].net.connect(  # NEW decisions run again
            proc_on(nodes, "c1", userdb, "alice"), "c2", 5000).open
        rep = fabric.metrics.report()
        assert rep["ubf_crashes"] == 1 and rep["ubf_restarts"] == 1
        assert fabric.metrics.gauge("ubf_resync_flows").value >= 1

    def test_crash_and_restart_are_idempotent(self, userdb):
        fabric, nodes, daemons = build_fabric(userdb, ["c1", "c2"],
                                              ubf=True)
        daemons["c2"].crash()
        daemons["c2"].crash()
        daemons["c2"].restart()
        daemons["c2"].restart()
        assert fabric.metrics.report()["ubf_crashes"] == 1
        assert fabric.metrics.report()["ubf_restarts"] == 1


@pytest.fixture
def cluster():
    c = Cluster.build(LLSC, n_compute=2,
                      users=("alice", "bob"), staff=("sam",))
    instrument_cluster(c)
    return c


def _alice_service(cluster, port=5000):
    job = cluster.submit("alice", duration=1000.0)
    cluster.run(until=1.0)
    shell = cluster.job_session(job)
    shell.node.net.listen(shell.node.net.bind(shell.process, port))
    return shell.node.name


class TestChaosController:
    def test_kill_ubf_preserves_monitoring_wrapper(self, cluster):
        """The restart must rebind the *instrumented* handler: a cross-user
        denial after heal_all still lands in the security log."""
        host = _alice_service(cluster)
        chaos = cluster.chaos()
        chaos.kill_ubf(host)
        alice = cluster.login("alice")
        with pytest.raises(TimedOut):  # daemon dead: fail closed
            alice.socket().connect(host, 5000)
        chaos.heal_all()
        assert cluster.ubf_daemons[host].alive
        assert alice.socket().connect(host, 5000).open
        bob = cluster.login("bob")
        with pytest.raises(TimedOut):
            bob.socket().connect(host, 5000)
        denials = cluster.security_log.by_kind(EventKind.NET_DENY)
        assert any(e.subject_uid == bob.user.uid for e in denials)

    def test_timed_fault_auto_clears(self, cluster):
        host = _alice_service(cluster)
        chaos = cluster.chaos()
        login = cluster.login_nodes[0].name
        chaos.identd_down(login, for_=10.0)
        alice = cluster.login("alice")
        with pytest.raises(TimedOut):
            alice.socket().connect(host, 5000)
        cluster.run(until=20.0)
        assert chaos.active() == []
        assert alice.socket().connect(host, 5000).open

    def test_degraded_events_not_blamed_on_principal(self, cluster):
        """Degraded DROPs surface as DEGRADED (infrastructure), never as
        NET_DENY, and never trip the probe heuristic."""
        host = _alice_service(cluster)
        chaos = cluster.chaos()
        chaos.identd_down(cluster.login_nodes[0].name)
        alice = cluster.login("alice")
        for _ in range(3):
            with pytest.raises(TimedOut):
                alice.socket().connect(host, 5000)
        log = cluster.security_log
        assert len(log.by_kind(EventKind.DEGRADED)) >= 1
        assert not log.by_kind(EventKind.NET_DENY)
        assert detect_probe_patterns(log, min_denials=1,
                                     min_distinct_targets=1) == []

    def test_conntrack_pressure_applies_and_restores(self, cluster):
        host = cluster.compute_nodes[0].name
        table = cluster.fabric.host(host).firewall.conntrack
        chaos = cluster.chaos()
        fault = chaos.conntrack_pressure(host, capacity=2)
        assert table.capacity == 2
        chaos.clear(fault)
        assert table.capacity == LLSC.conntrack_max
        assert chaos.active() == []

    def test_partition_blocks_even_established(self, cluster):
        host = _alice_service(cluster)
        chaos = cluster.chaos()
        alice = cluster.login("alice")
        conn = alice.socket().connect(host, 5000)
        chaos.partition(host)
        with pytest.raises(TimedOut):
            conn.send(b"x")
        chaos.heal_all()
        conn.send(b"x")


class TestDashboardPosture:
    def test_degradation_section_renders(self, cluster):
        from repro.obs.dashboard import ops_dashboard

        text = ops_dashboard(cluster)
        assert "## Degradation posture" in text
        assert "No active faults." in text
        chaos = cluster.chaos()
        host = cluster.compute_nodes[0].name
        chaos.identd_down(host)
        chaos.kill_ubf(host)
        text = ops_dashboard(cluster)
        assert "identd-unresponsive" in text
        assert f"UBF daemons down: {host}" in text
        chaos.heal_all()
        assert "No active faults." in ops_dashboard(cluster)
