"""Unit tests: the fault injector's registry and data-path predicates."""

import pytest

from repro.faults import Fault, FaultInjector, FaultKind
from repro.kernel.errors import ConnectionRefused, TimedOut
from repro.net import Proto

from tests.net.conftest import build_fabric, proc_on


@pytest.fixture
def injector():
    from repro.sim.metrics import MetricSet
    return FaultInjector(MetricSet(), seed=7)


class TestRegistry:
    def test_inject_and_clear(self, injector):
        fault = injector.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        assert fault.active
        assert injector.active() == [fault]
        assert injector.metrics.gauge("faults_active").value == 1
        injector.clear(fault)
        assert not fault.active
        assert injector.active() == []
        assert injector.metrics.gauge("faults_active").value == 0

    def test_clear_is_idempotent(self, injector):
        fault = injector.inject(FaultKind.HOST_UNREACHABLE, "c1")
        injector.clear(fault)
        injector.clear(fault)
        assert injector.metrics.counter(
            "faults_cleared_total", kind=fault.kind.value).value == 1

    def test_active_filters(self, injector):
        a = injector.inject(FaultKind.HOST_UNREACHABLE, "c1")
        b = injector.inject(FaultKind.IDENTD_UNRESPONSIVE, "c2")
        assert injector.active(FaultKind.HOST_UNREACHABLE) == [a]
        assert injector.active(host="c2") == [b]
        assert set(injector.active()) == {a, b}

    def test_clear_all(self, injector):
        injector.inject(FaultKind.HOST_UNREACHABLE, "c1")
        injector.inject(FaultKind.PACKET_LOSS, "c2", loss_rate=0.5)
        injector.clear_all()
        assert injector.active() == []

    def test_describe_hides_private_params(self):
        fault = Fault(1, FaultKind.CONNTRACK_PRESSURE, "c1",
                      {"capacity": 4, "_prev_capacity": None})
        assert fault.describe() == "conntrack-pressure on c1 (capacity=4)"


class TestPredicates:
    def test_unreachable_blocks_ident_too(self, injector):
        injector.inject(FaultKind.HOST_UNREACHABLE, "c1")
        assert injector.host_unreachable("c1")
        assert not injector.ident_attempt_ok("c1")
        assert not injector.host_unreachable("c2")
        assert injector.ident_attempt_ok("c2")

    def test_identd_down_host_still_reachable(self, injector):
        injector.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        assert not injector.ident_attempt_ok("c1")
        assert not injector.host_unreachable("c1")

    def test_slow_identd_consumes_attempt_budget(self, injector):
        injector.inject(FaultKind.IDENTD_SLOW, "c1", fail_attempts=2)
        assert not injector.ident_attempt_ok("c1")
        assert not injector.ident_attempt_ok("c1")
        assert injector.ident_attempt_ok("c1")  # budget spent: recovers

    def test_packet_loss_is_seeded(self):
        from repro.sim.metrics import MetricSet

        def draws(seed):
            inj = FaultInjector(MetricSet(), seed=seed)
            inj.inject(FaultKind.PACKET_LOSS, "c1", loss_rate=0.5)
            return [inj.drop_packet("c1") for _ in range(50)]

        assert draws(7) == draws(7)  # deterministic
        assert any(draws(7)) and not all(draws(7))  # rate actually partial
        assert draws(7) != draws(8)  # seed actually matters

    def test_zero_loss_never_drops(self, injector):
        injector.inject(FaultKind.PACKET_LOSS, "c1", loss_rate=0.0)
        assert not any(injector.drop_packet("c1") for _ in range(20))


class TestTransit:
    def test_unreachable_host_times_out_connect(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=False)
        fabric.faults.inject(FaultKind.HOST_UNREACHABLE, "c2")
        alice = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(TimedOut):
            nodes["c1"].net.connect(alice, "c2", 5000)
        assert fabric.metrics.report()["fault_unreachable_drops"] == 1

    def test_local_delivery_exempt_from_transit(self, userdb):
        """A host partitioned off the fabric can still talk to itself."""
        fabric, nodes, _ = build_fabric(userdb, ["c1"], ubf=False)
        fabric.faults.inject(FaultKind.HOST_UNREACHABLE, "c1")
        alice = proc_on(nodes, "c1", userdb, "alice")
        inbox = nodes["c1"].net.bind(alice, 6000, Proto.UDP)
        nodes["c1"].net.sendto(alice, "c1", 6000, b"loop")
        assert nodes["c1"].net.recvfrom(inbox).data == b"loop"

    def test_established_flow_killed_by_partition(self, userdb):
        """Partition severs even conntrack-established traffic — conntrack
        survives *daemon* faults, not the wire itself."""
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=False)
        alice_srv = proc_on(nodes, "c2", userdb, "alice")
        nodes["c2"].net.listen(nodes["c2"].net.bind(alice_srv, 5000))
        conn = nodes["c1"].net.connect(proc_on(nodes, "c1", userdb, "alice"),
                                       "c2", 5000)
        fault = fabric.faults.inject(FaultKind.HOST_UNREACHABLE, "c2")
        with pytest.raises(TimedOut):
            conn.send(b"x")
        fabric.faults.clear(fault)
        conn.send(b"x")  # flow was never evicted; heals instantly

    def test_refused_send_not_counted_as_fault(self, userdb):
        fabric, nodes, _ = build_fabric(userdb, ["c1", "c2"], ubf=False)
        alice = proc_on(nodes, "c1", userdb, "alice")
        with pytest.raises(ConnectionRefused):
            nodes["c1"].net.connect(alice, "c2", 5000)
        assert "fault_unreachable_drops" not in fabric.metrics.report()
