"""Unit + integration tests: web portal auth and UBF-governed forwarding."""

import pytest

from repro.kernel.errors import AccessDenied, NoSuchEntity, TimedOut
from repro.portal import Portal, launch_webapp

from tests.net.conftest import build_fabric, proc_on


def make_portal(userdb, *, ubf=True, require_auth=True):
    fabric, nodes, daemons = build_fabric(
        userdb, ["portal", "c1", "c2"], ubf=ubf)
    portal = Portal(fabric=fabric, userdb=userdb, node=nodes["portal"],
                    require_auth=require_auth)
    return portal, nodes


def launch_as(nodes, userdb, host, user, port, title):
    proc = proc_on(nodes, host, userdb, user, argv=("jupyter",))
    return launch_webapp(nodes[host], proc, port, title)


class TestAuth:
    def test_login_issues_unique_tokens(self, userdb):
        portal, _ = make_portal(userdb)
        t1 = portal.login("alice")
        t2 = portal.login("alice")
        assert t1.token != t2.token

    def test_unknown_user_cannot_login(self, userdb):
        portal, _ = make_portal(userdb)
        with pytest.raises(NoSuchEntity):
            portal.login("mallory")

    def test_no_token_rejected(self, userdb):
        portal, nodes = make_portal(userdb)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        with pytest.raises(AccessDenied):
            portal.connect(None, app.app_id)

    def test_bogus_token_rejected(self, userdb):
        portal, nodes = make_portal(userdb)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        with pytest.raises(AccessDenied):
            portal.connect("tok-fake", app.app_id)

    def test_logout_invalidates(self, userdb):
        portal, nodes = make_portal(userdb)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        session = portal.login("alice")
        portal.logout(session.token)
        with pytest.raises(AccessDenied):
            portal.connect(session.token, app.app_id)


class TestForwarding:
    def test_owner_reaches_own_app(self, userdb):
        portal, nodes = make_portal(userdb)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        session = portal.login("alice")
        page = portal.connect(session.token, app.app_id)
        assert b"jupyter" in page

    def test_app_on_any_node_reachable(self, userdb):
        """Apps are not restricted to a dedicated partition."""
        portal, nodes = make_portal(userdb)
        for host in ("c1", "c2"):
            app = launch_as(nodes, userdb, host, "alice", 8888,
                            f"tb-{host}")
            portal.register(app)
            session = portal.login("alice")
            assert f"tb-{host}".encode() in portal.connect(session.token,
                                                           app.app_id)

    def test_stranger_blocked_by_ubf(self, userdb):
        """bob authenticates fine but the forwarded hop runs as bob, so the
        UBF on alice's node drops it: authorization on the whole path."""
        portal, nodes = make_portal(userdb)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        session = portal.login("bob")
        with pytest.raises(TimedOut):
            portal.connect(session.token, app.app_id)

    def test_unknown_route(self, userdb):
        portal, _ = make_portal(userdb)
        session = portal.login("alice")
        with pytest.raises(NoSuchEntity):
            portal.connect(session.token, 999)

    def test_routes_listing_is_per_user(self, userdb):
        portal, nodes = make_portal(userdb)
        a_app = launch_as(nodes, userdb, "c1", "alice", 8888, "alice-nb")
        b_app = launch_as(nodes, userdb, "c2", "bob", 8888, "bob-nb")
        portal.register(a_app)
        portal.register(b_app)
        session = portal.login("alice")
        titles = {a.title for a in portal.routes_for(session)}
        assert titles == {"alice-nb"}


class TestSessionExpiry:
    def _expiring_portal(self, userdb, ttl=100.0):
        portal, nodes = make_portal(userdb)
        now = {"t": 0.0}
        portal.session_ttl = ttl
        portal.clock = lambda: now["t"]
        return portal, nodes, now

    def test_fresh_token_works(self, userdb):
        portal, nodes, now = self._expiring_portal(userdb)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        session = portal.login("alice")
        assert b"jupyter" in portal.connect(session.token, app.app_id)

    def test_expired_token_rejected(self, userdb):
        portal, nodes, now = self._expiring_portal(userdb, ttl=100.0)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        session = portal.login("alice")
        now["t"] = 101.0
        with pytest.raises(AccessDenied):
            portal.connect(session.token, app.app_id)

    def test_relogin_after_expiry(self, userdb):
        portal, nodes, now = self._expiring_portal(userdb, ttl=100.0)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        portal.login("alice")
        now["t"] = 500.0
        fresh = portal.login("alice")
        assert b"jupyter" in portal.connect(fresh.token, app.app_id)

    def test_no_ttl_never_expires(self, userdb):
        portal, nodes, now = self._expiring_portal(userdb, ttl=None)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        session = portal.login("alice")
        now["t"] = 1e12
        assert b"jupyter" in portal.connect(session.token, app.app_id)


class TestInsecureBaseline:
    def test_adhoc_forwarding_leaks_without_ubf(self, userdb):
        """No auth + no UBF (ad-hoc ssh port forward world): anyone reads
        anyone's notebook."""
        portal, nodes = make_portal(userdb, ubf=False, require_auth=False)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        page = portal.connect(None, app.app_id)
        assert b"jupyter" in page  # leak: unauthenticated access succeeded

    def test_ubf_alone_blocks_generic_service_identity(self, userdb):
        """With the UBF still on, the unauthenticated portal forwards as a
        service identity... which is root, so reachable: defense requires
        BOTH auth and per-user forwarding — documented residual of the
        no-auth configuration."""
        portal, nodes = make_portal(userdb, ubf=True, require_auth=False)
        app = launch_as(nodes, userdb, "c1", "alice", 8888, "jupyter")
        portal.register(app)
        page = portal.connect(None, app.app_id)
        assert b"jupyter" in page
