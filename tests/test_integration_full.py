"""Full-stack integration: one scenario crossing every subsystem at once.

A condensed 'accreditation day': build the LLSC cluster, instrument it, run
real multi-user work (modules, sbatch CLI, batch scripts, MPI, GPU, portal,
scp), let an adversary probe everything, then produce the posture report —
and assert the cross-subsystem invariants hold simultaneously.
"""

import pytest

from repro import Cluster, LLSC, run_battery, smask_relax
from repro.core.compliance import check_compliance
from repro.core.report import posture_report
from repro.kernel.errors import KernelError
from repro.modules import ModuleFile, ModuleSystem, publish_module
from repro.monitor import audited_session, detect_probe_patterns, instrument_cluster
from repro.portal.webapp import launch_webapp
from repro.sched import JobState
from repro.shell import sbatch
from repro.transfer import scp
from repro.workloads.apps import submit_monte_carlo_pi, submit_training


@pytest.fixture(scope="module")
def world():
    cluster = Cluster.build(
        LLSC, n_compute=6, n_debug=1, n_dtn=1, gpus_per_node=1,
        users=("alice", "bob", "mallory"), staff=("sam",),
        projects={"fusion": ("alice", "bob")})
    log = instrument_cluster(cluster)

    # staff publish software
    sam = smask_relax(cluster, cluster.login("sam"))
    publish_module(sam.node, sam.creds, "/scratch/modulefiles",
                   ModuleFile(name="stack", version="1.0",
                              prepend_path={"PATH": ("/sw/bin",)}))

    # alice: modules + sbatch + apps + portal + scp
    alice = cluster.login("alice")
    ModuleSystem(alice.node).load(alice.process, "stack")
    _, sb_jobs = sbatch(alice, "-J sim -n 4 -t 30:00 ./sim")
    pi_job = submit_monte_carlo_pi(cluster, "alice", samples=50_000)
    train = submit_training(cluster, "alice", steps=50, duration=60.0)
    nb_job = cluster.submit("alice", name="nb", duration=5000.0)
    cluster.run(until=2.0)
    shell = cluster.job_session(nb_job)
    app = launch_webapp(shell.node, shell.process, 8888, "alice-nb")
    cluster.portal.register(app)
    alice.sys.create("/tmp/stage.bin", mode=0o600, data=b"S" * 512)
    scp(cluster, alice, "/tmp/stage.bin", "dtn1:/scratch/stage.bin")

    # bob: project collaboration + his own work
    bob = cluster.login("bob").sg("fusion")
    bob.sys.create("/home/proj/fusion/shared.npz", mode=0o660, data=b"d")
    sbatch(cluster.login("bob"), "-J bobwork -n 2 -t 10:00 ./b")

    # mallory: probes everything
    mallory = cluster.login("mallory")
    msys = audited_session(mallory, log)
    for path in ("/home/alice/pi-estimate.txt", "/home/alice/checkpoint.pkl",
                 "/home/proj/fusion/shared.npz", "/home/bob/x"):
        with pytest.raises(KernelError):
            msys.open_read(path)
    with pytest.raises(KernelError):
        mallory.socket().connect(app.node.name, 8888)
    with pytest.raises(KernelError):
        cluster.portal.connect(cluster.portal.login("mallory").token,
                               app.app_id)
    with pytest.raises(KernelError):
        cluster.ssh("mallory", nb_job.nodes[0])
    with pytest.raises(KernelError):
        scp(cluster, mallory, "dtn1:/scratch/stage.bin", "/tmp/loot")

    cluster.run(until=6000.0)
    return cluster, log, {
        "sb_jobs": sb_jobs, "pi_job": pi_job, "train": train,
        "nb_job": nb_job, "app": app,
    }


class TestEverythingAtOnce:
    def test_all_legitimate_work_completed(self, world):
        cluster, _, jobs = world
        assert jobs["sb_jobs"][0].state is JobState.COMPLETED
        assert jobs["pi_job"].state is JobState.COMPLETED
        assert jobs["train"].job.state is JobState.COMPLETED
        alice = cluster.login("alice")
        assert alice.sys.access("/home/alice/pi-estimate.txt", 4)
        assert alice.sys.access("/home/alice/checkpoint.pkl", 4)

    def test_portal_worked_for_owner(self, world):
        cluster, _, jobs = world
        token = cluster.portal.login("alice").token
        assert b"alice-nb" in cluster.portal.connect(token,
                                                     jobs["app"].app_id)

    def test_project_sharing_worked(self, world):
        cluster, _, _ = world
        alice = cluster.login("alice")
        assert alice.sys.open_read("/home/proj/fusion/shared.npz") == b"d"

    def test_gpu_clean_after_campaign(self, world):
        cluster, _, _ = world
        assert all(not g.dirty for cn in cluster.compute_nodes
                   for g in cn.gpus)

    def test_adversary_flagged_and_only_adversary(self, world):
        cluster, log, _ = world
        alerts = detect_probe_patterns(log)
        assert [a.subject_uid for a in alerts] == \
            [cluster.user("mallory").uid]
        assert len(alerts[0].kinds) >= 2

    def test_fleet_still_compliant_after_campaign(self, world):
        cluster, _, _ = world
        report = check_compliance(cluster)
        assert report.compliant, [str(f) for f in report.findings]

    def test_posture_report_renders(self, world):
        cluster, _, _ = world
        audit = run_battery(cluster.config)
        compliance = check_compliance(cluster)
        doc = posture_report(cluster, audit=audit, compliance=compliance)
        assert "# Security posture — configuration 'LLSC'" in doc
        assert "All" in doc and "checks passed" in doc
        assert "3 of" in doc and "documented residuals" in doc
        assert "Sanctioned project-group sharing: functional." in doc
        assert "| net-deny |" in doc or "| fs-deny |" in doc

    def test_no_leftover_processes(self, world):
        cluster, _, jobs = world
        for cn in cluster.compute_nodes:
            leftover = [p for p in cn.node.procs.processes()
                        if p.job_id is not None
                        and cluster.scheduler.jobs[p.job_id].state.finished]
            assert leftover == []
