"""Tests: attribution registry + audit trail — recording, resolution,
queries, and the versioned JSONL export (golden file)."""

import io
import json
from pathlib import Path
from types import SimpleNamespace

from repro.monitor.events import EventKind, SecurityEvent
from repro.obs.audit import AUDIT_SCHEMA_VERSION, AuditTrail
from repro.obs.context import AttributionRegistry

GOLDEN = Path(__file__).with_name("golden_audit.jsonl")


def fake_job(job_id=1, uid=1000, name="alice", nodes=("c1",), gpus=()):
    """A minimal stand-in for a scheduler Job with one allocation/node."""
    return SimpleNamespace(
        job_id=job_id, uid=uid, attempt=1,
        spec=SimpleNamespace(user=SimpleNamespace(name=name), ntasks=1,
                             partition="normal"),
        allocations=[SimpleNamespace(node=n, gpu_indices=tuple(gpus))
                     for n in nodes])


def fake_user(uid=1000, name="alice"):
    return SimpleNamespace(uid=uid, name=name)


class Clock:
    """Settable deterministic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def build_trail():
    """The deterministic scenario behind the golden export."""
    clock = Clock()
    registry = AttributionRegistry(clock)
    trail = AuditTrail(clock, registry)
    registry.audit = trail

    clock.now = 1.0
    job = fake_job(gpus=(0,))
    registry.job_submitted(job)
    clock.now = 2.0
    registry.job_started(job)
    clock.now = 3.0
    registry.session_opened(fake_user(1001, "bob"), "login1")
    # a denial arrives through the event-log sink path
    trail.observe_event(SecurityEvent(
        4.0, EventKind.NET_DENY, 1000, "c2:8888", "cross-user listener",
        node="c1"))
    # a clean UBF accept through the verdict chokepoint
    clock.now = 5.0
    trail.ubf_verdict(uid=1000, node="c1", target="c3:2049",
                      verdict="accept", reason="rule: same-user")
    clock.now = 6.0
    registry.job_finished(job, SimpleNamespace(name="COMPLETED"))
    return registry, trail


class TestRecording:
    def test_lifecycle_records_attributed(self):
        registry, trail = build_trail()
        recs = trail.by_job(1)
        assert [(r.mechanism, r.action) for r in recs] == [
            ("sched", "submit"), ("sched", "dispatch"), ("gpu", "assign"),
            ("ubf", "deny"), ("ubf", "allow"), ("sched", "finish")]
        assert all(r.trace_id == "a000001" for r in recs)

    def test_event_sink_resolves_uid_node_to_job(self):
        _, trail = build_trail()
        (deny,) = trail.query(mechanism="ubf", action="deny")
        assert deny.uid == 1000
        assert deny.job_id == 1            # resolved via the live index
        assert deny.trace_id == "a000001"
        assert deny.time == 4.0            # the event's time, not clock now

    def test_ubf_verdict_records_accepts_only(self):
        _, trail = build_trail()
        assert trail.ubf_verdict(uid=1000, node="c1", target="x",
                                 verdict="drop", reason="r") is None
        assert trail.ubf_verdict(uid=1000, node="c1", target="x",
                                 verdict="accept",
                                 reason="degraded: identd down") is None
        (allow,) = trail.query(mechanism="ubf", action="allow")
        assert allow.job_id == 1

    def test_session_login_recorded(self):
        _, trail = build_trail()
        (login,) = trail.query(mechanism="session")
        assert (login.uid, login.node, login.action) == \
            (1001, "login1", "login")
        assert login.trace_id == "a000002"

    def test_seq_is_append_order(self):
        _, trail = build_trail()
        assert [r.seq for r in trail.records] == list(range(len(trail)))


class TestQueries:
    def test_by_uid_and_node(self):
        _, trail = build_trail()
        assert {r.mechanism for r in trail.by_uid(1001)} == {"session"}
        assert all(r.node == "c1" for r in trail.by_node("c1"))

    def test_conjunctive_query(self):
        _, trail = build_trail()
        got = trail.query(uid=1000, mechanism="sched", action="dispatch")
        assert len(got) == 1 and got[0].node == "c1"
        assert trail.query(uid=1001, mechanism="sched") == []

    def test_chain_and_resolution(self):
        _, trail = build_trail()
        (deny,) = trail.query(mechanism="ubf", action="deny")
        chain = trail.chain(deny)
        assert [r.action for r in chain] == ["submit", "dispatch",
                                             "assign", "deny"]
        res = trail.resolution(deny)
        assert res["resolved"] and res["job_id"] == 1
        assert res["root"].action == "submit"

    def test_unattributed_record_not_resolved(self):
        trail = AuditTrail()
        rec = trail.record(mechanism="ubf", action="deny", uid=4242,
                           target="x")
        assert trail.chain(rec) == [rec]
        assert not trail.resolution(rec)["resolved"]


class TestExport:
    def test_golden_jsonl(self):
        _, trail = build_trail()
        buf = io.StringIO()
        n = trail.export_jsonl(buf)
        assert n == len(trail.records)
        assert buf.getvalue() == GOLDEN.read_text()

    def test_schema_version_stamped(self):
        _, trail = build_trail()
        for line in trail.lines():
            d = json.loads(line)
            assert d["type"] == "audit"
            assert d["v"] == AUDIT_SCHEMA_VERSION
            assert set(d) == {"type", "v", "seq", "time", "mechanism",
                              "action", "uid", "job_id", "node",
                              "trace_id", "target", "detail"}

    def test_export_to_path(self, tmp_path):
        _, trail = build_trail()
        path = str(tmp_path / "audit.jsonl")
        n = trail.export_jsonl(path)
        assert len(Path(path).read_text().splitlines()) == n


class TestRegistryResolution:
    def test_prefers_live_job_on_node(self):
        clock = Clock()
        registry = AttributionRegistry(clock)
        j1, j2 = fake_job(1, 1000, nodes=("c1",)), \
            fake_job(2, 1000, nodes=("c2",))
        for j in (j1, j2):
            registry.job_submitted(j)
            registry.job_started(j)
        assert registry.resolve(1000, "c2").job_id == 2
        assert registry.resolve(1000, "c1").job_id == 1

    def test_falls_back_newest_job_then_session(self):
        registry = AttributionRegistry()
        j = fake_job(7, 1000)
        registry.job_submitted(j)
        registry.job_started(j)
        # unknown node: newest live job anywhere
        assert registry.resolve(1000, "login1").job_id == 7
        registry.job_finished(j, SimpleNamespace(name="COMPLETED"))
        assert registry.resolve(1000, "login1") is None
        registry.session_opened(fake_user(1000, "alice"), "login1")
        ctx = registry.resolve(1000, "login1")
        assert ctx.kind == "session"
        # no node given: any session of the uid
        assert registry.resolve(1000).kind == "session"

    def test_negative_uid_never_resolves(self):
        registry = AttributionRegistry()
        registry.session_opened(fake_user(1000, "alice"), "login1")
        assert registry.resolve(-1, "login1") is None

    def test_requeue_keeps_context_live(self):
        registry = AttributionRegistry()
        j = fake_job(3, 1000)
        registry.job_submitted(j)
        registry.job_started(j)
        registry.job_finished(j, SimpleNamespace(name="NODE_FAIL"))
        j.attempt = 2
        registry.job_requeued(j)
        ctx = registry.jobs[3]
        assert ctx.live and ctx.attempts == 2
