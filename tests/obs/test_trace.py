"""Unit tests: span lifecycle, deterministic IDs, parent/child structure."""

import pytest

from repro.obs import Tracer


def make_tracer(t=None):
    state = {"now": 0.0}
    tracer = Tracer(clock=lambda: state["now"])
    return tracer, state


class TestSpanLifecycle:
    def test_ids_are_deterministic(self):
        tracer, _ = make_tracer()
        a = tracer.start_span("first")
        b = tracer.start_span("second")
        assert (a.trace_id, a.span_id) == ("t000001", "s000001")
        assert (b.trace_id, b.span_id) == ("t000002", "s000002")

    def test_child_shares_trace_and_points_at_parent(self):
        tracer, _ = make_tracer()
        root = tracer.start_span("job")
        child = tracer.start_span("sched.queue", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_duration_uses_clock(self):
        tracer, state = make_tracer()
        span = tracer.start_span("work")
        state["now"] = 12.5
        tracer.finish(span)
        assert span.finished
        assert span.duration == pytest.approx(12.5)

    def test_unfinished_span_has_zero_duration(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("open")
        assert not span.finished
        assert span.duration == 0.0

    def test_tags_from_start_finish_and_set_tag(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("job", job_id=7)
        span.set_tag("user", "alice")
        tracer.finish(span, state="completed")
        assert span.tags == {"job_id": 7, "user": "alice",
                             "state": "completed"}


class TestContextManager:
    def test_span_context_finishes(self):
        tracer, state = make_tracer()
        with tracer.span("step") as s:
            state["now"] = 3.0
        assert s.finished and s.duration == pytest.approx(3.0)

    def test_span_context_records_error_and_reraises(self):
        tracer, _ = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.tags["error"] == "ValueError"


class TestQueries:
    def test_finished_spans_excludes_open(self):
        tracer, _ = make_tracer()
        done = tracer.start_span("a")
        tracer.finish(done)
        tracer.start_span("still-open")
        assert [s.name for s in tracer.finished_spans()] == ["a"]

    def test_by_name_and_trace(self):
        tracer, _ = make_tracer()
        root = tracer.start_span("job")
        tracer.finish(tracer.start_span("sched.queue", parent=root))
        tracer.finish(root)
        other = tracer.start_span("job")
        tracer.finish(other)
        assert len(tracer.by_name("job")) == 2
        assert {s.span_id for s in tracer.trace(root.trace_id)} == \
            {root.span_id, tracer.spans[1].span_id}
        assert set(tracer.traces()) == {root.trace_id, other.trace_id}

    def test_to_dict_is_json_stable(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("x", k="v")
        tracer.finish(span)
        d = span.to_dict()
        assert list(d)[:3] == ["trace_id", "span_id", "parent_id"]
        assert d["tags"] == {"k": "v"}
