"""Unit tests: span lifecycle, deterministic IDs, parent/child structure."""

import pytest

from repro.obs import Tracer


def make_tracer(t=None):
    state = {"now": 0.0}
    tracer = Tracer(clock=lambda: state["now"])
    return tracer, state


class TestSpanLifecycle:
    def test_ids_are_deterministic(self):
        tracer, _ = make_tracer()
        a = tracer.start_span("first")
        b = tracer.start_span("second")
        assert (a.trace_id, a.span_id) == ("t000001", "s000001")
        assert (b.trace_id, b.span_id) == ("t000002", "s000002")

    def test_child_shares_trace_and_points_at_parent(self):
        tracer, _ = make_tracer()
        root = tracer.start_span("job")
        child = tracer.start_span("sched.queue", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_duration_uses_clock(self):
        tracer, state = make_tracer()
        span = tracer.start_span("work")
        state["now"] = 12.5
        tracer.finish(span)
        assert span.finished
        assert span.duration == pytest.approx(12.5)

    def test_unfinished_span_has_zero_duration(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("open")
        assert not span.finished
        assert span.duration == 0.0

    def test_tags_from_start_finish_and_set_tag(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("job", job_id=7)
        span.set_tag("user", "alice")
        tracer.finish(span, state="completed")
        assert span.tags == {"job_id": 7, "user": "alice",
                             "state": "completed"}


class TestContextManager:
    def test_span_context_finishes(self):
        tracer, state = make_tracer()
        with tracer.span("step") as s:
            state["now"] = 3.0
        assert s.finished and s.duration == pytest.approx(3.0)

    def test_span_context_records_error_and_reraises(self):
        tracer, _ = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.tags["error"] == "ValueError"


class TestQueries:
    def test_finished_spans_excludes_open(self):
        tracer, _ = make_tracer()
        done = tracer.start_span("a")
        tracer.finish(done)
        tracer.start_span("still-open")
        assert [s.name for s in tracer.finished_spans()] == ["a"]

    def test_by_name_and_trace(self):
        tracer, _ = make_tracer()
        root = tracer.start_span("job")
        tracer.finish(tracer.start_span("sched.queue", parent=root))
        tracer.finish(root)
        other = tracer.start_span("job")
        tracer.finish(other)
        assert len(tracer.by_name("job")) == 2
        assert {s.span_id for s in tracer.trace(root.trace_id)} == \
            {root.span_id, tracer.spans[1].span_id}
        assert set(tracer.traces()) == {root.trace_id, other.trace_id}

    def test_to_dict_is_json_stable(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("x", k="v")
        tracer.finish(span)
        d = span.to_dict()
        assert list(d)[:3] == ["trace_id", "span_id", "parent_id"]
        assert d["tags"] == {"k": "v"}

    def test_open_span_to_dict_carries_open_flag(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("inflight")
        assert span.to_dict()["open"] is True
        tracer.finish(span)
        assert "open" not in span.to_dict()


class TestRetention:
    def test_default_is_unbounded(self):
        tracer, _ = make_tracer()
        for i in range(100):
            tracer.finish(tracer.start_span(f"s{i}"))
        assert len(tracer.spans) == 100

    def test_bounded_ring_keeps_newest(self):
        tracer = Tracer(retention=3)
        for i in range(10):
            tracer.finish(tracer.start_span(f"s{i}"))
        assert [s.name for s in tracer.spans] == ["s7", "s8", "s9"]
        # IDs keep counting even as old spans are evicted
        assert tracer.spans[-1].span_id == "s000010"

    def test_retention_validated(self):
        with pytest.raises(ValueError):
            Tracer(retention=0)

    def test_tail_works_on_list_and_ring(self):
        unbounded, _ = make_tracer()
        ring = Tracer(retention=5)
        for t in (unbounded, ring):
            for i in range(8):
                t.finish(t.start_span(f"s{i}"))
        assert [s.name for s in unbounded.tail(3)] == ["s5", "s6", "s7"]
        assert [s.name for s in ring.tail(3)] == ["s5", "s6", "s7"]
        assert [s.name for s in ring.tail(99)] == \
            ["s3", "s4", "s5", "s6", "s7"]
        assert unbounded.tail(0) == [] and ring.tail(0) == []
