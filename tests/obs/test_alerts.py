"""Tests: declarative alert engine — rule kinds, edge triggering, gating,
default rule set, and the ALERT event sink."""

from repro.monitor.events import EventKind, SecurityEventLog
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    RuleKind,
    default_rules,
)
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet


def make_engine(rules, events=None, clock=None):
    metrics = MetricSet()
    return metrics, AlertEngine(metrics, events=events, clock=clock,
                                rules=tuple(rules),
                                sink=events)


class TestThreshold:
    RULE = AlertRule(name="oops", kind=RuleKind.THRESHOLD,
                     metric="oracle_violations_total", value=0.0,
                     severity="critical")

    def test_fires_when_crossed_sums_family(self):
        metrics, eng = make_engine([self.RULE])
        assert eng.evaluate(1.0) == []
        metrics.counter("oracle_violations_total", invariant="I2").inc()
        metrics.counter("oracle_violations_total", invariant="I5").inc()
        (alert,) = eng.evaluate(2.0)
        assert alert.rule == "oops" and alert.value == 2.0
        assert alert.severity == "critical" and alert.subject == -1

    def test_edge_triggered_not_level(self):
        metrics, eng = make_engine([self.RULE])
        metrics.counter("oracle_violations_total").inc()
        assert len(eng.evaluate(1.0)) == 1
        assert eng.evaluate(2.0) == []          # still breached: no re-fire
        assert metrics.counter("alerts_fired_total",
                               rule="oops").value == 1

    def test_operators(self):
        rule = AlertRule(name="low", kind=RuleKind.THRESHOLD,
                         metric="g", op="<", value=5.0)
        metrics, eng = make_engine([rule])
        metrics.gauge("g").set(10.0)
        assert eng.evaluate(1.0) == []
        metrics.gauge("g").set(2.0)
        assert len(eng.evaluate(2.0)) == 1


class TestRate:
    RULE = AlertRule(name="spike", kind=RuleKind.RATE,
                     event_kinds=(EventKind.NET_DENY,), window=60.0,
                     value=2.0, per_subject=True)

    def test_per_subject_trailing_window(self):
        log = SecurityEventLog()
        _, eng = make_engine([self.RULE], events=log)
        for t in (1.0, 2.0, 3.0):
            log.emit(t, EventKind.NET_DENY, 1000, f"c{t}:1", "x")
        log.emit(3.0, EventKind.NET_DENY, 1001, "c9:1", "x")
        (alert,) = eng.evaluate(10.0)
        assert alert.subject == 1000 and alert.value == 3.0
        # the ALERT event landed in the sink log, attributed to the uid
        assert log.events[-1].kind is EventKind.ALERT
        assert log.events[-1].subject_uid == 1000

    def test_rearms_after_window_drains(self):
        log = SecurityEventLog()
        _, eng = make_engine([self.RULE], events=log)
        for t in (1.0, 2.0, 3.0):
            log.emit(t, EventKind.NET_DENY, 1000, "c1:1", "x")
        assert len(eng.evaluate(10.0)) == 1
        assert eng.evaluate(20.0) == []          # still in window: no re-fire
        assert eng.evaluate(100.0) == []         # drained: cleared, no fire
        for t in (101.0, 102.0, 103.0):
            log.emit(t, EventKind.NET_DENY, 1000, "c1:1", "x")
        assert len(eng.evaluate(110.0)) == 1     # re-armed

    def test_other_kinds_ignored(self):
        log = SecurityEventLog()
        _, eng = make_engine([self.RULE], events=log)
        for t in (1.0, 2.0, 3.0):
            log.emit(t, EventKind.ADMIN, 1000, "x", "x")
        assert eng.evaluate(10.0) == []


class TestAbsence:
    RULE = AlertRule(name="silent", kind=RuleKind.ABSENCE,
                     metric="node_heartbeats_total", window=100.0,
                     gate_metric="faults_active", gate_value=0.0)

    def test_no_alert_while_moving_or_ungated(self):
        metrics, eng = make_engine([self.RULE])
        hb = metrics.counter("node_heartbeats_total")
        hb.inc()
        assert eng.evaluate(0.0) == []           # baseline
        hb.inc()
        assert eng.evaluate(50.0) == []          # moved
        # stalled 150s but gate (faults_active) is 0: suppressed
        assert eng.evaluate(200.0) == []

    def test_fires_when_stalled_and_gated_on(self):
        metrics, eng = make_engine([self.RULE])
        metrics.counter("node_heartbeats_total").inc()
        eng.evaluate(0.0)
        metrics.gauge("faults_active").set(1.0)
        assert eng.evaluate(50.0) == []          # stalled < window
        (alert,) = eng.evaluate(150.0)
        assert alert.rule == "silent"
        # movement clears and re-arms
        metrics.counter("node_heartbeats_total").inc()
        assert eng.evaluate(160.0) == []
        assert eng.evaluate(300.0) != []


class TestArm:
    def test_arm_schedules_finite_ticks(self):
        sim = Engine()
        metrics, eng = make_engine(
            [TestThreshold.RULE], clock=lambda: sim.now)
        n = eng.arm(sim, interval=10.0, until=50.0)
        assert n == 5
        metrics.counter("oracle_violations_total").inc()
        sim.run()                                # heap drains (finite)
        assert sim.now == 50.0
        assert len(eng.alerts) == 1


class TestDefaultRules:
    def test_catalog(self):
        rules = {r.name: r for r in default_rules()}
        assert set(rules) == {"tenant-deny-spike", "oracle-violation",
                              "node-fenced", "heartbeat-absence",
                              "dispatch-stalled"}
        assert rules["oracle-violation"].severity == "critical"
        assert rules["tenant-deny-spike"].per_subject
        assert rules["heartbeat-absence"].gate_metric == "faults_active"

    def test_deny_spike_covers_all_deny_kinds(self):
        (spike,) = [r for r in default_rules()
                    if r.name == "tenant-deny-spike"]
        assert {k.value for k in spike.event_kinds} == {
            "net-deny", "pam-deny", "fs-deny", "proc-deny", "sched-deny",
            "gpu-deny", "portal-deny"}
