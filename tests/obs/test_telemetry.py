"""Integration tests: attach_telemetry instrumentation on a built cluster.

The invariant under test throughout: telemetry is *additive*.  Enforcement
outcomes (what is allowed, what raises) are identical with and without it;
only counters, spans and exports appear.
"""

import io
import json

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied
from repro.monitor import instrument_cluster
from repro.obs import attach_telemetry


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=3, gpus_per_node=1,
                         users=("alice", "bob", "mallory"), staff=("sam",))


@pytest.fixture
def tele(cluster):
    return attach_telemetry(cluster)


def counter_value(cluster, name, **labels):
    return cluster.metrics.counter(name, **labels).value


class TestAttachment:
    def test_idempotent(self, cluster):
        first = attach_telemetry(cluster)
        assert attach_telemetry(cluster) is first
        assert cluster.telemetry is first

    def test_idempotent_wrapping_no_double_counting(self, cluster):
        attach_telemetry(cluster)
        attach_telemetry(cluster)
        cluster.login("alice")
        assert counter_value(cluster, "pam_decisions_total",
                             result="allow") == 1

    def test_shares_cluster_metricset(self, cluster, tele):
        assert tele.metrics is cluster.metrics

    def test_picks_up_existing_event_log(self, cluster):
        log = instrument_cluster(cluster)
        tele = attach_telemetry(cluster)
        assert tele.events is log


class TestSyscallFacade:
    def test_allow_and_deny_counted(self, cluster, tele):
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/f", mode=0o600, data=b"x")
        assert alice.sys.open_read("/home/alice/f") == b"x"
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            bob.sys.open_read("/home/alice/f")
        assert counter_value(cluster, "syscalls_total", result="allow") >= 2
        assert counter_value(cluster, "syscalls_total", result="deny") == 1

    def test_enforcement_unchanged(self, cluster, tele):
        """The observed façade forwards arguments, results and exceptions."""
        bob = cluster.login("bob")
        with pytest.raises(AccessDenied):
            bob.sys.open_read("/home/alice/anything")
        bob.sys.create("/home/bob/mine", mode=0o600, data=b"ok")
        assert bob.sys.open_read("/home/bob/mine") == b"ok"

    def test_facade_properties_forwarded(self, cluster, tele):
        alice = cluster.login("alice")
        assert alice.sys.creds.uid == cluster.user("alice").uid
        assert alice.sys.node is alice.node


class TestPamAndGpu:
    def test_pam_decisions_counted(self, cluster, tele):
        cluster.login("alice")
        with pytest.raises(AccessDenied):
            cluster.ssh("bob", "c1")  # no job there: pam_slurm refuses
        assert counter_value(cluster, "pam_decisions_total",
                             result="allow") == 1
        assert counter_value(cluster, "pam_decisions_total",
                             result="deny") == 1

    def test_gpu_grants_and_scrubs_counted(self, cluster, tele):
        job = cluster.submit("alice", duration=10.0, gpus_per_task=1)
        cluster.run(until=100.0)
        assert job.state.name == "COMPLETED"
        assert counter_value(cluster, "gpu_grants_total") == 1
        assert counter_value(cluster, "gpu_scrubs_total") == 1


class TestTracing:
    def test_job_lifecycle_spans(self, cluster, tele):
        job = cluster.submit("alice", duration=10.0)
        cluster.run(until=100.0)
        tracer = tele.tracer
        (root,) = tracer.by_name("job")
        assert root.tags["job_id"] == job.job_id
        assert root.tags["state"] == "completed"
        for child_name in ("sched.queue", "sched.prolog", "job.run",
                           "sched.epilog"):
            spans = tracer.by_name(child_name)
            assert spans, f"missing {child_name} span"
            assert all(s.trace_id == root.trace_id for s in spans)
            assert all(s.finished for s in spans)

    def test_run_span_covers_duration(self, cluster, tele):
        cluster.submit("alice", duration=10.0)
        cluster.run(until=100.0)
        (run,) = tele.tracer.by_name("job.run")
        assert run.duration == pytest.approx(10.0)

    def test_tracing_disabled_records_no_spans(self, cluster):
        tele = attach_telemetry(cluster, tracing=False)
        cluster.login("alice")
        cluster.submit("alice", duration=10.0)
        cluster.run(until=100.0)
        assert tele.tracer.spans == []
        # metrics still on
        assert counter_value(cluster, "pam_decisions_total",
                             result="allow") == 1

    def test_ubf_decision_spans(self, cluster, tele):
        job = cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        shell.node.net.listen(shell.node.net.bind(shell.process, 5000))
        cluster.login("alice").socket().connect(shell.node.name, 5000)
        spans = tele.tracer.by_name("ubf.decide")
        assert spans and spans[0].tags["verdict"] == "accept"


class TestExports:
    def test_prometheus_covers_instrumented_areas(self, cluster, tele):
        instrument_cluster(cluster)
        cluster.submit("alice", duration=10.0, gpus_per_task=1)
        cluster.run(until=100.0)
        alice = cluster.login("alice")
        alice.sys.create("/home/alice/f", mode=0o600, data=b"x")
        with pytest.raises(AccessDenied):
            cluster.ssh("bob", "c1")
        text = tele.prometheus()
        for series in ("syscalls_total", 'pam_decisions_total{result="deny"}',
                       "gpu_grants_total", "gpu_scrubs_total",
                       "sched_queue_depth", "sched_wait_seconds_bucket",
                       "jobs_submitted"):
            assert series in text, f"missing {series}"

    def test_export_jsonl_merges_events_and_spans(self, cluster, tele):
        instrument_cluster(cluster)
        cluster.submit("alice", duration=10.0)
        cluster.run(until=100.0)
        with pytest.raises(AccessDenied):
            cluster.ssh("bob", "c1")  # instrumented pam denial -> event
        sink = io.StringIO()
        n = tele.export_jsonl(sink)
        records = [json.loads(ln) for ln in
                   sink.getvalue().strip().splitlines()]
        assert n == len(records) > 0
        assert {r["type"] for r in records} == {"event", "span"}
