"""Tests: flight recorder — bounded rings, automatic incident dumps, span
windows with open spans, and dump serialisation."""

import json

import pytest

from repro.monitor.events import EventKind, SecurityEvent, SecurityEventLog
from repro.obs.flight import FLIGHT_SCHEMA_VERSION, FlightRecorder
from repro.obs.trace import Tracer
from repro.sim.metrics import MetricSet


def ev(t, kind=EventKind.NET_DENY, uid=1000, target="c1:80", detail="x",
       node=None):
    return SecurityEvent(t, kind, uid, target, detail, node=node)


class TestRings:
    def test_capacity_bounds_global_and_node_rings(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr.observe_event(ev(float(i), node="c1"))
        dump = fr.snapshot("manual", node="c1")
        assert len(dump.events) == 3
        assert [e["time"] for e in dump.events] == [7.0, 8.0, 9.0]
        assert len(dump.node_events) == 3

    def test_node_windows_are_separate(self):
        fr = FlightRecorder(capacity=8)
        fr.observe_event(ev(1.0, node="c1"))
        fr.observe_event(ev(2.0, node="c2"))
        assert [e.time for e in fr.node_window("c1")] == [1.0]
        assert [e.time for e in fr.node_window("c2")] == [2.0]
        assert fr.node_window("c3") == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestTriggers:
    def test_oracle_event_triggers_dump(self):
        metrics = MetricSet()
        fr = FlightRecorder(capacity=4, metrics=metrics)
        fr.observe_event(ev(1.0))
        fr.observe_event(ev(2.0, kind=EventKind.ORACLE, uid=1000,
                            target="ubf:c1", detail="[I2] bad", node="c1"))
        (dump,) = fr.dumps
        assert dump.trigger == "oracle-violation" and dump.node == "c1"
        # the triggering event is the last entry of its own window
        assert dump.events[-1]["kind"] == "oracle-violation"
        assert metrics.counter("flight_dumps_total",
                               trigger="oracle-violation").value == 1

    def test_fence_event_triggers_dump(self):
        fr = FlightRecorder()
        fr.observe_event(ev(3.0, kind=EventKind.NODE_LIFECYCLE, uid=-1,
                            target="c2", node="c2",
                            detail="fenced: 2 running job(s) lost"))
        (dump,) = fr.dumps
        assert dump.trigger == "node-fenced" and dump.node == "c2"

    def test_other_lifecycle_events_do_not_trigger(self):
        fr = FlightRecorder()
        for detail in ("remediated: processes_reaped=1",
                       "fenced with residue: jobs=[1]",
                       "suspect: 1 missed heartbeat(s)"):
            fr.observe_event(ev(1.0, kind=EventKind.NODE_LIFECYCLE,
                                uid=-1, target="c1", detail=detail,
                                node="c1"))
        assert fr.dumps == []

    def test_fault_hook_triggers_dump(self):
        from repro.faults.injector import FaultInjector, FaultKind
        metrics = MetricSet()
        injector = FaultInjector(metrics)
        fr = FlightRecorder(faults=injector, metrics=metrics)
        injector.on_inject = fr.on_fault
        injector.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        (dump,) = fr.dumps
        assert dump.trigger == "fault-injected" and dump.node == "c1"
        # the fault is active at snapshot time, so it appears in the dump
        assert dump.faults and dump.faults[0]["host"] == "c1"


class TestSpanWindow:
    def test_spans_from_tracer_tail_include_open(self):
        tracer = Tracer()
        done = tracer.start_span("a")
        tracer.finish(done)
        tracer.start_span("b")                   # left open
        fr = FlightRecorder(capacity=16, tracer=tracer)
        dump = fr.snapshot()
        assert [s["name"] for s in dump.spans] == ["a", "b"]
        assert "open" not in dump.spans[0]
        assert dump.spans[1]["open"] is True

    def test_span_window_respects_capacity(self):
        tracer = Tracer()
        for i in range(10):
            tracer.finish(tracer.start_span(f"s{i}"))
        fr = FlightRecorder(capacity=4, tracer=tracer)
        dump = fr.snapshot()
        assert [s["name"] for s in dump.spans] == ["s6", "s7", "s8", "s9"]


class TestDumpShape:
    def test_write_and_schema(self, tmp_path):
        fr = FlightRecorder()
        fr.observe_event(ev(1.0, node="c1"))
        dump = fr.snapshot("manual", node="c1", detail="operator request")
        path = tmp_path / "dump.json"
        dump.write(str(path))
        d = json.loads(path.read_text())
        assert d["type"] == "flight-dump"
        assert d["v"] == FLIGHT_SCHEMA_VERSION
        assert d["dump_id"] == "fd000001"
        assert set(d) == {"type", "v", "dump_id", "time", "trigger",
                          "node", "detail", "events", "node_events",
                          "spans", "faults", "gpus"}

    def test_dumps_for_filters_by_trigger(self):
        fr = FlightRecorder()
        fr.snapshot("manual")
        fr.observe_event(ev(1.0, kind=EventKind.ORACLE, target="x"))
        assert len(fr.dumps_for("manual")) == 1
        assert len(fr.dumps_for("oracle-violation")) == 1

    def test_event_log_subscription_integration(self):
        log = SecurityEventLog()
        fr = FlightRecorder()
        log.subscribe(fr.observe_event)
        log.emit(1.0, EventKind.ORACLE, 1000, "ubf:c1", "[I2] breach",
                 node="c1")
        assert len(fr.dumps) == 1
