"""Tests: attach_forensics wiring — idempotency, handshakes with the other
observability spines, hook placement, and end-to-end attribution."""

import pytest

from repro import Cluster, LLSC
from repro.faults import FaultKind
from repro.kernel.errors import AccessDenied
from repro.monitor import EventKind, instrument_cluster
from repro.obs import attach_forensics, attach_telemetry, ops_dashboard


@pytest.fixture
def cluster():
    return Cluster.build(LLSC, n_compute=3, gpus_per_node=1,
                         users=("alice", "bob", "mallory"), staff=("sam",))


class TestIdempotency:
    def test_second_call_returns_same_bundle(self, cluster):
        bundle = attach_forensics(cluster)
        assert attach_forensics(cluster) is bundle
        assert cluster.forensics is bundle

    def test_audit_records_not_duplicated(self, cluster):
        bundle = attach_forensics(cluster)
        attach_forensics(cluster)  # must not re-subscribe the sinks
        with pytest.raises(AccessDenied):
            cluster.ssh("bob", "c1")
        assert len(bundle.audit.query(mechanism="pam", action="deny")) == 1


class TestHandshakes:
    """attach_forensics composes with the other spines in either order."""

    def test_telemetry_first_shares_tracer(self, cluster):
        tele = attach_telemetry(cluster)
        bundle = attach_forensics(cluster)
        assert bundle.flight.tracer is tele.tracer

    def test_forensics_first_gets_tracer_later(self, cluster):
        bundle = attach_forensics(cluster)
        assert bundle.flight.tracer is None
        tele = attach_telemetry(cluster)
        assert bundle.flight.tracer is tele.tracer

    def test_instrument_first_replays_history_into_audit(self, cluster):
        log = instrument_cluster(cluster)
        with pytest.raises(AccessDenied):
            cluster.ssh("mallory", "c2")  # recorded before attachment
        bundle = attach_forensics(cluster)
        assert bundle.events is log
        (rec,) = bundle.audit.query(mechanism="pam", action="deny")
        assert rec.uid == cluster.user("mallory").uid
        # the flight recorder deliberately starts empty: its ring models
        # what a node retains from attachment onward
        assert len(bundle.flight.snapshot().events) == 0


class TestHooks:
    def test_all_hooks_point_at_the_bundle(self, cluster):
        bundle = attach_forensics(cluster)
        assert cluster.scheduler.attribution is bundle.registry
        for daemon in cluster.ubf_daemons.values():
            assert daemon.audit is bundle.audit
        assert cluster.portal.audit is bundle.audit
        assert cluster.fabric.faults.on_inject == bundle.flight.on_fault
        assert bundle.registry.audit is bundle.audit

    def test_login_opens_session_context(self, cluster):
        bundle = attach_forensics(cluster)
        session = cluster.login("alice")
        uid = session.user.uid
        key = (uid, session.node.name)
        assert key in bundle.registry.sessions
        (rec,) = bundle.audit.query(mechanism="session", action="login")
        assert rec.uid == uid and rec.node == session.node.name

    def test_fault_injection_snapshots_flight_dump(self, cluster):
        bundle = attach_forensics(cluster)
        cluster.fabric.faults.inject(FaultKind.IDENTD_UNRESPONSIVE, "c1")
        (dump,) = bundle.flight.dumps_for("fault-injected")
        assert dump.node == "c1"


class TestEndToEnd:
    def test_gpu_deny_attributed_to_submitting_job(self, cluster):
        bundle = attach_forensics(cluster)
        job = cluster.submit("bob", duration=100.0)  # no GPUs requested
        cluster.run(until=1.0)
        shell = cluster.job_session(job)
        with pytest.raises(AccessDenied):
            shell.sys.open_read("/dev/nvidia0")
        (rec,) = bundle.audit.query(mechanism="gpu", action="deny")
        assert rec.uid == cluster.user("bob").uid
        assert rec.job_id == job.job_id
        res = bundle.audit.resolution(rec)
        assert res["resolved"] and res["root"].action == "submit"

    def test_node_fence_snapshots_flight_dump(self, cluster):
        bundle = attach_forensics(cluster)
        cluster.submit("alice", duration=100.0)
        cluster.run(until=1.0)
        cluster.scheduler.fail_node("c1")
        (dump,) = bundle.flight.dumps_for("node-fenced")
        assert dump.node == "c1"
        assert dump.gpus  # GPU forensic state sampled into the dump

    def test_dashboard_renders_forensic_sections(self, cluster):
        attach_forensics(cluster)
        cluster.submit("alice", duration=5.0)
        cluster.run(until=10.0)
        text = ops_dashboard(cluster)
        assert "## Alerts" in text
        assert "## Forensic audit plane" in text

    def test_dashboard_notes_missing_plane(self, cluster):
        cluster.submit("alice", duration=5.0)
        cluster.run(until=10.0)
        assert "attach_forensics" in ops_dashboard(cluster)
