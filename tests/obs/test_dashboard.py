"""Tests: ops dashboard rendering and per-user denial posture."""

import pytest

from repro import Cluster, LLSC
from repro.kernel.errors import AccessDenied, KernelError
from repro.monitor import audited_session, instrument_cluster
from repro.monitor.events import EventKind, SecurityEventLog
from repro.obs import attach_telemetry, denial_posture, ops_dashboard


@pytest.fixture
def cluster():
    c = Cluster.build(LLSC, n_compute=3, gpus_per_node=1,
                      users=("alice", "bob", "mallory"), staff=("sam",))
    attach_telemetry(c)
    instrument_cluster(c)
    return c


def busy_day(cluster):
    """A job, a probing mallory, and a portal auth failure."""
    cluster.submit("alice", duration=10.0, gpus_per_task=1)
    cluster.run(until=100.0)
    mallory = cluster.login("mallory")
    msys = audited_session(mallory, cluster.security_log)
    for victim in ("alice", "bob"):
        for f in ("data", "keys", "notes"):
            try:
                msys.open_read(f"/home/{victim}/{f}")
            except KernelError:
                pass
    with pytest.raises(AccessDenied):
        cluster.portal.connect("tok-bogus", 1)


class TestDenialPosture:
    def test_rows_sorted_noisiest_first(self, cluster):
        busy_day(cluster)
        rows = denial_posture(cluster.security_log, cluster.userdb)
        assert rows[0]["user"] == "mallory"
        assert rows[0]["denials"] == 6
        assert rows[0]["distinct_targets"] == 6
        assert rows[0]["kinds"] == {"fs-deny": 6}
        denials = [r["denials"] for r in rows]
        assert denials == sorted(denials, reverse=True)

    def test_admin_events_excluded(self):
        log = SecurityEventLog()
        log.emit(1.0, EventKind.ADMIN, 1000, "n1", "seepid")
        assert denial_posture(log) == []

    def test_unauthenticated_principal_labeled(self, cluster):
        busy_day(cluster)
        rows = denial_posture(cluster.security_log, cluster.userdb)
        anon = [r for r in rows if r["uid"] == -1]
        assert anon and anon[0]["user"] == "(unauthenticated)"
        assert anon[0]["kinds"] == {"portal-deny": 1}


class TestDashboard:
    def test_all_sections_render(self, cluster):
        busy_day(cluster)
        text = ops_dashboard(cluster)
        for section in ("# Ops dashboard", "## Enforcement metrics",
                        "## Security events", "## Probe alerts",
                        "## Per-user denial posture", "## Trace activity"):
            assert section in text, f"missing {section}"

    def test_probe_alert_shown(self, cluster):
        busy_day(cluster)
        text = ops_dashboard(cluster)
        assert "mallory" in text.split("## Probe alerts")[1]

    def test_enforcement_table_covers_areas(self, cluster):
        busy_day(cluster)
        table = ops_dashboard(cluster).split("## Enforcement metrics")[1] \
            .split("##")[0]
        for series in ("syscalls_total", "pam_decisions_total",
                       "gpu_grants_total", "gpu_scrubs_total",
                       "portal_requests_total", "jobs_submitted"):
            assert series in table, f"missing {series}"

    def test_window_scopes_probe_alerts(self, cluster):
        busy_day(cluster)  # all denials happen at t<=100
        text = ops_dashboard(cluster, window=10.0, now=10_000.0)
        assert "No probe-like activity detected." in text

    def test_renders_without_instrumentation(self):
        bare = Cluster.build(LLSC, n_compute=1, users=("alice",))
        text = ops_dashboard(bare)
        assert "Event log not attached" in text
        assert "## Trace activity" not in text


class TestShardPosture:
    """Per-shard posture section for sharded simulation runs (E28)."""

    def _sharded_run(self, churn=0.0):
        from repro.obs import shard_posture
        from repro.sched import make_zone_factories
        from repro.sim import ShardedEngine
        eng = ShardedEngine(
            make_zone_factories(4, seed=7, nodes_per_zone=4,
                                jobs_per_zone=60, chunk_jobs=30,
                                churn_per_chunk=churn),
            n_shards=2, window=5.0)
        report = eng.run()
        return shard_posture(report, eng.metrics), report

    def test_renders_shard_table_and_traffic(self):
        text, report = self._sharded_run()
        assert "## Sharded simulation posture" in text
        assert "state ok" in text
        assert f"{report.total_events} events" in text
        for sid in (0, 1):
            assert f"| {sid} | up |" in text
        assert "shard_msgs_total (kind=job_transfer)" in text
        assert "Merge-barrier wait (s):" in text

    def test_fenced_shard_surfaces_as_degraded(self):
        from repro.obs import shard_posture
        from repro.sim import ShardedEngine
        from repro.sim.metrics import MetricSet
        import functools
        from tests.sim.test_sharded import TokenZone
        facs = [functools.partial(TokenZone, z, 4) for z in range(4)]
        facs[3] = functools.partial(TokenZone, 3, 4, crash_at=10.0)
        eng = ShardedEngine(facs, n_shards=2, window=5.0, workers=2,
                            metrics=MetricSet())
        report = eng.run(max_epochs=30)
        text = shard_posture(report, eng.metrics)
        assert "DEGRADED (fenced shards)" in text
        assert "| 1 | FENCED |" in text
        assert "| 0 | up |" in text
