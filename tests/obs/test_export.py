"""Unit tests: JSONL event/span export and Prometheus text exposition."""

import io
import json
from pathlib import Path

from repro.monitor.events import EventKind, SecurityEventLog
from repro.obs import Tracer, event_lines, export_jsonl, prometheus_text, span_lines
from repro.sim.metrics import MetricSet

GOLDEN = Path(__file__).with_name("golden_prometheus.txt")


def golden_metrics() -> MetricSet:
    m = MetricSet()
    m.counter("ubf_verdicts_total", verdict="accept",
              reason="same-user").inc(5)
    m.counter("ubf_verdicts_total", verdict="drop",
              reason="cross-user").inc(3)
    m.counter("jobs_submitted").inc(2)
    m.gauge("sched_queue_depth").set(2)
    h = m.histogram("sched_wait_seconds")
    h.observe(0.5)
    h.observe(12.0)
    s = m.samples("wait_time")
    s.add(1.0)
    s.add(2.0)
    s.add(4.0)
    return m


class TestPrometheus:
    def test_matches_golden_file(self):
        assert prometheus_text(golden_metrics()) == GOLDEN.read_text()

    def test_output_is_deterministic(self):
        assert prometheus_text(golden_metrics()) == \
            prometheus_text(golden_metrics())

    def test_label_values_escaped(self):
        m = MetricSet()
        m.counter("c", detail='say "hi"\nthere\\now').inc()
        (line,) = [ln for ln in prometheus_text(m).splitlines()
                   if ln.startswith("c{")]
        assert line == 'c{detail="say \\"hi\\"\\nthere\\\\now"} 1'

    def test_metric_names_sanitized(self):
        m = MetricSet()
        m.counter("weird-name.total").inc()
        assert "weird_name_total 1" in prometheus_text(m)

    def test_histogram_buckets_are_cumulative(self):
        m = MetricSet()
        h = m.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 100.0):
            h.observe(v)
        text = prometheus_text(m)
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_empty_metricset_renders_empty(self):
        assert prometheus_text(MetricSet()) == ""


class TestJsonl:
    def make_sources(self):
        log = SecurityEventLog()
        log.emit(1.0, EventKind.FS_DENY, 1000, "/home/alice/x", "EACCES")
        log.emit(8.0, EventKind.NET_DENY, 1001, "c1:5000", "cross-user")
        state = {"now": 2.0}
        tracer = Tracer(clock=lambda: state["now"])
        span = tracer.start_span("job", job_id=1)
        state["now"] = 5.0
        tracer.finish(span, state="completed")
        tracer.start_span("never-finished")
        return log, tracer

    def test_lines_are_valid_json(self):
        log, tracer = self.make_sources()
        for line in list(event_lines(log)) + list(span_lines(tracer)):
            record = json.loads(line)
            assert record["type"] in ("event", "span")

    def test_export_merges_chronologically(self):
        log, tracer = self.make_sources()
        sink = io.StringIO()
        n = export_jsonl(sink, events=log, tracer=tracer)
        records = [json.loads(ln) for ln in
                   sink.getvalue().strip().splitlines()]
        assert n == len(records) == 3  # open span excluded
        assert [r["type"] for r in records] == ["event", "span", "event"]
        times = [r["time"] if r["type"] == "event" else r["start"]
                 for r in records]
        assert times == sorted(times)

    def test_span_record_shape(self):
        _, tracer = self.make_sources()
        record = json.loads(next(iter(span_lines(tracer))))
        assert record["trace_id"] == "t000001"
        assert record["span_id"] == "s000001"
        assert record["parent_id"] is None
        assert record["tags"] == {"job_id": 1, "state": "completed"}

    def test_export_to_path(self, tmp_path):
        log, tracer = self.make_sources()
        path = tmp_path / "run.jsonl"
        n = export_jsonl(str(path), events=log, tracer=tracer)
        assert n == 3
        assert len(path.read_text().strip().splitlines()) == 3

    def test_events_only(self):
        log, _ = self.make_sources()
        sink = io.StringIO()
        assert export_jsonl(sink, events=log) == 2

    def test_equal_timestamp_tie_break_is_deterministic(self):
        # An event and a span sharing a timestamp must always render in
        # the same order: events first, then spans, each in record order.
        def build():
            log = SecurityEventLog()
            log.emit(2.0, EventKind.NET_DENY, 1000, "a", "first")
            log.emit(2.0, EventKind.NET_DENY, 1001, "b", "second")
            tracer = Tracer(clock=lambda: 2.0)
            tracer.finish(tracer.start_span("s-a"))
            tracer.finish(tracer.start_span("s-b"))
            return log, tracer

        outputs = []
        for _ in range(2):
            log, tracer = build()
            sink = io.StringIO()
            export_jsonl(sink, events=log, tracer=tracer)
            outputs.append(sink.getvalue())
        assert outputs[0] == outputs[1]
        records = [json.loads(ln) for ln in outputs[0].splitlines()]
        assert [r["type"] for r in records] == \
            ["event", "event", "span", "span"]
        assert [r.get("detail") or r.get("name") for r in records] == \
            ["first", "second", "s-a", "s-b"]

    def test_include_open_exports_open_spans_tagged(self):
        log, tracer = self.make_sources()
        sink = io.StringIO()
        n = export_jsonl(sink, events=log, tracer=tracer, include_open=True)
        records = [json.loads(ln) for ln in
                   sink.getvalue().strip().splitlines()]
        assert n == 4  # the open span is now included
        (open_rec,) = [r for r in records if r["type"] == "span"
                       and r["name"] == "never-finished"]
        assert open_rec["open"] is True and open_rec["end"] is None
        # finished spans never carry the flag
        (done,) = [r for r in records
                   if r["type"] == "span" and r["name"] == "job"]
        assert "open" not in done

    def test_span_lines_finished_only_toggle(self):
        _, tracer = self.make_sources()
        assert len(list(span_lines(tracer))) == 1
        both = list(span_lines(tracer, finished_only=False))
        assert len(both) == 2
        assert json.loads(both[1])["open"] is True
