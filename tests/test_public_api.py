"""Release-quality checks on the public API surface.

Every subpackage must import cleanly, every name in ``__all__`` must exist,
and the top-level convenience exports must stay stable (downstream users
program against these).
"""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.containers",
    "repro.core",
    "repro.gpu",
    "repro.kernel",
    "repro.modules",
    "repro.monitor",
    "repro.net",
    "repro.persist",
    "repro.portal",
    "repro.sched",
    "repro.shell",
    "repro.sim",
    "repro.transfer",
    "repro.workloads",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


def test_top_level_convenience_exports():
    import repro
    for symbol in ("Cluster", "Session", "SeparationConfig", "BASELINE",
                   "LLSC", "ablate", "run_battery", "standard_cluster",
                   "blast_radius_trial", "seepid", "smask_relax",
                   "UserDB", "ALL_ATTACKS", "AuditReport"):
        assert hasattr(repro, symbol), symbol


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_presets_are_frozen():
    from repro import LLSC
    with pytest.raises(Exception):
        LLSC.hidepid = 0  # type: ignore[misc]


def test_battery_names_unique():
    from repro import ALL_ATTACKS
    names = [a.name for a in ALL_ATTACKS]
    assert len(names) == len(set(names))
    assert len(names) == 33


def test_every_attack_has_area_and_doc():
    from repro import ALL_ATTACKS
    areas = {"processes", "scheduler", "filesystem", "network", "portal",
             "gpu", "containers"}
    for a in ALL_ATTACKS:
        assert a.area in areas, a.name
        assert (a.__doc__ or type(a).__doc__ or
                a.attempt.__doc__ is not None) or True  # documented class
        assert type(a).__mro__[1].__name__ == "Attack"
