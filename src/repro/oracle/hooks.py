"""Wiring the separation oracle into a built cluster.

:func:`attach_oracle` follows the same contract as
:func:`repro.obs.telemetry.attach_telemetry` and
:func:`repro.monitor.wiring.instrument_cluster`: idempotent (a second call
returns the existing oracle) and strictly additive (every enforcement
outcome is identical with or without it — the oracle observes decisions,
it never makes them).

Checks are armed *conditionally on the cluster's configuration*: a
BASELINE or ablated cluster legitimately leaks through the mechanisms it
turned off, and the oracle verifies enforcement, not configuration — so
the GPU residue check requires both Section IV-F measures, the portal
ownership check requires ``portal_auth``, and so on.  This is what lets
``REPRO_ORACLE=1`` run fail-fast over the whole tier-1 suite (which
builds many deliberately weakened clusters) and still expect zero
violations.

Raw components outside a :class:`~repro.core.cluster.Cluster` (the E24
benchmarks build schedulers, daemons, and ProcFS views directly) attach by
assigning the ``oracle`` attribute themselves; only the GPU prolog/epilog
verification needs the :func:`wrap_gpu_hooks` helper because the hooks are
plain closures.
"""

from __future__ import annotations

from repro.oracle.oracle import DEFAULT_SEED, SeparationOracle

_WRAPPED_FLAG = "_oracle_wrapped"


def wrap_gpu_hooks(scheduler, oracle: SeparationOracle, *,
                   assign_device_perms: bool,
                   scrub_on_epilog: bool) -> None:
    """Wrap the scheduler's prolog/epilog with post-condition checks.

    The wrappers capture the allocation's GPU indices *before* delegating
    (the epilog may run arbitrarily close to the release) and verify the
    Section IV-F post-conditions afterwards.  Idempotent via the same
    wrapped-flag idiom the telemetry spine uses, and composes with its
    wrappers in either attach order.
    """
    prolog = scheduler.prolog
    if (assign_device_perms and prolog is not None
            and not getattr(prolog, _WRAPPED_FLAG, False)):
        def checked_prolog(job, node, _inner=prolog):
            _inner(job, node)
            alloc = node.allocations.get(job.job_id)
            if alloc is not None and alloc.gpu_indices:
                oracle.check_gpu_assigned(node, job,
                                          tuple(alloc.gpu_indices))
        setattr(checked_prolog, _WRAPPED_FLAG, True)
        scheduler.prolog = checked_prolog

    epilog = scheduler.epilog
    if ((assign_device_perms or scrub_on_epilog) and epilog is not None
            and not getattr(epilog, _WRAPPED_FLAG, False)):
        def checked_epilog(job, node, _inner=epilog):
            alloc = node.allocations.get(job.job_id)
            indices = tuple(alloc.gpu_indices) if alloc is not None else ()
            _inner(job, node)
            oracle.check_gpu_released(node, job, indices,
                                      scrub_expected=scrub_on_epilog,
                                      perms_expected=assign_device_perms)
        setattr(checked_epilog, _WRAPPED_FLAG, True)
        scheduler.epilog = checked_epilog


def attach_oracle(cluster, *, sampling_rate: float = 1.0,
                  shadow_rate: float | None = None,
                  fail_fast: bool = False,
                  seed: int = DEFAULT_SEED) -> SeparationOracle:
    """Attach a :class:`SeparationOracle` to every enforcement choke point.

    Returns the oracle (also stored as ``cluster.oracle``); a second call
    is a no-op returning the existing one.  ``sampling_rate`` bounds the
    check overhead, ``shadow_rate`` (default: the sampling rate) the
    naive-reference differential fraction, and ``fail_fast`` turns any
    violation into an immediate :class:`SeparationViolation` — the CI
    oracle job's mode.
    """
    existing = getattr(cluster, "oracle", None)
    if existing is not None:
        return existing
    config = cluster.config
    oracle = SeparationOracle(
        sampling_rate=sampling_rate, shadow_rate=shadow_rate,
        fail_fast=fail_fast, metrics=cluster.metrics,
        events=getattr(cluster, "security_log", None),
        clock=lambda: cluster.engine.now, seed=seed)
    cluster.oracle = oracle

    # I1 — every node's /proc view (login, compute, portal, dtn)
    nodes = (cluster.login_nodes + cluster.dtn_nodes
             + [cluster.portal_node]
             + [cn.node for cn in cluster.compute_nodes])
    for node in nodes:
        node.procfs.oracle = oracle
        # I3 — every VFS (the shared mounts route through each node's VFS)
        node.vfs.oracle = oracle

    # I2 — every UBF daemon
    for daemon in cluster.ubf_daemons.values():
        daemon.oracle = oracle

    # I4 — the scheduler's start path
    cluster.scheduler.oracle = oracle

    # I5 — GPU prolog/epilog post-conditions and the residue read check.
    # The dev-read check is only sound when both IV-F measures are active:
    # without assignment the ablations *measure* the stranger-reads-residue
    # gap, and without scrub residue is the documented baseline behaviour.
    wrap_gpu_hooks(cluster.scheduler, oracle,
                   assign_device_perms=config.gpu_dev_assignment,
                   scrub_on_epilog=config.gpu_scrub)
    if config.gpu_dev_assignment and config.gpu_scrub:
        for cn in cluster.compute_nodes:
            for gpu in cn.gpus:
                gpu.oracle = oracle

    # I6 — the portal (the checks self-disarm when require_auth is off)
    cluster.portal.oracle = oracle
    return oracle
