"""The separation oracle: online invariant checking at enforcement points.

Every enforcement object (ProcFS, UBFDaemon, Scheduler, GPUDevice, VFS,
Portal) carries an ``oracle`` attribute that defaults to ``None`` — the hot
path pays one attribute test when the oracle is off.  When attached
(:func:`repro.oracle.hooks.attach_oracle`), each decision calls the
matching ``check_*`` method here, which

1. **samples**: a seeded :class:`random.Random` admits a
   ``sampling_rate`` fraction of decisions (1.0 in tests and CI, small in
   production-scale runs), deterministic under every ``PYTHONHASHSEED``;
2. **checks** the invariant from :mod:`repro.oracle.invariants` against an
   *independent* restatement of the paper rule — not by calling the code
   under test;
3. **shadows**: on a ``shadow_rate`` fraction, recomputes the decision via
   the retained naive reference path (full-partition first-fit scan, the
   appendix UBF rule on the ident snapshot, filter-everything /proc scans)
   and reports any divergence from the PR-3 indexed fast paths;
4. **reports** violations as :class:`Violation` records, labeled
   ``oracle_*`` metrics, and ``EventKind.ORACLE`` security events — and
   raises :class:`SeparationViolation` when ``fail_fast`` is set (how the
   CI oracle job turns any drift into a test failure).

Checks never mutate enforcement state and never consume enforcement
metrics (the scheduler shadow replans without touching
``sched_dispatch_scan``), so an attached oracle is behaviour-preserving by
construction; ``tests/oracle/`` pins additivity.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.oracle.invariants import BY_ID, CATALOG, Invariant

#: default seed for the sampling RNG — fixed so two identical runs sample
#: identical decisions (the determinism bar CI's two-hash-seed matrix sets).
DEFAULT_SEED = 0x5E9A7A7E


class SeparationViolation(AssertionError):
    """Raised on a violated invariant when the oracle runs fail-fast."""


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    invariant: str
    time: float
    subject: str
    detail: str
    #: attack id (``"A7"``) when the violation surfaced inside an armed
    #: :meth:`SeparationOracle.attack_context`; ``None`` for organic ones
    attack: str | None = field(default=None, compare=False)


def reference_ubf_verdict(init_uid: int | None,
                          init_groups: frozenset[int],
                          listen_uid: int, listen_egid: int) -> bool:
    """The appendix rule, restated: may this flow be accepted?

    Mirrors the paper text ("same user, or the connecting process is a
    member of the primary group (egid) of the listening process") plus the
    root carve-out, evaluated on the ident snapshot — deliberately not a
    call into :meth:`UBFDaemon._rule`.
    """
    if init_uid is None:
        return False
    return (init_uid == 0 or init_uid == listen_uid
            or listen_egid in init_groups)


def reference_placement(scheduler, job) -> list[tuple[str, int]] | None:
    """Reference first-fit plan as [(node name, tasks)], or None.

    Replays the greedy scan over the job's partition in declaration order —
    the same algorithm as ``Scheduler._placement_for`` but standalone, so a
    shadow replan cannot inflate the ``sched_dispatch_scan`` counter the
    perf tests pin.
    """
    from repro.sched.policies import tasks_placeable
    spec = job.spec
    policy = scheduler._policy_for(job)
    remaining = spec.ntasks
    plan: list[tuple[str, int]] = []
    for name in scheduler.partitions[spec.partition].node_names:
        node = scheduler.nodes[name]
        if node.failed or node.drained:
            continue
        n = tasks_placeable(
            policy,
            free_cores=node.free_cores,
            free_mem_mb=node.free_mem_mb,
            free_gpus=len(node.free_gpu_indices),
            cores_per_task=spec.cores_per_task,
            mem_mb_per_task=spec.mem_mb_per_task,
            gpus_per_task=spec.gpus_per_task,
            node_idle=node.idle,
            node_uids=node.running_uids(),
            job_uid=job.uid,
            job_exclusive=spec.exclusive,
        )
        if n <= 0:
            continue
        take = min(n, remaining)
        plan.append((name, take))
        remaining -= take
        if remaining == 0:
            break
    return plan if remaining == 0 else None


class SeparationOracle:
    """Always-on invariant checker shared by a cluster's choke points."""

    def __init__(self, *, sampling_rate: float = 1.0,
                 shadow_rate: float | None = None,
                 fail_fast: bool = False,
                 metrics=None, events=None, clock=None,
                 seed: int = DEFAULT_SEED):
        if not 0.0 <= sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate {sampling_rate} not in [0, 1]")
        self.sampling_rate = sampling_rate
        #: fraction of decisions that additionally run the naive-reference
        #: shadow comparison; defaults to the sampling rate.
        self.shadow_rate = sampling_rate if shadow_rate is None \
            else shadow_rate
        if not 0.0 <= self.shadow_rate <= 1.0:
            raise ValueError(f"shadow_rate {self.shadow_rate} not in [0, 1]")
        self.fail_fast = fail_fast
        self.metrics = metrics
        #: optional SecurityEventLog; violations emit EventKind.ORACLE
        self.events = events
        self.clock = clock or (lambda: 0.0)
        self.violations: list[Violation] = []
        self._rng = random.Random(seed)
        self._checks: dict[str, int] = {inv.id: 0 for inv in CATALOG}
        self._shadow_checks = 0
        #: reentrancy guard: a shadow recomputation must not re-enter the
        #: oracle through the hooks on the objects it drives
        self._busy = False
        #: armed attack id while inside :meth:`attack_context`; violations
        #: raised in that window are *expected* red-team outcomes — they
        #: are tagged instead of aborting the campaign via fail-fast
        self._attack: str | None = None

    # -- bookkeeping --------------------------------------------------------

    @property
    def catalog(self) -> tuple[Invariant, ...]:
        return CATALOG

    @property
    def total_checks(self) -> int:
        return sum(self._checks.values())

    @property
    def shadow_checks(self) -> int:
        return self._shadow_checks

    def checks_for(self, invariant_id: str) -> int:
        return self._checks[invariant_id]

    def violations_for(self, invariant_id: str) -> list[Violation]:
        return [v for v in self.violations if v.invariant == invariant_id]

    def violations_for_attack(self, attack_id: str) -> list[Violation]:
        """Violations tagged by an armed :meth:`attack_context` window."""
        return [v for v in self.violations if v.attack == attack_id]

    @property
    def organic_violations(self) -> list[Violation]:
        """Violations observed *outside* any attack window.

        The campaign acceptance bar: an attack run is clean when every
        violation (if any) carries the attack's tag — a breach during
        benign traffic is a real enforcement failure, never a red-team
        outcome.
        """
        return [v for v in self.violations if v.attack is None]

    @contextmanager
    def attack_context(self, attack_id: str):
        """Arm the oracle for a scripted malicious probe.

        Inside the window every violation is tagged with *attack_id* and
        ``fail_fast`` is suspended: a mechanism that lets the probe
        through must surface as a *classified outcome* (DETECTED), not as
        an exception that aborts the rest of the campaign.  Violations
        still accumulate, count metrics, and emit ``EventKind.ORACLE``
        events, so the forensic audit plane sees exactly what an operator
        would.  Windows do not nest — a campaign runs one probe at a time.
        """
        if self._attack is not None:
            raise RuntimeError(
                f"attack window {self._attack!r} already armed")
        self._attack = attack_id
        try:
            yield self
        finally:
            self._attack = None

    def summary(self) -> list[dict[str, object]]:
        """One row per catalog invariant: id, title, checks, violations."""
        per_inv: dict[str, int] = {inv.id: 0 for inv in CATALOG}
        for v in self.violations:
            per_inv[v.invariant] = per_inv.get(v.invariant, 0) + 1
        return [{"id": inv.id, "title": inv.title, "section": inv.section,
                 "checks": self._checks[inv.id],
                 "violations": per_inv[inv.id]} for inv in CATALOG]

    def assert_clean(self) -> None:
        """Raise :class:`SeparationViolation` if any violation was seen."""
        if self.violations:
            v = self.violations[0]
            raise SeparationViolation(
                f"{len(self.violations)} separation violation(s); first: "
                f"[{v.invariant}] {v.subject}: {v.detail}")

    # -- internals ----------------------------------------------------------

    def _sampled(self) -> bool:
        return (self.sampling_rate >= 1.0
                or self._rng.random() < self.sampling_rate)

    def _shadowed(self) -> bool:
        return (self.shadow_rate >= 1.0
                or self._rng.random() < self.shadow_rate)

    def _count(self, invariant_id: str) -> None:
        self._checks[invariant_id] += 1
        if self.metrics is not None:
            self.metrics.counter("oracle_checks_total",
                                 invariant=invariant_id).inc()

    def _violation(self, invariant_id: str, subject: str,
                   detail: str, *, uid: int = -1,
                   job_id: int | None = None,
                   node: str | None = None) -> None:
        assert invariant_id in BY_ID
        now = self.clock()
        self.violations.append(
            Violation(invariant=invariant_id, time=now, subject=subject,
                      detail=detail, attack=self._attack))
        if self.metrics is not None:
            self.metrics.counter("oracle_violations_total",
                                 invariant=invariant_id).inc()
        if self.events is not None:
            from repro.monitor.events import EventKind
            # the attribution stamps (uid of the principal whose action
            # surfaced the breach, job/node when known) let the forensic
            # audit plane chain an ORACLE event to its causal root
            self.events.emit(now, EventKind.ORACLE, uid, subject,
                             f"[{invariant_id}] {detail}",
                             job_id=job_id, node=node)
        if self.fail_fast and self._attack is None:
            raise SeparationViolation(
                f"[{invariant_id}] {subject}: {detail}")

    # -- I1: /proc views ----------------------------------------------------

    def check_procfs_view(self, fs, viewer, procs, op: str,
                          uids=None) -> None:
        """A /proc listing/read produced *procs* for *viewer* via *op*.

        ``op`` is one of ``list_pids``/``ps``/``visible_users``/``read``;
        listings enforce uid confinement at the level the mount configures
        (hidepid=2 for existence, >=1 for detail reads) and shadow-compare
        the indexed per-uid fast path against a filter-everything scan.
        ``uids`` overrides the uid set when the view is already a uid set
        (``visible_users``) rather than a process list.
        """
        if self._busy or not self._sampled():
            return
        self._count("I1")
        level = 2 if op == "list_pids" else 1
        if fs.options.hidepid >= level and not fs._exempt(viewer):
            if uids is None:
                uids = {p.creds.uid for p in procs}
            foreign = sorted({u for u in uids if u != viewer.uid})
            if foreign:
                self._violation(
                    "I1", f"procfs:{fs.table.node_name}",
                    f"{op} for uid {viewer.uid} exposed uids {foreign} "
                    f"under hidepid={fs.options.hidepid}",
                    uid=viewer.uid, node=fs.table.node_name)
        if not fs.naive and op != "read" and self._shadowed():
            self._shadow_procfs(fs, viewer, op)

    def _shadow_procfs(self, fs, viewer, op: str) -> None:
        from repro.kernel.procfs import ProcFS
        self._busy = True
        try:
            ref = ProcFS(fs.table, fs.options, naive=True)
            if op == "list_pids":
                got = sorted(fs.list_pids(viewer))
                want = sorted(ref.list_pids(viewer))
            elif op == "ps":
                got = sorted((e.pid, e.uid) for e in fs.ps(viewer))
                want = sorted((e.pid, e.uid) for e in ref.ps(viewer))
            else:
                got = sorted(fs.visible_users(viewer))
                want = sorted(ref.visible_users(viewer))
        finally:
            self._busy = False
        self._shadow_checks += 1
        if got != want:
            self._violation(
                "I1", f"procfs:{fs.table.node_name}",
                f"indexed {op} diverges from naive reference for uid "
                f"{viewer.uid}: {got} != {want}",
                uid=viewer.uid, node=fs.table.node_name)

    # -- I2: UBF verdicts ---------------------------------------------------

    def check_ubf_conclude(self, daemon, pkt, listener, initiator,
                           verdict) -> None:
        """A full (post-ident) UBF decision concluded with *verdict*.

        The authoritative identities are in hand, so this is both the
        invariant check and the differential validation of the indexed
        allow-set rule: an ACCEPT must be justified by the appendix rule
        (or live group membership, which the allow-set consults); a DROP of
        anything the appendix rule accepts is a fast-path regression.
        """
        if self._busy or not self._sampled():
            return
        self._count("I2")
        from repro.net.firewall import Verdict
        subject = f"ubf:{daemon.stack.hostname}"
        flow = (f"{pkt.flow.src_host}:{pkt.flow.src_port}->"
                f"{pkt.flow.dst_host}:{pkt.flow.dst_port}")
        if initiator is None:
            if verdict is not Verdict.DROP:
                self._violation(
                    "I2", subject,
                    f"unidentifiable initiator not dropped on {flow}",
                    node=daemon.stack.hostname)
            return
        allowed = reference_ubf_verdict(initiator.uid, initiator.groups,
                                        listener.uid, listener.egid)
        if verdict is Verdict.ACCEPT and not allowed:
            # the allow-set also honours live membership the snapshot may
            # predate; only then is the ACCEPT legitimate
            if initiator.uid not in self._live_members(daemon,
                                                       listener.egid):
                self._violation(
                    "I2", subject,
                    f"cross-user flow {flow} accepted: uid "
                    f"{initiator.uid} !in egid {listener.egid} of uid "
                    f"{listener.uid}",
                    uid=initiator.uid, node=pkt.flow.src_host)
        elif verdict is Verdict.DROP and allowed:
            self._violation(
                "I2", subject,
                f"flow {flow} the appendix rule accepts was dropped "
                f"(uid {initiator.uid} vs uid {listener.uid}/egid "
                f"{listener.egid})",
                uid=initiator.uid, node=pkt.flow.src_host)

    @staticmethod
    def _live_members(daemon, egid: int) -> frozenset[int]:
        from repro.kernel.errors import NoSuchEntity
        try:
            return frozenset(daemon.userdb.group(egid).members)
        except NoSuchEntity:
            return frozenset()

    def check_ubf_batch(self, daemon, rows) -> None:
        """I2 over a columnar burst: every full (post-ident) decision of a
        ``decide_columns`` batch re-derived against the appendix rule.

        *rows* yields ``(pkt, listener, initiator, verdict)`` tuples;
        each delegates to :meth:`check_ubf_conclude`, so the columnar fast
        path is held to exactly the same reference — and the same sampling
        and fail-fast posture — as the per-object paths.
        """
        if self._busy:
            return
        for pkt, listener, initiator, verdict in rows:
            self.check_ubf_conclude(daemon, pkt, listener, initiator,
                                    verdict)

    def check_ubf_cached(self, daemon, key, verdict) -> None:
        """A cached verdict answered ``key = (src_uid, l_uid, l_egid)``.

        A cached entry cannot be re-derived in full (the snapshot groups
        behind its original decision are gone, and ``with_extra_group``
        sessions are legitimately absent from the live database), so only
        snapshot-independent facets are checked: a same-user or
        root-initiated flow must never carry a cached DROP.
        """
        if self._busy or not self._sampled():
            return
        self._count("I2")
        from repro.net.firewall import Verdict
        src_uid, listen_uid, listen_egid = key
        if verdict is Verdict.DROP and (src_uid == 0
                                        or src_uid == listen_uid):
            self._violation(
                "I2", f"ubf:{daemon.stack.hostname}",
                f"cached DROP for {'root' if src_uid == 0 else 'same-user'}"
                f" flow (uid {src_uid} -> uid {listen_uid}/egid "
                f"{listen_egid})",
                uid=src_uid, node=daemon.stack.hostname)

    def check_ubf_degraded(self, daemon, verdict) -> None:
        """A degraded (identity-unavailable) verdict was issued."""
        if self._busy or not self._sampled():
            return
        self._count("I2")
        from repro.net.firewall import Verdict
        expected = Verdict.ACCEPT if daemon.fail_open else Verdict.DROP
        if verdict is not expected:
            policy = "fail-open" if daemon.fail_open else "fail-closed"
            self._violation(
                "I2", f"ubf:{daemon.stack.hostname}",
                f"degraded verdict {verdict.value} contradicts the "
                f"{policy} policy",
                node=daemon.stack.hostname)

    # -- I4: placements -----------------------------------------------------

    def check_sched_start(self, scheduler, job, plan) -> None:
        """*job* is about to start on *plan* ([(node, tasks)]).

        Runs before any allocation mutates node state, so the co-residence
        and capacity facts it reads are exactly what the dispatcher saw.
        """
        if self._busy or not self._sampled():
            return
        self._count("I4")
        from repro.sched.policies import NodeSharing, tasks_placeable
        spec = job.spec
        subject = f"sched:job{job.job_id}"
        # I7 facet: a plan naming a fenced/unremediated node would place
        # the next tenant onto another tenant's residue.
        self._count("I7")
        for node, _ in plan:
            if node.fenced or node.needs_remediation:
                self._violation(
                    "I7", subject,
                    f"dispatch onto unremediated node {node.name} "
                    f"(fenced={node.fenced}, "
                    f"needs_remediation={node.needs_remediation})",
                    uid=job.uid, job_id=job.job_id, node=node.name)
        policy = scheduler._policy_for(job)
        whole = policy is NodeSharing.EXCLUSIVE or spec.exclusive
        if sum(take for _, take in plan) != spec.ntasks:
            self._violation(
                "I4", subject,
                f"plan covers {sum(t for _, t in plan)} of "
                f"{spec.ntasks} tasks",
                uid=job.uid, job_id=job.job_id)
        for node, take in plan:
            uids = node.running_uids()
            if whole and not node.idle:
                self._violation(
                    "I4", subject,
                    f"exclusive start on non-idle node {node.name} "
                    f"(uids {sorted(uids)})",
                    uid=job.uid, job_id=job.job_id, node=node.name)
            elif (policy is NodeSharing.WHOLE_NODE_USER
                    and not uids <= {job.uid}):
                self._violation(
                    "I4", subject,
                    f"uid {job.uid} co-located with uids "
                    f"{sorted(uids - {job.uid})} on {node.name} under "
                    f"whole-node-per-user",
                    uid=job.uid, job_id=job.job_id, node=node.name)
            n = tasks_placeable(
                policy, free_cores=node.free_cores,
                free_mem_mb=node.free_mem_mb,
                free_gpus=len(node.free_gpu_indices),
                cores_per_task=spec.cores_per_task,
                mem_mb_per_task=spec.mem_mb_per_task,
                gpus_per_task=spec.gpus_per_task, node_idle=node.idle,
                node_uids=uids, job_uid=job.uid,
                job_exclusive=spec.exclusive)
            if take > n:
                self._violation(
                    "I4", subject,
                    f"{take} tasks placed on {node.name} but only {n} "
                    f"placeable (free {node.free_cores}c/"
                    f"{node.free_mem_mb}MB)",
                    uid=job.uid, job_id=job.job_id, node=node.name)
        if not scheduler.config.naive and self._shadowed():
            self._shadow_checks += 1
            ref = reference_placement(scheduler, job)
            got = [(node.name, take) for node, take in plan]
            if ref != got:
                self._violation(
                    "I4", subject,
                    f"indexed plan {got} diverges from reference "
                    f"first-fit plan {ref}",
                    uid=job.uid, job_id=job.job_id)

    # -- I7: node rejoin ----------------------------------------------------

    def check_node_rejoin(self, scheduler, node) -> None:
        """Remediation of *node* just completed: residue must be gone.

        Invariant I7's rejoin half.  Every job-owned process whose job no
        longer holds an allocation here must be reaped, and — when the
        attached remediator promises the corresponding Section IV-F
        measure — no unallocated GPU may stay dirty or keep a ``/dev``
        file naming the dead tenant's private group.  Processes of jobs
        *still* allocated (a drained node running out) are legitimate.
        """
        if self._busy or not self._sampled():
            return
        self._count("I7")
        subject = f"node:{node.name}"
        live = set(node.allocations)
        orphans = [p.pid for p in node.node.procs.processes()
                   if p.job_id is not None and p.job_id not in live]
        if orphans:
            self._violation(
                "I7", subject,
                f"orphan process(es) {orphans} survived remediation",
                node=node.name)
        remediator = scheduler.remediator
        scrub = getattr(remediator, "scrub_expected", False)
        perms = getattr(remediator, "perms_expected", False)
        if not (scrub or perms):
            return
        from repro.kernel.node import ROOT_CREDS
        from repro.sched.prolog_epilog import (
            GPU_MODE_UNASSIGNED,
            gpu_dev_path,
        )
        busy = node.used_gpu_indices
        for gpu in node.gpus:
            if gpu.index in busy:
                continue
            if scrub and gpu.dirty:
                self._violation(
                    "I7", f"gpu:{node.name}/nvidia{gpu.index}",
                    "dirty device memory survived node remediation",
                    node=node.name)
            if perms:
                st = node.node.vfs.stat(gpu_dev_path(gpu.index), ROOT_CREDS)
                if st.gid != 0 or (st.mode & 0o777) != GPU_MODE_UNASSIGNED:
                    self._violation(
                        "I7", f"gpu:{node.name}/nvidia{gpu.index}",
                        f"released device left gid={st.gid} "
                        f"mode={st.mode & 0o777:#o} after remediation",
                        node=node.name)

    # -- I5: GPU assignment / scrub -----------------------------------------

    def check_gpu_assigned(self, node, job, gpu_indices) -> None:
        """Prolog finished: the job's GPUs must be visible to its UPG only."""
        if self._busy or not gpu_indices or not self._sampled():
            return
        self._count("I5")
        from repro.kernel.node import ROOT_CREDS
        from repro.sched.prolog_epilog import GPU_MODE_ASSIGNED, gpu_dev_path
        upg = job.spec.user.primary_gid
        for idx in gpu_indices:
            st = node.node.vfs.stat(gpu_dev_path(idx), ROOT_CREDS)
            if st.gid != upg or (st.mode & 0o777) != GPU_MODE_ASSIGNED:
                self._violation(
                    "I5", f"gpu:{node.name}/nvidia{idx}",
                    f"assigned device is gid={st.gid} "
                    f"mode={st.mode & 0o777:#o}, want gid={upg} "
                    f"mode={GPU_MODE_ASSIGNED:#o} for uid {job.uid}",
                    uid=job.uid, job_id=job.job_id, node=node.name)

    def check_gpu_released(self, node, job, gpu_indices, *,
                           scrub_expected: bool,
                           perms_expected: bool) -> None:
        """Epilog finished: devices must be scrubbed and re-hidden."""
        if self._busy or not gpu_indices or not self._sampled():
            return
        self._count("I5")
        from repro.kernel.node import ROOT_CREDS
        from repro.sched.prolog_epilog import (
            GPU_MODE_UNASSIGNED,
            gpu_dev_path,
        )
        for idx in gpu_indices:
            subject = f"gpu:{node.name}/nvidia{idx}"
            if scrub_expected and node.gpu(idx).dirty:
                self._violation(
                    "I5", subject,
                    f"residue survived the epilog of job {job.job_id} "
                    f"(uid {job.uid})",
                    uid=job.uid, job_id=job.job_id, node=node.name)
            if perms_expected:
                st = node.node.vfs.stat(gpu_dev_path(idx), ROOT_CREDS)
                if st.gid != 0 or (st.mode & 0o777) != GPU_MODE_UNASSIGNED:
                    self._violation(
                        "I5", subject,
                        f"released device left gid={st.gid} "
                        f"mode={st.mode & 0o777:#o}, want gid=0 "
                        f"mode={GPU_MODE_UNASSIGNED:#o}",
                        uid=job.uid, job_id=job.job_id, node=node.name)

    def check_gpu_read(self, device, creds) -> None:
        """A /dev read reached the device: no cross-uid residue allowed.

        Only armed (hooks.py) when both Section IV-F measures are on —
        with assignment off a stranger's read of a dirty device is the
        documented *configuration* gap the E12/E14 ablations measure, not
        an enforcement failure.
        """
        if self._busy or not self._sampled():
            return
        self._count("I5")
        if (device.last_user_uid is not None and not creds.is_root
                and creds.uid != device.last_user_uid and device.dirty):
            self._violation(
                "I5", f"gpu:nvidia{device.index}",
                f"uid {creds.uid} read dirty device memory last written "
                f"by uid {device.last_user_uid}",
                uid=creds.uid)

    # -- I6: portal ---------------------------------------------------------

    def check_portal_forward(self, portal, user, fwd_creds, app) -> None:
        """A portal forward fetched *app*'s page for *user*.

        Called only on success, with the forwarding process's credentials
        — the 'entire connection path is authenticated and authorized'
        property of Section IV-E.
        """
        if self._busy or not portal.require_auth or not self._sampled():
            return
        self._count("I6")
        subject = f"portal:app/{app.app_id}"
        app_node = getattr(getattr(app, "node", None), "name", None)
        if fwd_creds.uid != user.uid:
            self._violation(
                "I6", subject,
                f"forwarding process ran as uid {fwd_creds.uid}, session "
                f"user is uid {user.uid}",
                uid=user.uid, node=app_node)
        if user.uid != app.owner_uid and not user.is_root:
            listener_egid = app.process.creds.egid
            groups = portal.userdb.credentials_for(user).groups
            if listener_egid not in groups:
                self._violation(
                    "I6", subject,
                    f"uid {user.uid} reached uid {app.owner_uid}'s app "
                    f"without membership in its egid {listener_egid}",
                    uid=user.uid, node=app_node)

    def check_portal_routes(self, portal, session, apps) -> None:
        """The route listing for *session* must contain only its own apps."""
        if self._busy or not self._sampled():
            return
        self._count("I6")
        foreign = sorted({a.owner_uid for a in apps
                          if a.owner_uid != session.user.uid})
        if foreign:
            self._violation(
                "I6", f"portal:routes/uid{session.user.uid}",
                f"route listing exposed apps of uids {foreign}",
                uid=session.user.uid)

    # -- I3: smask / ACL ----------------------------------------------------

    def check_vfs_mode(self, vfs, path: str, creds, stored_mode: int,
                       op: str) -> None:
        """*op* (create/chmod) stored *stored_mode*: smask bits must be 0."""
        if self._busy or not self._sampled():
            return
        self._count("I3")
        if vfs.handler.enabled and not creds.is_root:
            leaked = stored_mode & creds.smask & 0o777
            if leaked:
                self._violation(
                    "I3", f"vfs:{path}",
                    f"{op} by uid {creds.uid} stored mode "
                    f"{stored_mode:#o} carrying smask bits {leaked:#o}",
                    uid=creds.uid)

    def check_vfs_acl(self, vfs, path: str, creds, entry) -> None:
        """A setfacl succeeded: the grant must be legal under restriction."""
        if self._busy or not self._sampled():
            return
        self._count("I3")
        h = vfs.handler
        if not h.enabled or not h.restrict_acls or creds.is_root:
            return
        if entry.tag == "user" and entry.qualifier != creds.uid:
            self._violation(
                "I3", f"vfs:{path}",
                f"ACL grant to foreign uid {entry.qualifier} by uid "
                f"{creds.uid} survived the restriction patch",
                uid=creds.uid)
        elif entry.tag == "group" and not creds.in_group(entry.qualifier):
            self._violation(
                "I3", f"vfs:{path}",
                f"ACL grant to non-member gid {entry.qualifier} by uid "
                f"{creds.uid} survived the restriction patch",
                uid=creds.uid)

    # -- I8: control-plane recovery -----------------------------------------

    def check_recovery(self, cluster, report) -> None:
        """A control-plane recovery completed: separation state must hold.

        Differential replay first — the rebuilt control plane must be
        digest-identical to the state captured at the crash.  Then the
        journal itself is read back as evidence: a node whose last
        administrative record is a fence must still be quarantined, a
        membership whose last record is a revocation must stay revoked,
        and every GPU grant without a matching scrub (or a later
        remediation of its node) must still belong to a live running job.
        Unlike the per-decision checks this never draws from the sampling
        RNG: recoveries are rare, and a draw here would shift every
        subsequent sampled check of the run.
        """
        if self._busy:
            return
        self._count("I8")
        if report.digest_before and not report.identical:
            self._violation(
                "I8", "recovery",
                f"recovered control plane diverged from the crash state "
                f"(digest {report.digest_after} != "
                f"{report.digest_before})")
        spine = getattr(cluster, "persist", None)
        if spine is None:
            return
        records = spine.journal.records()
        self._check_recovery_fences(cluster, records)
        self._check_recovery_membership(cluster, records)
        self._check_recovery_gpus(cluster, records)

    def _check_recovery_fences(self, cluster, records) -> None:
        """No fence forgotten: a node last fenced must stay quarantined."""
        last: dict[str, str] = {}
        for rec in records:
            if rec["op"] in ("fence", "remediate", "resume"):
                last[rec["node"]] = rec["op"]
        sched = cluster.scheduler
        for name, op in sorted(last.items()):
            if op != "fence":
                continue
            node = sched.nodes.get(name)
            if node is None:
                continue
            if not (node.fenced and node.needs_remediation):
                self._violation(
                    "I8", f"node:{name}",
                    "journaled fence was forgotten by recovery: node is "
                    "schedulable without an intervening remediation",
                    node=name)
            elif node.allocations:
                self._violation(
                    "I8", f"node:{name}",
                    f"fenced node still holds allocation(s) for job(s) "
                    f"{sorted(node.allocations)} after recovery",
                    node=name)

    def _check_recovery_membership(self, cluster, records) -> None:
        """No revocation resurrected: a membership last removed stays out."""
        last: dict[tuple[int, int], str] = {}
        for rec in records:
            if rec["op"] in ("member_add", "member_del"):
                last[(rec["gid"], rec["uid"])] = rec["op"]
        db = cluster.userdb
        for (gid, uid), op in sorted(last.items()):
            if op != "member_del":
                continue
            group = db._groups_by_gid.get(gid)
            if group is not None and uid in group.members:
                self._violation(
                    "I8", f"group:gid{gid}",
                    f"revoked membership of uid {uid} resurrected by "
                    f"recovery",
                    uid=uid)

    def _check_recovery_gpus(self, cluster, records) -> None:
        """No grant forgotten: unscrubbed GPUs belong to live jobs only."""
        open_grants: dict[tuple[int, str], list[int]] = {}
        for rec in records:
            if rec["op"] == "gpu_grant":
                open_grants[(rec["job_id"], rec["node"])] = rec["gpus"]
            elif rec["op"] == "gpu_scrub":
                open_grants.pop((rec["job_id"], rec["node"]), None)
            elif rec["op"] == "remediate":
                # remediation scrubs every device on the node
                for key in [k for k in open_grants if k[1] == rec["node"]]:
                    open_grants.pop(key)
        sched = cluster.scheduler
        from repro.sched.jobs import JobState
        for (job_id, node_name), gpus in sorted(open_grants.items()):
            job = sched.jobs.get(job_id)
            node = sched.nodes.get(node_name)
            live = (job is not None and job.state is JobState.RUNNING
                    and node is not None
                    and job_id in node.allocations)
            # a grant stranded on a still-quarantined node is *tracked*
            # residue (the fence check guards its rejoin), not forgotten
            quarantined = node is not None and (node.fenced
                                                or node.needs_remediation)
            if not live and not quarantined:
                self._violation(
                    "I8", f"gpu:{node_name}/job{job_id}",
                    f"granted-but-unscrubbed GPU(s) {gpus} belong to no "
                    f"live running job after recovery",
                    job_id=job_id, node=node_name)
