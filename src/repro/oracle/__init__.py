"""repro.oracle — always-on separation-invariant checking.

The correctness counterpart to the observability spine: a declarative
catalog of paper-derived invariants (:mod:`repro.oracle.invariants`),
a sampling online checker with a naive-reference shadow mode
(:mod:`repro.oracle.oracle`), and one-call cluster wiring
(:mod:`repro.oracle.hooks`).  ``REPRO_ORACLE=1`` in the environment makes
:meth:`repro.core.cluster.Cluster.build` attach it fail-fast at full
sampling — how CI proves the whole tier-1 suite and the E23/E24 smoke
points make zero violating decisions.
"""

from repro.oracle.hooks import attach_oracle, wrap_gpu_hooks  # noqa: F401
from repro.oracle.invariants import BY_ID, CATALOG, Invariant  # noqa: F401
from repro.oracle.oracle import (  # noqa: F401
    DEFAULT_SEED,
    SeparationOracle,
    SeparationViolation,
    Violation,
    reference_placement,
    reference_ubf_verdict,
)

__all__ = [
    "BY_ID", "CATALOG", "DEFAULT_SEED", "Invariant", "SeparationOracle",
    "SeparationViolation", "Violation", "attach_oracle",
    "reference_placement", "reference_ubf_verdict", "wrap_gpu_hooks",
]
