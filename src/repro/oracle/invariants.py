"""The declarative catalog of paper-derived separation invariants.

Each :class:`Invariant` states one property that Section IV of *HPC with
Enhanced User Separation* promises and that the simulated enforcement
points must uphold on **every decision**, not just in the configured state
(`core/compliance.py` audits the latter).  The oracle
(:mod:`repro.oracle.oracle`) evaluates these at the choke points listed in
``modules``; `docs/TRACEABILITY.md` carries the full paper-section →
module → invariant → test matrix.

The catalog is data, not code: check logic lives in
:class:`~repro.oracle.oracle.SeparationOracle` so the catalog can be
rendered into reports and docs without importing enforcement modules.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Invariant:
    """One always-on separation property.

    ``id`` is the stable handle used in metrics labels
    (``oracle_checks_total{invariant="I2"}``), violation records, and the
    traceability matrix.  ``section`` cites the paper section the property
    is derived from; ``statement`` is the property in one sentence;
    ``modules`` names the enforcement choke points carrying the hook.
    """

    id: str
    title: str
    section: str
    statement: str
    modules: tuple[str, ...]


CATALOG: tuple[Invariant, ...] = (
    Invariant(
        id="I1",
        title="hidepid confines /proc views to the viewer's uid",
        section="IV-A",
        statement=(
            "Under hidepid=2 every /proc listing (and under hidepid>=1 "
            "every detail read) a non-exempt viewer obtains contains only "
            "processes of the viewer's own uid; only root and members of "
            "the gid= mount group (the seepid exemption) may cross uids."),
        modules=("kernel/procfs.py",),
    ),
    Invariant(
        id="I2",
        title="UBF accepts a flow iff same-user or egid-member",
        section="IV-D + appendix",
        statement=(
            "A connection to a user port is ACCEPTed only when the "
            "connecting and listening processes run as the same user, the "
            "connector is a member of the listener's primary group (egid), "
            "or the initiator is root; any flow the appendix rule accepts "
            "is never DROPped (the indexed allow-set path may not refuse "
            "what the naive rule permits)."),
        modules=("net/ubf.py",),
    ),
    Invariant(
        id="I3",
        title="smask bits survive every chmod/create/ACL path",
        section="IV-C",
        statement=(
            "No file operation by an unprivileged user with an active "
            "security mask ever stores permission bits inside that mask "
            "(enforced even on chmod), and ACL grants are limited to the "
            "caller's own groups and own uid while the restriction patch "
            "is enabled."),
        modules=("kernel/vfs.py",),
    ),
    Invariant(
        id="I4",
        title="node-sharing policy is honoured by every placement",
        section="IV-B",
        statement=(
            "A job start never co-locates two uids on a node under the "
            "whole-node-per-user policy, never shares a non-idle node "
            "under the exclusive policy, and never exceeds a node's free "
            "capacity; the indexed dispatch plan equals the reference "
            "full-scan first-fit plan (shadow mode)."),
        modules=("sched/scheduler.py",),
    ),
    Invariant(
        id="I5",
        title="GPU /dev files track the allocated user; epilog scrubs",
        section="IV-F",
        statement=(
            "While assigned, a GPU's /dev character file is mode 0660 with "
            "group = the allocated user's private group; after the epilog "
            "it returns to 0000/root and the device holds no residue; a "
            "non-root read by a uid other than the last writer never "
            "observes dirty device memory."),
        modules=("gpu/device.py", "sched/prolog_epilog.py"),
    ),
    Invariant(
        id="I6",
        title="portal forwards only as and to the authenticated principal",
        section="IV-E",
        statement=(
            "With portal authentication required, the forwarding process "
            "runs as the authenticated session's user (never a shared "
            "service identity), the route listing shows only that user's "
            "apps, and a successful forward to another user's app implies "
            "the sanctioned egid-sharing path."),
        modules=("portal/gateway.py",),
    ),
    Invariant(
        id="I7",
        title="a fenced node rejoins only after full remediation",
        section="IV-B + IV-F",
        statement=(
            "No job is ever dispatched onto a node flagged as fenced or "
            "needing remediation, and when a crashed node rejoins "
            "scheduling its separation residue is gone: no orphan process "
            "of a de-allocated job survives, and (when the corresponding "
            "measures are configured) no unallocated GPU holds dirty "
            "memory or a /dev file still naming the dead tenant's "
            "private group."),
        modules=("sched/scheduler.py", "sched/health.py"),
    ),
    Invariant(
        id="I8",
        title="control-plane recovery preserves separation",
        section="IV-B + IV-F",
        statement=(
            "A control plane rebuilt from snapshot + journal replay ends "
            "digest-identical to the state at the crash: no job runs on a "
            "node that was fenced (or flagged for remediation) before the "
            "crash without a remediation in between, no membership "
            "revoked before the crash is resurrected by the rebuilt "
            "account database, and no GPU granted before the crash is "
            "forgotten — every unscrubbed grant still belongs to a live "
            "running job or to a node since remediated."),
        modules=("persist/recovery.py", "sched/scheduler.py",
                 "net/ubf.py"),
    ),
)

#: id -> Invariant, for reports and metric-label validation.
BY_ID: dict[str, Invariant] = {inv.id: inv for inv in CATALOG}
