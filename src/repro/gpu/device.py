"""GPU devices with *persistent* memory — the Section IV-F hazard.

"Accelerators, and specifically GPUs, do not use a traditional security
model for data resident in memory.  They have no concept of data ownership
or data segmenting within the GPU. ... GPUs do not clear their memory before
reassignment to another job/user ... the data of the previous user's job
will remain in GPU memory and registers."

:class:`GPUDevice` is the payload behind ``/dev/nvidiaN`` character files
(access control happens in the VFS, on the file's permission bits — *not*
here, because the real device has none).  Memory is a numpy byte array that
survives job boundaries; only an explicit :meth:`scrub` (the vendor-provided
steps the LLSC epilog runs) clears it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass
class GPUDevice:
    """One accelerator: device memory + registers, no ownership model."""

    index: int
    mem_bytes: int = 65536
    memory: np.ndarray = field(init=False)
    registers: np.ndarray = field(init=False)
    last_user_uid: int | None = None
    scrub_count: int = 0
    #: observability hook: called as ``(creds, path)`` when the VFS refuses
    #: an open of this device's /dev file (wired by
    #: :func:`repro.monitor.wiring.instrument_cluster` to emit GPU_DENY)
    deny_hook: Callable | None = field(default=None, repr=False,
                                       compare=False)
    #: separation oracle (repro.oracle); None = zero-cost hooks
    oracle: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        self.memory = np.zeros(self.mem_bytes, dtype=np.uint8)
        self.registers = np.zeros(64, dtype=np.uint64)

    # -- the /dev character-file interface (called by the VFS after DAC) ----

    def dev_write(self, creds, data: bytes) -> int:
        """Write at offset 0 (a compute kernel leaving results in memory)."""
        a = np.frombuffer(data, dtype=np.uint8)
        n = min(a.size, self.memory.size)
        self.memory[:n] = a[:n]
        self.registers[0] = n
        self.last_user_uid = creds.uid
        return int(n)

    def dev_read(self, creds) -> bytes:
        """Map device memory: returns whatever is resident — including a
        previous user's data if nobody scrubbed."""
        if self.oracle is not None:
            self.oracle.check_gpu_read(self, creds)
        return self.memory.tobytes()

    def on_access_denied(self, creds, path: str) -> None:
        """VFS callback: DAC refused an open of this device's /dev file.

        Purely observational — the refusal has already been decided; this
        only forwards it to whatever monitoring is attached.
        """
        if self.deny_hook is not None:
            self.deny_hook(creds, path)

    # -- direct (driver-level) operations ------------------------------------

    def write_at(self, offset: int, data: bytes) -> None:
        a = np.frombuffer(data, dtype=np.uint8)
        self.memory[offset:offset + a.size] = a

    def read_at(self, offset: int, size: int) -> bytes:
        return self.memory[offset:offset + size].tobytes()

    @property
    def dirty(self) -> bool:
        """Any non-zero residue in memory or registers?"""
        return bool(self.memory.any() or self.registers.any())

    def scrub(self) -> None:
        """The vendor-provided clearing steps (run by the scheduler epilog)."""
        self.memory[:] = 0
        self.registers[:] = 0
        self.scrub_count += 1

    def forensic_summary(self) -> dict:
        """JSON-ready residue facts for a flight-recorder dump.

        Captures ownership and dirtiness *without* the memory contents —
        a dump must never itself leak the previous tenant's data.
        """
        return {
            "gpu": self.index,
            "dirty": self.dirty,
            "last_user_uid": self.last_user_uid,
            "scrub_count": self.scrub_count,
            "resident_bytes": int(np.count_nonzero(self.memory)),
        }
