"""Accelerator substrate: GPUs with persistent, ownerless memory."""

from repro.gpu.device import GPUDevice

__all__ = ["GPUDevice"]
