"""Simulated network substrate: IP fabric, firewall/conntrack/nfqueue,
ident, the User-Based Firewall daemon, and RDMA queue pairs."""

from repro.net.firewall import (
    ConnState,
    ConntrackTable,
    Firewall,
    FiveTuple,
    Packet,
    Proto,
    Rule,
    Verdict,
    ubf_ruleset,
)
from repro.net.ident import (
    IdentReply,
    IdentService,
    IdentUnavailable,
    remote_ident_query,
)
from repro.net.pps import FirewallScore, PPSPolicy, ServiceEntry
from repro.net.rdma import MemoryRegion, QueuePair, RDMAFabric
from repro.net.stack import (
    BoundSocket,
    Connection,
    ConnectionEnd,
    Datagram,
    Fabric,
    HostStack,
    SocketAPI,
)
from repro.net.ubf import (
    COST_US,
    DecisionReason,
    ShardedVerdictCache,
    UBFDaemon,
    UBFDecisionLog,
    firewall_cost_us,
)
from repro.net.ubf_columnar import (
    ColumnarVerdictCache,
    FlowBatch,
    in_sorted,
    to_verdicts,
)
from repro.net.zones import (
    POSTURES,
    UBFPosture,
    ZoneTier,
    apply_tier,
    apply_zone_tiers,
)

__all__ = [
    "ConnState", "ConntrackTable", "Firewall", "FiveTuple", "Packet",
    "Proto", "Rule", "Verdict", "ubf_ruleset",
    "IdentReply", "IdentService", "IdentUnavailable", "remote_ident_query",
    "FirewallScore", "PPSPolicy", "ServiceEntry",
    "MemoryRegion", "QueuePair", "RDMAFabric",
    "BoundSocket", "Connection", "ConnectionEnd", "Datagram", "Fabric",
    "HostStack", "SocketAPI",
    "COST_US", "DecisionReason", "ShardedVerdictCache", "UBFDaemon",
    "UBFDecisionLog", "firewall_cost_us",
    "ColumnarVerdictCache", "FlowBatch", "in_sorted", "to_verdicts",
    "POSTURES", "UBFPosture", "ZoneTier", "apply_tier", "apply_zone_tiers",
]
