"""The User-Based Firewall daemon (paper Section IV-D + appendix).

Decision rule, verbatim from the appendix: "The ruleset implemented only
permits a connection when the connecting and listening processes are running
as the same user, or the connecting process is a member of the primary group
(egid) of the listening process."

Data path: the kernel's nfqueue hands the daemon each NEW connection to a
user port (≥1024).  The daemon then

1. runs the ident query *locally* to learn the listening process's uid/egid,
2. checks the decision cache keyed on (initiator uid, listener uid,
   listener egid) — a hit answers without any network traffic,
3. on a miss, sends the ident-like query to the *initiating* host to learn
   the connecting process's uid and groups (one RTT),
4. applies the same-user-or-egid-member rule,
5. returns ACCEPT/DROP to the kernel; ACCEPT flows are committed to
   conntrack by the firewall so later packets never reach the daemon.

The cache (an ablation knob for E8) keys on the packet's kernel-stamped
initiator uid — every cluster host runs the same root-administered system
image, so the stamp shares the trust basis of the ident answer it stands in
for.  A hit skips the ident RTT entirely; that is the whole point of the
cache, and the regression test pins it.  The cache is conservative —
listener egid changes are handled by keying on the egid *value*, so an
``sg`` to a new group produces a different key and a fresh (authoritative)
decision.  Packets arriving without a uid stamp always take the full path.

Degradation: when the initiating host (or its identd) cannot answer, the
remote query raises :class:`~repro.net.ident.IdentUnavailable`.  The daemon
retries with backoff (``ident_retries`` × ``ident_backoff_us``) and, if the
fault persists, issues a *degraded* verdict: DROP under the default
fail-closed policy, ACCEPT under ``fail_open=True`` (the availability-over-
separation ablation).  Degraded verdicts are never cached — they reflect a
fault, not an identity decision — and are counted under
``ubf_degraded_verdicts{policy=}`` so posture dashboards see them.

Crash/restart: ``crash()`` detaches the daemon from the nfqueue (the kernel
then fails closed for NEW connections — no handler means DROP) while
conntrack keeps established flows alive.  ``restart()`` rebinds the exact
handler that was detached (monitoring wrappers installed by
``instrument_cluster`` survive), flushes the decision cache (stale across a
restart) and re-syncs against the surviving conntrack table — no manual
flush is ever needed.

Scale-out hot path (E24): ``decide_batch`` takes a burst of queued packets
and **coalesces** ident queries — packets from the same remote (host, proto,
src-port), i.e. the same initiating process, park as waiters on a single
upstream exchange and all receive verdicts derived from its one reply
(savings counted under ``ident_coalesced``).  The decision cache is
**sharded** by an arithmetic hash of the (initiator uid, listener uid,
listener egid) key — stable across ``PYTHONHASHSEED`` — so one giant dict
never becomes the bottleneck, and the group rule consults a precomputed
per-egid **allow-set** derived from the account database (invalidated via
``UserDB.generation``), falling back to the ident reply's group snapshot
before ever dropping.  ``naive=True`` preserves the original sequential
per-packet path as the differential-testing reference; both paths produce
identical verdicts (property-tested fault-free — under faults, coalescing
legitimately consumes fewer identd attempts than per-packet retry loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.errors import NoSuchEntity
from repro.kernel.users import UserDB
from repro.net.firewall import Packet, Verdict
from repro.net.ident import (
    IdentReply,
    IdentService,
    IdentUnavailable,
    remote_ident_query,
)
from repro.net.stack import Fabric, HostStack


class ShardedVerdictCache:
    """Decision cache split into shards by an arithmetic key hash.

    The shard function mixes the three small ints of the cache key with
    fixed primes instead of relying on ``hash()``, so shard assignment (and
    therefore iteration order, sizes, and any perf characteristics) is
    identical under every ``PYTHONHASHSEED`` — CI runs two seeds to enforce
    exactly this kind of determinism.
    """

    def __init__(self, shards: int = 8):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.n = shards
        self._shards: list[dict[tuple[int, int, int], Verdict]] = [
            {} for _ in range(shards)
        ]

    def _shard(self, key: tuple[int, int, int]) -> dict:
        a, b, c = key
        return self._shards[(a * 1_000_003 + b * 8_191 + c) % self.n]

    def get(self, key: tuple[int, int, int]) -> Verdict | None:
        return self._shard(key).get(key)

    def put(self, key: tuple[int, int, int], verdict: Verdict) -> None:
        self._shard(key)[key] = verdict

    def pop(self, key: tuple[int, int, int]) -> Verdict | None:
        """Remove and return *key*'s verdict (None if absent)."""
        return self._shard(key).pop(key, None)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(s) for s in self._shards]


@dataclass
class UBFDecisionLog:
    """One decision, for audit trails and tests."""

    flow: str
    initiator_uid: int | None
    listener_uid: int | None
    listener_egid: int | None
    verdict: Verdict
    reason: str


@dataclass
class UBFDaemon:
    """Userspace decision daemon bound to one host's nfqueue."""

    stack: HostStack
    fabric: Fabric
    userdb: UserDB
    cache_enabled: bool = True
    #: degraded-mode policy: ACCEPT (True) or DROP (False) when the
    #: initiator's identity cannot be learned due to an infrastructure fault.
    #: The paper's separation-first posture defaults to fail-closed.
    fail_open: bool = False
    #: extra ident attempts after the first failure, each preceded by a
    #: simulated exponential backoff (ident_backoff_us * 2^attempt).
    ident_retries: int = 2
    ident_backoff_us: float = 200.0
    #: optional span source (repro.obs.trace.Tracer); None = no tracing cost
    tracer: object | None = None
    #: separation oracle (repro.oracle); None = zero-cost hooks
    oracle: object | None = field(default=None, repr=False)
    #: forensic audit trail (repro.obs.audit); when set, clean ACCEPT
    #: verdicts are recorded with causal attribution (denies reach the
    #: trail through the security-event stream).  None = zero cost.
    audit: object | None = field(default=None, repr=False)
    #: original sequential/unsharded reference path for differential testing.
    naive: bool = False
    cache_shards: int = 8
    log: list[UBFDecisionLog] = field(default_factory=list)
    alive: bool = True
    _cache: dict[tuple[int, int, int], Verdict] = field(default_factory=dict)
    _sharded: ShardedVerdictCache | None = field(default=None, repr=False)
    #: initiating host -> cache keys its flows created, so a dead host's
    #: cached identity decisions can be purged without a full flush
    _keys_by_host: dict[str, set[tuple[int, int, int]]] = field(
        default_factory=dict, repr=False)
    _allow_sets: dict[int, frozenset[int]] = field(default_factory=dict,
                                                   repr=False)
    _allow_gen: int = field(default=-1, repr=False)
    _crashed_handler: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._sharded is None:
            self._sharded = ShardedVerdictCache(self.cache_shards)

    def install(self) -> "UBFDaemon":
        self.stack.firewall.bind_nfqueue(self.decide)
        return self

    # -- lifecycle --------------------------------------------------------------

    def crash(self) -> None:
        """The daemon process dies: the nfqueue loses its handler.

        From the kernel's point of view this is the fail-safe posture the
        design promises — NEW connections to user ports now DROP (nobody to
        ask), while conntrack-established flows keep flowing untouched.
        """
        if not self.alive:
            return
        self._crashed_handler = self.stack.firewall.unbind_nfqueue()
        self.alive = False
        self.fabric.metrics.counter("ubf_crashes").inc()

    def restart(self) -> None:
        """Restart after a crash: rebind, flush the cache, re-sync.

        Rebinds the *same* handler that was detached, so any monitoring
        wrapper installed around ``decide`` survives the bounce.  The
        decision cache is dropped (identity state from before the crash is
        stale); the conntrack table is *kept* — established flows never
        noticed the outage and need no manual flush.
        """
        if self.alive:
            return
        handler = self._crashed_handler or self.decide
        self._crashed_handler = None
        self.stack.firewall.bind_nfqueue(handler)
        self.flush_cache()
        self.alive = True
        self.fabric.metrics.counter("ubf_restarts").inc()
        self.fabric.metrics.gauge("ubf_resync_flows").set(
            len(self.stack.firewall.conntrack))

    # -- decision ---------------------------------------------------------------

    def decide(self, pkt: Packet) -> Verdict:
        if self.tracer is None:
            return self._decide(pkt)
        span = self.tracer.start_span(
            "ubf.decide", host=self.stack.hostname,
            src=f"{pkt.flow.src_host}:{pkt.flow.src_port}",
            dst=f"{pkt.flow.dst_host}:{pkt.flow.dst_port}")
        try:
            verdict = self._decide(pkt)
        except Exception as exc:
            # The span must finish even when the decision path blows up,
            # or the tracer leaks an open span per failed decision.
            self.tracer.finish(span, status="error",
                               error=type(exc).__name__)
            raise
        self.tracer.finish(span, verdict=verdict.value,
                           reason=self.log[-1].reason if self.log else "")
        return verdict

    def _decide(self, pkt: Packet) -> Verdict:
        verdict, listener = self._pre_decide(pkt, IdentService(self.stack))
        if verdict is not None:
            return verdict
        try:
            initiator = self._remote_ident(pkt.flow)
        except IdentUnavailable as exc:
            return self._degraded(pkt, listener, exc)
        return self._conclude(pkt, listener, initiator)

    def _pre_decide(self, pkt: Packet, local_ident: IdentService
                    ) -> tuple[Verdict | None, IdentReply | None]:
        """The pre-ident phase: listener lookup + cache/root short-circuits.

        Returns ``(verdict, listener)``; ``verdict is None`` means the
        packet needs a remote ident exchange before it can be concluded.
        """
        flow = pkt.flow
        listener = local_ident.query_local(flow.proto, flow.dst_port)
        if listener is None:
            # nothing listening; let the stack produce ECONNREFUSED rather
            # than leaking whether the port is filtered
            return self._log(pkt, None, None, None, Verdict.ACCEPT,
                             "no listener (refusal handled by stack)"), None
        if listener.uid == 0:
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.ACCEPT, "root-owned service"), listener
        # Cache first: a hit answers from the kernel-stamped initiator uid
        # without touching the network.  (The stamp is trusted for the same
        # reason the ident answer is — same root-administered system image.)
        if self.cache_enabled and pkt.src_uid is not None:
            key = (pkt.src_uid, listener.uid, listener.egid)
            cached = (self._cache.get(key) if self.naive
                      else self._sharded.get(key))
            if cached is not None:
                self.fabric.metrics.counter("ubf_cache_hits").inc()
                if self.oracle is not None:
                    self.oracle.check_ubf_cached(self, key, cached)
                return self._log(pkt, pkt.src_uid, listener.uid,
                                 listener.egid, cached, "cached"), listener
        return None, listener

    def _conclude(self, pkt: Packet, listener: IdentReply,
                  initiator: IdentReply | None) -> Verdict:
        """The post-ident phase: rule, cache store, full-decision metrics."""
        if initiator is None:
            if self.oracle is not None:
                self.oracle.check_ubf_conclude(self, pkt, listener, None,
                                               Verdict.DROP)
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.DROP, "initiator unidentifiable")
        rule = self._rule if self.naive else self._rule_indexed
        verdict, reason = rule(initiator.uid, initiator.groups,
                               listener.uid, listener.egid)
        if self.oracle is not None:
            self.oracle.check_ubf_conclude(self, pkt, listener, initiator,
                                           verdict)
        if self.cache_enabled:
            key = (initiator.uid, listener.uid, listener.egid)
            if self.naive:
                self._cache[key] = verdict
            else:
                self._sharded.put(key, verdict)
            self._keys_by_host.setdefault(pkt.flow.src_host, set()).add(key)
        self.fabric.metrics.counter("ubf_full_decisions").inc()
        return self._log(pkt, initiator.uid, listener.uid, listener.egid,
                         verdict, reason)

    def decide_batch(self, pkts: list[Packet]) -> list[Verdict]:
        """Decide a burst of simultaneously queued packets, coalescing
        ident queries.

        All packets go through the pre-ident phase first (a burst arrives
        together, so none can hit a cache entry another member is about to
        create); misses are then grouped by the initiating *process* —
        ``(src_host, proto, src_port)`` — and each group performs exactly
        one upstream ident exchange whose answer (or failure) concludes
        every waiter.  ``ident_coalesced`` counts the queries saved.
        """
        pkts = list(pkts)
        if self.naive:
            return [self.decide(p) for p in pkts]
        local_ident = IdentService(self.stack)
        results: list[Verdict | None] = [None] * len(pkts)
        waiters: dict[tuple, list[tuple[int, IdentReply]]] = {}
        for i, pkt in enumerate(pkts):
            verdict, listener = self._pre_decide(pkt, local_ident)
            if verdict is not None:
                results[i] = verdict
                continue
            flow = pkt.flow
            waiters.setdefault((flow.src_host, flow.proto, flow.src_port),
                               []).append((i, listener))
        coalesced = self.fabric.metrics.counter("ident_coalesced")
        for parked in waiters.values():
            if len(parked) > 1:
                coalesced.inc(len(parked) - 1)
            try:
                initiator = self._remote_ident(pkts[parked[0][0]].flow)
            except IdentUnavailable as exc:
                for i, listener in parked:
                    results[i] = self._degraded(pkts[i], listener, exc)
                continue
            for i, listener in parked:
                results[i] = self._conclude(pkts[i], listener, initiator)
        return results

    def _remote_ident(self, flow) -> IdentReply | None:
        """One authoritative ident exchange, with retry + backoff.

        :class:`IdentUnavailable` (identd down/slow, host partitioned) is
        retried ``ident_retries`` times with exponential backoff; an unknown
        peer host is converted to the same fault without retries (it cannot
        get better by waiting).  The *final* failure propagates to the
        degraded-verdict path.
        """
        attempts = 1 + max(0, self.ident_retries)
        for attempt in range(attempts):
            try:
                return remote_ident_query(self.fabric, self.stack.hostname,
                                          flow.src_host, flow.proto,
                                          flow.src_port)
            except NoSuchEntity as exc:
                raise IdentUnavailable(
                    f"peer host {flow.src_host!r} unknown") from exc
            except IdentUnavailable:
                self.fabric.metrics.counter("ubf_ident_timeouts").inc()
                if attempt + 1 >= attempts:
                    raise
                self.fabric.metrics.counter("ubf_ident_retries").inc()
                self.fabric.metrics.samples("ubf_ident_backoff_us").add(
                    self.ident_backoff_us * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _degraded(self, pkt: Packet, listener: IdentReply,
                  exc: IdentUnavailable) -> Verdict:
        """Identity unavailable after retries: apply the degradation policy.

        Never cached — a degraded verdict reflects an infrastructure fault,
        not an identity decision, and must not outlive the fault.
        """
        policy = "fail-open" if self.fail_open else "fail-closed"
        verdict = Verdict.ACCEPT if self.fail_open else Verdict.DROP
        if self.oracle is not None:
            self.oracle.check_ubf_degraded(self, verdict)
        self.fabric.metrics.counter("ubf_degraded_verdicts",
                                    policy=policy).inc()
        return self._log(pkt, None, listener.uid, listener.egid, verdict,
                         f"degraded: {exc} ({policy})")

    def _rule(self, init_uid: int, init_groups: frozenset[int],
              listen_uid: int, listen_egid: int) -> tuple[Verdict, str]:
        """The appendix rule: same user, or connector ∈ listener's egid."""
        if init_uid == 0:
            return Verdict.ACCEPT, "root initiator"
        if init_uid == listen_uid:
            return Verdict.ACCEPT, "same user"
        if listen_egid in init_groups:
            return Verdict.ACCEPT, "initiator in listener's primary group"
        return Verdict.DROP, "cross-user connection denied"

    def _rule_indexed(self, init_uid: int, init_groups: frozenset[int],
                      listen_uid: int, listen_egid: int
                      ) -> tuple[Verdict, str]:
        """Same rule, group check against the precomputed per-egid allow-set.

        The allow-set reflects the live account database; an initiator whose
        credential snapshot carries the egid but whom the database no longer
        (or never — ``with_extra_group``) lists falls back to the snapshot
        check before a DROP, so no connection the naive rule accepts is ever
        refused (``ubf_allowset_fallbacks`` counts how often that saves one).
        """
        if init_uid == 0:
            return Verdict.ACCEPT, "root initiator"
        if init_uid == listen_uid:
            return Verdict.ACCEPT, "same user"
        if init_uid in self._egid_members(listen_egid):
            return Verdict.ACCEPT, "initiator in listener's primary group"
        if listen_egid in init_groups:
            self.fabric.metrics.counter("ubf_allowset_fallbacks").inc()
            return Verdict.ACCEPT, "initiator in listener's primary group"
        return Verdict.DROP, "cross-user connection denied"

    def _egid_members(self, egid: int) -> frozenset[int]:
        """Allow-set for one listener egid, cached until the account
        database's generation moves (any membership mutation invalidates)."""
        if self._allow_gen != self.userdb.generation:
            self._allow_sets.clear()
            self._allow_gen = self.userdb.generation
        members = self._allow_sets.get(egid)
        if members is None:
            try:
                members = frozenset(self.userdb.group(egid).members)
            except NoSuchEntity:
                members = frozenset()
            self._allow_sets[egid] = members
        return members

    def _log(self, pkt: Packet, iu, lu, lg, verdict: Verdict,
             reason: str) -> Verdict:
        self.log.append(UBFDecisionLog(
            flow=(f"{pkt.flow.proto.value} {pkt.flow.src_host}:"
                  f"{pkt.flow.src_port}->{pkt.flow.dst_host}:{pkt.flow.dst_port}"),
            initiator_uid=iu, listener_uid=lu, listener_egid=lg,
            verdict=verdict, reason=reason))
        self.fabric.metrics.counter("ubf_verdicts_total",
                                    verdict=verdict.value,
                                    reason=reason).inc()
        if verdict is Verdict.DROP:
            self.fabric.metrics.counter("ubf_denials").inc()
        elif self.audit is not None and iu is not None:
            self.audit.ubf_verdict(
                uid=iu, node=pkt.flow.src_host,
                target=f"{pkt.flow.dst_host}:{pkt.flow.dst_port}",
                verdict=verdict.value, reason=reason)
        return verdict

    def purge_host(self, host: str) -> int:
        """Drop every cached verdict whose deciding flow came from *host*.

        Called when a peer host's crash/partition persists past the health
        monitor's TTL: identity decisions derived from that host's ident
        answers must not outlive it (whatever next answers to its name gets
        a fresh authoritative decision).  A key shared with another live
        host's flows is dropped too — conservatively forcing a re-decision,
        never widening access.  Returns the number of entries purged.
        """
        keys = self._keys_by_host.pop(host, None)
        if not keys:
            return 0
        purged = 0
        for key in keys:
            hit = self._cache.pop(key, None) is not None
            if self._sharded.pop(key) is not None:
                hit = True
            if hit:
                purged += 1
        if purged:
            self.fabric.metrics.counter(
                "ubf_cache_purged_total", reason="dead-host").inc(purged)
        return purged

    def flush_cache(self) -> None:
        self._cache.clear()
        self._sharded.clear()
        self._keys_by_host.clear()
        self._allow_sets.clear()
        self._allow_gen = -1


#: Cost model for experiment E8, in microseconds.  Values are representative
#: of the components involved (a kernel->userspace nfqueue round trip, a
#: cross-host TCP ident exchange, a conntrack hash lookup); the *shape* —
#: setup cost amortised to zero by the conntrack fast path — is the paper's
#: claim, not the absolute numbers.
COST_US = {
    "conntrack_fastpath_packets": 0.3,
    "rule_walks": 0.5,
    "nfqueue_decisions": 30.0,
    "ident_round_trips": 120.0,
    "ubf_cache_hits": 1.0,
    "ubf_full_decisions": 5.0,
}


def firewall_cost_us(metrics) -> float:
    """Total firewall-path cost implied by a run's counters."""
    report = metrics.report()
    return sum(report.get(k, 0) * v for k, v in COST_US.items())
