"""The User-Based Firewall daemon (paper Section IV-D + appendix).

Decision rule, verbatim from the appendix: "The ruleset implemented only
permits a connection when the connecting and listening processes are running
as the same user, or the connecting process is a member of the primary group
(egid) of the listening process."

Data path: the kernel's nfqueue hands the daemon each NEW connection to a
user port (≥1024).  The daemon then

1. runs the ident query *locally* to learn the listening process's uid/egid,
2. checks the decision cache keyed on (initiator uid, listener uid,
   listener egid) — a hit answers without any network traffic,
3. on a miss, sends the ident-like query to the *initiating* host to learn
   the connecting process's uid and groups (one RTT),
4. applies the same-user-or-egid-member rule,
5. returns ACCEPT/DROP to the kernel; ACCEPT flows are committed to
   conntrack by the firewall so later packets never reach the daemon.

The cache (an ablation knob for E8) keys on the packet's kernel-stamped
initiator uid — every cluster host runs the same root-administered system
image, so the stamp shares the trust basis of the ident answer it stands in
for.  A hit skips the ident RTT entirely; that is the whole point of the
cache, and the regression test pins it.  The cache is conservative —
listener egid changes are handled by keying on the egid *value*, so an
``sg`` to a new group produces a different key and a fresh (authoritative)
decision.  Packets arriving without a uid stamp always take the full path.

The cache is **bounded**: ``cache_capacity`` (None = unbounded) LRU-evicts
across every variant — the naive dict, the sharded cache, and the columnar
cache — with evictions counted under
``ubf_cache_evictions_total{reason=lru|ttl}``.  At millions of distinct
principal triples an unbounded decision cache is an OOM, not a cache.
``cache_ttl`` (logical decision ticks; the strict-zone posture sets it)
additionally expires entries at read time, bounding how long a revoked
group membership can keep serving a stale cached ACCEPT.

Degradation: when the initiating host (or its identd) cannot answer, the
remote query raises :class:`~repro.net.ident.IdentUnavailable`.  The daemon
retries with backoff (``ident_retries`` × ``ident_backoff_us``) and, if the
fault persists, issues a *degraded* verdict: DROP under the default
fail-closed policy, ACCEPT under ``fail_open=True`` (the availability-over-
separation ablation).  Degraded verdicts are never cached — they reflect a
fault, not an identity decision — and are counted under
``ubf_degraded_verdicts{policy=}`` so posture dashboards see them.

Crash/restart: ``crash()`` detaches the daemon from the nfqueue (the kernel
then fails closed for NEW connections — no handler means DROP) while
conntrack keeps established flows alive.  ``restart()`` rebinds the exact
handler that was detached (monitoring wrappers installed by
``instrument_cluster`` survive), flushes the decision cache (stale across a
restart) and re-syncs against the surviving conntrack table — no manual
flush is ever needed.

Scale-out hot path (E24): ``decide_batch`` takes a burst of queued packets
and **coalesces** ident queries — packets from the same remote (host, proto,
src-port), i.e. the same initiating process, park as waiters on a single
upstream exchange and all receive verdicts derived from its one reply
(savings counted under ``ident_coalesced``).  The decision cache is
**sharded** by an arithmetic hash of the (initiator uid, listener uid,
listener egid) key — stable across ``PYTHONHASHSEED`` — so one giant dict
never becomes the bottleneck, and the group rule consults a precomputed
per-egid **allow-set** derived from the account database (invalidated via
``UserDB.generation``), falling back to the ident reply's group snapshot
before ever dropping.  ``naive=True`` preserves the original sequential
per-packet path as the differential-testing reference; both paths produce
identical verdicts (property-tested fault-free — under faults, coalescing
legitimately consumes fewer identd attempts than per-packet retry loops).

Columnar hot path (E27): ``decide_columns`` takes a
:class:`~repro.net.ubf_columnar.FlowBatch` — preallocated parallel int
columns — and computes verdicts into its reusable bitmap via vectorized
passes: root short-circuit, same-uid compare, sorted-array allow-set
membership, and a batch probe of the flat open-addressed
:class:`~repro.net.ubf_columnar.ColumnarVerdictCache`.  Packets are only
consulted for rows that still need an ident exchange (same coalescing as
``decide_batch``).  The per-object paths remain the differential
references: the oracle's I2 shadow check re-derives every full decision,
and E27 asserts bit-identical verdicts across naive / batch / columnar.
The columnar path skips per-row ``UBFDecisionLog``/audit records — it is
the throughput plane; ``decide``/``decide_batch`` remain the audit-grade
paths and verdict counters stay exact on all three.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.kernel.errors import NoSuchEntity
from repro.kernel.users import UserDB
from repro.net.firewall import Packet, Verdict
from repro.net.ident import (
    IdentReply,
    IdentService,
    IdentUnavailable,
    remote_ident_query,
)
from repro.net.stack import Fabric, HostStack
from repro.net.ubf_columnar import (
    NO_ID,
    V_ACCEPT,
    V_DROP,
    V_MISS,
    ColumnarVerdictCache,
    FlowBatch,
    in_sorted,
)


class DecisionReason(enum.Enum):
    """Closed reason vocabulary for the ``ubf_verdicts_total`` metric label.

    The counter used to be labeled with the free-text reason string, and
    degraded verdicts embedded the fault message — every distinct fault
    minted a new counter series, unbounded label cardinality.  Metric
    labels now always come from this enum; the human-readable detail lives
    only in :class:`UBFDecisionLog`, span tags, and the audit trail.
    """

    NO_LISTENER = "no-listener"
    ROOT_SERVICE = "root-service"
    CACHED = "cached"
    ROOT_INITIATOR = "root-initiator"
    SAME_USER = "same-user"
    GROUP_MEMBER = "group-member"
    CROSS_USER = "cross-user"
    UNIDENTIFIABLE = "unidentifiable"
    DEGRADED = "degraded"
    #: the remote identd's answer contradicts the kernel-stamped uid on
    #: the packet — a forged/compromised responder; always a DROP
    IDENT_MISMATCH = "ident-mismatch"


class ShardedVerdictCache:
    """Decision cache split into shards by an arithmetic key hash.

    The shard function mixes the three small ints of the cache key with
    fixed primes instead of relying on ``hash()``, so shard assignment (and
    therefore iteration order, sizes, and any perf characteristics) is
    identical under every ``PYTHONHASHSEED`` — CI runs two seeds to enforce
    exactly this kind of determinism.

    Bounded: ``capacity`` (None = unbounded) is split evenly across shards
    and each shard LRU-evicts independently (its dict doubles as the LRU
    list via move-to-end).  ``ttl`` (logical ticks, None = never) expires
    entries at read time.  Both eviction kinds are counted under
    ``ubf_cache_evictions_total{reason=}`` when *metrics* is attached.
    """

    def __init__(self, shards: int = 8, capacity: int | None = None,
                 metrics=None, ttl: int | None = None):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.n = shards
        self.capacity = capacity
        self.metrics = metrics
        self.ttl = ttl
        self.evictions = 0
        self._shards: list[
            OrderedDict[tuple[int, int, int], tuple[Verdict, int]]] = [
            OrderedDict() for _ in range(shards)
        ]

    def _shard(self, key: tuple[int, int, int]) -> OrderedDict:
        a, b, c = key
        return self._shards[(a * 1_000_003 + b * 8_191 + c) % self.n]

    def _count_eviction(self, reason: str) -> None:
        self.evictions += 1
        if self.metrics is not None:
            self.metrics.counter("ubf_cache_evictions_total",
                                 reason=reason).inc()

    def get(self, key: tuple[int, int, int], now: int = 0) -> Verdict | None:
        shard = self._shard(key)
        entry = shard.get(key)
        if entry is None:
            return None
        verdict, stamp = entry
        if self.ttl is not None and now - stamp > self.ttl:
            del shard[key]
            self._count_eviction("ttl")
            return None
        shard.move_to_end(key)  # LRU touch
        return verdict

    def put(self, key: tuple[int, int, int], verdict: Verdict,
            now: int = 0) -> None:
        shard = self._shard(key)
        if self.capacity is not None and key not in shard:
            bound = max(1, self.capacity // self.n)
            while len(shard) >= bound:
                shard.popitem(last=False)
                self._count_eviction("lru")
        shard[key] = (verdict, now)
        shard.move_to_end(key)

    def pop(self, key: tuple[int, int, int]) -> Verdict | None:
        """Remove and return *key*'s verdict (None if absent)."""
        entry = self._shard(key).pop(key, None)
        return None if entry is None else entry[0]

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(s) for s in self._shards]


@dataclass
class UBFDecisionLog:
    """One decision, for audit trails and tests."""

    flow: str
    initiator_uid: int | None
    listener_uid: int | None
    listener_egid: int | None
    verdict: Verdict
    reason: str


@dataclass
class UBFDaemon:
    """Userspace decision daemon bound to one host's nfqueue."""

    stack: HostStack
    fabric: Fabric
    userdb: UserDB
    cache_enabled: bool = True
    #: degraded-mode policy: ACCEPT (True) or DROP (False) when the
    #: initiator's identity cannot be learned due to an infrastructure fault.
    #: The paper's separation-first posture defaults to fail-closed.
    fail_open: bool = False
    #: extra ident attempts after the first failure, each preceded by a
    #: simulated exponential backoff (ident_backoff_us * 2^attempt).
    ident_retries: int = 2
    ident_backoff_us: float = 200.0
    #: optional span source (repro.obs.trace.Tracer); None = no tracing cost
    tracer: object | None = None
    #: separation oracle (repro.oracle); None = zero-cost hooks
    oracle: object | None = field(default=None, repr=False)
    #: forensic audit trail (repro.obs.audit); when set, clean ACCEPT
    #: verdicts are recorded with causal attribution (denies reach the
    #: trail through the security-event stream).  None = zero cost.
    audit: object | None = field(default=None, repr=False)
    #: original sequential/unsharded reference path for differential testing.
    naive: bool = False
    cache_shards: int = 8
    #: decision-cache entry bound shared by all cache variants; None =
    #: unbounded (the columnar cache falls back to its own default bound)
    cache_capacity: int | None = 65_536
    #: max cached-verdict age in decision ticks; None = no expiry.  Set by
    #: the strict zone posture (repro.net.zones), uniform across variants
    #: so differential verdict identity holds.
    cache_ttl: int | None = None
    #: data-sensitivity posture label applied by repro.net.zones
    tier: str = "standard"
    log: list[UBFDecisionLog] = field(default_factory=list)
    alive: bool = True
    _cache: OrderedDict[tuple[int, int, int], tuple[Verdict, int]] = field(
        default_factory=OrderedDict)
    _sharded: ShardedVerdictCache | None = field(default=None, repr=False)
    #: columnar decision cache, created lazily on the first decide_columns
    #: call (a 4096-node sim must not pay ~2 MB of arrays per idle daemon)
    _columnar: ColumnarVerdictCache | None = field(default=None, repr=False)
    #: initiating host -> cache keys its flows created, so a dead host's
    #: cached identity decisions can be purged without a full flush
    _keys_by_host: dict[str, set[tuple[int, int, int]]] = field(
        default_factory=dict, repr=False)
    _allow_sets: dict[int, frozenset[int]] = field(default_factory=dict,
                                                   repr=False)
    #: sorted int64 mirrors of _allow_sets for vectorized membership
    _allow_arrays: dict[int, np.ndarray] = field(default_factory=dict,
                                                 repr=False)
    _allow_gen: int = field(default=-1, repr=False)
    #: logical decision clock: one tick per decided flow (cache TTL unit)
    _tick: int = field(default=0, repr=False)
    #: account-database generation the decision caches were filled under;
    #: a mismatch at decide time flushes them (see _revalidate_generation)
    _cache_gen: int = field(default=-1, repr=False)
    _crashed_handler: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._sharded is None:
            self._sharded = ShardedVerdictCache(
                self.cache_shards, capacity=self.cache_capacity,
                metrics=self.fabric.metrics, ttl=self.cache_ttl)

    def install(self) -> "UBFDaemon":
        self.stack.firewall.bind_nfqueue(self.decide)
        self.stack.firewall.bind_nfqueue_batch(self.decide_batch)
        return self

    def apply_cache_posture(self) -> None:
        """Propagate ``cache_capacity``/``cache_ttl`` to the live cache
        objects; called by zone-tier application after mutating the knobs."""
        self._sharded.capacity = self.cache_capacity
        self._sharded.ttl = self.cache_ttl
        if self._columnar is not None:
            self._columnar.ttl = self.cache_ttl

    # -- lifecycle --------------------------------------------------------------

    def crash(self) -> None:
        """The daemon process dies: the nfqueue loses its handler.

        From the kernel's point of view this is the fail-safe posture the
        design promises — NEW connections to user ports now DROP (nobody to
        ask), while conntrack-established flows keep flowing untouched.
        """
        if not self.alive:
            return
        self._crashed_handler = self.stack.firewall.unbind_nfqueue()
        self.alive = False
        self.fabric.metrics.counter("ubf_crashes").inc()

    def restart(self) -> None:
        """Restart after a crash: rebind, flush the cache, re-sync.

        Rebinds the *same* handler that was detached, so any monitoring
        wrapper installed around ``decide`` survives the bounce.  The
        decision cache is dropped (identity state from before the crash is
        stale); the conntrack table is *kept* — established flows never
        noticed the outage and need no manual flush.
        """
        if self.alive:
            return
        handler = self._crashed_handler or self.decide
        self._crashed_handler = None
        self.stack.firewall.bind_nfqueue(handler)
        self.stack.firewall.bind_nfqueue_batch(self.decide_batch)
        self.resync(reason="restart")
        self.alive = True
        self.fabric.metrics.counter("ubf_restarts").inc()
        self.fabric.metrics.gauge("ubf_resync_flows").set(
            len(self.stack.firewall.conntrack))

    def resync(self, *, reason: str) -> int:
        """Drop every cached verdict and pin caches to the *current*
        account-database generation; returns the number purged.

        ``flush_cache`` alone leaves the generation markers at ``-1``,
        deferring the re-pin to the next decide's revalidation — which is
        correct only if the generation moved.  After a control-plane
        recovery the replayed database lands numerically *equal* to the
        pre-crash generation, so an un-resynced daemon (standard,
        sharded, and columnar caches alike) would pass the equality check
        and keep serving pre-crash verdicts.  Recovery bumps the
        generation past every value any daemon ever saw and then calls
        this on each one.
        """
        purged = len(self._cache) + len(self._sharded)
        if self._columnar is not None:
            purged += len(self._columnar)
        self.flush_cache()
        gen = self.userdb.generation
        self._cache_gen = gen
        self._allow_gen = gen  # allow-sets refill lazily per egid
        if purged:
            self.fabric.metrics.counter(
                "ubf_cache_purged_total", reason=reason).inc(purged)
        self.fabric.metrics.counter("ubf_resyncs_total",
                                    reason=reason).inc()
        return purged

    # -- decision ---------------------------------------------------------------

    def decide(self, pkt: Packet) -> Verdict:
        if self.tracer is None:
            return self._decide(pkt)
        span = self.tracer.start_span(
            "ubf.decide", host=self.stack.hostname,
            src=f"{pkt.flow.src_host}:{pkt.flow.src_port}",
            dst=f"{pkt.flow.dst_host}:{pkt.flow.dst_port}")
        try:
            verdict = self._decide(pkt)
        except Exception as exc:
            # The span must finish even when the decision path blows up,
            # or the tracer leaks an open span per failed decision.
            self.tracer.finish(span, status="error",
                               error=type(exc).__name__)
            raise
        self.tracer.finish(span, verdict=verdict.value,
                           reason=self.log[-1].reason if self.log else "")
        return verdict

    def _decide(self, pkt: Packet) -> Verdict:
        verdict, listener = self._pre_decide(pkt, IdentService(self.stack))
        if verdict is not None:
            return verdict
        try:
            initiator = self._remote_ident(pkt.flow)
        except IdentUnavailable as exc:
            return self._degraded(pkt, listener, exc)
        return self._conclude(pkt, listener, initiator)

    # -- decision cache (naive-path storage with the shared bound/TTL) ----------

    def _cache_get(self, key: tuple[int, int, int]) -> Verdict | None:
        if self.naive:
            entry = self._cache.get(key)
            if entry is None:
                return None
            verdict, stamp = entry
            if self.cache_ttl is not None and self._tick - stamp > self.cache_ttl:
                del self._cache[key]
                self._count_cache_eviction("ttl")
                return None
            self._cache.move_to_end(key)
            return verdict
        return self._sharded.get(key, now=self._tick)

    def _cache_put(self, key: tuple[int, int, int], verdict: Verdict) -> None:
        if self.naive:
            if self.cache_capacity is not None and key not in self._cache:
                while len(self._cache) >= self.cache_capacity:
                    self._cache.popitem(last=False)
                    self._count_cache_eviction("lru")
            self._cache[key] = (verdict, self._tick)
            self._cache.move_to_end(key)
        else:
            self._sharded.put(key, verdict, now=self._tick)

    def _count_cache_eviction(self, reason: str) -> None:
        self.fabric.metrics.counter("ubf_cache_evictions_total",
                                    reason=reason).inc()

    def _revalidate_generation(self) -> None:
        """Flush cached verdicts minted under an older account database.

        The allow-sets behind *full* decisions are generation-invalidated,
        but a cached verdict is a frozen conclusion: without this check a
        uid removed from a project group keeps replaying its pre-revocation
        cross-user ACCEPT out of the decision cache for as long as the
        entry lives (indefinitely in the standard tier, which has no TTL).
        One integer compare per decide call; on a generation change every
        decision-cache variant is dropped and the purge is counted under
        ``ubf_cache_purged_total{reason="membership-change"}``.
        """
        gen = self.userdb.generation
        if gen == self._cache_gen:
            return
        purged = len(self._cache) + len(self._sharded)
        if self._columnar is not None:
            purged += len(self._columnar)
        self._cache.clear()
        self._sharded.clear()
        if self._columnar is not None:
            self._columnar.clear()
        self._keys_by_host.clear()
        self._cache_gen = gen
        if purged:
            self.fabric.metrics.counter(
                "ubf_cache_purged_total",
                reason="membership-change").inc(purged)

    def _pre_decide(self, pkt: Packet, local_ident: IdentService
                    ) -> tuple[Verdict | None, IdentReply | None]:
        """The pre-ident phase: listener lookup + cache/root short-circuits.

        Returns ``(verdict, listener)``; ``verdict is None`` means the
        packet needs a remote ident exchange before it can be concluded.
        """
        if self.cache_enabled:
            self._revalidate_generation()
        self._tick += 1
        flow = pkt.flow
        listener = local_ident.query_local(flow.proto, flow.dst_port)
        if listener is None:
            # nothing listening; let the stack produce ECONNREFUSED rather
            # than leaking whether the port is filtered
            return self._log(pkt, None, None, None, Verdict.ACCEPT,
                             "no listener (refusal handled by stack)",
                             DecisionReason.NO_LISTENER), None
        if listener.uid == 0:
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.ACCEPT, "root-owned service",
                             DecisionReason.ROOT_SERVICE), listener
        # Cache first: a hit answers from the kernel-stamped initiator uid
        # without touching the network.  (The stamp is trusted for the same
        # reason the ident answer is — same root-administered system image.)
        if self.cache_enabled and pkt.src_uid is not None:
            key = (pkt.src_uid, listener.uid, listener.egid)
            cached = self._cache_get(key)
            if cached is not None:
                self.fabric.metrics.counter("ubf_cache_hits").inc()
                if self.oracle is not None:
                    self.oracle.check_ubf_cached(self, key, cached)
                return self._log(pkt, pkt.src_uid, listener.uid,
                                 listener.egid, cached, "cached",
                                 DecisionReason.CACHED), listener
        return None, listener

    def _conclude(self, pkt: Packet, listener: IdentReply,
                  initiator: IdentReply | None) -> Verdict:
        """The post-ident phase: rule, cache store, full-decision metrics."""
        if initiator is None:
            if self.oracle is not None:
                self.oracle.check_ubf_conclude(self, pkt, listener, None,
                                               Verdict.DROP)
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.DROP, "initiator unidentifiable",
                             DecisionReason.UNIDENTIFIABLE)
        if pkt.src_uid is not None and initiator.uid != pkt.src_uid:
            # "…and the same query run locally": the kernel-stamped uid on
            # the packet is the local half of the paper's double check.  A
            # responder whose answer contradicts it is forged or
            # compromised — the claimed identity is worthless, so the flow
            # is treated as unidentifiable (never cached, always DROP).
            self.fabric.metrics.counter("ubf_ident_mismatches").inc()
            if self.oracle is not None:
                self.oracle.check_ubf_conclude(self, pkt, listener, None,
                                               Verdict.DROP)
            return self._log(
                pkt, None, listener.uid, listener.egid, Verdict.DROP,
                f"ident reply uid {initiator.uid} contradicts "
                f"kernel-stamped uid {pkt.src_uid}",
                DecisionReason.IDENT_MISMATCH)
        rule = self._rule if self.naive else self._rule_indexed
        verdict, reason, code = rule(initiator.uid, initiator.groups,
                                     listener.uid, listener.egid)
        if self.oracle is not None:
            self.oracle.check_ubf_conclude(self, pkt, listener, initiator,
                                           verdict)
        if self.cache_enabled:
            key = (initiator.uid, listener.uid, listener.egid)
            self._cache_put(key, verdict)
            self._keys_by_host.setdefault(pkt.flow.src_host, set()).add(key)
        self.fabric.metrics.counter("ubf_full_decisions").inc()
        return self._log(pkt, initiator.uid, listener.uid, listener.egid,
                         verdict, reason, code)

    def decide_batch(self, pkts: list[Packet]) -> list[Verdict]:
        """Decide a burst of simultaneously queued packets, coalescing
        ident queries.

        All packets go through the pre-ident phase first (a burst arrives
        together, so none can hit a cache entry another member is about to
        create); misses are then grouped by the initiating *process* —
        ``(src_host, proto, src_port)`` — and each group performs exactly
        one upstream ident exchange whose answer (or failure) concludes
        every waiter.  ``ident_coalesced`` counts the queries saved.

        When a tracer is attached the whole burst is one ``ubf.decide_batch``
        span with a child ``ubf.ident_group`` span per coalesced exchange —
        previously the batch path bypassed ``decide()``'s span entirely and
        coalesced decisions were invisible to traces and the flight
        recorder.
        """
        pkts = list(pkts)
        if self.naive:
            return [self.decide(p) for p in pkts]
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span("ubf.decide_batch",
                                          host=self.stack.hostname,
                                          n=len(pkts))
        try:
            results = self._decide_batch(pkts, span)
        except Exception as exc:
            if span is not None:
                self.tracer.finish(span, status="error",
                                   error=type(exc).__name__)
            raise
        if span is not None:
            drops = sum(1 for v in results if v is Verdict.DROP)
            self.tracer.finish(span, accepts=len(results) - drops,
                               drops=drops)
        return results

    def _decide_batch(self, pkts: list[Packet],
                      span: object | None) -> list[Verdict]:
        local_ident = IdentService(self.stack)
        results: list[Verdict | None] = [None] * len(pkts)
        waiters: dict[tuple, list[tuple[int, IdentReply]]] = {}
        for i, pkt in enumerate(pkts):
            verdict, listener = self._pre_decide(pkt, local_ident)
            if verdict is not None:
                results[i] = verdict
                continue
            flow = pkt.flow
            waiters.setdefault((flow.src_host, flow.proto, flow.src_port),
                               []).append((i, listener))
        coalesced = self.fabric.metrics.counter("ident_coalesced")
        for gkey, parked in waiters.items():
            if len(parked) > 1:
                coalesced.inc(len(parked) - 1)
            child = None
            if span is not None:
                child = self.tracer.start_span(
                    "ubf.ident_group", parent=span,
                    src=f"{gkey[0]}:{gkey[2]}", proto=gkey[1].value,
                    waiters=len(parked))
            try:
                initiator = self._remote_ident(pkts[parked[0][0]].flow)
            except IdentUnavailable as exc:
                for i, listener in parked:
                    results[i] = self._degraded(pkts[i], listener, exc)
                if child is not None:
                    self.tracer.finish(child, status="degraded",
                                       error=type(exc).__name__)
                continue
            for i, listener in parked:
                results[i] = self._conclude(pkts[i], listener, initiator)
            if child is not None:
                self.tracer.finish(
                    child,
                    status="ok" if initiator is not None else "unidentifiable",
                    uid=initiator.uid if initiator is not None else -1)
        return results

    # -- columnar hot path (E27) ------------------------------------------------

    def columns_from_packets(self, pkts: list[Packet],
                             batch: FlowBatch | None = None) -> FlowBatch:
        """Fill a :class:`FlowBatch` from packets, resolving each distinct
        (proto, dst-port) listener exactly once.

        The translation itself is per-object Python — callers on the true
        hot path keep long-lived column arrays and skip it; this is the
        convenience bridge (and what the benchmark uses to prepare its
        packet pool once, outside the timed region).
        """
        n = len(pkts)
        if batch is None:
            batch = FlowBatch(max(1, n))
        elif n > batch.capacity:
            raise ValueError(f"batch of {n} exceeds capacity {batch.capacity}")
        batch.reset()
        local_ident = IdentService(self.stack)
        listeners: dict[tuple, tuple[int, int]] = {}
        su, lu = batch.src_uid, batch.listener_uid
        lg, fl = batch.listener_egid, batch.flow_id
        for i, pkt in enumerate(pkts):
            flow = pkt.flow
            port_key = (flow.proto, flow.dst_port)
            ids = listeners.get(port_key)
            if ids is None:
                reply = local_ident.query_local(*port_key)
                ids = (NO_ID, NO_ID) if reply is None else (reply.uid,
                                                            reply.egid)
                listeners[port_key] = ids
            lu[i], lg[i] = ids
            su[i] = NO_ID if pkt.src_uid is None else pkt.src_uid
            fl[i] = i
        batch.n = n
        batch.verdict[:n] = V_MISS
        return batch

    def decide_columns(self, batch: FlowBatch,
                       pkts: list[Packet] | None = None) -> np.ndarray:
        """Vectorized burst decision into the batch's verdict bitmap.

        Passes, in order: no-listener and root-listener short-circuits,
        columnar cache probe (stamped rows), then — only for rows still
        undecided — per-process ident coalescing identical to
        ``decide_batch`` followed by vectorized rule evaluation (root
        initiator, same-uid, sorted allow-set membership, snapshot
        fallback).  *pkts* is required only if some rows need the ident
        exchange; a fully cached/short-circuited batch never touches it.

        Returns the decided slice of the bitmap (``V_ACCEPT``/``V_DROP``).
        Metric counters are exact (bulk-incremented per closed reason);
        per-row decision-log/audit records are intentionally skipped.
        """
        n = batch.n
        out = batch.verdict[:n]
        if n == 0:
            return out
        metrics = self.fabric.metrics
        if self.cache_enabled:
            self._revalidate_generation()
        if self._columnar is None:
            self._columnar = ColumnarVerdictCache(
                self.cache_capacity if self.cache_capacity is not None
                else 1 << 20,
                metrics=metrics, ttl=self.cache_ttl)
        now = self._tick + n
        self._tick = now
        su = batch.src_uid[:n]
        lu = batch.listener_uid[:n]
        lg = batch.listener_egid[:n]
        out.fill(V_MISS)
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span("ubf.decide_columns",
                                          host=self.stack.hostname, n=n)
        try:
            counts = self._decide_columns(batch, pkts, out, su, lu, lg,
                                          now, span)
        except Exception as exc:
            if span is not None:
                self.tracer.finish(span, status="error",
                                   error=type(exc).__name__)
            raise
        drops = int((out == V_DROP).sum())
        if drops:
            metrics.counter("ubf_denials").inc(drops)
        for (verdict, code), cnt in counts.items():
            if cnt:
                metrics.counter("ubf_verdicts_total", verdict=verdict,
                                reason=code.value).inc(cnt)
        if span is not None:
            self.tracer.finish(
                span, accepts=n - drops, drops=drops,
                cache_hits=counts.get(("accept", DecisionReason.CACHED), 0)
                + counts.get(("drop", DecisionReason.CACHED), 0))
        return out

    def _decide_columns(self, batch: FlowBatch, pkts, out, su, lu, lg,
                        now: int, span) -> dict:
        metrics = self.fabric.metrics
        counts: dict[tuple[str, DecisionReason], int] = {}

        def count(verdict: str, code: DecisionReason, n: int) -> None:
            if n:
                counts[(verdict, code)] = counts.get((verdict, code), 0) + n

        # pass 1: short-circuits that need no identity at all
        no_listener = lu < 0
        out[no_listener] = V_ACCEPT
        count("accept", DecisionReason.NO_LISTENER, int(no_listener.sum()))
        root_service = lu == 0
        out[root_service] = V_ACCEPT
        count("accept", DecisionReason.ROOT_SERVICE, int(root_service.sum()))

        # pass 2: columnar cache probe for rows with a kernel uid stamp
        if self.cache_enabled:
            rows = np.nonzero((out == V_MISS) & (su >= 0))[0]
            if rows.size:
                got = self._columnar.lookup(su[rows], lu[rows], lg[rows],
                                            now)
                hit = got != V_MISS
                hrows = rows[hit]
                if hrows.size:
                    out[hrows] = got[hit]
                    metrics.counter("ubf_cache_hits").inc(int(hrows.size))
                    n_acc = int((got[hit] == V_ACCEPT).sum())
                    count("accept", DecisionReason.CACHED, n_acc)
                    count("drop", DecisionReason.CACHED,
                          int(hrows.size) - n_acc)
                    if self.oracle is not None:
                        for r in hrows:
                            self.oracle.check_ubf_cached(
                                self,
                                (int(su[r]), int(lu[r]), int(lg[r])),
                                Verdict.ACCEPT if out[r] == V_ACCEPT
                                else Verdict.DROP)

        pending = np.nonzero(out == V_MISS)[0]
        if pending.size == 0:
            return counts
        if pkts is None:
            raise ValueError("decide_columns needs pkts for rows that "
                             "require an ident exchange")

        # pass 3: coalesce the remaining rows per initiating process and
        # run the ident exchanges (same grouping as decide_batch)
        waiters: dict[tuple, list[int]] = {}
        for r in pending:
            flow = pkts[r].flow
            waiters.setdefault((flow.src_host, flow.proto, flow.src_port),
                               []).append(int(r))
        coalesced = metrics.counter("ident_coalesced")
        id_rows: list[int] = []
        id_uid: list[int] = []
        id_reply: list[IdentReply] = []
        degraded_policy = "fail-open" if self.fail_open else "fail-closed"
        degraded_bit = V_ACCEPT if self.fail_open else V_DROP
        degraded_verdict = Verdict.ACCEPT if self.fail_open else Verdict.DROP
        n_degraded = n_unident = n_mismatch = 0
        for gkey, parked in waiters.items():
            if len(parked) > 1:
                coalesced.inc(len(parked) - 1)
            child = None
            if span is not None:
                child = self.tracer.start_span(
                    "ubf.ident_group", parent=span,
                    src=f"{gkey[0]}:{gkey[2]}", proto=gkey[1].value,
                    waiters=len(parked))
            try:
                initiator = self._remote_ident(pkts[parked[0]].flow)
            except IdentUnavailable as exc:
                for r in parked:
                    out[r] = degraded_bit
                    if self.oracle is not None:
                        self.oracle.check_ubf_degraded(self, degraded_verdict)
                n_degraded += len(parked)
                metrics.counter("ubf_degraded_verdicts",
                                policy=degraded_policy).inc(len(parked))
                if child is not None:
                    self.tracer.finish(child, status="degraded",
                                       error=type(exc).__name__)
                continue
            if initiator is None:
                for r in parked:
                    out[r] = V_DROP
                    if self.oracle is not None:
                        self.oracle.check_ubf_conclude(
                            self, pkts[r], self._listener_reply(lu, lg, r),
                            None, Verdict.DROP)
                n_unident += len(parked)
                if child is not None:
                    self.tracer.finish(child, status="unidentifiable",
                                       uid=-1)
                continue
            for r in parked:
                # local half of the paper's double check, same as
                # _conclude: a reply contradicting the kernel-stamped uid
                # is forged — treat the row as unidentifiable (DROP)
                if su[r] != NO_ID and initiator.uid != int(su[r]):
                    out[r] = V_DROP
                    n_mismatch += 1
                    if self.oracle is not None:
                        self.oracle.check_ubf_conclude(
                            self, pkts[r], self._listener_reply(lu, lg, r),
                            None, Verdict.DROP)
                    continue
                id_rows.append(r)
                id_uid.append(initiator.uid)
                id_reply.append(initiator)
            if child is not None:
                self.tracer.finish(child, status="ok", uid=initiator.uid)
        count(degraded_verdict.value, DecisionReason.DEGRADED, n_degraded)
        count("drop", DecisionReason.UNIDENTIFIABLE, n_unident)
        count("drop", DecisionReason.IDENT_MISMATCH, n_mismatch)
        if n_mismatch:
            metrics.counter("ubf_ident_mismatches").inc(n_mismatch)
        if not id_rows:
            return counts

        # pass 4: vectorized rule over the identified rows
        rows = np.asarray(id_rows, dtype=np.intp)
        iu = np.asarray(id_uid, dtype=np.int64)
        rlu = lu[rows]
        rlg = lg[rows]
        acc_root = iu == 0
        acc_same = (~acc_root) & (iu == rlu)
        grp = np.zeros(rows.size, dtype=bool)
        undecided = np.nonzero(~(acc_root | acc_same))[0]
        if undecided.size:
            for egid in np.unique(rlg[undecided]):
                members = self._egid_members_sorted(int(egid))
                sel = undecided[rlg[undecided] == egid]
                if members.size:
                    grp[sel] = in_sorted(iu[sel], members)
            # credential-snapshot fallback, same contract as _rule_indexed:
            # no connection the naive rule accepts is ever refused
            fallbacks = metrics.counter("ubf_allowset_fallbacks")
            for j in undecided[~grp[undecided]]:
                if int(rlg[j]) in id_reply[j].groups:
                    grp[j] = True
                    fallbacks.inc()
        accept = acc_root | acc_same | grp
        out[rows[accept]] = V_ACCEPT
        out[rows[~accept]] = V_DROP
        count("accept", DecisionReason.ROOT_INITIATOR, int(acc_root.sum()))
        count("accept", DecisionReason.SAME_USER, int(acc_same.sum()))
        count("accept", DecisionReason.GROUP_MEMBER, int(grp.sum()))
        count("drop", DecisionReason.CROSS_USER, int((~accept).sum()))
        metrics.counter("ubf_full_decisions").inc(int(rows.size))
        if self.cache_enabled:
            cache = self._columnar
            keys_by_host = self._keys_by_host
            for j in range(rows.size):
                r = int(rows[j])
                key = (int(iu[j]), int(rlu[j]), int(rlg[j]))
                cache.insert(key[0], key[1], key[2],
                             V_ACCEPT if accept[j] else V_DROP, now)
                keys_by_host.setdefault(pkts[r].flow.src_host,
                                        set()).add(key)
        if self.oracle is not None:
            self.oracle.check_ubf_batch(
                self,
                ((pkts[int(rows[j])],
                  self._listener_reply(lu, lg, int(rows[j])),
                  id_reply[j],
                  Verdict.ACCEPT if accept[j] else Verdict.DROP)
                 for j in range(rows.size)))
        return counts

    @staticmethod
    def _listener_reply(lu: np.ndarray, lg: np.ndarray, r: int) -> IdentReply:
        """Reconstitute a listener IdentReply from columns (oracle hooks)."""
        return IdentReply(uid=int(lu[r]), egid=int(lg[r]),
                          groups=frozenset((int(lg[r]),)))

    def _remote_ident(self, flow) -> IdentReply | None:
        """One authoritative ident exchange, with retry + backoff.

        :class:`IdentUnavailable` (identd down/slow, host partitioned) is
        retried ``ident_retries`` times with exponential backoff; an unknown
        peer host is converted to the same fault without retries (it cannot
        get better by waiting).  The *final* failure propagates to the
        degraded-verdict path.
        """
        attempts = 1 + max(0, self.ident_retries)
        for attempt in range(attempts):
            try:
                return remote_ident_query(self.fabric, self.stack.hostname,
                                          flow.src_host, flow.proto,
                                          flow.src_port)
            except NoSuchEntity as exc:
                raise IdentUnavailable(
                    f"peer host {flow.src_host!r} unknown") from exc
            except IdentUnavailable:
                self.fabric.metrics.counter("ubf_ident_timeouts").inc()
                if attempt + 1 >= attempts:
                    raise
                self.fabric.metrics.counter("ubf_ident_retries").inc()
                self.fabric.metrics.samples("ubf_ident_backoff_us").add(
                    self.ident_backoff_us * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _degraded(self, pkt: Packet, listener: IdentReply,
                  exc: IdentUnavailable) -> Verdict:
        """Identity unavailable after retries: apply the degradation policy.

        Never cached — a degraded verdict reflects an infrastructure fault,
        not an identity decision, and must not outlive the fault.  The
        metric reason label is the closed ``degraded`` code; the fault
        detail stays in the decision log only.
        """
        policy = "fail-open" if self.fail_open else "fail-closed"
        verdict = Verdict.ACCEPT if self.fail_open else Verdict.DROP
        if self.oracle is not None:
            self.oracle.check_ubf_degraded(self, verdict)
        self.fabric.metrics.counter("ubf_degraded_verdicts",
                                    policy=policy).inc()
        return self._log(pkt, None, listener.uid, listener.egid, verdict,
                         f"degraded: {exc} ({policy})",
                         DecisionReason.DEGRADED)

    def _rule(self, init_uid: int, init_groups: frozenset[int],
              listen_uid: int, listen_egid: int
              ) -> tuple[Verdict, str, DecisionReason]:
        """The appendix rule: same user, or connector ∈ listener's egid."""
        if init_uid == 0:
            return (Verdict.ACCEPT, "root initiator",
                    DecisionReason.ROOT_INITIATOR)
        if init_uid == listen_uid:
            return Verdict.ACCEPT, "same user", DecisionReason.SAME_USER
        if listen_egid in init_groups:
            return (Verdict.ACCEPT, "initiator in listener's primary group",
                    DecisionReason.GROUP_MEMBER)
        return (Verdict.DROP, "cross-user connection denied",
                DecisionReason.CROSS_USER)

    def _rule_indexed(self, init_uid: int, init_groups: frozenset[int],
                      listen_uid: int, listen_egid: int
                      ) -> tuple[Verdict, str, DecisionReason]:
        """Same rule, group check against the precomputed per-egid allow-set.

        The allow-set reflects the live account database; an initiator whose
        credential snapshot carries the egid but whom the database no longer
        (or never — ``with_extra_group``) lists falls back to the snapshot
        check before a DROP, so no connection the naive rule accepts is ever
        refused (``ubf_allowset_fallbacks`` counts how often that saves one).
        """
        if init_uid == 0:
            return (Verdict.ACCEPT, "root initiator",
                    DecisionReason.ROOT_INITIATOR)
        if init_uid == listen_uid:
            return Verdict.ACCEPT, "same user", DecisionReason.SAME_USER
        if init_uid in self._egid_members(listen_egid):
            return (Verdict.ACCEPT, "initiator in listener's primary group",
                    DecisionReason.GROUP_MEMBER)
        if listen_egid in init_groups:
            self.fabric.metrics.counter("ubf_allowset_fallbacks").inc()
            return (Verdict.ACCEPT, "initiator in listener's primary group",
                    DecisionReason.GROUP_MEMBER)
        return (Verdict.DROP, "cross-user connection denied",
                DecisionReason.CROSS_USER)

    def _egid_members(self, egid: int) -> frozenset[int]:
        """Allow-set for one listener egid, cached until the account
        database's generation moves (any membership mutation invalidates)."""
        if self._allow_gen != self.userdb.generation:
            self._allow_sets.clear()
            self._allow_arrays.clear()
            self._allow_gen = self.userdb.generation
        members = self._allow_sets.get(egid)
        if members is None:
            try:
                members = frozenset(self.userdb.group(egid).members)
            except NoSuchEntity:
                members = frozenset()
            self._allow_sets[egid] = members
        return members

    def _egid_members_sorted(self, egid: int) -> np.ndarray:
        """The same allow-set as a sorted int64 array, for ``in_sorted``
        membership over whole uid columns; shares the generation
        invalidation of :meth:`_egid_members`."""
        if self._allow_gen != self.userdb.generation:
            self._allow_sets.clear()
            self._allow_arrays.clear()
            self._allow_gen = self.userdb.generation
        arr = self._allow_arrays.get(egid)
        if arr is None:
            members = self._egid_members(egid)
            arr = np.fromiter(members, dtype=np.int64, count=len(members))
            arr.sort()
            self._allow_arrays[egid] = arr
        return arr

    def _log(self, pkt: Packet, iu, lu, lg, verdict: Verdict,
             reason: str, code: DecisionReason) -> Verdict:
        self.log.append(UBFDecisionLog(
            flow=(f"{pkt.flow.proto.value} {pkt.flow.src_host}:"
                  f"{pkt.flow.src_port}->{pkt.flow.dst_host}:{pkt.flow.dst_port}"),
            initiator_uid=iu, listener_uid=lu, listener_egid=lg,
            verdict=verdict, reason=reason))
        self.fabric.metrics.counter("ubf_verdicts_total",
                                    verdict=verdict.value,
                                    reason=code.value).inc()
        if verdict is Verdict.DROP:
            self.fabric.metrics.counter("ubf_denials").inc()
        elif self.audit is not None and iu is not None:
            self.audit.ubf_verdict(
                uid=iu, node=pkt.flow.src_host,
                target=f"{pkt.flow.dst_host}:{pkt.flow.dst_port}",
                verdict=verdict.value, reason=reason)
        return verdict

    def purge_host(self, host: str) -> int:
        """Drop every cached verdict whose deciding flow came from *host*.

        Called when a peer host's crash/partition persists past the health
        monitor's TTL: identity decisions derived from that host's ident
        answers must not outlive it (whatever next answers to its name gets
        a fresh authoritative decision).  A key shared with another live
        host's flows is dropped too — conservatively forcing a re-decision,
        never widening access.  Returns the number of entries purged.
        """
        keys = self._keys_by_host.pop(host, None)
        if not keys:
            return 0
        purged = 0
        for key in keys:
            hit = self._cache.pop(key, None) is not None
            if self._sharded.pop(key) is not None:
                hit = True
            if (self._columnar is not None
                    and self._columnar.pop(*key) is not None):
                hit = True
            if hit:
                purged += 1
        if purged:
            self.fabric.metrics.counter(
                "ubf_cache_purged_total", reason="dead-host").inc(purged)
        return purged

    def flush_cache(self) -> None:
        self._cache.clear()
        self._sharded.clear()
        if self._columnar is not None:
            self._columnar.clear()
        self._keys_by_host.clear()
        self._allow_sets.clear()
        self._allow_arrays.clear()
        self._allow_gen = -1
        self._cache_gen = -1


#: Cost model for experiment E8, in microseconds.  Values are representative
#: of the components involved (a kernel->userspace nfqueue round trip, a
#: cross-host TCP ident exchange, a conntrack hash lookup); the *shape* —
#: setup cost amortised to zero by the conntrack fast path — is the paper's
#: claim, not the absolute numbers.
COST_US = {
    "conntrack_fastpath_packets": 0.3,
    "rule_walks": 0.5,
    "nfqueue_decisions": 30.0,
    "ident_round_trips": 120.0,
    "ubf_cache_hits": 1.0,
    "ubf_full_decisions": 5.0,
}


def firewall_cost_us(metrics) -> float:
    """Total firewall-path cost implied by a run's counters."""
    report = metrics.report()
    return sum(report.get(k, 0) * v for k, v in COST_US.items())
