"""The User-Based Firewall daemon (paper Section IV-D + appendix).

Decision rule, verbatim from the appendix: "The ruleset implemented only
permits a connection when the connecting and listening processes are running
as the same user, or the connecting process is a member of the primary group
(egid) of the listening process."

Data path: the kernel's nfqueue hands the daemon each NEW connection to a
user port (≥1024).  The daemon then

1. runs the ident query *locally* to learn the listening process's uid/egid,
2. sends the ident-like query to the *initiating* host to learn the
   connecting process's uid and groups (one RTT),
3. applies the same-user-or-egid-member rule,
4. returns ACCEPT/DROP to the kernel; ACCEPT flows are committed to
   conntrack by the firewall so later packets never reach the daemon.

A small decision cache ((initiator uid, listener uid, listener egid) →
verdict) is an ablation knob for E8: with it, repeated same-principal
connections skip the ident RTT.  The cache is conservative — entries are
invalidated when any listener changes egid is *not* modeled; instead cached
entries key on the listener's egid value itself, so an ``sg`` to a new group
produces a different key and a fresh decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.users import UserDB
from repro.net.firewall import Packet, Verdict
from repro.net.ident import IdentService, remote_ident_query
from repro.net.stack import Fabric, HostStack


@dataclass
class UBFDecisionLog:
    """One decision, for audit trails and tests."""

    flow: str
    initiator_uid: int | None
    listener_uid: int | None
    listener_egid: int | None
    verdict: Verdict
    reason: str


@dataclass
class UBFDaemon:
    """Userspace decision daemon bound to one host's nfqueue."""

    stack: HostStack
    fabric: Fabric
    userdb: UserDB
    cache_enabled: bool = True
    #: optional span source (repro.obs.trace.Tracer); None = no tracing cost
    tracer: object | None = None
    log: list[UBFDecisionLog] = field(default_factory=list)
    _cache: dict[tuple[int, int, int], Verdict] = field(default_factory=dict)

    def install(self) -> "UBFDaemon":
        self.stack.firewall.bind_nfqueue(self.decide)
        return self

    # -- decision ---------------------------------------------------------------

    def decide(self, pkt: Packet) -> Verdict:
        if self.tracer is None:
            return self._decide(pkt)
        span = self.tracer.start_span(
            "ubf.decide", host=self.stack.hostname,
            src=f"{pkt.flow.src_host}:{pkt.flow.src_port}",
            dst=f"{pkt.flow.dst_host}:{pkt.flow.dst_port}")
        verdict = self._decide(pkt)
        self.tracer.finish(span, verdict=verdict.value,
                           reason=self.log[-1].reason)
        return verdict

    def _decide(self, pkt: Packet) -> Verdict:
        flow = pkt.flow
        local_ident = IdentService(self.stack)
        listener = local_ident.query_local(flow.proto, flow.dst_port)
        if listener is None:
            # nothing listening; let the stack produce ECONNREFUSED rather
            # than leaking whether the port is filtered
            return self._log(pkt, None, None, None, Verdict.ACCEPT,
                             "no listener (refusal handled by stack)")
        if listener.uid == 0:
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.ACCEPT, "root-owned service")
        initiator = remote_ident_query(self.fabric, self.stack.hostname,
                                       flow.src_host, flow.proto,
                                       flow.src_port)
        if initiator is None:
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.DROP, "initiator unidentifiable")
        key = (initiator.uid, listener.uid, listener.egid)
        if self.cache_enabled and key in self._cache:
            self.fabric.metrics.counter("ubf_cache_hits").inc()
            verdict = self._cache[key]
            return self._log(pkt, initiator.uid, listener.uid,
                             listener.egid, verdict, "cached")
        verdict, reason = self._rule(initiator.uid, initiator.groups,
                                     listener.uid, listener.egid)
        if self.cache_enabled:
            self._cache[key] = verdict
        self.fabric.metrics.counter("ubf_full_decisions").inc()
        return self._log(pkt, initiator.uid, listener.uid, listener.egid,
                         verdict, reason)

    def _rule(self, init_uid: int, init_groups: frozenset[int],
              listen_uid: int, listen_egid: int) -> tuple[Verdict, str]:
        """The appendix rule: same user, or connector ∈ listener's egid."""
        if init_uid == 0:
            return Verdict.ACCEPT, "root initiator"
        if init_uid == listen_uid:
            return Verdict.ACCEPT, "same user"
        if listen_egid in init_groups:
            return Verdict.ACCEPT, "initiator in listener's primary group"
        return Verdict.DROP, "cross-user connection denied"

    def _log(self, pkt: Packet, iu, lu, lg, verdict: Verdict,
             reason: str) -> Verdict:
        self.log.append(UBFDecisionLog(
            flow=(f"{pkt.flow.proto.value} {pkt.flow.src_host}:"
                  f"{pkt.flow.src_port}->{pkt.flow.dst_host}:{pkt.flow.dst_port}"),
            initiator_uid=iu, listener_uid=lu, listener_egid=lg,
            verdict=verdict, reason=reason))
        self.fabric.metrics.counter("ubf_verdicts_total",
                                    verdict=verdict.value,
                                    reason=reason).inc()
        if verdict is Verdict.DROP:
            self.fabric.metrics.counter("ubf_denials").inc()
        return verdict

    def flush_cache(self) -> None:
        self._cache.clear()


#: Cost model for experiment E8, in microseconds.  Values are representative
#: of the components involved (a kernel->userspace nfqueue round trip, a
#: cross-host TCP ident exchange, a conntrack hash lookup); the *shape* —
#: setup cost amortised to zero by the conntrack fast path — is the paper's
#: claim, not the absolute numbers.
COST_US = {
    "conntrack_fastpath_packets": 0.3,
    "rule_walks": 0.5,
    "nfqueue_decisions": 30.0,
    "ident_round_trips": 120.0,
    "ubf_cache_hits": 1.0,
    "ubf_full_decisions": 5.0,
}


def firewall_cost_us(metrics) -> float:
    """Total firewall-path cost implied by a run's counters."""
    report = metrics.report()
    return sum(report.get(k, 0) * v for k, v in COST_US.items())
