"""The User-Based Firewall daemon (paper Section IV-D + appendix).

Decision rule, verbatim from the appendix: "The ruleset implemented only
permits a connection when the connecting and listening processes are running
as the same user, or the connecting process is a member of the primary group
(egid) of the listening process."

Data path: the kernel's nfqueue hands the daemon each NEW connection to a
user port (≥1024).  The daemon then

1. runs the ident query *locally* to learn the listening process's uid/egid,
2. checks the decision cache keyed on (initiator uid, listener uid,
   listener egid) — a hit answers without any network traffic,
3. on a miss, sends the ident-like query to the *initiating* host to learn
   the connecting process's uid and groups (one RTT),
4. applies the same-user-or-egid-member rule,
5. returns ACCEPT/DROP to the kernel; ACCEPT flows are committed to
   conntrack by the firewall so later packets never reach the daemon.

The cache (an ablation knob for E8) keys on the packet's kernel-stamped
initiator uid — every cluster host runs the same root-administered system
image, so the stamp shares the trust basis of the ident answer it stands in
for.  A hit skips the ident RTT entirely; that is the whole point of the
cache, and the regression test pins it.  The cache is conservative —
listener egid changes are handled by keying on the egid *value*, so an
``sg`` to a new group produces a different key and a fresh (authoritative)
decision.  Packets arriving without a uid stamp always take the full path.

Degradation: when the initiating host (or its identd) cannot answer, the
remote query raises :class:`~repro.net.ident.IdentUnavailable`.  The daemon
retries with backoff (``ident_retries`` × ``ident_backoff_us``) and, if the
fault persists, issues a *degraded* verdict: DROP under the default
fail-closed policy, ACCEPT under ``fail_open=True`` (the availability-over-
separation ablation).  Degraded verdicts are never cached — they reflect a
fault, not an identity decision — and are counted under
``ubf_degraded_verdicts{policy=}`` so posture dashboards see them.

Crash/restart: ``crash()`` detaches the daemon from the nfqueue (the kernel
then fails closed for NEW connections — no handler means DROP) while
conntrack keeps established flows alive.  ``restart()`` rebinds the exact
handler that was detached (monitoring wrappers installed by
``instrument_cluster`` survive), flushes the decision cache (stale across a
restart) and re-syncs against the surviving conntrack table — no manual
flush is ever needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.errors import NoSuchEntity
from repro.kernel.users import UserDB
from repro.net.firewall import Packet, Verdict
from repro.net.ident import (
    IdentReply,
    IdentService,
    IdentUnavailable,
    remote_ident_query,
)
from repro.net.stack import Fabric, HostStack


@dataclass
class UBFDecisionLog:
    """One decision, for audit trails and tests."""

    flow: str
    initiator_uid: int | None
    listener_uid: int | None
    listener_egid: int | None
    verdict: Verdict
    reason: str


@dataclass
class UBFDaemon:
    """Userspace decision daemon bound to one host's nfqueue."""

    stack: HostStack
    fabric: Fabric
    userdb: UserDB
    cache_enabled: bool = True
    #: degraded-mode policy: ACCEPT (True) or DROP (False) when the
    #: initiator's identity cannot be learned due to an infrastructure fault.
    #: The paper's separation-first posture defaults to fail-closed.
    fail_open: bool = False
    #: extra ident attempts after the first failure, each preceded by a
    #: simulated exponential backoff (ident_backoff_us * 2^attempt).
    ident_retries: int = 2
    ident_backoff_us: float = 200.0
    #: optional span source (repro.obs.trace.Tracer); None = no tracing cost
    tracer: object | None = None
    log: list[UBFDecisionLog] = field(default_factory=list)
    alive: bool = True
    _cache: dict[tuple[int, int, int], Verdict] = field(default_factory=dict)
    _crashed_handler: object | None = field(default=None, repr=False)

    def install(self) -> "UBFDaemon":
        self.stack.firewall.bind_nfqueue(self.decide)
        return self

    # -- lifecycle --------------------------------------------------------------

    def crash(self) -> None:
        """The daemon process dies: the nfqueue loses its handler.

        From the kernel's point of view this is the fail-safe posture the
        design promises — NEW connections to user ports now DROP (nobody to
        ask), while conntrack-established flows keep flowing untouched.
        """
        if not self.alive:
            return
        self._crashed_handler = self.stack.firewall.unbind_nfqueue()
        self.alive = False
        self.fabric.metrics.counter("ubf_crashes").inc()

    def restart(self) -> None:
        """Restart after a crash: rebind, flush the cache, re-sync.

        Rebinds the *same* handler that was detached, so any monitoring
        wrapper installed around ``decide`` survives the bounce.  The
        decision cache is dropped (identity state from before the crash is
        stale); the conntrack table is *kept* — established flows never
        noticed the outage and need no manual flush.
        """
        if self.alive:
            return
        handler = self._crashed_handler or self.decide
        self._crashed_handler = None
        self.stack.firewall.bind_nfqueue(handler)
        self.flush_cache()
        self.alive = True
        self.fabric.metrics.counter("ubf_restarts").inc()
        self.fabric.metrics.gauge("ubf_resync_flows").set(
            len(self.stack.firewall.conntrack))

    # -- decision ---------------------------------------------------------------

    def decide(self, pkt: Packet) -> Verdict:
        if self.tracer is None:
            return self._decide(pkt)
        span = self.tracer.start_span(
            "ubf.decide", host=self.stack.hostname,
            src=f"{pkt.flow.src_host}:{pkt.flow.src_port}",
            dst=f"{pkt.flow.dst_host}:{pkt.flow.dst_port}")
        try:
            verdict = self._decide(pkt)
        except Exception as exc:
            # The span must finish even when the decision path blows up,
            # or the tracer leaks an open span per failed decision.
            self.tracer.finish(span, status="error",
                               error=type(exc).__name__)
            raise
        self.tracer.finish(span, verdict=verdict.value,
                           reason=self.log[-1].reason if self.log else "")
        return verdict

    def _decide(self, pkt: Packet) -> Verdict:
        flow = pkt.flow
        local_ident = IdentService(self.stack)
        listener = local_ident.query_local(flow.proto, flow.dst_port)
        if listener is None:
            # nothing listening; let the stack produce ECONNREFUSED rather
            # than leaking whether the port is filtered
            return self._log(pkt, None, None, None, Verdict.ACCEPT,
                             "no listener (refusal handled by stack)")
        if listener.uid == 0:
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.ACCEPT, "root-owned service")
        # Cache first: a hit answers from the kernel-stamped initiator uid
        # without touching the network.  (The stamp is trusted for the same
        # reason the ident answer is — same root-administered system image.)
        if self.cache_enabled and pkt.src_uid is not None:
            key = (pkt.src_uid, listener.uid, listener.egid)
            if key in self._cache:
                self.fabric.metrics.counter("ubf_cache_hits").inc()
                return self._log(pkt, pkt.src_uid, listener.uid,
                                 listener.egid, self._cache[key], "cached")
        try:
            initiator = self._remote_ident(flow)
        except IdentUnavailable as exc:
            return self._degraded(pkt, listener, exc)
        if initiator is None:
            return self._log(pkt, None, listener.uid, listener.egid,
                             Verdict.DROP, "initiator unidentifiable")
        verdict, reason = self._rule(initiator.uid, initiator.groups,
                                     listener.uid, listener.egid)
        if self.cache_enabled:
            self._cache[initiator.uid, listener.uid, listener.egid] = verdict
        self.fabric.metrics.counter("ubf_full_decisions").inc()
        return self._log(pkt, initiator.uid, listener.uid, listener.egid,
                         verdict, reason)

    def _remote_ident(self, flow) -> IdentReply | None:
        """One authoritative ident exchange, with retry + backoff.

        :class:`IdentUnavailable` (identd down/slow, host partitioned) is
        retried ``ident_retries`` times with exponential backoff; an unknown
        peer host is converted to the same fault without retries (it cannot
        get better by waiting).  The *final* failure propagates to the
        degraded-verdict path.
        """
        attempts = 1 + max(0, self.ident_retries)
        for attempt in range(attempts):
            try:
                return remote_ident_query(self.fabric, self.stack.hostname,
                                          flow.src_host, flow.proto,
                                          flow.src_port)
            except NoSuchEntity as exc:
                raise IdentUnavailable(
                    f"peer host {flow.src_host!r} unknown") from exc
            except IdentUnavailable:
                self.fabric.metrics.counter("ubf_ident_timeouts").inc()
                if attempt + 1 >= attempts:
                    raise
                self.fabric.metrics.counter("ubf_ident_retries").inc()
                self.fabric.metrics.samples("ubf_ident_backoff_us").add(
                    self.ident_backoff_us * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _degraded(self, pkt: Packet, listener: IdentReply,
                  exc: IdentUnavailable) -> Verdict:
        """Identity unavailable after retries: apply the degradation policy.

        Never cached — a degraded verdict reflects an infrastructure fault,
        not an identity decision, and must not outlive the fault.
        """
        policy = "fail-open" if self.fail_open else "fail-closed"
        verdict = Verdict.ACCEPT if self.fail_open else Verdict.DROP
        self.fabric.metrics.counter("ubf_degraded_verdicts",
                                    policy=policy).inc()
        return self._log(pkt, None, listener.uid, listener.egid, verdict,
                         f"degraded: {exc} ({policy})")

    def _rule(self, init_uid: int, init_groups: frozenset[int],
              listen_uid: int, listen_egid: int) -> tuple[Verdict, str]:
        """The appendix rule: same user, or connector ∈ listener's egid."""
        if init_uid == 0:
            return Verdict.ACCEPT, "root initiator"
        if init_uid == listen_uid:
            return Verdict.ACCEPT, "same user"
        if listen_egid in init_groups:
            return Verdict.ACCEPT, "initiator in listener's primary group"
        return Verdict.DROP, "cross-user connection denied"

    def _log(self, pkt: Packet, iu, lu, lg, verdict: Verdict,
             reason: str) -> Verdict:
        self.log.append(UBFDecisionLog(
            flow=(f"{pkt.flow.proto.value} {pkt.flow.src_host}:"
                  f"{pkt.flow.src_port}->{pkt.flow.dst_host}:{pkt.flow.dst_port}"),
            initiator_uid=iu, listener_uid=lu, listener_egid=lg,
            verdict=verdict, reason=reason))
        self.fabric.metrics.counter("ubf_verdicts_total",
                                    verdict=verdict.value,
                                    reason=reason).inc()
        if verdict is Verdict.DROP:
            self.fabric.metrics.counter("ubf_denials").inc()
        return verdict

    def flush_cache(self) -> None:
        self._cache.clear()


#: Cost model for experiment E8, in microseconds.  Values are representative
#: of the components involved (a kernel->userspace nfqueue round trip, a
#: cross-host TCP ident exchange, a conntrack hash lookup); the *shape* —
#: setup cost amortised to zero by the conntrack fast path — is the paper's
#: claim, not the absolute numbers.
COST_US = {
    "conntrack_fastpath_packets": 0.3,
    "rule_walks": 0.5,
    "nfqueue_decisions": 30.0,
    "ident_round_trips": 120.0,
    "ubf_cache_hits": 1.0,
    "ubf_full_decisions": 5.0,
}


def firewall_cost_us(metrics) -> float:
    """Total firewall-path cost implied by a run's counters."""
    report = metrics.report()
    return sum(report.get(k, 0) * v for k, v in COST_US.items())
