"""Data-sensitivity zoning for the UBF: per-zone strict/standard posture.

SURF's "Secure Platform for Processing Sensitive Data on Shared HPC
Systems" (PAPERS.md) motivates running sensitive-data workloads in zones
with a *stricter* network posture than the general batch partitions, on the
same fabric.  This module models that as a per-partition **tier**:

* ``STANDARD`` — the paper's §IV-D defaults: the configured fail-open/closed
  policy stands, two ident retries, cached verdicts never expire (only the
  LRU bound evicts them);
* ``STRICT`` — the sensitive-data posture: fail-**closed** is forced
  regardless of the cluster-wide ``ubf_fail_open`` ablation (an identity
  fault must never admit a flow into the zone), ident is retried harder
  before degrading (availability inside the zone is worth extra RTTs), and
  cached verdicts carry a TTL so a revoked group membership stops being
  honored after a bounded number of decisions rather than on cache
  pressure.

Tiers apply *per host*: :func:`apply_zone_tiers` walks the scheduler's
partitions and pushes each partition's posture onto the UBF daemons of its
nodes.  The posture only tightens knobs the daemon already has — every
decision still runs the same appendix rule on every path (naive / batch /
columnar), so differential verdict identity (oracle invariant I2) is
unaffected by tier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ZoneTier(enum.Enum):
    """Data-sensitivity tier of a partition/zone."""

    STANDARD = "standard"
    STRICT = "strict"


@dataclass(frozen=True)
class UBFPosture:
    """The UBF knob settings one tier implies."""

    tier: ZoneTier
    #: False forces fail-closed regardless of the daemon's configured policy
    fail_open_allowed: bool
    #: minimum ident retry attempts (never lowers a higher configured value)
    ident_retries: int
    #: cached-verdict TTL in decision ticks (None = no expiry)
    cache_ttl: int | None


POSTURES: dict[ZoneTier, UBFPosture] = {
    ZoneTier.STANDARD: UBFPosture(ZoneTier.STANDARD,
                                  fail_open_allowed=True,
                                  ident_retries=2, cache_ttl=None),
    ZoneTier.STRICT: UBFPosture(ZoneTier.STRICT,
                                fail_open_allowed=False,
                                ident_retries=4, cache_ttl=4096),
}


def apply_tier(daemon, tier: ZoneTier, metrics=None) -> UBFPosture:
    """Push one tier's posture onto one UBF daemon; returns the posture.

    Idempotent, and monotone on safety: strict can only force fail-closed,
    raise retries, and add a TTL — it never loosens a knob the operator set
    tighter.  Counted under ``ubf_tier_applied_total{tier=}`` so posture
    dashboards can see zone coverage.
    """
    posture = POSTURES[tier]
    daemon.tier = tier.value
    if not posture.fail_open_allowed:
        daemon.fail_open = False
    daemon.ident_retries = max(daemon.ident_retries, posture.ident_retries)
    if posture.cache_ttl is not None:
        daemon.cache_ttl = (posture.cache_ttl
                            if daemon.cache_ttl is None
                            else min(daemon.cache_ttl, posture.cache_ttl))
    daemon.apply_cache_posture()
    if metrics is None:
        metrics = daemon.fabric.metrics
    metrics.counter("ubf_tier_applied_total", tier=tier.value).inc()
    return posture


def apply_zone_tiers(cluster) -> int:
    """Apply every partition's tier to the UBF daemons of its nodes.

    Walks ``cluster.scheduler.partitions`` (duck-typed — this module must
    not import :mod:`repro.core`) and returns the number of daemons whose
    posture was set.  Nodes outside any partition (login, portal, DTN)
    keep the standard posture.
    """
    applied = 0
    daemons = getattr(cluster, "ubf_daemons", None) or {}
    scheduler = getattr(cluster, "scheduler", None)
    partitions = getattr(scheduler, "partitions", None) or {}
    if hasattr(partitions, "values"):
        partitions = list(partitions.values())
    for part in partitions:
        tier = getattr(part, "tier", ZoneTier.STANDARD)
        if tier is ZoneTier.STANDARD:
            continue
        for name in part.node_names:
            daemon = daemons.get(name)
            if daemon is not None:
                apply_tier(daemon, tier, metrics=cluster.metrics)
                applied += 1
    return applied
