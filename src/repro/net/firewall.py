"""iptables-style firewall: rule chains, conntrack, and NFQUEUE.

Section IV-D: "Our UBF uses the IPTables NetFilter Queue module (nfqueue) to
send new connection requests to a userspace daemon for decision.  Only 'new'
connections are sent; IPTables connection tracking (conntrack) handles
established connections."

The model keeps exactly the pieces that matter for that data path:

* a **conntrack table** keyed by five-tuple; hits bypass the rule walk
  entirely (the zero-per-packet-cost property the paper relies on);
* an **INPUT chain** of :class:`Rule` objects matched on protocol, dport
  range and connection state, each yielding ACCEPT, DROP, or NFQUEUE;
* an **nfqueue binding**: a userspace callback (the UBF daemon) that returns
  the final verdict for NEW connections.

Costs are recorded in a :class:`~repro.sim.metrics.MetricSet` so experiment
E8 can price the fast and slow paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.metrics import MetricSet


class Proto(enum.Enum):
    TCP = "tcp"
    UDP = "udp"


class Verdict(enum.Enum):
    ACCEPT = "accept"
    DROP = "drop"
    NFQUEUE = "nfqueue"


class ConnState(enum.Enum):
    NEW = "new"
    ESTABLISHED = "established"


@dataclass(frozen=True)
class FiveTuple:
    """Flow identity: (proto, src host/port, dst host/port)."""

    proto: Proto
    src_host: str
    src_port: int
    dst_host: str
    dst_port: int

    def reversed(self) -> "FiveTuple":
        return FiveTuple(self.proto, self.dst_host, self.dst_port,
                         self.src_host, self.src_port)


@dataclass(frozen=True)
class Packet:
    """The firewall-visible part of a segment/datagram."""

    flow: FiveTuple
    state: ConnState
    payload_len: int = 0


@dataclass(frozen=True)
class Rule:
    """One INPUT-chain rule: match → verdict.

    ``dport_min``/``dport_max`` bound the destination port (the appendix:
    the UBF "would normally be configured ... to inspect connections on
    ports numbered 1024 and above"); ``state`` restricts to NEW or
    ESTABLISHED; None fields match everything.
    """

    verdict: Verdict
    proto: Proto | None = None
    dport_min: int | None = None
    dport_max: int | None = None
    state: ConnState | None = None
    comment: str = ""

    def matches(self, pkt: Packet) -> bool:
        if self.proto is not None and pkt.flow.proto is not self.proto:
            return False
        if self.dport_min is not None and pkt.flow.dst_port < self.dport_min:
            return False
        if self.dport_max is not None and pkt.flow.dst_port > self.dport_max:
            return False
        if self.state is not None and pkt.state is not self.state:
            return False
        return True


@dataclass
class ConntrackEntry:
    flow: FiveTuple
    packets: int = 0
    bytes: int = 0


class ConntrackTable:
    """Established-flow table; both directions of a flow share one entry."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._table: dict[FiveTuple, ConntrackEntry] = {}

    def lookup(self, flow: FiveTuple) -> ConntrackEntry | None:
        if not self.enabled:
            return None
        return self._table.get(flow) or self._table.get(flow.reversed())

    def commit(self, flow: FiveTuple) -> ConntrackEntry:
        entry = ConntrackEntry(flow)
        if self.enabled:
            self._table[flow] = entry
        return entry

    def evict(self, flow: FiveTuple) -> None:
        self._table.pop(flow, None)
        self._table.pop(flow.reversed(), None)

    def __len__(self) -> int:
        return len(self._table)


NfqueueHandler = Callable[[Packet], Verdict]


@dataclass
class Firewall:
    """Per-host INPUT chain + conntrack + one nfqueue binding.

    ``default_policy`` applies when no rule matches (stock hosts ship
    ACCEPT).  Metrics are shared with the owning fabric when provided.
    """

    rules: list[Rule] = field(default_factory=list)
    default_policy: Verdict = Verdict.ACCEPT
    conntrack: ConntrackTable = field(default_factory=ConntrackTable)
    metrics: MetricSet = field(default_factory=MetricSet)
    _nfqueue: NfqueueHandler | None = None

    def bind_nfqueue(self, handler: NfqueueHandler) -> None:
        self._nfqueue = handler

    def evaluate(self, pkt: Packet) -> Verdict:
        """Run a packet through conntrack then the INPUT chain.

        ESTABLISHED fast path: a conntrack hit accepts immediately without
        touching the rules or the userspace daemon — this is what keeps the
        UBF's cost off the per-packet path.
        """
        entry = self.conntrack.lookup(pkt.flow)
        if entry is not None:
            entry.packets += 1
            entry.bytes += pkt.payload_len
            self.metrics.counter("conntrack_fastpath_packets").inc()
            return Verdict.ACCEPT
        self.metrics.counter("rule_walks").inc()
        for rule in self.rules:
            if not rule.matches(pkt):
                continue
            if rule.verdict is Verdict.NFQUEUE:
                self.metrics.counter("nfqueue_decisions").inc()
                if self._nfqueue is None:
                    # queue with no daemon: kernel drops (fail closed)
                    return Verdict.DROP
                verdict = self._nfqueue(pkt)
                if verdict is Verdict.ACCEPT:
                    self.conntrack.commit(pkt.flow)
                return verdict
            if rule.verdict is Verdict.ACCEPT:
                self.conntrack.commit(pkt.flow)
            return rule.verdict
        if self.default_policy is Verdict.ACCEPT:
            self.conntrack.commit(pkt.flow)
        return self.default_policy


def ubf_ruleset(low_port_policy: Verdict = Verdict.ACCEPT) -> list[Rule]:
    """The appendix ruleset: NEW connections to ports ≥1024 go to the UBF
    daemon via nfqueue; privileged ports (root-run system services such as
    sshd, identd, the scheduler) follow *low_port_policy*; everything
    ESTABLISHED is conntrack's business and never reaches these rules."""
    return [
        Rule(Verdict.NFQUEUE, dport_min=1024, state=ConnState.NEW,
             comment="UBF: user-port NEW connections to userspace daemon"),
        Rule(low_port_policy, dport_max=1023, state=ConnState.NEW,
             comment="system services on privileged ports"),
    ]
