"""iptables-style firewall: rule chains, conntrack, and NFQUEUE.

Section IV-D: "Our UBF uses the IPTables NetFilter Queue module (nfqueue) to
send new connection requests to a userspace daemon for decision.  Only 'new'
connections are sent; IPTables connection tracking (conntrack) handles
established connections."

The model keeps exactly the pieces that matter for that data path:

* a **conntrack table** keyed by five-tuple; hits bypass the rule walk
  entirely (the zero-per-packet-cost property the paper relies on);
* an **INPUT chain** of :class:`Rule` objects matched on protocol, dport
  range and connection state, each yielding ACCEPT, DROP, or NFQUEUE;
* an **nfqueue binding**: a userspace callback (the UBF daemon) that returns
  the final verdict for NEW connections.

Costs are recorded in a :class:`~repro.sim.metrics.MetricSet` so experiment
E8 can price the fast and slow paths.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.metrics import MetricSet


class Proto(enum.Enum):
    """Transport protocol of a flow."""

    TCP = "tcp"
    UDP = "udp"


class Verdict(enum.Enum):
    """Firewall decision for a packet."""

    ACCEPT = "accept"
    DROP = "drop"
    NFQUEUE = "nfqueue"


class ConnState(enum.Enum):
    """Conntrack state of a tracked connection."""

    NEW = "new"
    ESTABLISHED = "established"


@dataclass(frozen=True)
class FiveTuple:
    """Flow identity: (proto, src host/port, dst host/port)."""

    proto: Proto
    src_host: str
    src_port: int
    dst_host: str
    dst_port: int

    def reversed(self) -> "FiveTuple":
        return FiveTuple(self.proto, self.dst_host, self.dst_port,
                         self.src_host, self.src_port)


@dataclass(frozen=True)
class Packet:
    """The firewall-visible part of a segment/datagram.

    ``src_uid`` is the uid of the process that owns the sending socket,
    stamped by the *initiating* host's kernel.  Cluster hosts run the same
    root-administered system image (the paper's trust model — the same
    assumption that makes the identd responder trustworthy), so the UBF
    daemon may use it as a **cache key**: a hit on a previously-decided
    principal triple skips the ident round trip entirely.  It is never used
    as the authoritative identity — a cache miss still pays the ident RTT,
    which returns uid *and* group membership.  ``None`` models a packet
    whose origin offers no credential (e.g. hand-crafted test traffic); the
    daemon then always runs the full query.
    """

    flow: FiveTuple
    state: ConnState
    payload_len: int = 0
    src_uid: int | None = None


@dataclass(frozen=True)
class Rule:
    """One INPUT-chain rule: match → verdict.

    ``dport_min``/``dport_max`` bound the destination port (the appendix:
    the UBF "would normally be configured ... to inspect connections on
    ports numbered 1024 and above"); ``state`` restricts to NEW or
    ESTABLISHED; None fields match everything.
    """

    verdict: Verdict
    proto: Proto | None = None
    dport_min: int | None = None
    dport_max: int | None = None
    state: ConnState | None = None
    comment: str = ""

    def matches(self, pkt: Packet) -> bool:
        if self.proto is not None and pkt.flow.proto is not self.proto:
            return False
        if self.dport_min is not None and pkt.flow.dst_port < self.dport_min:
            return False
        if self.dport_max is not None and pkt.flow.dst_port > self.dport_max:
            return False
        if self.state is not None and pkt.state is not self.state:
            return False
        return True


@dataclass
class ConntrackEntry:
    """One tracked connection and the verdict stamped on its flow."""

    flow: FiveTuple
    packets: int = 0
    bytes: int = 0


class ConntrackTable:
    """Established-flow table; both directions of a flow share one entry.

    Like the kernel's, the table is **bounded**: ``capacity`` (None =
    unbounded, matching ``nf_conntrack_max`` left at default) caps the
    number of live entries, and commits beyond it evict the least recently
    used flow.  An evicted flow is not broken — its next packet is simply
    NEW again and re-runs the full decision path (the nfqueue/UBF slow
    path), which is exactly the real system's degradation mode under
    conntrack pressure.  Evictions are counted per reason
    (``conntrack_evictions_total{reason=lru|close|refused|pressure}``) when
    a metrics registry is attached.
    """

    def __init__(self, enabled: bool = True, capacity: int | None = None,
                 metrics: MetricSet | None = None):
        self.enabled = enabled
        self.capacity = capacity
        #: registry evictions/size are reported to; wired by the owning
        #: Firewall / HostStack (may stay None in unit scenarios)
        self.metrics = metrics
        self._table: OrderedDict[FiveTuple, ConntrackEntry] = OrderedDict()

    # -- accounting ---------------------------------------------------------

    def _count_eviction(self, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("conntrack_evictions_total",
                                 reason=reason).inc()
            self.metrics.gauge("conntrack_table_size").set(len(self._table))

    def _note_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("conntrack_table_size").set(len(self._table))

    # -- data path ----------------------------------------------------------

    def lookup(self, flow: FiveTuple) -> ConntrackEntry | None:
        if not self.enabled:
            return None
        entry = self._table.get(flow)
        key = flow
        if entry is None:
            key = flow.reversed()
            entry = self._table.get(key)
        if entry is not None:
            self._table.move_to_end(key)  # LRU touch
        return entry

    def commit(self, flow: FiveTuple) -> ConntrackEntry:
        """Track *flow*, returning the live entry if either direction is
        already tracked.

        Re-committing must not build a fresh :class:`ConntrackEntry`: that
        would zero the packet/byte counters of a live flow, and a commit of
        the reverse direction would insert a second entry for the same
        connection — doubling occupancy, skewing LRU eviction, and
        double-counting in :meth:`purge_host`.  A commit of a tracked flow
        is just an LRU touch.
        """
        if not self.enabled:
            return ConntrackEntry(flow)
        key, entry = flow, self._table.get(flow)
        if entry is None:
            rev = flow.reversed()
            entry = self._table.get(rev)
            if entry is not None:
                key = rev
        if entry is None:
            entry = ConntrackEntry(flow)
            self._table[key] = entry
        self._table.move_to_end(key)
        if self.capacity is not None:
            while len(self._table) > self.capacity:
                self._table.popitem(last=False)
                self._count_eviction("lru")
        self._note_size()
        return entry

    def evict(self, flow: FiveTuple, reason: str = "close") -> None:
        fwd = self._table.pop(flow, None)
        rev = self._table.pop(flow.reversed(), None)
        if fwd is not None or rev is not None:
            self._count_eviction(reason)

    def purge_host(self, host: str, reason: str = "dead-host") -> int:
        """Evict every flow touching *host*; returns the eviction count.

        Conntrack state referencing a dead peer is worse than useless: it
        would keep admitting packets "from" a host that can no longer be
        ident-verified once something else answers to its name.  Surviving
        hosts call this when a peer's crash/partition persists past the
        health monitor's TTL.
        """
        doomed = [f for f in self._table
                  if host in (f.src_host, f.dst_host)]
        for flow in doomed:
            del self._table[flow]
            self._count_eviction(reason)
        if doomed:
            self._note_size()
        return len(doomed)

    def set_capacity(self, capacity: int | None,
                     reason: str = "pressure") -> int:
        """Re-bound the table, trimming LRU-first; returns evicted count."""
        self.capacity = capacity
        evicted = 0
        if capacity is not None:
            while len(self._table) > capacity:
                self._table.popitem(last=False)
                self._count_eviction(reason)
                evicted += 1
        return evicted

    def flows(self) -> list[FiveTuple]:
        """Live flow keys, LRU-first (what a restarted daemon re-syncs on)."""
        return list(self._table)

    def __len__(self) -> int:
        return len(self._table)


NfqueueHandler = Callable[[Packet], Verdict]
NfqueueBatchHandler = Callable[[list[Packet]], list[Verdict]]


@dataclass
class Firewall:
    """Per-host INPUT chain + conntrack + one nfqueue binding.

    ``default_policy`` applies when no rule matches (stock hosts ship
    ACCEPT).  Metrics are shared with the owning fabric when provided.
    """

    rules: list[Rule] = field(default_factory=list)
    default_policy: Verdict = Verdict.ACCEPT
    conntrack: ConntrackTable = field(default_factory=ConntrackTable)
    metrics: MetricSet = field(default_factory=MetricSet)
    _nfqueue: NfqueueHandler | None = None
    _nfqueue_batch: NfqueueBatchHandler | None = None

    def __post_init__(self) -> None:
        if self.conntrack.metrics is None:
            self.conntrack.metrics = self.metrics

    def bind_nfqueue(self, handler: NfqueueHandler) -> None:
        self._nfqueue = handler

    def bind_nfqueue_batch(self, handler: NfqueueBatchHandler) -> None:
        """Attach the daemon's burst entry point used by
        :meth:`evaluate_batch`; packets queued in one burst reach the
        daemon as a single list instead of one callback each."""
        self._nfqueue_batch = handler

    def unbind_nfqueue(self) -> NfqueueHandler | None:
        """Detach the userspace daemon (it crashed or was stopped).

        With no handler bound, NFQUEUE rules fail **closed**: the kernel
        drops NEW connections while conntrack keeps established flows
        alive — the degradation contract of the real nfqueue data path.
        Returns the detached handler so a restart can rebind the exact
        callable (including any monitoring wrappers around it).  The batch
        handler is detached alongside it — a crashed daemon must not keep
        serving bursts.
        """
        handler, self._nfqueue = self._nfqueue, None
        self._nfqueue_batch = None
        return handler

    def evaluate(self, pkt: Packet) -> Verdict:
        """Run a packet through conntrack then the INPUT chain.

        ESTABLISHED fast path: a conntrack hit accepts immediately without
        touching the rules or the userspace daemon — this is what keeps the
        UBF's cost off the per-packet path.
        """
        entry = self.conntrack.lookup(pkt.flow)
        if entry is not None:
            entry.packets += 1
            entry.bytes += pkt.payload_len
            self.metrics.counter("conntrack_fastpath_packets").inc()
            return Verdict.ACCEPT
        self.metrics.counter("rule_walks").inc()
        for rule in self.rules:
            if not rule.matches(pkt):
                continue
            if rule.verdict is Verdict.NFQUEUE:
                self.metrics.counter("nfqueue_decisions").inc()
                if self._nfqueue is None:
                    # queue with no daemon: kernel drops (fail closed)
                    return Verdict.DROP
                verdict = self._nfqueue(pkt)
                if verdict is Verdict.ACCEPT:
                    self.conntrack.commit(pkt.flow)
                return verdict
            if rule.verdict is Verdict.ACCEPT:
                self.conntrack.commit(pkt.flow)
            return rule.verdict
        if self.default_policy is Verdict.ACCEPT:
            self.conntrack.commit(pkt.flow)
        return self.default_policy

    def evaluate_batch(self, pkts: list[Packet]) -> list[Verdict]:
        """Run a burst through conntrack/rules with one daemon callback.

        Each packet takes the same conntrack-then-chain walk as
        :meth:`evaluate`, but every packet that lands on an NFQUEUE rule is
        parked and handed to the bound batch handler (or, failing that, the
        per-packet handler) in a single call — the kernel analogue of
        nfqueue's range verdicts.  The burst is treated as arriving
        together: a queued packet does not see conntrack entries created by
        later verdicts in the same burst, which mirrors
        :meth:`UBFDaemon.decide_batch`'s coalescing semantics.
        """
        out: list[Verdict | None] = [None] * len(pkts)
        queued: list[int] = []
        for i, pkt in enumerate(pkts):
            entry = self.conntrack.lookup(pkt.flow)
            if entry is not None:
                entry.packets += 1
                entry.bytes += pkt.payload_len
                self.metrics.counter("conntrack_fastpath_packets").inc()
                out[i] = Verdict.ACCEPT
                continue
            self.metrics.counter("rule_walks").inc()
            for rule in self.rules:
                if not rule.matches(pkt):
                    continue
                if rule.verdict is Verdict.NFQUEUE:
                    self.metrics.counter("nfqueue_decisions").inc()
                    if self._nfqueue is None and self._nfqueue_batch is None:
                        out[i] = Verdict.DROP  # no daemon: fail closed
                    else:
                        queued.append(i)
                elif rule.verdict is Verdict.ACCEPT:
                    self.conntrack.commit(pkt.flow)
                    out[i] = Verdict.ACCEPT
                else:
                    out[i] = rule.verdict
                break
            else:
                if self.default_policy is Verdict.ACCEPT:
                    self.conntrack.commit(pkt.flow)
                out[i] = self.default_policy
        if queued:
            burst = [pkts[i] for i in queued]
            if self._nfqueue_batch is not None:
                verdicts = self._nfqueue_batch(burst)
            else:
                verdicts = [self._nfqueue(p) for p in burst]
            for i, verdict in zip(queued, verdicts):
                if verdict is Verdict.ACCEPT:
                    self.conntrack.commit(pkts[i].flow)
                out[i] = verdict
        return out


def ubf_ruleset(low_port_policy: Verdict = Verdict.ACCEPT) -> list[Rule]:
    """The appendix ruleset: NEW connections to ports ≥1024 go to the UBF
    daemon via nfqueue; privileged ports (root-run system services such as
    sshd, identd, the scheduler) follow *low_port_policy*; everything
    ESTABLISHED is conntrack's business and never reaches these rules."""
    return [
        Rule(Verdict.NFQUEUE, dport_min=1024, state=ConnState.NEW,
             comment="UBF: user-port NEW connections to userspace daemon"),
        Rule(low_port_policy, dport_max=1023, state=ConnState.NEW,
             comment="system services on privileged ports"),
    ]
