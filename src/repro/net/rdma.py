"""InfiniBand / RDMA queue pairs and the UBF coverage boundary.

Appendix: "While the UBF does not directly affect code using Infiniband
verbs or remote direct memory access (RDMA), many such applications use a
TCP connection as a control channel to set up their Infiniband queue pairs
(QPs) and thus can be effectively controlled by the UBF.  This does not
prevent applications from using the connection manager (CM) directly to set
up their QPs, and any application that does this would not be controlled by
the UBF."

Model: a QP is usable once both sides exchange QP numbers.  The exchange
happens either over a TCP control channel (``connect_qp_tcp``) — which goes
through the simulated stack and therefore the UBF — or via the native IB
connection manager (``connect_qp_cm``) which bypasses the IP stack entirely.
Once connected, ``rdma_write``/``rdma_read`` move bytes between the peers'
registered memory regions with no further checks, faithfully reproducing the
residual leak path of experiment E10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.kernel.errors import InvalidArgument, NotConnected
from repro.kernel.process import Process
from repro.net.firewall import Proto
from repro.net.stack import Fabric, HostStack

_qp_numbers = itertools.count(1)


@dataclass
class MemoryRegion:
    """A registered RDMA buffer (numpy-backed, like a pinned region)."""

    buf: np.ndarray  # dtype uint8

    @classmethod
    def alloc(cls, size: int) -> "MemoryRegion":
        return cls(np.zeros(size, dtype=np.uint8))

    def write(self, offset: int, data: bytes) -> None:
        a = np.frombuffer(data, dtype=np.uint8)
        self.buf[offset:offset + a.size] = a

    def read(self, offset: int, size: int) -> bytes:
        return self.buf[offset:offset + size].tobytes()


@dataclass
class QueuePair:
    """One side of an RDMA connection."""

    host: str
    owner: Process
    mr: MemoryRegion
    qpn: int = field(default_factory=lambda: next(_qp_numbers))
    peer: "QueuePair | None" = None

    @property
    def connected(self) -> bool:
        return self.peer is not None

    # one-sided verbs: no peer CPU involvement, no firewall involvement
    def rdma_write(self, offset: int, data: bytes) -> None:
        if self.peer is None:
            raise NotConnected("QP not connected")
        self.peer.mr.write(offset, data)

    def rdma_read(self, offset: int, size: int) -> bytes:
        if self.peer is None:
            raise NotConnected("QP not connected")
        return self.peer.mr.read(offset, size)


class RDMAFabric:
    """QP setup paths over an existing :class:`Fabric`."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric

    def create_qp(self, host: str, owner: Process, mr_size: int = 4096) -> QueuePair:
        return QueuePair(host=host, owner=owner, mr=MemoryRegion.alloc(mr_size))

    def connect_qp_tcp(self, client_qp: QueuePair, server_qp: QueuePair,
                       control_port: int) -> None:
        """QP-number exchange over a TCP control channel.

        The server side must already have a process listening on
        *control_port*; the client's connect traverses the normal stack —
        and therefore the UBF.  A UBF denial (TimedOut) propagates and the
        QPs stay unconnected."""
        server_stack: HostStack = self.fabric.host(server_qp.host)
        listener = server_stack.lookup(Proto.TCP, control_port)
        if listener is None or not listener.listening:
            raise InvalidArgument(
                f"no control-channel listener on {server_qp.host}:{control_port}"
            )
        client_stack = self.fabric.host(client_qp.host)
        conn = client_stack.connect(client_qp.owner, server_qp.host,
                                    control_port)
        # exchange QPNs over the (now UBF-approved) channel
        conn.send(str(client_qp.qpn).encode())
        server_end = server_stack.accept(listener)
        server_end.recv()
        server_end.send(str(server_qp.qpn).encode())
        conn.recv()
        conn.close()
        client_qp.peer = server_qp
        server_qp.peer = client_qp
        self.fabric.metrics.counter("qp_setup_tcp").inc()

    def connect_qp_cm(self, client_qp: QueuePair, server_qp: QueuePair) -> None:
        """QP setup via the native IB connection manager: no TCP, no IP
        stack, no firewall — the residual path the appendix documents."""
        client_qp.peer = server_qp
        server_qp.peer = client_qp
        self.fabric.metrics.counter("qp_setup_cm").inc()
