"""Simulated IP fabric: per-host stacks, TCP connections, UDP datagrams.

The fabric connects the cluster's :class:`~repro.kernel.node.LinuxNode`
hosts.  Every inbound packet traverses the destination host's
:class:`~repro.net.firewall.Firewall` INPUT chain, so the UBF's
nfqueue/conntrack data path is exercised exactly as deployed: connection
*setup* pays the userspace decision, established traffic rides the conntrack
fast path.

Sockets are owned by kernel processes; the owning process's *current*
credentials are what ident reports and what the UBF's group rule reads
(paper: "the primary group of the listening process can be controlled via
standard Linux tools such as newgrp or sg").
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.kernel.errors import (
    AddressInUse,
    ConnectionRefused,
    InvalidArgument,
    NoSuchEntity,
    NotConnected,
    PermissionError_,
    TimedOut,
)
from repro.faults.injector import FaultInjector
from repro.kernel.node import LinuxNode
from repro.kernel.process import Process
from repro.net.firewall import (
    ConnState,
    Firewall,
    FiveTuple,
    Packet,
    Proto,
    Verdict,
)
from repro.sim.metrics import MetricSet

EPHEMERAL_START = 49152


@dataclass
class BoundSocket:
    """A socket bound to (host, proto, port) by a process."""

    host: str
    proto: Proto
    port: int
    owner: Process
    listening: bool = False
    accept_queue: deque = field(default_factory=deque)
    datagrams: deque = field(default_factory=deque)  # UDP inbox
    closed: bool = False

    @property
    def owner_uid(self) -> int:
        return self.owner.creds.uid

    @property
    def owner_egid(self) -> int:
        return self.owner.creds.egid


class ConnectionEnd:
    """One side's handle on an established TCP connection."""

    def __init__(self, conn: "Connection", side: str):
        self._conn = conn
        self.side = side  # "client" | "server"

    def send(self, data: bytes) -> int:
        return self._conn.send(self.side, data)

    def recv(self) -> bytes:
        return self._conn.recv(self.side)

    def close(self) -> None:
        self._conn.close()

    @property
    def peer_uid(self) -> int:
        return (self._conn.server_sock.owner_uid if self.side == "client"
                else self._conn.client_uid)

    @property
    def open(self) -> bool:
        return not self._conn.closed


class Connection:
    """An established TCP connection (both directions)."""

    def __init__(self, fabric: "Fabric", flow: FiveTuple,
                 client_proc: Process, server_sock: BoundSocket,
                 client_sock: BoundSocket | None = None):
        self.fabric = fabric
        self.flow = flow  # client -> server orientation
        self.client_proc = client_proc
        self.server_sock = server_sock
        self.client_sock = client_sock
        self._to_server: deque[bytes] = deque()
        self._to_client: deque[bytes] = deque()
        self.closed = False
        self.client = ConnectionEnd(self, "client")
        self.server = ConnectionEnd(self, "server")

    @property
    def client_uid(self) -> int:
        return self.client_proc.creds.uid

    def send(self, side: str, data: bytes) -> int:
        """Send data; the packet traverses the *receiving* host's firewall
        (conntrack fast path after setup)."""
        if self.closed:
            raise NotConnected("connection closed")
        if side == "client":
            flow, inbox = self.flow, self._to_server
            dst = self.flow.dst_host
            sender_uid = self.client_uid
        else:
            flow, inbox = self.flow.reversed(), self._to_client
            dst = self.flow.src_host
            sender_uid = self.server_sock.owner_uid
        self.fabric.check_transit(flow.src_host, dst)
        pkt = Packet(flow, ConnState.NEW, payload_len=len(data),
                     src_uid=sender_uid)
        verdict = self.fabric.host(dst).firewall.evaluate(pkt)
        self.fabric.metrics.counter("packets_sent").inc()
        if verdict is not Verdict.ACCEPT:
            self.fabric.metrics.counter("packets_dropped").inc()
            raise TimedOut(f"packet dropped by {dst} firewall")
        inbox.append(bytes(data))
        return len(data)

    def recv(self, side: str) -> bytes:
        inbox = self._to_client if side == "client" else self._to_server
        if not inbox:
            if self.closed:
                raise NotConnected("connection closed")
            return b""
        return inbox.popleft()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            if self.client_sock is not None:
                self.client_sock.closed = True  # release the ephemeral port
            for host in (self.flow.src_host, self.flow.dst_host):
                try:
                    self.fabric.host(host).firewall.conntrack.evict(
                        self.flow, reason="close")
                except NoSuchEntity:  # pragma: no cover - host removed
                    pass


@dataclass(frozen=True)
class Datagram:
    """One UDP datagram in flight."""

    src_host: str
    src_port: int
    data: bytes


class HostStack:
    """The network stack of one node; attaches itself as ``node.net``."""

    def __init__(self, node: LinuxNode, fabric: "Fabric",
                 firewall: Firewall | None = None):
        self.node = node
        self.fabric = fabric
        self.firewall = firewall or Firewall(metrics=fabric.metrics)
        self.firewall.metrics = fabric.metrics
        self.firewall.conntrack.metrics = fabric.metrics
        self._sockets: dict[tuple[Proto, int], BoundSocket] = {}
        self._abstract: dict[str, BoundSocket] = {}
        self._ephemeral = itertools.count(EPHEMERAL_START)
        self._abstract_flow_ids = itertools.count(2)  # -1 is the UDS "port"
        node.net = self
        fabric.attach(self)

    @property
    def hostname(self) -> str:
        return self.node.name

    # -- socket table --------------------------------------------------------

    def bind(self, process: Process, port: int, proto: Proto = Proto.TCP) -> BoundSocket:
        if port < 1 or port > 65535:
            raise InvalidArgument(f"bad port {port}")
        if port < 1024 and not process.creds.is_root:
            raise PermissionError_(f"binding privileged port {port} requires root")
        key = (proto, port)
        if key in self._sockets and not self._sockets[key].closed:
            raise AddressInUse(f"{self.hostname}:{port}/{proto.value}")
        sock = BoundSocket(self.hostname, proto, port, process)
        self._sockets[key] = sock
        return sock

    def bind_ephemeral(self, process: Process, proto: Proto) -> BoundSocket:
        for _ in range(65536 - EPHEMERAL_START):
            port = next(self._ephemeral)
            if port > 65535:  # wrap and recycle released ports
                self._ephemeral = itertools.count(EPHEMERAL_START)
                port = next(self._ephemeral)
            existing = self._sockets.get((proto, port))
            if existing is None or existing.closed:
                return self.bind(process, port, proto)
        raise AddressInUse("ephemeral port range exhausted")

    def lookup(self, proto: Proto, port: int) -> BoundSocket | None:
        sock = self._sockets.get((proto, port))
        return None if sock is None or sock.closed else sock

    def socket_owner(self, proto: Proto, port: int) -> Process | None:
        """What the local identd consults: who owns this port."""
        sock = self.lookup(proto, port)
        return sock.owner if sock else None

    def close(self, sock: BoundSocket) -> None:
        sock.closed = True

    # -- TCP -------------------------------------------------------------------

    def connect(self, process: Process, dst_host: str, dst_port: int) -> ConnectionEnd:
        """Active open: SYN through the destination firewall.

        A DROP surfaces as :class:`TimedOut` (silent drop), no listener as
        :class:`ConnectionRefused` — distinguishable failures, as on real
        systems, but neither leaks the listener's identity.
        """
        src_sock = self.bind_ephemeral(process, Proto.TCP)
        dst = self.fabric.host(dst_host)
        flow = FiveTuple(Proto.TCP, self.hostname, src_sock.port,
                         dst_host, dst_port)
        pkt = Packet(flow, ConnState.NEW, src_uid=process.creds.uid)
        self.fabric.metrics.counter("connect_attempts").inc()
        try:
            self.fabric.check_transit(self.hostname, dst_host)
        except TimedOut:
            self.close(src_sock)
            self.fabric.metrics.counter("connects_denied").inc()
            raise
        verdict = dst.firewall.evaluate(pkt)
        if verdict is not Verdict.ACCEPT:
            self.close(src_sock)
            self.fabric.metrics.counter("connects_denied").inc()
            raise TimedOut(f"connect {dst_host}:{dst_port} dropped")
        listener = dst.lookup(Proto.TCP, dst_port)
        if listener is None or not listener.listening:
            dst.firewall.conntrack.evict(flow, reason="refused")
            self.close(src_sock)
            raise ConnectionRefused(f"{dst_host}:{dst_port}")
        conn = Connection(self.fabric, flow, process, listener,
                          client_sock=src_sock)
        listener.accept_queue.append(conn)
        self.fabric.metrics.counter("connects_established").inc()
        return conn.client

    def listen(self, sock: BoundSocket) -> BoundSocket:
        if sock.proto is not Proto.TCP:
            raise InvalidArgument("listen on UDP socket")
        sock.listening = True
        return sock

    def accept(self, sock: BoundSocket) -> ConnectionEnd:
        if not sock.listening:
            raise InvalidArgument("socket not listening")
        if not sock.accept_queue:
            raise TimedOut("accept: no pending connection")
        conn: Connection = sock.accept_queue.popleft()
        return conn.server

    # -- UDP -------------------------------------------------------------------

    def sendto(self, process: Process, dst_host: str, dst_port: int,
               data: bytes, *, src_sock: BoundSocket | None = None) -> None:
        """Datagram send; every datagram traverses the destination firewall,
        with conntrack providing the reply/established fast path."""
        auto_bound = src_sock is None
        if src_sock is None:
            src_sock = self.bind_ephemeral(process, Proto.UDP)
        dst = self.fabric.host(dst_host)
        flow = FiveTuple(Proto.UDP, self.hostname, src_sock.port,
                         dst_host, dst_port)
        pkt = Packet(flow, ConnState.NEW, payload_len=len(data),
                     src_uid=process.creds.uid)
        self.fabric.metrics.counter("packets_sent").inc()
        try:
            self.fabric.check_transit(self.hostname, dst_host)
        except TimedOut:
            if auto_bound:
                self.close(src_sock)
            raise
        verdict = dst.firewall.evaluate(pkt)
        if verdict is not Verdict.ACCEPT:
            self.fabric.metrics.counter("packets_dropped").inc()
            if auto_bound:
                self.close(src_sock)
            raise TimedOut(f"datagram to {dst_host}:{dst_port} dropped")
        receiver = dst.lookup(Proto.UDP, dst_port)
        if receiver is None:
            # Mirror the TCP refusal path: the verdict committed this flow
            # to conntrack, but no datagram was ever delivered.  Leaving the
            # entry behind would let the sender reach whoever binds this
            # port later via the fast path, with no UBF decision.
            dst.firewall.conntrack.evict(flow, reason="refused")
            if auto_bound:
                self.close(src_sock)
            raise ConnectionRefused(f"{dst_host}:{dst_port}/udp")
        receiver.datagrams.append(Datagram(self.hostname, src_sock.port, data))

    def recvfrom(self, sock: BoundSocket) -> Datagram:
        if not sock.datagrams:
            raise TimedOut("recvfrom: empty")
        return sock.datagrams.popleft()

    # -- abstract-namespace UNIX domain sockets ----------------------------------

    def abstract_bind(self, process: Process, name: str) -> BoundSocket:
        """Bind an abstract-namespace UDS (``\\0name``).

        Abstract sockets live in a per-host namespace with *no* filesystem
        permissions — one of the residual cross-user channels Section V
        admits remains even under the full LLSC configuration.  Nothing here
        checks credentials, faithfully."""
        if name in self._abstract:
            raise AddressInUse(f"@{name}")
        sock = BoundSocket(self.hostname, Proto.TCP, -1, process,
                           listening=True)
        self._abstract[name] = sock
        return sock

    def abstract_connect(self, process: Process, name: str) -> ConnectionEnd:
        """Connect to an abstract UDS on this host: no firewall, no DAC."""
        try:
            sock = self._abstract[name]
        except KeyError:
            raise ConnectionRefused(f"@{name}") from None
        # Deterministic flow identity: a per-stack counter in the negative
        # port space (dst is -1, sources are -2, -3, ...).  A salted
        # hash(name) here would make flows, conntrack keys and exported
        # traces differ per PYTHONHASHSEED run.
        flow = FiveTuple(Proto.TCP, self.hostname,
                         -next(self._abstract_flow_ids),
                         self.hostname, -1)
        conn = Connection(self.fabric, flow, process, sock)
        # bypass the firewall entirely: local kernel object, not IP
        self.firewall.conntrack.commit(flow)
        sock.accept_queue.append(conn)
        self.fabric.metrics.counter("abstract_uds_connects").inc()
        return conn.client

    def abstract_accept(self, name: str) -> ConnectionEnd:
        sock = self._abstract.get(name)
        if sock is None or not sock.accept_queue:
            raise TimedOut(f"@{name}: nothing pending")
        conn: Connection = sock.accept_queue.popleft()
        return conn.server

    # -- process-bound endpoint --------------------------------------------------

    def endpoint(self, process: Process) -> "SocketAPI":
        return SocketAPI(self, process)


class SocketAPI:
    """The socket syscalls available to one process (returned by
    :meth:`repro.kernel.syscalls.SyscallInterface.socket`)."""

    def __init__(self, stack: HostStack, process: Process):
        self.stack = stack
        self.process = process

    def bind(self, port: int, proto: Proto = Proto.TCP) -> BoundSocket:
        return self.stack.bind(self.process, port, proto)

    def listen(self, port: int) -> BoundSocket:
        return self.stack.listen(self.stack.bind(self.process, port, Proto.TCP))

    def accept(self, sock: BoundSocket) -> ConnectionEnd:
        return self.stack.accept(sock)

    def connect(self, host: str, port: int) -> ConnectionEnd:
        return self.stack.connect(self.process, host, port)

    def sendto(self, host: str, port: int, data: bytes,
               *, src_sock: BoundSocket | None = None) -> None:
        self.stack.sendto(self.process, host, port, data, src_sock=src_sock)

    def recvfrom(self, sock: BoundSocket) -> Datagram:
        return self.stack.recvfrom(sock)

    def close(self, sock: BoundSocket) -> None:
        self.stack.close(sock)


class Fabric:
    """The cluster interconnect: host registry + shared metrics."""

    def __init__(self, metrics: MetricSet | None = None):
        self.metrics = metrics or MetricSet()
        self.faults = FaultInjector(self.metrics)
        self._hosts: dict[str, HostStack] = {}

    def attach(self, stack: HostStack) -> None:
        self._hosts[stack.hostname] = stack

    def check_transit(self, src_host: str, dst_host: str) -> None:
        """Can a packet make it from *src_host* to *dst_host* right now?

        Raises :class:`TimedOut` when either endpoint is partitioned off the
        fabric or the path draws a loss.  Local delivery (src == dst) never
        transits the fabric and is exempt.
        """
        if src_host == dst_host:
            return
        for endpoint in (src_host, dst_host):
            if self.faults.host_unreachable(endpoint):
                self.metrics.counter("fault_unreachable_drops").inc()
                raise TimedOut(f"host unreachable: {endpoint}")
        if self.faults.drop_packet(dst_host):
            raise TimedOut(f"packet to {dst_host} lost")

    def host(self, name: str) -> HostStack:
        try:
            return self._hosts[name]
        except KeyError:
            raise NoSuchEntity(f"host {name!r}") from None

    def hosts(self) -> list[HostStack]:
        return list(self._hosts.values())
