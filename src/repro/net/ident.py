"""RFC 1413-style ident service.

Section IV-D: "During the establishment of a new connection an ident-like
query is sent from the receiving system to initiating system to get user
information, and the same query run locally."

The responder answers "who owns local port P (proto)?" with the owning
process's uid and *current* effective gid.  A cross-host query is one network
round trip; the counter feeds experiment E8's cost model.  Queries about
unowned ports return None (connection will be denied — fail closed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.firewall import Proto
from repro.net.stack import Fabric, HostStack


@dataclass(frozen=True)
class IdentReply:
    uid: int
    egid: int
    groups: frozenset[int]


class IdentService:
    """One responder per host (conceptually the identd daemon on port 113).

    ``query_local`` models the daemon consulting its own kernel socket
    table; ``query_remote`` models the receiving host's UBF daemon asking
    the initiating host's identd over the fabric (one RTT)."""

    def __init__(self, stack: HostStack):
        self.stack = stack

    def query_local(self, proto: Proto, port: int) -> IdentReply | None:
        owner = self.stack.socket_owner(proto, port)
        if owner is None:
            return None
        creds = owner.creds
        return IdentReply(uid=creds.uid, egid=creds.egid, groups=creds.groups)


def remote_ident_query(fabric: Fabric, from_host: str, target_host: str,
                       proto: Proto, port: int) -> IdentReply | None:
    """The receiving system's daemon querying the initiating system.

    Counts one round trip in the fabric metrics (priced by the E8 cost
    model).  The responder is trusted — cluster hosts run the same system
    image, matching the paper's trust model.
    """
    fabric.metrics.counter("ident_round_trips").inc()
    responder = IdentService(fabric.host(target_host))
    return responder.query_local(proto, port)
