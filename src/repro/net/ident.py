"""RFC 1413-style ident service.

Section IV-D: "During the establishment of a new connection an ident-like
query is sent from the receiving system to initiating system to get user
information, and the same query run locally."

The responder answers "who owns local port P (proto)?" with the owning
process's uid and *current* effective gid.  A cross-host query is one network
round trip; the counter feeds experiment E8's cost model.  Queries about
unowned ports return None (connection will be denied — fail closed).

Failure modes (exercised by :mod:`repro.faults`): when the target host is
unreachable, its identd is down, or the responder is too slow, the query
raises :class:`IdentUnavailable` instead of answering.  "No answer" is
deliberately a *different* outcome from "answered: nobody owns that port"
(None) — the first is a fault the UBF daemon retries and then degrades on,
the second is a definitive identity result that maps to a DROP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.errors import TimedOut
from repro.net.firewall import Proto
from repro.net.stack import Fabric, HostStack


class IdentUnavailable(TimedOut):
    """ETIMEDOUT: the ident query got no answer (host or identd down/slow).

    Subclasses :class:`~repro.kernel.errors.TimedOut` because that is what
    the querying daemon observes on the wire; kept distinct so the UBF's
    retry/degradation path can tell an infrastructure fault apart from an
    ordinary firewall drop.
    """


@dataclass(frozen=True)
class IdentReply:
    """The identd answer: uid, egid, and full group membership."""

    uid: int
    egid: int
    groups: frozenset[int]


class IdentService:
    """One responder per host (conceptually the identd daemon on port 113).

    ``query_local`` models the daemon consulting its own kernel socket
    table; ``query_remote`` models the receiving host's UBF daemon asking
    the initiating host's identd over the fabric (one RTT)."""

    def __init__(self, stack: HostStack):
        self.stack = stack

    def query_local(self, proto: Proto, port: int) -> IdentReply | None:
        owner = self.stack.socket_owner(proto, port)
        if owner is None:
            return None
        creds = owner.creds
        return IdentReply(uid=creds.uid, egid=creds.egid, groups=creds.groups)


def remote_ident_query(fabric: Fabric, from_host: str, target_host: str,
                       proto: Proto, port: int) -> IdentReply | None:
    """The receiving system's daemon querying the initiating system.

    Counts one round trip in the fabric metrics (priced by the E8 cost
    model).  The responder is *normally* trusted — cluster hosts run the
    same root-administered system image, matching the paper's trust model
    — but an ``IDENT_SPOOF`` fault (a compromised host) makes it lie; the
    paper's "and the same query run locally" clause is the querying
    daemon's defence, cross-checking the answer against the kernel-stamped
    uid on the packet.

    Raises :class:`IdentUnavailable` when the fabric's fault injector says
    the target host (or its identd) cannot answer right now; the attempt is
    counted under ``ident_query_failures`` and does **not** count as a
    completed round trip.
    """
    faults = getattr(fabric, "faults", None)
    if faults is not None and not faults.ident_attempt_ok(target_host):
        fabric.metrics.counter("ident_query_failures").inc()
        raise IdentUnavailable(f"ident query to {target_host} unanswered")
    if faults is not None:
        forged = faults.spoofed_reply(target_host)
        if forged is not None:
            # a compromised responder still costs a round trip; the lie is
            # for the querying daemon's local cross-check to catch
            fabric.metrics.counter("ident_round_trips").inc()
            return forged
    responder = IdentService(fabric.host(target_host))
    fabric.metrics.counter("ident_round_trips").inc()
    return responder.query_local(proto, port)
