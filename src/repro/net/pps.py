"""A traditional port/protocol/service (PPS) firewall — the comparison
baseline of Section IV-D.

"Rather than a traditional firewall based on the source and destination,
along with defined ports, protocols, and services (PPS), we have developed
and deployed a user-based firewall ... A traditional PPS firewall would
have no way to make an intelligent decision about a traffic flow consisting
of a novel application still in it's 'version 0' phase of development, but
this is no impediment to making user-based decisions."

:class:`PPSPolicy` is that traditional firewall: a static allowlist of
approved (proto, port) services, maintained by administrators through
change requests.  Experiment E17 quantifies the paper's argument: for a
population of novel user applications on arbitrary ports, the PPS policy
must either deny legitimate same-user traffic (the port is not approved)
or, once an admin approves the port, admit *every* user to it (ports carry
no principal).  The UBF suffers neither failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.firewall import Packet, Proto, Verdict


@dataclass(frozen=True)
class ServiceEntry:
    """One approved service in the PPS ruleset."""

    proto: Proto
    port: int
    description: str = ""


@dataclass
class PPSPolicy:
    """Static service allowlist + default verdict.

    ``approve``/``revoke`` model the administrative change process; the
    policy itself never sees *who* is talking — only the five-tuple's
    protocol and destination port, exactly like a conventional perimeter
    firewall.
    """

    services: set[ServiceEntry] = field(default_factory=set)
    default: Verdict = Verdict.DROP
    change_requests: int = 0

    def approve(self, proto: Proto, port: int, description: str = "") -> None:
        """Admin action: open a service port (one change ticket)."""
        self.services.add(ServiceEntry(proto, port, description))
        self.change_requests += 1

    def revoke(self, proto: Proto, port: int) -> None:
        self.services = {s for s in self.services
                         if (s.proto, s.port) != (proto, port)}
        self.change_requests += 1

    def is_approved(self, proto: Proto, port: int) -> bool:
        return any((s.proto, s.port) == (proto, port) for s in self.services)

    def handler(self, pkt: Packet) -> Verdict:
        """nfqueue-compatible decision callback (drop-in where the UBF
        daemon would sit, for apples-to-apples experiments)."""
        if self.is_approved(pkt.flow.proto, pkt.flow.dst_port):
            return Verdict.ACCEPT
        return self.default


@dataclass(frozen=True)
class FirewallScore:
    """Outcome counts for a firewall policy over a deployment trial."""

    legit_allowed: int = 0   # same-user connection admitted (good)
    legit_denied: int = 0    # same-user connection blocked (false deny)
    attack_allowed: int = 0  # cross-user connection admitted (false allow)
    attack_denied: int = 0   # cross-user connection blocked (good)
    admin_tickets: int = 0   # change requests filed to make things work

    @property
    def false_deny_rate(self) -> float:
        total = self.legit_allowed + self.legit_denied
        return self.legit_denied / total if total else 0.0

    @property
    def false_allow_rate(self) -> float:
        total = self.attack_allowed + self.attack_denied
        return self.attack_allowed / total if total else 0.0
