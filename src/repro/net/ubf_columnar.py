"""Columnar (struct-of-arrays) core for the UBF data plane.

The per-object decision path — one :class:`~repro.net.firewall.Packet`, one
dict probe, one log record per flow — caps a node far below the paper's
"per-packet cost near zero" promise (§IV-D) once millions of flows/sec are
in play.  This module holds the array primitives the batch fast path is
built on:

* :class:`FlowBatch` — preallocated parallel int64 columns (src-uid /
  listener-uid / listener-egid / flow-id) plus a reusable uint8 verdict
  bitmap, so a steady-state decision loop allocates nothing per flow;
* :class:`ColumnarVerdictCache` — the decision cache as flat open-addressed
  int arrays instead of per-key dict entries: vectorized batch lookup,
  two-generation rotation for LRU bounding, and logical-clock TTL expiry
  (the strict-zone posture knob);
* :func:`in_sorted` — vectorized membership of uid columns in a sorted
  egid-allow-set array (``np.searchsorted``), replacing per-row frozenset
  probes.

Verdict encoding in bitmaps: ``V_DROP=0``, ``V_ACCEPT=1``; ``V_MISS=255``
doubles as "no verdict yet" in :class:`FlowBatch` and "not cached" in
lookups.  All hashing is arithmetic on ints (the same mixing as
``ShardedVerdictCache._shard``), so layouts are PYTHONHASHSEED-stable and
two runs probe identical slot sequences.
"""

from __future__ import annotations

import numpy as np

from repro.net.firewall import Verdict
from repro.sim.metrics import MetricSet

#: verdict codes stored in uint8 bitmaps
V_DROP = 0
V_ACCEPT = 1
#: "no verdict yet" in a FlowBatch; "not cached" in a cache lookup
V_MISS = 255

#: column sentinel: identity not stamped / no listener on the port
NO_ID = -1

# open-addressed slot states (key column k0)
_EMPTY = -1
_TOMB = -2

# the ShardedVerdictCache mixing primes, kept identical so cache layout
# differences can never explain a verdict difference between paths
_P1 = 1_000_003
_P2 = 8_191


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def in_sorted(values: np.ndarray, members: np.ndarray) -> np.ndarray:
    """Vectorized ``values ∈ members`` for 1-D int arrays, *members* sorted."""
    if members.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(members, values)
    np.minimum(pos, members.size - 1, out=pos)
    return members[pos] == values


def to_verdicts(bitmap: np.ndarray) -> list[Verdict]:
    """Decode a verdict bitmap into :class:`Verdict` enums (for comparison
    against the per-object paths; the hot loop never calls this)."""
    return [Verdict.ACCEPT if b == V_ACCEPT else Verdict.DROP
            for b in bitmap]


class FlowBatch:
    """Preallocated parallel columns describing one burst of flows.

    Columns use ``NO_ID`` (-1) for "absent": an unstamped ``src_uid`` means
    the packet carried no credential (cache ineligible), a ``listener_uid``
    of -1 means nothing is bound to the destination port.  The verdict
    bitmap is part of the batch so the decision loop can reuse one buffer
    across chunks; ``load()`` re-fills in place and never reallocates.
    """

    __slots__ = ("capacity", "n", "src_uid", "listener_uid",
                 "listener_egid", "flow_id", "verdict")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("FlowBatch capacity must be >= 1")
        self.capacity = capacity
        self.n = 0
        self.src_uid = np.full(capacity, NO_ID, dtype=np.int64)
        self.listener_uid = np.full(capacity, NO_ID, dtype=np.int64)
        self.listener_egid = np.full(capacity, NO_ID, dtype=np.int64)
        self.flow_id = np.zeros(capacity, dtype=np.int64)
        self.verdict = np.full(capacity, V_MISS, dtype=np.uint8)

    def load(self, src_uid, listener_uid, listener_egid,
             flow_id=None) -> "FlowBatch":
        """Fill the first ``len(src_uid)`` rows from array-likes, in place."""
        n = len(src_uid)
        if n > self.capacity:
            raise ValueError(f"batch of {n} exceeds capacity {self.capacity}")
        self.n = n
        self.src_uid[:n] = src_uid
        self.listener_uid[:n] = listener_uid
        self.listener_egid[:n] = listener_egid
        if flow_id is not None:
            self.flow_id[:n] = flow_id
        self.verdict[:n] = V_MISS
        return self

    def push(self, src_uid: int, listener_uid: int, listener_egid: int,
             flow_id: int = 0) -> int:
        """Append one row; returns its index."""
        i = self.n
        if i >= self.capacity:
            raise ValueError("FlowBatch full")
        self.src_uid[i] = src_uid
        self.listener_uid[i] = listener_uid
        self.listener_egid[i] = listener_egid
        self.flow_id[i] = flow_id
        self.verdict[i] = V_MISS
        self.n = i + 1
        return i

    def reset(self) -> "FlowBatch":
        self.n = 0
        return self

    def verdicts(self) -> np.ndarray:
        """The live slice of the verdict bitmap (a view, not a copy)."""
        return self.verdict[: self.n]

    @property
    def nbytes(self) -> int:
        return (self.src_uid.nbytes + self.listener_uid.nbytes
                + self.listener_egid.nbytes + self.flow_id.nbytes
                + self.verdict.nbytes)


class _Generation:
    """One open-addressed table: parallel key/verdict/stamp arrays."""

    __slots__ = ("slots", "mask", "k0", "k1", "k2", "verdict", "stamp",
                 "live", "fill", "max_probe")

    def __init__(self, slots: int):
        self.slots = slots
        self.mask = slots - 1
        self.k0 = np.full(slots, _EMPTY, dtype=np.int64)
        self.k1 = np.full(slots, _EMPTY, dtype=np.int64)
        self.k2 = np.full(slots, _EMPTY, dtype=np.int64)
        self.verdict = np.zeros(slots, dtype=np.uint8)
        self.stamp = np.zeros(slots, dtype=np.int64)
        self.live = 0       # stored entries
        self.fill = 0       # occupied slots incl. tombstones
        self.max_probe = 0  # max insertion displacement ever seen

    @property
    def nbytes(self) -> int:
        return (self.k0.nbytes + self.k1.nbytes + self.k2.nbytes
                + self.verdict.nbytes + self.stamp.nbytes)


class ColumnarVerdictCache:
    """Flat open-addressed verdict cache with LRU bounding and TTL.

    Keys are (initiator_uid, listener_uid, listener_egid) triples stored in
    parallel int64 arrays; a verdict byte and a logical-time stamp ride in
    sibling arrays.  Memory per entry is 5 fixed-width cells (~34 bytes at
    50% load ≈ 68 bytes/slot pair) versus hundreds of bytes for a dict
    entry holding a tuple key — the "memory per million cached verdicts"
    number E27 reports.

    **LRU bounding** uses two rotating generations (the classic flat-cache
    trick): inserts go to the *current* table; when it reaches half of
    ``capacity`` the *previous* generation is dropped wholesale (its
    entries counted as ``reason=lru`` evictions) and current becomes
    previous.  A hit in the previous generation is promoted into current,
    so anything touched within the last ``capacity/2`` insertions survives
    rotation — segmented LRU without per-entry link fields.

    **TTL** (``ttl`` in logical decision ticks, None = no expiry) is
    checked at lookup: an entry older than ``ttl`` is tombstoned and
    counted as ``reason=ttl``.  Strict zones use this to bound how long a
    group-membership change can keep serving a stale ACCEPT.

    Probing is linear with the ``ShardedVerdictCache`` mixing primes;
    batch lookups probe all rows in lockstep vectorized passes bounded by
    the table's worst insertion displacement.
    """

    def __init__(self, capacity: int = 65_536, *,
                 metrics: MetricSet | None = None,
                 ttl: int | None = None):
        if capacity < 2:
            raise ValueError("ColumnarVerdictCache capacity must be >= 2")
        self.capacity = capacity
        self.metrics = metrics
        self.ttl = ttl
        self.evictions = 0
        self._gen_cap = max(1, capacity // 2)
        # load factor <= 0.5 per generation keeps probe chains short
        self._slots = _next_pow2(max(8, self._gen_cap * 2))
        self._cur = _Generation(self._slots)
        self._prev = _Generation(self._slots)

    # -- accounting ---------------------------------------------------------

    def _count_evictions(self, n: int, reason: str) -> None:
        if n <= 0:
            return
        self.evictions += n
        if self.metrics is not None:
            self.metrics.counter("ubf_cache_evictions_total",
                                 reason=reason).inc(n)

    def __len__(self) -> int:
        return self._cur.live + self._prev.live

    @property
    def nbytes(self) -> int:
        """Resident array bytes (both generations)."""
        return self._cur.nbytes + self._prev.nbytes

    def clear(self) -> None:
        self._cur = _Generation(self._slots)
        self._prev = _Generation(self._slots)

    # -- write path ---------------------------------------------------------

    def _rotate(self) -> None:
        self._count_evictions(self._prev.live, "lru")
        self._prev = self._cur
        self._cur = _Generation(self._slots)

    def _insert_gen(self, gen: _Generation, k0: int, k1: int, k2: int,
                    verdict: int, stamp: int) -> None:
        a0, a1, a2 = gen.k0, gen.k1, gen.k2
        slot = (k0 * _P1 + k1 * _P2 + k2) & gen.mask
        free = -1
        d = 0
        while True:
            cur = int(a0[slot])
            if cur == k0 and int(a1[slot]) == k1 and int(a2[slot]) == k2:
                gen.verdict[slot] = verdict  # refresh in place
                gen.stamp[slot] = stamp
                return
            if cur == _EMPTY:
                break
            if cur == _TOMB and free < 0:
                free = slot  # reuse, but keep scanning for the key
            slot = (slot + 1) & gen.mask
            d += 1
        if free >= 0:
            slot = free
        else:
            gen.fill += 1
        a0[slot] = k0
        a1[slot] = k1
        a2[slot] = k2
        gen.verdict[slot] = verdict
        gen.stamp[slot] = stamp
        gen.live += 1
        if d > gen.max_probe:
            gen.max_probe = d

    def insert(self, k0: int, k1: int, k2: int, verdict: int,
               now: int = 0) -> None:
        """Store one verdict byte under the int triple, evicting LRU-wise
        (generation rotation) when the bound is reached."""
        # rotate on the entry bound, or when tombstone churn (TTL/pop under
        # a long-lived generation) has eaten the probe headroom
        if (self._cur.live >= self._gen_cap
                or self._cur.fill >= (self._slots * 3) // 4):
            self._rotate()
        self._insert_gen(self._cur, k0, k1, k2, verdict, now)

    def pop(self, k0: int, k1: int, k2: int) -> int | None:
        """Remove one entry (both generations checked); returns its verdict
        code or None.  Used by dead-host purges."""
        for gen in (self._cur, self._prev):
            slot = (k0 * _P1 + k1 * _P2 + k2) & gen.mask
            for _ in range(gen.max_probe + 1):
                cur = int(gen.k0[slot])
                if cur == _EMPTY:
                    break
                if (cur == k0 and int(gen.k1[slot]) == k1
                        and int(gen.k2[slot]) == k2):
                    gen.k0[slot] = _TOMB
                    gen.live -= 1
                    return int(gen.verdict[slot])
                slot = (slot + 1) & gen.mask
        return None

    # -- read path ----------------------------------------------------------

    def _probe(self, gen: _Generation, rows: np.ndarray, slots: np.ndarray,
               k0: np.ndarray, k1: np.ndarray, k2: np.ndarray):
        """Probe *gen* for query rows in vectorized lockstep.

        ``rows`` indexes the query arrays; ``slots`` holds each row's
        current probe position.  Returns (hit_rows, hit_slots).  Chains
        stop at EMPTY; tombstones keep probing; the loop is bounded by the
        generation's worst insertion displacement.
        """
        hit_rows: list[np.ndarray] = []
        hit_slots: list[np.ndarray] = []
        for _ in range(gen.max_probe + 1):
            if rows.size == 0:
                break
            g0 = gen.k0[slots]
            hit = ((g0 == k0[rows]) & (gen.k1[slots] == k1[rows])
                   & (gen.k2[slots] == k2[rows]))
            if hit.any():
                hit_rows.append(rows[hit])
                hit_slots.append(slots[hit])
            cont = ~(hit | (g0 == _EMPTY))
            rows = rows[cont]
            slots = (slots[cont] + 1) & gen.mask
        if not hit_rows:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        return np.concatenate(hit_rows), np.concatenate(hit_slots)

    def _expire(self, gen: _Generation, rows: np.ndarray, slots: np.ndarray,
                now: int):
        """Drop TTL-expired hits in *gen*; returns the still-fresh subset."""
        if self.ttl is None or rows.size == 0:
            return rows, slots
        stale = (now - gen.stamp[slots]) > self.ttl
        n_stale = int(stale.sum())
        if n_stale:
            gen.k0[slots[stale]] = _TOMB
            gen.live -= n_stale
            self._count_evictions(n_stale, "ttl")
        fresh = ~stale
        return rows[fresh], slots[fresh]

    def lookup(self, k0: np.ndarray, k1: np.ndarray, k2: np.ndarray,
               now: int = 0) -> np.ndarray:
        """Batch probe: returns a uint8 array of verdict codes, ``V_MISS``
        where the triple is absent (or expired).  Previous-generation hits
        are promoted into the current generation (the LRU touch)."""
        n = k0.shape[0]
        out = np.full(n, V_MISS, dtype=np.uint8)
        if n == 0:
            return out
        home = ((k0 * _P1 + k1 * _P2 + k2)
                & self._cur.mask).astype(np.intp)
        rows = np.arange(n, dtype=np.intp)
        crows, cslots = self._probe(self._cur, rows, home, k0, k1, k2)
        crows, cslots = self._expire(self._cur, crows, cslots, now)
        if crows.size:
            out[crows] = self._cur.verdict[cslots]
        missed = np.ones(n, dtype=bool)
        missed[crows] = False
        prows = rows[missed]
        if prows.size:
            prows, pslots = self._probe(self._prev, prows, home[prows],
                                        k0, k1, k2)
            prows, pslots = self._expire(self._prev, prows, pslots, now)
            if prows.size:
                out[prows] = self._prev.verdict[pslots]
                self._promote(prows, pslots, k0, k1, k2)
        return out

    def _promote(self, rows: np.ndarray, slots: np.ndarray,
                 k0: np.ndarray, k1: np.ndarray, k2: np.ndarray) -> None:
        """Move previous-generation hits into the current generation so a
        rotation won't drop recently-touched entries.  Promotion never
        forces a rotation (that would churn mid-lookup); rows that don't
        fit simply stay where they are until their next touch."""
        gen = self._prev
        for j in range(rows.size):
            if (self._cur.live >= self._gen_cap
                    or self._cur.fill >= (self._slots * 3) // 4):
                break
            r = int(rows[j])
            s = int(slots[j])
            self._insert_gen(self._cur, int(k0[r]), int(k1[r]), int(k2[r]),
                             int(gen.verdict[s]), int(gen.stamp[s]))
            gen.k0[s] = _TOMB  # moved, not evicted: no eviction count
            gen.live -= 1
