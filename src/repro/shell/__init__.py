"""Shell-command output rendering (ls -l, ps aux, squeue, getfacl, ...),
always through the session's credentials."""

from repro.shell.slurm_cli import (
    parse_array,
    parse_mem,
    parse_time,
    sbatch,
    scancel,
    scontrol_show_job,
    scontrol_show_node,
)
from repro.shell.commands import (
    getfacl_cmd,
    id_cmd,
    ls_l,
    module_avail_cmd,
    ps_aux,
    sacct_cmd,
    sinfo_cmd,
    squeue_cmd,
    sreport_cmd,
)

__all__ = [
    "getfacl_cmd", "id_cmd", "ls_l", "module_avail_cmd", "ps_aux",
    "sacct_cmd", "sinfo_cmd", "squeue_cmd", "sreport_cmd",
    "parse_array", "parse_mem", "parse_time", "sbatch", "scancel",
    "scontrol_show_job", "scontrol_show_node",
]
