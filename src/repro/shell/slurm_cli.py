"""sbatch/scancel/scontrol: the command-line face of the scheduler.

Users interact with Slurm through option strings, and several of the
paper's controls surface exactly there: PrivateData turns ``scontrol show
job`` for someone else's job into "Invalid job id" (not "permission
denied" — existence itself is hidden), partitions enforce their time
limits at submit, and ``scancel`` of a foreign job is refused.

Supported sbatch options (the common subset)::

    -J/--job-name NAME      -n/--ntasks N         -c/--cpus-per-task N
    -p/--partition NAME     --mem-per-cpu SIZE    --gres=gpu:N
    -t/--time SPEC          --exclusive           --array=SPEC
    COMMAND [ARGS...]       (the remainder)

Time specs: ``MM``, ``MM:SS``, ``HH:MM:SS``, ``D-HH:MM:SS``.  Memory
sizes: ``500``/``500M``/``2G``.  Array specs: ``0-4``, ``1,3,7``,
``0-9%2`` (throttle parsed and ignored, as documented).
"""

from __future__ import annotations

import re
import shlex

from repro.core.cluster import Session
from repro.kernel.errors import InvalidArgument, PermissionError_
from repro.sched.jobs import Job, JobSpec


def parse_time(spec: str) -> float:
    """Slurm time spec → seconds."""
    m = re.fullmatch(r"(?:(\d+)-)?(?:(\d+):)?(?:(\d+):)?(\d+)", spec)
    if not m:
        raise InvalidArgument(f"bad time spec {spec!r}")
    days, a, b, c = m.groups()
    tail = int(c)
    if days is not None:
        # D-HH[:MM[:SS]]
        hh = int(a) if a else 0
        mm = int(b) if b else 0
        ss = tail if (a and b) else 0
        if a and not b:
            mm, ss = tail, 0
        if not a:
            hh, mm, ss = tail, 0, 0
        return float(int(days) * 86400 + hh * 3600 + mm * 60 + ss)
    if a and b:          # HH:MM:SS
        return float(int(a) * 3600 + int(b) * 60 + tail)
    if a:                # MM:SS
        return float(int(a) * 60 + tail)
    return float(tail * 60)  # plain minutes


def parse_mem(spec: str) -> int:
    """``500``/``500M``/``2G`` → MB."""
    m = re.fullmatch(r"(\d+)([MmGg]?)", spec)
    if not m:
        raise InvalidArgument(f"bad memory spec {spec!r}")
    n, unit = int(m.group(1)), m.group(2).upper()
    return n * 1024 if unit == "G" else n


def parse_array(spec: str) -> list[int]:
    """``0-4`` / ``1,3,7`` / ``0-9%2`` → indices (throttle ignored)."""
    spec = spec.split("%", 1)[0]
    out: list[int] = []
    for part in spec.split(","):
        if "-" in part:
            lo, hi = part.split("-", 1)
            if int(hi) < int(lo):
                raise InvalidArgument(f"bad array range {part!r}")
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(part))
    if not out:
        raise InvalidArgument(f"empty array spec {spec!r}")
    return out


def _parse_sbatch(argv: list[str]) -> tuple[dict, list[int] | None, float]:
    kw: dict = {}
    array: list[int] | None = None
    duration = 3600.0
    i = 0

    def val(flag: str) -> str:
        nonlocal i
        i += 1
        if i >= len(argv):
            raise InvalidArgument(f"{flag} needs a value")
        return argv[i]

    while i < len(argv):
        arg = argv[i]
        if arg in ("-J", "--job-name"):
            kw["name"] = val(arg)
        elif arg.startswith("--job-name="):
            kw["name"] = arg.split("=", 1)[1]
        elif arg in ("-n", "--ntasks"):
            kw["ntasks"] = int(val(arg))
        elif arg.startswith("--ntasks="):
            kw["ntasks"] = int(arg.split("=", 1)[1])
        elif arg in ("-c", "--cpus-per-task"):
            kw["cores_per_task"] = int(val(arg))
        elif arg.startswith("--cpus-per-task="):
            kw["cores_per_task"] = int(arg.split("=", 1)[1])
        elif arg in ("-p", "--partition"):
            kw["partition"] = val(arg)
        elif arg.startswith("--partition="):
            kw["partition"] = arg.split("=", 1)[1]
        elif arg.startswith("--mem-per-cpu"):
            spec = arg.split("=", 1)[1] if "=" in arg else val(arg)
            kw["mem_mb_per_task"] = parse_mem(spec)
        elif arg.startswith("--gres=gpu:"):
            kw["gpus_per_task"] = int(arg.split(":", 1)[1])
        elif arg in ("-t", "--time"):
            duration = parse_time(val(arg))
        elif arg.startswith("--time="):
            duration = parse_time(arg.split("=", 1)[1])
        elif arg == "--exclusive":
            kw["exclusive"] = True
        elif arg.startswith("--array="):
            array = parse_array(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            raise InvalidArgument(f"unsupported sbatch option {arg!r}")
        else:
            kw["command"] = " ".join(argv[i:])
            break
        i += 1
    return kw, array, duration


def sbatch(session: Session, cmdline: str) -> tuple[str, list[Job]]:
    """Run an ``sbatch`` line for the session's user.

    Returns (output text, submitted jobs).  Array submissions return one
    job per element, like real Slurm.
    """
    kw, array, duration = _parse_sbatch(shlex.split(cmdline))
    cluster = session.cluster
    kw.setdefault("name", "sbatch")
    kw.setdefault("command", "./run.sh")
    spec = JobSpec(user=session.user, workdir=f"/home/{session.user.name}",
                   **kw)
    if array is None:
        job = cluster.scheduler.submit(spec, duration)
        return f"Submitted batch job {job.job_id}", [job]
    jobs = cluster.scheduler.submit_array(spec, [duration] * len(array))
    for job, idx in zip(jobs, array):
        job.array_index = idx
    return (f"Submitted batch job {jobs[0].array_id} "
            f"(array of {len(jobs)})"), jobs


def scancel(session: Session, job_id: int) -> str:
    """``scancel <id>``: owner or root; PrivateData hides foreign ids."""
    cluster = session.cluster
    job = cluster.scheduler.jobs.get(job_id)
    view = cluster.scheduler_view
    if job is None or (view.private.jobs
                       and not view._privileged(session.user)
                       and job.uid != session.user.uid):
        return f"scancel: error: Invalid job id {job_id}"
    try:
        cluster.scheduler.cancel(job, by=session.user)
    except PermissionError_:
        return (f"scancel: error: Kill job error on job id {job_id}: "
                "Access/permission denied")
    return ""


def scontrol_show_node(session: Session, node_name: str) -> str:
    """``scontrol show node`` — capacity/occupancy state (public shape
    data; which *user* holds the node is not revealed to non-operators
    under PrivateData)."""
    cluster = session.cluster
    try:
        cn = cluster.scheduler.nodes[node_name]
    except KeyError:
        return f"Node {node_name} not found"
    if cn.failed:
        state = "DOWN"
    elif cn.drained:
        state = "DRAIN"
    elif cn.idle:
        state = "IDLE"
    elif cn.free_cores == 0:
        state = "ALLOCATED"
    else:
        state = "MIXED"
    lines = [
        f"NodeName={cn.name} State={state}",
        f"   CPUTot={cn.total_cores} CPUAlloc={cn.used_cores}",
        f"   RealMemory={cn.total_mem_mb} AllocMem={cn.used_mem_mb}",
        f"   Gres=gpu:{len(cn.gpus)}"
        f" GresUsed=gpu:{len(cn.used_gpu_indices)}",
    ]
    view = cluster.scheduler_view
    if view._privileged(session.user) or not view.private.jobs:
        uids = cn.running_uids(cluster.scheduler.jobs)
        users = ",".join(sorted(cluster.userdb.user(u).name for u in uids))
        lines.append(f"   AllocUsers={users or '(none)'}")
    return "\n".join(lines)


def scontrol_show_job(session: Session, job_id: int) -> str:
    """``scontrol show job <id>`` — PrivateData-gated existence."""
    cluster = session.cluster
    job = cluster.scheduler.jobs.get(job_id)
    view = cluster.scheduler_view
    if job is None or (view.private.jobs
                       and not view._privileged(session.user)
                       and job.uid != session.user.uid):
        return f"slurm_load_jobs error: Invalid job id specified ({job_id})"
    lines = [
        f"JobId={job.job_id} JobName={job.spec.name}",
        f"   UserId={job.spec.user.name}({job.uid})"
        f" Partition={job.spec.partition}",
        f"   JobState={job.state.name} Reason={job.reason or 'None'}",
        f"   NumTasks={job.spec.ntasks}"
        f" CPUs/Task={job.spec.cores_per_task}"
        f" MinMemoryCPU={job.spec.mem_mb_per_task}M",
        f"   NodeList={','.join(job.nodes) or '(null)'}",
        f"   Command={job.spec.command}",
        f"   WorkDir={job.spec.workdir}",
        f"   StdOut={job.stdout_path}",
    ]
    if job.array_id is not None:
        lines.insert(1, f"   ArrayJobId={job.array_id}"
                        f" ArrayTaskId={job.array_index}")
    return "\n".join(lines)
