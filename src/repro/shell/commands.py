"""Textual command output: what users actually see at the prompt.

The paper's usability claims are about what commands *show*: "users only
see the things they should care about" (ps under hidepid), squeue listing
only your own jobs, ``ls -l`` showing the smask-stripped modes.  This module
renders the classic command outputs from a :class:`~repro.core.cluster.
Session`, so examples and tests can assert on the exact text a user reads.

Every function returns a string (joined lines); nothing here bypasses the
syscall façade, so output is always what the session's credentials are
entitled to see.
"""

from __future__ import annotations

from repro.core.cluster import Cluster, Session
from repro.kernel.errors import NoSuchEntity
from repro.kernel.vfs import FileKind, Stat
from repro.sched.jobs import JobState

_KIND_CHAR = {
    FileKind.DIR: "d",
    FileKind.FILE: "-",
    FileKind.DEVICE: "c",
    FileKind.SOCKET: "s",
    FileKind.SYMLINK: "l",
}


def _perm_string(mode: int, kind: FileKind) -> str:
    out = [_KIND_CHAR[kind]]
    for shift in (6, 3, 0):
        bits = (mode >> shift) & 7
        out.append("r" if bits & 4 else "-")
        out.append("w" if bits & 2 else "-")
        out.append("x" if bits & 1 else "-")
    if mode & 0o1000:  # sticky
        out[9] = "t" if out[9] == "x" else "T"
    if mode & 0o2000:  # setgid
        out[6] = "s" if out[6] == "x" else "S"
    if mode & 0o4000:  # setuid
        out[3] = "s" if out[3] == "x" else "S"
    return "".join(out)


def _name_of(session: Session, uid_or_gid: int, *, group: bool) -> str:
    db = session.cluster.userdb
    try:
        return db.group(uid_or_gid).name if group else db.user(uid_or_gid).name
    except NoSuchEntity:
        return str(uid_or_gid)


def _ls_row(session: Session, name: str, st: Stat) -> str:
    owner = _name_of(session, st.uid, group=False)
    grp = _name_of(session, st.gid, group=True)
    return (f"{_perm_string(st.mode, st.kind)} {st.nlink:>2} "
            f"{owner:<8} {grp:<8} {st.size:>8} {name}")


def ls_l(session: Session, path: str) -> str:
    """``ls -l path`` (directory listing or single entry)."""
    st = session.sys.stat(path)
    if st.kind is not FileKind.DIR:
        return _ls_row(session, path, session.sys.lstat(path))
    rows = []
    for name in session.sys.listdir(path):
        child = f"{path.rstrip('/')}/{name}"
        rows.append(_ls_row(session, name, session.sys.lstat(child)))
    return "\n".join(rows)


def ps_aux(session: Session) -> str:
    """``ps aux`` — hidepid-filtered, like the kernel serves it."""
    header = f"{'USER':<10} {'PID':>6} {'RSS':>8} {'STAT':<4} COMMAND"
    rows = [header]
    for entry in session.sys.ps():
        user = _name_of(session, entry.uid, group=False)
        rows.append(f"{user:<10} {entry.pid:>6} {entry.rss_mb:>7}M "
                    f"{entry.state:<4} {entry.cmdline}")
    return "\n".join(rows)


def id_cmd(session: Session) -> str:
    """``id`` — the session's principal and groups."""
    creds = session.creds
    db = session.cluster.userdb
    name = _name_of(session, creds.uid, group=False)
    egid_name = _name_of(session, creds.egid, group=True)
    groups = ",".join(
        f"{g}({_name_of(session, g, group=True)})"
        for g in sorted(creds.groups))
    return (f"uid={creds.uid}({name}) gid={creds.egid}({egid_name}) "
            f"groups={groups}")


def getfacl_cmd(session: Session, path: str) -> str:
    """``getfacl path``."""
    st = session.sys.stat(path)
    lines = [
        f"# file: {path.lstrip('/')}",
        f"# owner: {_name_of(session, st.uid, group=False)}",
        f"# group: {_name_of(session, st.gid, group=True)}",
        f"user::{_rwx((st.mode >> 6) & 7)}",
    ]
    for entry in session.sys.getfacl(path):
        qualifier = _name_of(session, entry.qualifier,
                             group=entry.tag == "group")
        lines.append(f"{entry.tag}:{qualifier}:{_rwx(entry.perms)}")
    lines.append(f"group::{_rwx((st.mode >> 3) & 7)}")
    lines.append(f"other::{_rwx(st.mode & 7)}")
    return "\n".join(lines)


def _rwx(bits: int) -> str:
    return (("r" if bits & 4 else "-") + ("w" if bits & 2 else "-")
            + ("x" if bits & 1 else "-"))


_STATE_NAME = {
    JobState.PENDING: "PD", JobState.RUNNING: "R",
    JobState.COMPLETED: "CD", JobState.FAILED: "F",
    JobState.CANCELLED: "CA", JobState.NODE_FAIL: "NF",
}


def squeue_cmd(session: Session) -> str:
    """``squeue`` — PrivateData-filtered."""
    header = (f"{'JOBID':>7} {'PARTITION':<10} {'NAME':<16} {'USER':<10} "
              f"{'ST':<3} NODELIST")
    rows = [header]
    for r in session.cluster.scheduler_view.squeue(session.user):
        job = session.cluster.scheduler.jobs[r.job_id]
        rows.append(f"{r.job_id:>7} {job.spec.partition:<10} "
                    f"{r.job_name[:16]:<16} {r.user_name:<10} "
                    f"{_STATE_NAME[r.state]:<3} {','.join(r.nodes) or '-'}")
    return "\n".join(rows)


def sacct_cmd(session: Session) -> str:
    """``sacct`` — PrivateData-filtered accounting."""
    header = (f"{'JOBID':>7} {'JOBNAME':<16} {'USER':<10} {'STATE':<10} "
              f"{'CORE-SEC':>10}")
    rows = [header]
    for r in session.cluster.scheduler_view.sacct(session.user):
        rows.append(f"{r.job_id:>7} {r.job_name[:16]:<16} "
                    f"{r.user_name:<10} {r.state.name:<10} "
                    f"{r.core_seconds:>10.1f}")
    return "\n".join(rows)


def sreport_cmd(session: Session, *, t_end: float,
                n_buckets: int = 6) -> str:
    """``sreport cluster UserUtilization`` — PrivateData-gated."""
    summary = session.cluster.scheduler_view.sreport(
        session.user, t_end=t_end, n_buckets=n_buckets)
    header = f"{'USER':<10} {'JOBS':>5} {'CORE-SEC':>12}  USAGE-BY-BUCKET"
    rows = [header]
    for user, total in summary.top_users(k=100):
        series = " ".join(f"{v:>8.0f}" for v in summary.series[user])
        rows.append(f"{user:<10} {summary.jobs_by_user[user]:>5} "
                    f"{total:>12.1f}  {series}")
    return "\n".join(rows)


def sinfo_cmd(cluster: Cluster) -> str:
    """``sinfo`` — partitions and node occupancy (public shape data)."""
    header = f"{'PARTITION':<10} {'NODES':>5} {'POLICY':<16} NODELIST"
    rows = [header]
    for p in cluster.scheduler.partitions.values():
        policy = (p.policy_override or cluster.scheduler.config.policy).value
        rows.append(f"{p.name:<10} {len(p.node_names):>5} {policy:<16} "
                    f"{','.join(p.node_names)}")
    return "\n".join(rows)


def module_avail_cmd(session: Session, module_system) -> str:
    """``module avail`` — DAC-filtered."""
    names = module_system.avail(session.process)
    if not names:
        return "No modules available."
    width = max(len(n) for n in names) + 2
    per_row = max(1, 78 // width)
    lines = []
    for i in range(0, len(names), per_row):
        lines.append("".join(n.ljust(width)
                             for n in names[i:i + per_row]).rstrip())
    return "\n".join(lines)
