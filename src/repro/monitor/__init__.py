"""Monitoring substrate: security event log, cluster wiring, probe
detection — the operations side of enforced separation."""

from repro.monitor.events import (
    EventKind,
    ProbeAlert,
    SecurityEvent,
    SecurityEventLog,
    detect_probe_patterns,
)
from repro.monitor.wiring import (
    AuditedSyscalls,
    audited_seepid,
    audited_session,
    audited_smask_relax,
    instrument_cluster,
)

__all__ = [
    "EventKind", "ProbeAlert", "SecurityEvent", "SecurityEventLog",
    "detect_probe_patterns",
    "AuditedSyscalls", "audited_seepid", "audited_session",
    "audited_smask_relax", "instrument_cluster",
]
