"""Wiring the security event log into a built cluster.

``instrument_cluster`` attaches a :class:`SecurityEventLog` to an existing
:class:`~repro.core.cluster.Cluster`:

* every UBF daemon's denial path emits :data:`EventKind.NET_DENY`;
* every compute node's pam_slurm emits :data:`EventKind.PAM_DENY`;
* an :class:`AuditedSyscalls` wrapper (handed out by
  :func:`audited_session`) emits FS/PROC denials for the calls user code
  makes through it;
* the seepid/smask_relax tools emit ADMIN escalation records when invoked
  through :func:`audited_seepid` / :func:`audited_smask_relax`;
* every GPU device's deny hook emits :data:`EventKind.GPU_DENY` when the
  VFS refuses an open of its ``/dev`` character file;
* the portal emits :data:`EventKind.PORTAL_DENY` on refused requests.

Instrumentation is additive — enforcement behaviour is unchanged; only
observations are recorded.  ``instrument_cluster`` is idempotent: calling
it again returns the already-attached log instead of double-wrapping the
enforcement points (which would emit duplicate events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.kernel.errors import AccessDenied, KernelError, NoSuchProcess, PermissionError_
from repro.kernel.pam import PamSlurm
from repro.monitor.events import EventKind, SecurityEventLog
from repro.net.firewall import Verdict

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle (the
    # portal, which core.cluster builds, reports events through this layer)
    from repro.core.cluster import Cluster, Session


def instrument_cluster(cluster: Cluster) -> SecurityEventLog:
    """Attach a log; returns it (also stored as ``cluster.security_log``).

    Idempotent: a second call returns the existing log unchanged, so the
    UBF daemons and PAM stacks are never wrapped twice.
    """
    existing = getattr(cluster, "security_log", None)
    if existing is not None:
        return existing
    log = SecurityEventLog()
    cluster.security_log = log  # type: ignore[attr-defined]

    # An already-attached separation oracle starts emitting ORACLE events
    # here (attach order is free, as with the telemetry spine).
    oracle = getattr(cluster, "oracle", None)
    if oracle is not None and oracle.events is None:
        oracle.events = log

    # Node-lifecycle transitions (fencing, hook failures, remediation,
    # health-monitor state changes) share the same audit trail.
    if cluster.scheduler.events is None:
        cluster.scheduler.events = log
    health = getattr(cluster, "health", None)
    if health is not None and health.events is None:
        health.events = log

    # UBF denials: wrap each daemon's decide()
    for daemon in cluster.ubf_daemons.values():
        original = daemon.decide

        def wrapped(pkt, _orig=original, _daemon=daemon):
            verdict = _orig(pkt)
            entry = _daemon.log[-1] if _daemon.log else None
            if entry is not None and entry.reason.startswith("degraded"):
                # Infrastructure fault, not a principal's denial: record it
                # distinctly so posture/probe views don't blame the user.
                log.emit(cluster.engine.now, EventKind.DEGRADED,
                         entry.initiator_uid if entry.initiator_uid
                         is not None else -1,
                         f"{pkt.flow.dst_host}:{pkt.flow.dst_port}",
                         f"{verdict.value}: {entry.reason}",
                         node=pkt.flow.src_host)
            elif verdict is Verdict.DROP and entry is not None:
                log.emit(cluster.engine.now, EventKind.NET_DENY,
                         entry.initiator_uid if entry.initiator_uid
                         is not None else -1,
                         f"{pkt.flow.dst_host}:{pkt.flow.dst_port}",
                         entry.reason,
                         node=pkt.flow.src_host)
            return verdict

        daemon.stack.firewall.bind_nfqueue(wrapped)

    # pam_slurm denials: wrap the account() of each stack's PamSlurm
    for cn in cluster.compute_nodes:
        for module in cn.node.pam.modules:
            if isinstance(module, PamSlurm):
                original_account = module.account

                def account(user, node_name, _orig=original_account):
                    try:
                        return _orig(user, node_name)
                    except AccessDenied:
                        log.emit(cluster.engine.now, EventKind.PAM_DENY,
                                 user.uid, node_name, "pam_slurm refusal",
                                 node=node_name)
                        raise

                # dataclass instances: bind per-instance override
                object.__setattr__(module, "account", account)

    # GPU /dev denials: arm each device's deny hook (the VFS calls it when
    # DAC refuses an open; see GPUDevice.on_access_denied)
    for cn in cluster.compute_nodes:
        for gpu in cn.gpus:
            def gpu_deny(creds, path, _node=cn.node.name):
                log.emit(cluster.engine.now, EventKind.GPU_DENY,
                         creds.uid, f"{_node}:{path}",
                         "gpu device open refused", node=_node)
            gpu.deny_hook = gpu_deny

    # portal denials: the gateway emits PORTAL_DENY through this log
    cluster.portal.event_log = log

    # an already-attached Telemetry gets the event stream too
    telemetry = getattr(cluster, "telemetry", None)
    if telemetry is not None and telemetry.events is None:
        telemetry.events = log
    return log


@dataclass
class AuditedSyscalls:
    """Pass-through syscall wrapper that records FS/PROC denials."""

    session: Session
    log: SecurityEventLog

    def _emit(self, kind: EventKind, target: str, err: KernelError) -> None:
        self.log.emit(self.session.cluster.engine.now, kind,
                      self.session.creds.uid, target, err.errname,
                      node=self.session.node.name)

    def __getattr__(self, name):
        inner = getattr(self.session.sys, name)
        if not callable(inner):
            return inner

        def call(*args, **kwargs):
            try:
                return inner(*args, **kwargs)
            except (AccessDenied, PermissionError_, NoSuchProcess) as e:
                target = str(args[0]) if args else name
                kind = (EventKind.PROC_DENY
                        if name.startswith(("read_proc", "kill", "ps",
                                            "list_proc"))
                        else EventKind.FS_DENY)
                self._emit(kind, target, e)
                raise

        return call


def audited_session(session: Session,
                    log: SecurityEventLog) -> AuditedSyscalls:
    """Wrap *session*'s syscalls so denials are recorded in *log*."""
    return AuditedSyscalls(session, log)


def audited_seepid(cluster: Cluster, session: Session) -> Session:
    """seepid with an ADMIN escalation audit record."""
    from repro.core import tools as _tools
    result = _tools.seepid(cluster, session)
    getattr(cluster, "security_log").emit(
        cluster.engine.now, EventKind.ADMIN, session.creds.uid,
        session.node.name, "seepid exemption added",
        node=session.node.name)
    return result


def audited_smask_relax(cluster: Cluster, session: Session,
                        **kw) -> Session:
    """smask_relax with an ADMIN escalation audit record."""
    from repro.core import tools as _tools
    result = _tools.smask_relax(cluster, session, **kw)
    getattr(cluster, "security_log").emit(
        cluster.engine.now, EventKind.ADMIN, session.creds.uid,
        session.node.name, "smask_relax shell opened",
        node=session.node.name)
    return result
