"""Security event log: the audit trail behind the separation controls.

The paper's systems don't just *block* cross-user actions — operations
staff watch the blocks ("system monitoring" is one of the SuperCloud
cross-ecosystem innovations the introduction lists, and the UBF/PAM logs
are what made the CVE-2020-27746 week legible).  This module gives every
enforcement point a common structured sink:

* the UBF daemon reports connection denials,
* pam_slurm reports refused compute-node logins,
* the syscall façade (when wrapped with :func:`audited`) reports
  EACCES/EPERM filesystem denials,
* the scheduler reports refused cancels.

:func:`detect_probe_patterns` is the simple operations heuristic layered on
top: a principal accumulating many *distinct-target* denials in a short
window looks like a scanner, not a typo.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """Kinds of security event the enforcement points emit."""

    NET_DENY = "net-deny"
    PAM_DENY = "pam-deny"
    FS_DENY = "fs-deny"
    PROC_DENY = "proc-deny"
    SCHED_DENY = "sched-deny"
    GPU_DENY = "gpu-deny"        # refused open of a GPU /dev character file
    PORTAL_DENY = "portal-deny"  # portal request refused (auth failure)
    ADMIN = "admin"  # seepid/smask_relax invocations (escalation audit)
    DEGRADED = "degraded"  # UBF verdict under identity-infrastructure fault
    ORACLE = "oracle-violation"  # separation invariant violated (repro.oracle)
    NODE_LIFECYCLE = "node-lifecycle"  # fencing/remediation/rejoin transitions
    ALERT = "alert"  # declarative alert rule fired (repro.obs.alerts)
    ATTACK = "attack"  # scripted red-team probe ran (repro.attacks campaign)


@dataclass(frozen=True)
class SecurityEvent:
    """One auditable enforcement decision: who, what, and why.

    ``job_id``/``node`` are the causal-attribution stamps the forensic
    audit plane (:mod:`repro.obs.audit`) uses to tie a decision back to
    the submitting job; emitters that know them fill them in, everything
    older keeps the defaults (the fields are additive).
    """

    time: float
    kind: EventKind
    subject_uid: int          # who attempted
    target: str               # what was touched (path, host:port, node, pid)
    detail: str = ""
    #: job the acting process belonged to, when the emitter knows it
    job_id: int | None = None
    #: node the action originated on (attribution resolves uid+node → job)
    node: str | None = None


@dataclass
class SecurityEventLog:
    """Append-only in-memory event store with simple query methods.

    ``subscribe`` registers a sink callable invoked with every event as it
    is recorded — how the audit trail and flight recorder ride the stream
    without the enforcement points knowing they exist.
    """

    events: list[SecurityEvent] = field(default_factory=list)
    #: sink callables fed each event at record time (order of subscription)
    sinks: list = field(default_factory=list)

    def record(self, event: SecurityEvent) -> None:
        self.events.append(event)
        for sink in self.sinks:
            sink(event)

    def emit(self, time: float, kind: EventKind, subject_uid: int,
             target: str, detail: str = "", *, job_id: int | None = None,
             node: str | None = None) -> None:
        self.record(SecurityEvent(time, kind, subject_uid, target, detail,
                                  job_id=job_id, node=node))

    def subscribe(self, sink) -> None:
        """Register *sink* (callable taking one event); idempotent."""
        if sink not in self.sinks:
            self.sinks.append(sink)

    # -- queries -------------------------------------------------------------

    def by_subject(self, uid: int) -> list[SecurityEvent]:
        return [e for e in self.events if e.subject_uid == uid]

    def by_kind(self, kind: EventKind) -> list[SecurityEvent]:
        return [e for e in self.events if e.kind is kind]

    def window(self, start: float, end: float) -> list[SecurityEvent]:
        """Events in the half-open interval ``[start, end)``.

        Half-open is the module-wide convention (shared with
        :func:`detect_probe_patterns`): adjacent windows tile the timeline
        with no event counted twice.
        """
        return [e for e in self.events if start <= e.time < end]

    def counts(self) -> dict[EventKind, int]:
        out: dict[EventKind, int] = defaultdict(int)
        for e in self.events:
            out[e.kind] += 1
        return dict(out)


@dataclass(frozen=True)
class ProbeAlert:
    """A principal whose denial pattern crossed the probe thresholds."""

    subject_uid: int
    denials: int
    distinct_targets: int
    kinds: tuple[str, ...]
    first_time: float
    last_time: float


def detect_probe_patterns(log: SecurityEventLog, *,
                          min_denials: int = 5,
                          min_distinct_targets: int = 3,
                          window: float | None = None,
                          now: float | None = None) -> list[ProbeAlert]:
    """Flag principals whose denial pattern looks like active probing.

    A legitimate user fat-fingers the *same* path or port a few times; a
    scanner touches *many distinct targets*.  Both thresholds must be met.
    ``window`` restricts to the trailing interval ending at ``now``, using
    the same half-open ``[now - window, now)`` convention as
    :meth:`SecurityEventLog.window`.  When ``now`` is omitted the window is
    anchored at the newest event (which is then included: the trailing
    interval ``[last - window, ∞)``).
    """
    events = log.events
    if window is not None:
        if now is not None:
            events = log.window(now - window, now)
        else:
            last = max((e.time for e in events), default=0.0)
            events = [e for e in events if e.time >= last - window]
    per_subject: dict[int, list[SecurityEvent]] = defaultdict(list)
    for e in events:
        # ADMIN is audit, not denial; DEGRADED blames infrastructure, not
        # the principal; ORACLE blames the *enforcement code*;
        # NODE_LIFECYCLE blames hardware; ALERT is a derived signal over
        # events already counted; ATTACK marks a *scripted* campaign probe
        # whose denials are already recorded under their own kinds — none
        # should trip the scanner heuristic.
        if e.kind not in (EventKind.ADMIN, EventKind.DEGRADED,
                          EventKind.ORACLE, EventKind.NODE_LIFECYCLE,
                          EventKind.ALERT, EventKind.ATTACK):
            per_subject[e.subject_uid].append(e)
    alerts = []
    for uid, evs in per_subject.items():
        targets = {e.target for e in evs}
        if len(evs) >= min_denials and len(targets) >= min_distinct_targets:
            alerts.append(ProbeAlert(
                subject_uid=uid,
                denials=len(evs),
                distinct_targets=len(targets),
                kinds=tuple(sorted({e.kind.value for e in evs})),
                first_time=min(e.time for e in evs),
                last_time=max(e.time for e in evs)))
    return sorted(alerts, key=lambda a: -a.denials)
