"""Discrete-event simulation engine, metrics and RNG utilities."""

from repro.sim.engine import Engine, SimClock
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    Samples,
    TimeWeighted,
)
from repro.sim.rng import DEFAULT_SEED, make_rng, poisson_arrivals, spawn

__all__ = [
    "Engine", "SimClock",
    "Counter", "Gauge", "Histogram", "MetricSet", "Samples", "TimeWeighted",
    "DEFAULT_SEED", "make_rng", "poisson_arrivals", "spawn",
]
