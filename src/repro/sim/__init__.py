"""Discrete-event simulation engine, sharding, metrics and RNG utilities."""

from repro.sim.engine import Engine, SimClock
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    Samples,
    TimeWeighted,
)
from repro.sim.rng import DEFAULT_SEED, make_rng, poisson_arrivals, spawn, substream
from repro.sim.shard import (
    MergeProtocolError,
    Outbox,
    ShardedEngine,
    ShardHost,
    ShardMessage,
    ShardReport,
    SimZone,
)

__all__ = [
    "Engine", "SimClock",
    "Counter", "Gauge", "Histogram", "MetricSet", "Samples", "TimeWeighted",
    "DEFAULT_SEED", "make_rng", "poisson_arrivals", "spawn", "substream",
    "MergeProtocolError", "Outbox", "ShardedEngine", "ShardHost",
    "ShardMessage", "ShardReport", "SimZone",
]
