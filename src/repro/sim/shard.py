"""Sharded simulation engine: epoch-stepped zones with a deterministic merge.

E24 tops out around 4k nodes / 1e6 events because the whole fleet shares
one event loop.  This module scales the simulation out the way the paper's
traffic patterns allow: cross-partition interactions (UBF ident queries,
portal forwards, job transfers, dead-host purges) are *narrow*, so
partitions/zones can become independently steppable **shards** synchronized
only at epoch boundaries — conservative parallel discrete-event simulation
with the cross-shard message latency as the lookahead.

The protocol (DESIGN.md "Sharded simulation architecture"):

* the unit of simulation is a **zone**: an object owning its own state
  (scheduler, nodes, RNG substream) that talks to other zones *only*
  through :class:`ShardMessage` values sent via its :class:`Outbox`;
* a **shard** hosts one or more zones on one :class:`~repro.sim.engine.
  Engine`; every cross-zone message — even between zones of the same
  shard — is collected at the epoch barrier, so zone behaviour is
  independent of how zones are packed onto shards;
* shards advance in bounded windows (**epochs**) of ``window`` virtual
  seconds.  Messages must be delivered at least ``window`` after they are
  sent (validated, :class:`MergeProtocolError` otherwise), so a message
  sent during an epoch can never be due inside that same epoch;
* at each barrier the collected messages are sorted by
  ``(deliver_time, src_zone, per-src sequence)`` — a key that is a pure
  function of simulation content, never of sharding — and injected into
  the destination shard's engine *before* the next epoch runs.  Engine
  ties at equal virtual time break by insertion order, so the injection
  order fixes the execution order identically in every configuration.

Consequently a K-shard run is event-for-event identical to the
single-engine reference (``n_shards=1``: every zone on one event loop) and
to itself at any worker count; the property suite and benchmark E28 assert
exactly that, digest-for-digest.

Execution backends: **serial** (shards stepped round-robin in-process) and
**multiprocessing** (``workers=N``: persistent worker processes each owning
a contiguous slice of shards, exchanging only pickled messages and stats
per epoch — shard state never crosses a process boundary after build).  A
crashed worker is surfaced as *fenced* shards in the report, mirroring the
node-fencing semantics of the cluster itself: survivors keep stepping,
messages to fenced shards are counted and dropped, and ``report.ok`` turns
False.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet

#: histogram buckets for merge-barrier waits (wall seconds — these are
#: host-time stalls, not virtual time, hence the sub-second range)
BARRIER_BUCKETS = (1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class MergeProtocolError(RuntimeError):
    """A zone violated the epoch/merge contract (e.g. latency < window)."""


@dataclass(frozen=True)
class ShardMessage:
    """One cross-zone message, the only coupling between zones.

    ``(deliver_time, src, seq)`` is the deterministic merge key: ``seq`` is
    a per-source-zone counter stamped by the :class:`Outbox`, so the key
    depends only on what the simulation did — never on shard packing or
    worker scheduling.  Payloads must be picklable and should be plain
    tuples of primitives (they cross process boundaries under the
    multiprocessing backend).
    """

    dst: int
    deliver_time: float
    kind: str
    payload: tuple
    src: int = -1
    seq: int = -1


class Outbox:
    """Per-zone message sender; stamps the deterministic merge key."""

    def __init__(self, zone_id: int, min_latency: float):
        self.zone_id = zone_id
        self.min_latency = min_latency
        self._seq = 0
        self._pending: list[ShardMessage] = []
        #: the hosting shard keeps this pointed at its engine clock
        self.now: Callable[[], float] = lambda: 0.0

    def send(self, dst: int, kind: str, payload: tuple,
             delay: float | None = None) -> ShardMessage:
        """Queue a message to zone *dst*, delivered ``delay`` (default: the
        minimum cross-shard latency) virtual seconds from now."""
        if delay is None:
            delay = self.min_latency
        if delay < self.min_latency:
            raise MergeProtocolError(
                f"zone {self.zone_id}: delay {delay} below the cross-shard "
                f"minimum latency {self.min_latency} (= epoch window)")
        msg = ShardMessage(dst=dst, deliver_time=self.now() + delay,
                           kind=kind, payload=payload, src=self.zone_id,
                           seq=self._seq)
        self._seq += 1
        self._pending.append(msg)
        return msg

    def drain(self) -> list[ShardMessage]:
        """Take (and clear) everything sent since the last drain."""
        out, self._pending = self._pending, []
        return out


class SimZone(Protocol):
    """What a zone must implement to run under :class:`ShardedEngine`.

    Zones own all their mutable state and may interact with the rest of
    the world only through the :class:`Outbox` handed to :meth:`bind`.
    """

    zone_id: int

    def bind(self, engine: Engine, outbox: Outbox) -> None:
        """Attach to the hosting shard's engine; schedule initial events."""

    def handle(self, msg: ShardMessage) -> None:
        """Process one delivered cross-zone message (at its deliver time)."""

    def quiescent(self) -> bool:
        """True when the zone will schedule no further work unprompted."""

    def stats(self) -> dict:
        """Cheap per-epoch counters (merged into the shard's stats)."""

    def fingerprint(self) -> dict:
        """Deterministic end-of-run identity record (digests + totals)."""


class ShardHost:
    """One shard: an :class:`Engine` hosting one or more zones.

    Lives in the coordinating process under the serial backend and inside
    a worker process under multiprocessing — either way the epoch sequence
    it executes is identical.
    """

    def __init__(self, shard_id: int, zones: list[SimZone],
                 min_latency: float):
        self.shard_id = shard_id
        self.engine = Engine()
        self.zones = {z.zone_id: z for z in zones}
        self.outboxes: dict[int, Outbox] = {}
        for z in zones:
            box = Outbox(z.zone_id, min_latency)
            box.now = lambda: self.engine.now
            self.outboxes[z.zone_id] = box
            z.bind(self.engine, box)
        self._events_at_last_epoch = 0

    def deliver(self, msgs: list[ShardMessage]) -> None:
        """Inject merged messages (already sorted by the deterministic key)
        ahead of the epoch, fixing their tie order on the engine heap."""
        for m in msgs:
            zone = self.zones[m.dst]
            self.engine.at(m.deliver_time, lambda z=zone, m=m: z.handle(m))

    def advance(self, until: float) -> tuple[list[ShardMessage], dict]:
        """Run the local engine to the epoch end; return outgoing messages
        and per-epoch stats.  Outgoing delivery times are validated against
        the barrier (the conservative-lookahead contract)."""
        t0 = time.perf_counter()
        self.engine.run(until=until)
        out: list[ShardMessage] = []
        for box in self.outboxes.values():
            out.extend(box.drain())
        for m in out:
            if m.deliver_time < until:
                raise MergeProtocolError(
                    f"zone {m.src} sent a message due {m.deliver_time} "
                    f"before the epoch barrier {until}")
        events = self.engine.events_processed
        stats = {
            "events": events - self._events_at_last_epoch,
            "events_total": events,
            "pending": self.engine.pending,
            "quiescent": all(z.quiescent() for z in self.zones.values())
            and self.engine.pending == 0,
            "msgs_out": len(out),
            "wall_s": time.perf_counter() - t0,
        }
        self._events_at_last_epoch = events
        return out, stats

    def fingerprints(self) -> list[dict]:
        """Per-zone identity records, in zone order."""
        return [self.zones[z].fingerprint() for z in sorted(self.zones)]

    def zone_stats(self) -> list[dict]:
        """Per-zone counter snapshots, in zone order."""
        return [self.zones[z].stats() for z in sorted(self.zones)]


def merge_sort_key(msg: ShardMessage) -> tuple[float, int, int]:
    """The deterministic merge order: (deliver time, src zone, sequence)."""
    return (msg.deliver_time, msg.src, msg.seq)


@dataclass
class ShardReport:
    """What a :meth:`ShardedEngine.run` produced."""

    epochs: int = 0
    total_events: int = 0
    wall_s: float = 0.0
    #: per-zone identity records (sorted by zone id); equality across two
    #: runs is the bit-identity check E28 and the property suite use
    zones: list[dict] = field(default_factory=list)
    #: per-zone counter snapshots (sorted by zone id)
    zone_stats: list[dict] = field(default_factory=list)
    per_shard: dict[int, dict] = field(default_factory=dict)
    msgs_routed: int = 0
    msgs_dropped_fenced: int = 0
    fenced_shards: list[int] = field(default_factory=list)
    final_time: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every shard survived to quiescence."""
        return not self.fenced_shards

    @property
    def digest(self) -> str:
        """One stable hex digest over all per-zone identity records."""
        h = hashlib.blake2b(digest_size=16)
        for z in self.zones:
            for k in sorted(z):
                h.update(f"{k}={z[k]!r};".encode())
            h.update(b"|")
        return h.hexdigest()

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulated events per wall second."""
        return self.total_events / self.wall_s if self.wall_s else 0.0


def _worker_main(conn, worker_id: int,
                 assignments: list[tuple[int, list]],
                 min_latency: float) -> None:
    """Worker process: build the assigned shards, then step epochs on
    command until told to finish.  Only messages and stats cross the pipe;
    shard state stays resident here for the whole run (pickle-light)."""
    try:
        hosts = {}
        for shard_id, factories in assignments:
            zones = [f() for f in factories]
            hosts[shard_id] = ShardHost(shard_id, zones, min_latency)
        conn.send(("ready", worker_id))
        while True:
            cmd = conn.recv()
            if cmd[0] == "advance":
                _, until, inbound = cmd
                reply = {}
                t0 = time.perf_counter()
                for shard_id in sorted(hosts):
                    host = hosts[shard_id]
                    host.deliver(inbound.get(shard_id, []))
                    reply[shard_id] = host.advance(until)
                conn.send(("ok", reply, time.perf_counter() - t0))
            elif cmd[0] == "finish":
                conn.send(("done", {
                    sid: (h.fingerprints(), h.zone_stats())
                    for sid, h in hosts.items()}))
                return
    except BaseException as exc:  # surfaced as fenced shards by the parent
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
        raise


class ShardedEngine:
    """Epoch-synchronized shards with a deterministic cross-shard merge.

    Parameters
    ----------
    zone_factories:
        One zero-argument callable per zone, returning a :class:`SimZone`
        with its ``zone_id`` set.  Factories (not live zones) are what the
        multiprocessing backend hands to workers, so build cost and state
        stay worker-local.
    n_shards:
        Zones are packed onto this many shards in contiguous blocks.
        ``n_shards=1`` *is* the single-engine reference: every zone on one
        event loop, same merge protocol.
    window:
        Epoch length in virtual seconds; also the minimum cross-shard
        message latency (the conservative lookahead).
    workers:
        ``None``/``0`` — serial in-process backend.  ``N >= 1`` — N
        persistent worker processes, each owning a contiguous block of
        shards.  Trace output is identical either way.
    metrics:
        Optional :class:`~repro.sim.metrics.MetricSet`; per-shard events/
        sec gauges, cross-shard message counters and the merge-barrier
        wait histogram land here (rendered by
        :func:`repro.obs.dashboard.shard_posture`).
    """

    def __init__(self, zone_factories: list[Callable[[], SimZone]],
                 *, n_shards: int, window: float,
                 workers: int | None = None,
                 metrics: MetricSet | None = None):
        if n_shards < 1 or n_shards > len(zone_factories):
            raise ValueError(
                f"n_shards {n_shards} not in [1, {len(zone_factories)}]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.n_zones = len(zone_factories)
        self.n_shards = n_shards
        self.window = window
        self.workers = int(workers or 0)
        self.metrics = metrics if metrics is not None else MetricSet()
        # contiguous block packing: shard j hosts zones [lo, hi)
        self._assignment: list[tuple[int, list]] = []
        per = self.n_zones / n_shards
        self._zone_to_shard: dict[int, int] = {}
        for j in range(n_shards):
            lo, hi = round(j * per), round((j + 1) * per)
            self._assignment.append((j, list(zone_factories[lo:hi])))
            for z in range(lo, hi):
                self._zone_to_shard[z] = j
        self.fenced_shards: set[int] = set()
        self._barrier_wait = self.metrics.histogram(
            "shard_barrier_wait_seconds", buckets=BARRIER_BUCKETS)

    # -- backends ---------------------------------------------------------

    def run(self, until: float | None = None,
            max_epochs: int | None = None) -> ShardReport:
        """Advance all shards epoch by epoch until quiescence (or *until*).

        Quiescence: every surviving shard reports an empty heap and
        quiescent zones, and no messages are in flight.
        """
        if self.workers:
            return self._run_mp(until, max_epochs)
        return self._run_serial(until, max_epochs)

    def _epoch_ends(self, until: float | None, max_epochs: int | None):
        k = 0
        while (max_epochs is None or k < max_epochs) and \
                (until is None or k * self.window < until):
            end = (k + 1) * self.window
            if until is not None:
                end = min(end, until)
            yield end
            k += 1

    def _route(self, outgoing: list[ShardMessage],
               report: ShardReport) -> dict[int, list[ShardMessage]]:
        """Sort by the deterministic merge key and bucket per target shard;
        messages to fenced shards are counted and dropped (never silent)."""
        outgoing.sort(key=merge_sort_key)
        inbound: dict[int, list[ShardMessage]] = {}
        dropped = self.metrics.counter("shard_msgs_dropped_fenced")
        for m in outgoing:
            shard = self._zone_to_shard[m.dst]
            if shard in self.fenced_shards:
                dropped.inc()
                report.msgs_dropped_fenced += 1
                continue
            inbound.setdefault(shard, []).append(m)
            report.msgs_routed += 1
            self.metrics.counter("shard_msgs_total", kind=m.kind).inc()
        return inbound

    def _note_epoch(self, stats_by_shard: dict[int, dict],
                    walls: dict[int, float]) -> None:
        """Fold one epoch's per-shard stats into the metric set."""
        if walls:
            slowest = max(walls.values())
            for key, wall in walls.items():
                wait = slowest - wall
                self._barrier_wait.observe(wait)
                self.metrics.samples("shard_barrier_wait").add(wait)
        for sid, st in stats_by_shard.items():
            g = self.metrics.gauge("shard_events_per_sec", shard=sid)
            busy = self.metrics.gauge("shard_busy_wall_seconds", shard=sid)
            busy.inc(st["wall_s"])
            if busy.value > 0:
                g.set(st["events_total"] / busy.value)
            self.metrics.gauge("shard_pending_events", shard=sid).set(
                st["pending"])

    def _run_serial(self, until, max_epochs) -> ShardReport:
        hosts = {sid: ShardHost(sid, [f() for f in factories], self.window)
                 for sid, factories in self._assignment}
        report = ShardReport()
        t_start = time.perf_counter()
        inbound: dict[int, list[ShardMessage]] = {}
        for end in self._epoch_ends(until, max_epochs):
            outgoing: list[ShardMessage] = []
            stats_by_shard: dict[int, dict] = {}
            walls: dict[int, float] = {}
            for sid in sorted(hosts):
                host = hosts[sid]
                host.deliver(inbound.get(sid, []))
                out, stats = host.advance(end)
                outgoing.extend(out)
                stats_by_shard[sid] = stats
                walls[sid] = stats["wall_s"]
            report.epochs += 1
            report.final_time = end
            self._note_epoch(stats_by_shard, walls)
            inbound = self._route(outgoing, report)
            if not inbound and all(s["quiescent"]
                                   for s in stats_by_shard.values()):
                break
        report.total_events = sum(h.engine.events_processed
                                  for h in hosts.values())
        for sid in sorted(hosts):
            report.zones.extend(hosts[sid].fingerprints())
            report.zone_stats.extend(hosts[sid].zone_stats())
            report.per_shard[sid] = {
                "events": hosts[sid].engine.events_processed,
                "zones": sorted(hosts[sid].zones),
            }
        report.zones.sort(key=lambda z: z["zone"])
        report.zone_stats.sort(key=lambda z: z["zone"])
        report.wall_s = time.perf_counter() - t_start
        report.fenced_shards = sorted(self.fenced_shards)
        return report

    def _run_mp(self, until, max_epochs) -> ShardReport:
        ctx = mp.get_context()
        n_workers = min(self.workers, self.n_shards)
        # contiguous worker blocks over the shard list
        per = self.n_shards / n_workers
        procs: list[tuple[mp.Process, object, list[int]]] = []
        shard_to_worker: dict[int, int] = {}
        for w in range(n_workers):
            lo, hi = round(w * per), round((w + 1) * per)
            mine = self._assignment[lo:hi]
            parent, child = ctx.Pipe()
            p = ctx.Process(
                target=_worker_main, name=f"shard-worker-{w}",
                args=(child, w, mine, self.window),
                daemon=True)
            p.start()
            child.close()
            procs.append((p, parent, [sid for sid, _ in mine]))
            for sid, _ in mine:
                shard_to_worker[sid] = w
        report = ShardReport()
        t_start = time.perf_counter()
        live = set(range(n_workers))
        events_total_by_shard: dict[int, int] = {}

        def fence_worker(w: int, why: str) -> None:
            live.discard(w)
            for sid in procs[w][2]:
                self.fenced_shards.add(sid)
                self.metrics.counter("shard_fenced_total").inc()
            report.fenced_shards = sorted(self.fenced_shards)

        for w in range(n_workers):
            try:
                msg = procs[w][1].recv()
                if msg[0] != "ready":
                    fence_worker(w, msg[1])
            except (EOFError, OSError):
                fence_worker(w, "died during build")

        inbound: dict[int, list[ShardMessage]] = {}
        for end in self._epoch_ends(until, max_epochs):
            if not live:
                break
            for w in sorted(live):
                per_worker = {sid: inbound.get(sid, [])
                              for sid in procs[w][2]}
                try:
                    procs[w][1].send(("advance", end, per_worker))
                except (BrokenPipeError, OSError):
                    fence_worker(w, "pipe broke on send")
            outgoing: list[ShardMessage] = []
            stats_by_shard: dict[int, dict] = {}
            walls: dict[int, float] = {}
            for w in sorted(live):
                try:
                    msg = procs[w][1].recv()
                except (EOFError, OSError):
                    fence_worker(w, "died mid-epoch")
                    continue
                if msg[0] != "ok":
                    fence_worker(w, msg[1])
                    continue
                _, reply, wall = msg
                walls[w] = wall
                for sid, (out, stats) in reply.items():
                    outgoing.extend(out)
                    stats_by_shard[sid] = stats
                    events_total_by_shard[sid] = stats["events_total"]
            report.epochs += 1
            report.final_time = end
            self._note_epoch(stats_by_shard, walls)
            inbound = self._route(outgoing, report)
            if not inbound and stats_by_shard and \
                    all(s["quiescent"] for s in stats_by_shard.values()):
                break

        for w in sorted(live):
            try:
                procs[w][1].send(("finish",))
                msg = procs[w][1].recv()
                if msg[0] != "done":
                    fence_worker(w, msg[1])
                    continue
                for sid, (prints, stats) in msg[1].items():
                    report.zones.extend(prints)
                    report.zone_stats.extend(stats)
                    report.per_shard[sid] = {
                        "events": events_total_by_shard.get(sid, 0),
                        "zones": [z["zone"] for z in prints],
                    }
            except (EOFError, OSError, BrokenPipeError):
                fence_worker(w, "died at finish")
        for p, conn, _ in procs:
            conn.close()
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
        report.zones.sort(key=lambda z: z["zone"])
        report.zone_stats.sort(key=lambda z: z["zone"])
        report.total_events = sum(events_total_by_shard.values())
        report.wall_s = time.perf_counter() - t_start
        report.fenced_shards = sorted(self.fenced_shards)
        return report
