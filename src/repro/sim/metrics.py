"""Counters, gauges and time-weighted series for experiment harnesses.

Benchmarks report utilization / wait-time / leak-count summaries; this module
gives the simulators a single place to record them.  ``TimeWeighted`` keeps
an exact time-integral of a piecewise-constant signal (e.g. busy cores), so
utilization numbers are not sampling artifacts.  Summary math is numpy-based
per the HPC guide (vectorise the analysis, not just the simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class TimeWeighted:
    """Time-integral of a piecewise-constant signal.

    ``set(t, v)`` records that the signal took value *v* from time *t*
    onwards; ``integral(t_end)`` returns ∫ signal dt over [t0, t_end], and
    ``mean(t_end)`` the time-average.
    """

    def __init__(self, t0: float = 0.0, v0: float = 0.0):
        self._last_t = t0
        self._t0 = t0
        self._value = v0
        self._area = 0.0

    @property
    def current(self) -> float:
        return self._value

    def set(self, t: float, v: float) -> None:
        if t < self._last_t:
            raise ValueError("time went backwards")
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = v

    def add(self, t: float, dv: float) -> None:
        self.set(t, self._value + dv)

    def integral(self, t_end: float) -> float:
        return self._area + self._value * (t_end - self._last_t)

    def mean(self, t_end: float) -> float:
        span = t_end - self._t0
        return self.integral(t_end) / span if span > 0 else 0.0


@dataclass
class Samples:
    """Accumulates scalar observations (wait times, latencies)."""

    name: str
    values: list[float] = field(default_factory=list)

    def add(self, v: float) -> None:
        self.values.append(float(v))

    def asarray(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        a = self.asarray()
        return {
            "n": int(a.size),
            "mean": float(a.mean()),
            "p50": float(np.percentile(a, 50)),
            "p95": float(np.percentile(a, 95)),
            "max": float(a.max()),
        }


class MetricSet:
    """Named registry of counters/samples shared by a simulation run."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._samples: dict[str, Samples] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def samples(self, name: str) -> Samples:
        if name not in self._samples:
            self._samples[name] = Samples(name)
        return self._samples[name]

    def report(self) -> dict[str, object]:
        out: dict[str, object] = {c.name: c.value for c in self._counters.values()}
        for s in self._samples.values():
            out[s.name] = s.summary()
        return out
