"""Counters, gauges, histograms and time-weighted series.

Benchmarks report utilization / wait-time / leak-count summaries; this module
gives the simulators a single place to record them.  ``TimeWeighted`` keeps
an exact time-integral of a piecewise-constant signal (e.g. busy cores), so
utilization numbers are not sampling artifacts.  Summary math is numpy-based
per the HPC guide (vectorise the analysis, not just the simulation).

Everything here is also the storage layer behind the observability spine
(:mod:`repro.obs`): metrics may carry **labels** (sorted ``(key, value)``
pairs, Prometheus-style), and :class:`MetricSet` registers counters, gauges,
fixed-bucket histograms and sample sets under ``(name, labels)`` keys so the
exporters can walk them without knowing who recorded what.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

#: Sorted (key, value) pairs identifying one labeled series of a family.
LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({_render_key(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, live sessions)."""

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, by: float = 1.0) -> None:
        self.value += by

    def dec(self, by: float = 1.0) -> None:
        self.value -= by

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({_render_key(self.name, self.labels)}={self.value})"


#: Default histogram buckets, in (virtual) seconds: spans sub-millisecond
#: enforcement decisions up to day-scale queue waits.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, 86400.0)


class Histogram:
    """Fixed-bucket histogram (Prometheus semantics: ``le`` upper bounds).

    ``observe(v)`` is O(log buckets); bucket boundaries are immutable after
    construction so concurrent series of one family stay comparable.
    """

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(float(b) for b in buckets))
        #: per-bucket (non-cumulative) counts; last slot is the +Inf overflow
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        v = float(v)
        self.counts[bisect.bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending with +Inf."""
        out, running = [], 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Histogram({_render_key(self.name, self.labels)} "
                f"n={self.count} sum={self.sum})")


class TimeWeighted:
    """Time-integral of a piecewise-constant signal.

    ``set(t, v)`` records that the signal took value *v* from time *t*
    onwards; ``integral(t_end)`` returns ∫ signal dt over [t0, t_end], and
    ``mean(t_end)`` the time-average.
    """

    def __init__(self, t0: float = 0.0, v0: float = 0.0):
        self._last_t = t0
        self._t0 = t0
        self._value = v0
        self._area = 0.0

    @property
    def current(self) -> float:
        return self._value

    def set(self, t: float, v: float) -> None:
        if t < self._last_t:
            raise ValueError("time went backwards")
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = v

    def add(self, t: float, dv: float) -> None:
        self.set(t, self._value + dv)

    def integral(self, t_end: float) -> float:
        return self._area + self._value * (t_end - self._last_t)

    def mean(self, t_end: float) -> float:
        span = t_end - self._t0
        return self.integral(t_end) / span if span > 0 else 0.0


@dataclass
class Samples:
    """Accumulates scalar observations (wait times, latencies)."""

    name: str
    values: list[float] = field(default_factory=list)

    def add(self, v: float) -> None:
        self.values.append(float(v))

    def asarray(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        a = self.asarray()
        p50, p95, p99 = np.percentile(a, (50, 95, 99))
        return {
            "n": int(a.size),
            "mean": float(a.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(a.max()),
        }


class MetricSet:
    """Named registry of counters/gauges/histograms/samples for one run.

    Families are addressed by name; a family may carry any number of labeled
    series (``counter("ubf_verdicts_total", verdict="drop", reason=...)``).
    Unlabeled access keeps the original single-series behaviour, so the
    pre-observability call sites are untouched.
    """

    def __init__(self):
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}
        self._samples: dict[str, Samples] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labelset(labels) if labels else ())
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labelset(labels) if labels else ())
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **labels: object) -> Histogram:
        key = (name, _labelset(labels) if labels else ())
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS,
                key[1])
        return h

    def samples(self, name: str) -> Samples:
        if name not in self._samples:
            self._samples[name] = Samples(name)
        return self._samples[name]

    # -- walking (exporters, dashboards) ----------------------------------

    def all_counters(self) -> list[Counter]:
        return list(self._counters.values())

    def all_gauges(self) -> list[Gauge]:
        return list(self._gauges.values())

    def all_histograms(self) -> list[Histogram]:
        return list(self._histograms.values())

    def all_samples(self) -> list[Samples]:
        return list(self._samples.values())

    def family(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every labeled series registered under *name*."""
        out: list[Counter | Gauge | Histogram] = []
        for store in (self._counters, self._gauges, self._histograms):
            out.extend(m for (n, _), m in store.items() if n == name)
        return out

    def report(self) -> dict[str, object]:
        out: dict[str, object] = {
            _render_key(c.name, c.labels): c.value
            for c in self._counters.values()}
        for g in self._gauges.values():
            out[_render_key(g.name, g.labels)] = g.value
        for h in self._histograms.values():
            out[_render_key(h.name, h.labels)] = {
                "n": h.count, "sum": h.sum, "mean": h.mean}
        for s in self._samples.values():
            out[s.name] = s.summary()
        return out
