"""Minimal discrete-event simulation engine.

The scheduler experiments (E4, E16) need virtual time: job arrivals,
dispatches and completions are events on a priority queue.  The engine is
deliberately tiny — a monotonic clock plus a heap — because the paper's
mechanisms are policy functions, not timing-sensitive protocols.  Events at
equal timestamps fire in insertion order (a sequence number breaks ties), so
runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    done: bool = field(compare=False, default=False)


class SimClock:
    """Virtual clock; only the engine advances it."""

    def __init__(self):
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"time cannot run backwards: {t} < {self._now}")
        self._now = t


class Engine:
    """Event loop: schedule callables at absolute or relative virtual times."""

    def __init__(self):
        self.clock = SimClock()
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0
        #: cancelled events still sitting in the heap.  ``pending`` is then
        #: O(1) (len(heap) - this) instead of a full heap scan; the heap is
        #: compacted once cancelled entries outnumber live ones.
        self._cancelled_in_heap = 0
        #: completed amortized compaction sweeps (observability + the
        #: cancel-storm regression test assert on this)
        self.compactions = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, time: float, action: Callable[[], None]) -> _Event:
        """Schedule *action* at absolute virtual time *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._maybe_compact()
        ev = _Event(time, next(self._seq), action)
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, delay: float, action: Callable[[], None]) -> _Event:
        """Schedule *action* *delay* time units from now."""
        if delay < 0:
            raise ValueError("negative delay")
        return self.at(self.now + delay, action)

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event (idempotent; no-op once it has fired).

        Strictly O(1): the event is tombstoned and counted, nothing else.
        Tombstone compaction is an *amortized sweep* run from the schedule/
        drain boundaries (:meth:`at`, :meth:`run`, :meth:`step`) — a cancel
        storm (node churn requeueing thousands of jobs) therefore never
        pays a synchronous full-heap rebuild inside the cancel path itself.
        """
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._cancelled_in_heap += 1

    def _maybe_compact(self) -> None:
        """Amortized sweep: rebuild the heap once tombstones dominate.

        The O(live + cancelled) rebuild only triggers after at least
        ``len(heap) // 2`` cancels accumulated since the last sweep, so its
        cost amortizes to O(1) per cancel while keeping the heap — and every
        subsequent push/pop — proportional to *live* events.
        """
        if self._cancelled_in_heap > len(self._heap) // 2 \
                and self._cancelled_in_heap > 32:
            self._compact()

    def _compact(self) -> None:
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def run(self, until: float | None = None) -> float:
        """Process events in order until the heap drains or *until* passes.

        Returns the final clock value.
        """
        self._maybe_compact()
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.clock._advance(until)
                return self.now
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.clock._advance(ev.time)
            self.events_processed += 1
            ev.done = True
            ev.action()
        if until is not None and until > self.now:
            self.clock._advance(until)
        return self.now

    def step(self) -> bool:
        """Process exactly one event; False when the heap is empty."""
        self._maybe_compact()
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.clock._advance(ev.time)
            self.events_processed += 1
            ev.done = True
            ev.action()
            return True
        return False

    @property
    def pending(self) -> int:
        """Live (not-yet-fired, not-cancelled) events — O(1)."""
        return len(self._heap) - self._cancelled_in_heap
