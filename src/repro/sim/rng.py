"""Seeded randomness utilities.

Every stochastic component takes an explicit ``numpy.random.Generator``
(never the global singleton), following the reproducibility idiom of the
HPC-parallel guides: identical seeds give identical traces, and independent
substreams come from ``spawn`` so adding a workload never perturbs another's
draws.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int | None = DEFAULT_SEED) -> np.random.Generator:
    """Create the root generator for a simulation run."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def substream(seed: int, *key: int) -> np.random.Generator:
    """Stable, independent substream for ``(seed, key)``.

    Unlike :func:`spawn` — whose children depend on how many spawns came
    before — the substream for a given ``(root seed, key path)`` is a pure
    function of its arguments: ``substream(s, 7)`` is the same generator
    whether the run has 8 zones or 64, one worker or sixteen.  The sharded
    engine keys every zone's randomness this way (``substream(seed,
    zone_id)``), which is what makes traces independent of shard count,
    shard assignment and worker count (DESIGN.md "Sharded simulation
    architecture").
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=tuple(key)))


def poisson_arrivals(rng: np.random.Generator, rate: float, horizon: float,
                     start: float = 0.0) -> np.ndarray:
    """Arrival times of a Poisson process with *rate* events/unit on
    [start, start+horizon). Vectorised: draws exponential gaps in one call
    with a safety margin, extending only in the rare shortfall case."""
    if rate <= 0:
        return np.empty(0)
    n_guess = max(16, int(rate * horizon * 1.5) + 8)
    gaps = rng.exponential(1.0 / rate, size=n_guess)
    times = start + np.cumsum(gaps)
    while times.size and times[-1] < start + horizon:
        more = rng.exponential(1.0 / rate, size=n_guess)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < start + horizon]
