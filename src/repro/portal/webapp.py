"""Simulated web applications running on compute nodes.

The LLSC portal forwards "applications like Jupyter notebooks, Jupyter labs,
TensorBoard, and more" from any compute node to the user (Section IV-E).
A :class:`WebApp` here is a process that listens on a user port and answers
each connection with its content — enough surface to test the portal's
authentication and the UBF-governed forwarding path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.kernel.node import LinuxNode
from repro.kernel.process import Process
from repro.net.stack import BoundSocket

_app_ids = itertools.count(1)


@dataclass
class WebApp:
    """A Jupyter/TensorBoard-style app bound to (node, port)."""

    node: LinuxNode
    process: Process
    port: int
    title: str
    listener: BoundSocket
    app_id: int = field(default_factory=lambda: next(_app_ids))

    @property
    def owner_uid(self) -> int:
        return self.process.creds.uid

    def content(self) -> bytes:
        """What the app serves (contains owner-identifying data, which is
        exactly what must not leak to other users)."""
        return f"{self.title} [uid={self.owner_uid}] session".encode()

    def handle_pending(self) -> int:
        """Accept and answer every queued connection; returns count."""
        handled = 0
        while self.listener.accept_queue:
            server_end = self.node.net.accept(self.listener)
            server_end.recv()  # the HTTP request
            server_end.send(self.content())
            handled += 1
        return handled


def launch_webapp(node: LinuxNode, process: Process, port: int,
                  title: str) -> WebApp:
    """Start an app: bind + listen on a user port as *process*."""
    listener = node.net.listen(node.net.bind(process, port))
    return WebApp(node=node, process=process, port=port, title=title,
                  listener=listener)
