"""The HPC web portal / gateway (paper Section IV-E).

"LLSC systems enable application jobs that have web interfaces by forwarding
the web connections from compute nodes to the user's laptop/desktop via an
HPC portal. ... User authentication is required to connect to the HPC Portal
and UBF connection rules are enforced, so that the entire connection path is
authenticated and authorized."

The model keeps the two security-relevant properties:

1. **Authentication** — connecting to the portal requires a session token
   previously issued to a real account (``require_auth`` can be disabled to
   model an ad-hoc SSH-port-forward setup for the baseline).
2. **UBF on the forwarded hop** — the portal forwards by opening a TCP
   connection *from a forwarding process owned by the authenticated user* on
   the portal host to the app's compute node, so the destination host's UBF
   applies its same-user/egid rule to the real principal, not to a shared
   portal service account.

Apps can run on *any* compute node (the forwarding hop is ordinary fabric
traffic), reproducing the "not restricted to a small partition" property.
"""

from __future__ import annotations

import itertools
import secrets
from dataclasses import dataclass, field
from typing import Callable

from repro.kernel.errors import AccessDenied, NoSuchEntity, TimedOut
from repro.kernel.node import LinuxNode
from repro.kernel.users import User, UserDB
from repro.monitor.events import EventKind
from repro.net.stack import Fabric
from repro.portal.webapp import WebApp


@dataclass(frozen=True)
class PortalSession:
    """An authenticated portal session and its bearer token."""

    token: str
    user: User
    issued_at: float = 0.0


@dataclass
class Portal:
    """The gateway service on a dedicated portal host."""

    fabric: Fabric
    userdb: UserDB
    node: LinuxNode  # portal host (must have a HostStack attached)
    require_auth: bool = True
    #: session lifetime in (virtual) seconds; None = no expiry
    session_ttl: float | None = None
    #: time source; the cluster wires this to the simulation clock
    clock: "Callable[[], float]" = staticmethod(lambda: 0.0)
    #: observability (both optional, wired by repro.monitor / repro.obs):
    #: denied requests are emitted here as EventKind.PORTAL_DENY
    event_log: object | None = None
    #: span source (repro.obs.trace.Tracer) for request forwarding
    tracer: object | None = None
    #: separation oracle (repro.oracle); None = zero-cost hooks
    oracle: object | None = None
    #: forensic audit trail (repro.obs.audit); successful forwards are
    #: recorded with causal attribution (denies reach the trail through
    #: the security-event stream).  None = zero cost.
    audit: object | None = None
    _routes: dict[int, WebApp] = field(default_factory=dict)
    _sessions: dict[str, PortalSession] = field(default_factory=dict)
    _rng_counter: itertools.count = field(default_factory=lambda: itertools.count(1))

    # -- authentication --------------------------------------------------------

    def login(self, username: str) -> PortalSession:
        """Authenticate (credential check is out of scope — the cluster's
        normal login already vouches) and issue a session token."""
        user = self.userdb.user(username)
        token = f"tok-{next(self._rng_counter)}-{secrets.token_hex(8)}"
        session = PortalSession(token=token, user=user,
                                issued_at=self.clock())
        self._sessions[token] = session
        return session

    def _session_valid(self, token: str) -> PortalSession | None:
        session = self._sessions.get(token)
        if session is None:
            return None
        if (self.session_ttl is not None
                and self.clock() - session.issued_at > self.session_ttl):
            del self._sessions[token]
            return None
        return session

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    # -- routing ------------------------------------------------------------------

    def register(self, app: WebApp) -> int:
        """A job advertises its web interface to the portal."""
        self._routes[app.app_id] = app
        return app.app_id

    def routes_for(self, session: PortalSession) -> list[WebApp]:
        """Apps the portal lists for this user: their own only."""
        apps = [a for a in self._routes.values()
                if a.owner_uid == session.user.uid]
        if self.oracle is not None:
            self.oracle.check_portal_routes(self, session, apps)
        return apps

    # -- forwarding ------------------------------------------------------------------

    def _count(self, result: str) -> None:
        self.fabric.metrics.counter("portal_requests_total",
                                    result=result).inc()

    def _deny_event(self, subject_uid: int, app_id: int,
                    detail: str) -> None:
        if self.event_log is not None:
            self.event_log.emit(self.clock(), EventKind.PORTAL_DENY,
                                subject_uid, f"portal:app/{app_id}", detail)

    def connect(self, token: str | None, app_id: int) -> bytes:
        """Fetch the app's page through the portal.

        Raises :class:`AccessDenied` on a missing/invalid token (when auth
        is required) and :class:`~repro.kernel.errors.TimedOut` when the
        UBF drops the forwarded hop (cross-user access attempt).
        """
        span = (self.tracer.start_span("portal.connect", app_id=app_id)
                if self.tracer is not None else None)
        try:
            page = self._connect(token, app_id, span)
        except BaseException as exc:
            if span is not None:
                self.tracer.finish(span, error=type(exc).__name__)
            raise
        if span is not None:
            self.tracer.finish(span, outcome="ok")
        return page

    def _connect(self, token: str | None, app_id: int, span) -> bytes:
        if self.require_auth:
            session = self._session_valid(token) if token else None
            if session is None:
                self._count("deny-auth")
                self._deny_event(-1, app_id, "authentication required "
                                 "(missing, invalid, or expired token)")
                raise AccessDenied("portal: authentication required "
                                   "(missing, invalid, or expired token)")
            user = session.user
        else:
            # ad-hoc forwarding path: unauthenticated, runs as a generic
            # service identity (root daemon) — the insecure baseline
            user = self.userdb.user("root")
        if span is not None:
            span.set_tag("user", user.name)
        try:
            app = self._routes[app_id]
        except KeyError:
            self._count("no-route")
            raise NoSuchEntity(f"portal route {app_id}") from None
        creds = self.userdb.credentials_for(user)
        fwd_proc = self.node.procs.spawn(creds, ["portal-fwd",
                                                 f"app={app_id}"])
        try:
            conn = self.node.net.connect(fwd_proc, app.node.name, app.port)
            conn.send(b"GET / HTTP/1.1")
            app.handle_pending()
            page = conn.recv()
            conn.close()
            self._count("allow")
            if self.oracle is not None:
                self.oracle.check_portal_forward(self, user, creds, app)
            if self.audit is not None:
                self.audit.record(
                    mechanism="portal", action="allow", uid=user.uid,
                    node=app.node.name, target=f"portal:app/{app_id}",
                    detail=f"forwarded to {app.node.name}:{app.port}")
            return page
        except TimedOut:
            # the forwarded hop was dropped by the destination's UBF; the
            # daemon there records the NET_DENY with the real principal, so
            # here we only count (no duplicate security event)
            self._count("deny-ubf")
            raise
        finally:
            self.node.procs.reap(fwd_proc.pid)
