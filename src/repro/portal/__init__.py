"""Web portal/gateway substrate: authenticated forwarding of compute-node
web apps through the UBF-governed fabric."""

from repro.portal.gateway import Portal, PortalSession
from repro.portal.webapp import WebApp, launch_webapp

__all__ = ["Portal", "PortalSession", "WebApp", "launch_webapp"]
