"""Simulated Linux kernel substrate (per-node).

Public surface: users/groups (:mod:`repro.kernel.users`), VFS with DAC +
smask (:mod:`repro.kernel.vfs`, :mod:`repro.kernel.smask`), process table
and hidepid-aware /proc (:mod:`repro.kernel.process`,
:mod:`repro.kernel.procfs`), PAM (:mod:`repro.kernel.pam`), nodes
(:mod:`repro.kernel.node`) and the syscall façade
(:mod:`repro.kernel.syscalls`).
"""

from repro.kernel.errors import (
    AccessDenied,
    AddressInUse,
    ConnectionRefused,
    Exists,
    InvalidArgument,
    IsADirectory,
    KernelError,
    NoSuchEntity,
    NoSuchProcess,
    NotADirectory,
    PermissionError_,
    TimedOut,
)
from repro.kernel.node import LinuxNode, NodeRole, NodeSpec, ROOT_CREDS
from repro.kernel.pam import PamSlurm, PamSmask, PamStack, PamUnix
from repro.kernel.process import Process, ProcessTable, SIGKILL, SIGTERM
from repro.kernel.procfs import ProcFS, ProcMountOptions, PsEntry
from repro.kernel.smask import (
    FilePermissionHandler,
    LLSC_KERNEL,
    PAPER_SMASK,
    RELAXED_SMASK,
    STOCK_KERNEL,
)
from repro.kernel.syscalls import SyscallInterface
from repro.kernel.users import Credentials, Group, User, UserDB
from repro.kernel.vfs import (
    AclEntry,
    FileKind,
    Filesystem,
    R_OK,
    S_ISGID,
    S_ISUID,
    S_ISVTX,
    Stat,
    VFS,
    W_OK,
    X_OK,
    check_access,
)

__all__ = [
    "AccessDenied", "AddressInUse", "ConnectionRefused", "Exists",
    "InvalidArgument", "IsADirectory", "KernelError", "NoSuchEntity",
    "NoSuchProcess", "NotADirectory", "PermissionError_", "TimedOut",
    "LinuxNode", "NodeRole", "NodeSpec", "ROOT_CREDS",
    "PamSlurm", "PamSmask", "PamStack", "PamUnix",
    "Process", "ProcessTable", "SIGKILL", "SIGTERM",
    "ProcFS", "ProcMountOptions", "PsEntry",
    "FilePermissionHandler", "LLSC_KERNEL", "PAPER_SMASK", "RELAXED_SMASK",
    "STOCK_KERNEL",
    "SyscallInterface",
    "Credentials", "Group", "User", "UserDB",
    "AclEntry", "FileKind", "Filesystem", "R_OK", "S_ISGID", "S_ISUID",
    "S_ISVTX", "Stat", "VFS", "W_OK", "X_OK", "check_access",
]
