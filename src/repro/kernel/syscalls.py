"""The syscall façade: what user code (workloads, attack probes) calls.

A :class:`SyscallInterface` binds a process on a node and exposes the
filesystem / process / signal / group surface with that process's
credentials.  Keeping all enforcement behind one façade mirrors the paper's
stance that controls must be "enforced at a system level" rather than left
to application code — probes cannot reach an inode or a process table except
through these calls.

Network syscalls (socket/bind/connect) live on the
:class:`repro.net.stack.HostStack` attached to the node; :meth:`socket` is a
convenience forwarder.
"""

from __future__ import annotations

from repro.kernel.errors import InvalidArgument
from repro.kernel.process import Process, SIGTERM
from repro.kernel.procfs import PsEntry
from repro.kernel.node import LinuxNode
from repro.kernel.users import Credentials
from repro.kernel.vfs import AclEntry, Stat


class SyscallInterface:
    """Typed handle to the kernel for one process."""

    def __init__(self, node: LinuxNode, process: Process):
        self.node = node
        self.process = process

    @property
    def creds(self) -> Credentials:
        return self.process.creds

    # -- filesystem ----------------------------------------------------------

    def open_read(self, path: str) -> bytes:
        return self.node.vfs.read(path, self.creds)

    def open_write(self, path: str, data: bytes, *, append: bool = False) -> int:
        return self.node.vfs.write(path, self.creds, data, append=append)

    def create(self, path: str, *, mode: int = 0o666, data: bytes = b"") -> Stat:
        self.node.vfs.create(path, self.creds, mode=mode, data=data)
        return self.stat(path)

    def mkdir(self, path: str, *, mode: int = 0o777) -> Stat:
        self.node.vfs.mkdir(path, self.creds, mode=mode)
        return self.stat(path)

    def unlink(self, path: str) -> None:
        self.node.vfs.unlink(path, self.creds)

    def listdir(self, path: str) -> list[str]:
        return self.node.vfs.listdir(path, self.creds)

    def stat(self, path: str) -> Stat:
        return self.node.vfs.stat(path, self.creds)

    def lstat(self, path: str) -> Stat:
        return self.node.vfs.lstat(path, self.creds)

    def symlink(self, target: str, linkpath: str) -> None:
        self.node.vfs.symlink(target, linkpath, self.creds)

    def readlink(self, path: str) -> str:
        return self.node.vfs.readlink(path, self.creds)

    def link(self, oldpath: str, newpath: str) -> None:
        self.node.vfs.link(oldpath, newpath, self.creds)

    def rename(self, oldpath: str, newpath: str) -> None:
        self.node.vfs.rename(oldpath, newpath, self.creds)

    def chmod(self, path: str, mode: int) -> int:
        return self.node.vfs.chmod(path, self.creds, mode)

    def chown(self, path: str, *, uid: int | None = None,
              gid: int | None = None) -> None:
        self.node.vfs.chown(path, self.creds, uid=uid, gid=gid)

    def setfacl(self, path: str, entry: AclEntry) -> None:
        self.node.vfs.setfacl(path, self.creds, entry)

    def getfacl(self, path: str) -> list[AclEntry]:
        return self.node.vfs.getfacl(path, self.creds)

    def access(self, path: str, want: int) -> bool:
        return self.node.vfs.access(path, self.creds, want)

    def umask(self, new_umask: int) -> None:
        self.process.creds = self.creds.with_umask(new_umask)

    # -- processes / proc ------------------------------------------------------

    def ps(self) -> list[PsEntry]:
        return self.node.procfs.ps(self.creds)

    def list_proc_pids(self) -> list[int]:
        return self.node.procfs.list_pids(self.creds)

    def read_proc_cmdline(self, pid: int) -> str:
        return self.node.procfs.read_cmdline(self.creds, pid)

    def read_proc_status(self, pid: int) -> dict[str, object]:
        return self.node.procfs.read_status(self.creds, pid)

    def kill(self, pid: int, sig: int = SIGTERM) -> None:
        self.node.procs.kill(self.creds, pid, sig)

    def spawn_child(self, argv: list[str], *, rss_mb: int = 10) -> "SyscallInterface":
        child = self.node.procs.spawn(self.creds, argv,
                                      ppid=self.process.pid,
                                      cwd=self.process.cwd,
                                      job_id=self.process.job_id,
                                      rss_mb=rss_mb)
        return SyscallInterface(self.node, child)

    def exit(self, code: int = 0) -> None:
        self.node.procs.reap(self.process.pid, exit_code=code)

    # -- group identity (newgrp / sg) ------------------------------------------

    def newgrp(self, gid: int) -> None:
        """Switch the effective gid (Section IV-D: 'the primary group of the
        listening process can be controlled via standard Linux tools such as
        newgrp or sg')."""
        self.process.creds = self.creds.with_egid(gid)

    # -- network ----------------------------------------------------------------

    def socket(self):
        """Return the node's network endpoint bound to this process."""
        if self.node.net is None:
            raise InvalidArgument(f"node {self.node.name} has no network stack")
        return self.node.net.endpoint(self.process)
