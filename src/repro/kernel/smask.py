"""The File Permission Handler — the paper's smask kernel patch.

Section IV-C (and the reproducibility appendix) describe two Linux kernel
patches plus a PAM module, published as the *HPC File Permission Handler*:

1. **smask** — a per-session *security mask*.  "It blocks the use of world
   bits for unprivileged users by setting a security mask (smask).  This is
   similar to setting ``umask 007``, but it is immutable and enforced (even
   on ``chmod``)."  With the paper's deployed value of ``0o007`` a user can
   never create *or chmod* a file to carry world (other) permission bits.

2. **ACL restriction** — "restrict the use of file access control lists to
   group members only, and a user cannot grant permission to a group unless
   they are a member of said group."

This module implements both as a policy object the VFS consults at every
``create``/``chmod``/``setfacl``, which is exactly where the kernel patch
hooks (``inode_init_owner`` / ``notify_change`` / ``posix_acl``).  Root is
exempt, as in the patch ("for unprivileged users").

The companion PAM module that installs the smask at session open is
:func:`repro.kernel.pam.pam_smask`; the staff escape hatch that opens a
relaxed shell is :func:`repro.core.tools.smask_relax`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.errors import PermissionError_
from repro.kernel.users import Credentials

#: smask value the paper deploys: blocks all world bits.
PAPER_SMASK = 0o007

#: smask value smask_relax grants support staff: allows world r/x, not w.
RELAXED_SMASK = 0o002


@dataclass(frozen=True)
class FilePermissionHandler:
    """Policy object for the two File Permission Handler kernel patches.

    Parameters
    ----------
    enabled:
        Master switch; the BASELINE preset runs with it off (stock kernel).
    restrict_acls:
        The second patch: ACL grants limited to groups the caller belongs to
        (and user-ACL grants disabled entirely, since granting to an
        arbitrary uid is the same leak as a world bit).
    """

    enabled: bool = True
    restrict_acls: bool = True

    def effective_mode(self, requested: int, creds: Credentials) -> int:
        """Mode actually stored for a create or chmod by *creds*.

        Applies ``mode & ~umask`` on create semantics at the caller, so this
        only strips the *security* mask; root bypasses.  Unlike umask, the
        strip also applies to chmod — the "enforced (even on chmod)" part.
        """
        if not self.enabled or creds.is_root:
            return requested & 0o7777
        return requested & 0o7777 & ~(creds.smask & 0o777)

    def check_acl_grant(self, creds: Credentials, *, target_gid: int | None,
                        target_uid: int | None) -> None:
        """Validate a ``setfacl`` grant under the ACL-restriction patch.

        Raises :class:`PermissionError_` when the caller tries to grant to a
        group they are not a member of, or to an individual foreign uid.
        """
        if not self.enabled or not self.restrict_acls or creds.is_root:
            return
        if target_gid is not None and not creds.in_group(target_gid):
            raise PermissionError_(
                f"ACL grant to gid {target_gid} denied: uid {creds.uid} is not a member"
            )
        if target_uid is not None and target_uid != creds.uid:
            raise PermissionError_(
                f"ACL grant to foreign uid {target_uid} denied by File Permission Handler"
            )


#: A disabled handler, used by the stock/BASELINE preset.
STOCK_KERNEL = FilePermissionHandler(enabled=False, restrict_acls=False)

#: The paper's deployed configuration.
LLSC_KERNEL = FilePermissionHandler(enabled=True, restrict_acls=True)
