"""Per-node process table: fork/exec, signals, exit.

Processes carry the :class:`~repro.kernel.users.Credentials` every kernel
enforcement point consumes, plus the command line that Section IV-A worries
about leaking ("many job properties could contain private information
including username, jobname, command, working directory path").  The
``/proc`` *view* of this table — where hidepid applies — lives in
:mod:`repro.kernel.procfs`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.kernel.errors import NoSuchProcess, PermissionError_
from repro.kernel.users import Credentials

SIGKILL = 9
SIGTERM = 15


class ProcState(enum.Enum):
    """Lifecycle state of a simulated process."""

    RUNNING = "R"
    SLEEPING = "S"
    ZOMBIE = "Z"
    DEAD = "X"


@dataclass
class Process:
    """One process on one node."""

    pid: int
    ppid: int
    creds: Credentials
    argv: list[str]
    cwd: str = "/"
    state: ProcState = ProcState.RUNNING
    job_id: int | None = None
    is_daemon: bool = False  # system daemon (owned by root or service uids)
    rss_mb: int = 10
    environ: dict[str, str] = field(default_factory=dict)
    exit_code: int | None = None

    @property
    def comm(self) -> str:
        """Executable short name, as in /proc/<pid>/comm."""
        return self.argv[0].rsplit("/", 1)[-1][:15] if self.argv else "?"

    @property
    def cmdline(self) -> str:
        return " ".join(self.argv)

    @property
    def alive(self) -> bool:
        return self.state in (ProcState.RUNNING, ProcState.SLEEPING)


class ProcessTable:
    """All processes on a single node.

    ``spawn`` is fork+exec fused; ``kill`` enforces the standard Linux
    rule that an unprivileged sender may only signal processes with a
    matching uid.
    """

    def __init__(self, node_name: str = "node"):
        self.node_name = node_name
        self._pids = itertools.count(2)
        self._procs: dict[int, Process] = {}
        # Live-process indexes: procfs queries for a non-exempt viewer and
        # the scheduler epilog must not scan every process ever spawned.
        self._live: dict[int, Process] = {}          # pid -> live process
        self._by_uid: dict[int, dict[int, Process]] = {}
        self._by_job: dict[int, set[int]] = {}       # job_id -> live pids
        self._rss_mb = 0
        # pid 1: init, root-owned, always present
        self._index(Process(pid=1, ppid=0,
                            creds=Credentials(uid=0, egid=0,
                                              groups=frozenset({0})),
                            argv=["/sbin/init"], is_daemon=True))

    def _index(self, proc: Process) -> None:
        self._procs[proc.pid] = proc
        self._live[proc.pid] = proc
        self._by_uid.setdefault(proc.creds.uid, {})[proc.pid] = proc
        if proc.job_id is not None:
            self._by_job.setdefault(proc.job_id, set()).add(proc.pid)
        self._rss_mb += proc.rss_mb

    def _unindex(self, proc: Process) -> None:
        if self._live.pop(proc.pid, None) is None:
            return
        owned = self._by_uid.get(proc.creds.uid)
        if owned is not None:
            owned.pop(proc.pid, None)
            if not owned:
                del self._by_uid[proc.creds.uid]
        if proc.job_id is not None:
            pids = self._by_job.get(proc.job_id)
            if pids is not None:
                pids.discard(proc.pid)
                if not pids:
                    del self._by_job[proc.job_id]
        self._rss_mb -= proc.rss_mb

    def spawn(self, creds: Credentials, argv: list[str], *, ppid: int = 1,
              cwd: str = "/", job_id: int | None = None,
              daemon: bool = False, rss_mb: int = 10,
              environ: dict[str, str] | None = None) -> Process:
        pid = next(self._pids)
        proc = Process(pid=pid, ppid=ppid, creds=creds, argv=list(argv),
                       cwd=cwd, job_id=job_id, is_daemon=daemon,
                       rss_mb=rss_mb, environ=dict(environ or {}))
        self._index(proc)
        return proc

    def get(self, pid: int) -> Process:
        try:
            return self._procs[pid]
        except KeyError:
            raise NoSuchProcess(f"pid {pid}") from None

    def exists(self, pid: int) -> bool:
        return pid in self._procs

    def pids(self) -> list[int]:
        """All live pids — the *kernel's* view; procfs filters this."""
        return sorted(self._live)

    def processes(self) -> list[Process]:
        return [self._live[p] for p in sorted(self._live)]

    def kill(self, sender: Credentials, pid: int, sig: int = SIGTERM) -> None:
        """Signal *pid*; unprivileged senders need a uid match."""
        proc = self.get(pid)
        if not proc.alive:
            raise NoSuchProcess(f"pid {pid} already dead")
        if not sender.is_root and sender.uid != proc.creds.uid:
            raise PermissionError_(
                f"uid {sender.uid} may not signal pid {pid} (uid {proc.creds.uid})"
            )
        if sig in (SIGKILL, SIGTERM):
            self.reap(pid, exit_code=-sig)

    def reap(self, pid: int, exit_code: int = 0) -> None:
        proc = self.get(pid)
        self._unindex(proc)
        proc.state = ProcState.DEAD
        proc.exit_code = exit_code

    def kill_job(self, job_id: int) -> list[int]:
        """Kernel-side cleanup of every process of a job (scheduler epilog).

        O(job's own processes) via the per-job index — not a scan of every
        process ever spawned on the node."""
        killed = sorted(self._by_job.get(job_id, ()))
        for pid in killed:
            self.reap(pid, exit_code=-SIGKILL)
        return killed

    def reap_orphans(self, live_job_ids: set[int]) -> list[int]:
        """Reap every job-owned process whose job is not in *live_job_ids*.

        Node remediation after a crash: daemons and init survive the reboot
        model, job residue does not.  The caller passes the job ids that
        still hold an allocation on this node (for a fenced node that set is
        empty — a requeued job restarted *elsewhere* must not shield its
        stale processes here).  Reaping goes through the normal indexes, so
        procfs views resync for free.  Returns the reaped pids.
        """
        doomed = sorted(pid for jid, pids in self._by_job.items()
                        if jid not in live_job_ids for pid in pids)
        for pid in doomed:
            self.reap(pid, exit_code=-SIGKILL)
        return doomed

    def of_user(self, uid: int) -> list[Process]:
        """Live processes of *uid*, pid-sorted — O(own processes)."""
        owned = self._by_uid.get(uid, {})
        return [owned[p] for p in sorted(owned)]

    def total_rss_mb(self) -> int:
        return self._rss_mb
