"""The ``/proc`` view with ``hidepid`` semantics (paper Section IV-A).

The paper's configuration is ``hidepid=2`` on the ``/proc`` mount, which
"isolates and hides processes and command line entries belonging to other
users or system daemons", plus a ``gid=`` mount flag naming a group that is
*exempt* from the restriction — how the ``seepid`` support tool works
(Section IV-A: a whitelisted set of HPC support personnel may add a
supplemental group to their logon session that is exempt from hidepid).

Linux semantics implemented here, per proc(5):

========  =====================================================================
hidepid   effect for a viewer that does not own the target process
========  =====================================================================
0         everything readable (stock default)
1         ``/proc/<pid>`` directories visible, but their contents
          (cmdline, status, ...) unreadable → EACCES
2         ``/proc/<pid>`` entirely invisible → listing omits it, reads ESRCH
========  =====================================================================

Root and members of the ``gid=`` group always see everything.  hidepid=2 is
what pre-mitigated SLURM CVE-2020-27746 (credentials readable from another
user's command line) on LLSC systems — reproduced as experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.errors import AccessDenied, NoSuchProcess
from repro.kernel.process import Process, ProcessTable
from repro.kernel.users import Credentials


@dataclass(frozen=True)
class ProcMountOptions:
    """Options of the /proc mount: ``-o hidepid=N[,gid=G]``."""

    hidepid: int = 0
    gid: int | None = None

    def __post_init__(self):
        if self.hidepid not in (0, 1, 2):
            raise ValueError(f"hidepid must be 0, 1 or 2, got {self.hidepid}")


@dataclass(frozen=True)
class PsEntry:
    """One row of ``ps`` output as assembled from /proc."""

    pid: int
    uid: int
    comm: str
    cmdline: str
    state: str
    rss_mb: int


class ProcFS:
    """Filtered view over a :class:`ProcessTable`.

    For a non-exempt viewer under hidepid the answer only ever contains the
    viewer's own processes, so listings use the table's per-uid index and
    touch O(own processes) instead of the whole node (the E24 procfs hot
    path).  ``naive=True`` keeps the original filter-everything scans as the
    differential-testing reference.
    """

    def __init__(self, table: ProcessTable,
                 options: ProcMountOptions = ProcMountOptions(),
                 naive: bool = False):
        self.table = table
        self.options = options
        self.naive = naive
        #: separation oracle (repro.oracle); None = zero-cost hooks
        self.oracle = None

    # -- visibility predicates ----------------------------------------------

    def _exempt(self, viewer: Credentials) -> bool:
        if viewer.is_root:
            return True
        gid = self.options.gid
        return gid is not None and (viewer.in_group(gid) or viewer.proc_exempt)

    def pid_visible(self, viewer: Credentials, proc: Process) -> bool:
        """May *viewer* see that this pid exists (i.e. the /proc/<pid> dir)?"""
        if self.options.hidepid < 2 or self._exempt(viewer):
            return True
        return proc.creds.uid == viewer.uid

    def pid_readable(self, viewer: Credentials, proc: Process) -> bool:
        """May *viewer* read /proc/<pid>/* contents?"""
        if self.options.hidepid == 0 or self._exempt(viewer):
            return True
        return proc.creds.uid == viewer.uid

    # -- reads ---------------------------------------------------------------

    def list_pids(self, viewer: Credentials) -> list[int]:
        """Directory listing of /proc — the pids *viewer* can see."""
        if (not self.naive and self.options.hidepid == 2
                and not self._exempt(viewer)):
            # hidepid=2 hides everything but the viewer's own processes.
            procs = self.table.of_user(viewer.uid)
        else:
            procs = [p for p in self.table.processes()
                     if self.pid_visible(viewer, p)]
        if self.oracle is not None:
            self.oracle.check_procfs_view(self, viewer, procs, "list_pids")
        return [p.pid for p in procs]

    def _lookup(self, viewer: Credentials, pid: int) -> Process:
        try:
            proc = self.table.get(pid)
        except NoSuchProcess:
            raise
        if not proc.alive:
            raise NoSuchProcess(f"pid {pid}")
        if not self.pid_visible(viewer, proc):
            # hidepid=2: indistinguishable from a nonexistent process
            raise NoSuchProcess(f"pid {pid}")
        return proc

    def read_cmdline(self, viewer: Credentials, pid: int) -> str:
        """/proc/<pid>/cmdline — the CVE-2020-27746 leak channel."""
        proc = self._lookup(viewer, pid)
        if not self.pid_readable(viewer, proc):
            raise AccessDenied(f"/proc/{pid}/cmdline")
        if self.oracle is not None:
            self.oracle.check_procfs_view(self, viewer, [proc], "read")
        return proc.cmdline

    def read_status(self, viewer: Credentials, pid: int) -> dict[str, object]:
        proc = self._lookup(viewer, pid)
        if not self.pid_readable(viewer, proc):
            raise AccessDenied(f"/proc/{pid}/status")
        if self.oracle is not None:
            self.oracle.check_procfs_view(self, viewer, [proc], "read")
        return {
            "Name": proc.comm,
            "Pid": proc.pid,
            "PPid": proc.ppid,
            "Uid": proc.creds.uid,
            "Gid": proc.creds.egid,
            "State": proc.state.value,
            "VmRSS": proc.rss_mb,
        }

    def ps(self, viewer: Credentials) -> list[PsEntry]:
        """What ``ps aux`` shows *viewer*: one row per readable process;
        under hidepid=1 other users' pids appear but without detail rows
        (real ``ps`` silently skips unreadable /proc entries, so they are
        omitted from output just like under hidepid=2 — the difference is
        observable via :meth:`list_pids`)."""
        if (not self.naive and self.options.hidepid in (1, 2)
                and not self._exempt(viewer)):
            # Only the viewer's own rows survive the readability filter.
            procs = self.table.of_user(viewer.uid)
        else:
            procs = [p for p in self.table.processes()
                     if self.pid_visible(viewer, p)
                     and self.pid_readable(viewer, p)]
        if self.oracle is not None:
            self.oracle.check_procfs_view(self, viewer, procs, "ps")
        return [PsEntry(pid=proc.pid, uid=proc.creds.uid,
                        comm=proc.comm, cmdline=proc.cmdline,
                        state=proc.state.value, rss_mb=proc.rss_mb)
                for proc in procs]

    def visible_users(self, viewer: Credentials) -> set[int]:
        """Distinct uids whose activity *viewer* can observe — the headline
        information-leak metric of experiment E1."""
        if (not self.naive and self.options.hidepid in (1, 2)
                and not self._exempt(viewer)):
            uids = {viewer.uid} if self.table.of_user(viewer.uid) else set()
        else:
            uids = {p.uid for p in self.ps(viewer)}
        if self.oracle is not None:
            self.oracle.check_procfs_view(self, viewer, (),
                                          "visible_users", uids=uids)
        return uids

    # -- aggregate files (hidepid does NOT hide these) ------------------------

    def loadavg(self, viewer: Credentials) -> dict[str, int]:
        """/proc/loadavg-shaped aggregate: world-readable under every
        hidepid level.  This is exactly why hidepid alone doesn't let staff
        *attribute* load — they can see THAT the node is busy, but need the
        seepid exemption to see WHO (Section IV-A)."""
        procs = self.table.processes()
        return {
            "running": sum(1 for p in procs
                           if p.state.value == "R" and not p.is_daemon),
            "total": len(procs),
        }

    def meminfo(self, viewer: Credentials) -> dict[str, int]:
        """/proc/meminfo-shaped aggregate (MB)."""
        return {"used_mb": self.table.total_rss_mb()}
