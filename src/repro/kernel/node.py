"""A simulated Linux node: VFS + process table + /proc + PAM + devices.

Each node owns node-local filesystems (``/``, ``/tmp``, ``/dev``) and mounts
the cluster's shared central filesystems (``/home``, ``/scratch``) — writes
to a shared mount are visible from every node, like Lustre.  The node also
carries the /proc mount options (hidepid) and the PAM stack evaluated at
every ssh / job launch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kernel.devices import make_dev_tree
from repro.kernel.pam import PamStack
from repro.kernel.process import ProcessTable
from repro.kernel.procfs import ProcFS, ProcMountOptions
from repro.kernel.smask import STOCK_KERNEL, FilePermissionHandler
from repro.kernel.users import Credentials, User, UserDB
from repro.kernel.vfs import VFS, Filesystem

ROOT_CREDS = Credentials(uid=0, egid=0, groups=frozenset({0}))


class NodeRole(enum.Enum):
    """The role a host plays in the cluster."""

    LOGIN = "login"
    COMPUTE = "compute"
    DTN = "dtn"  # data transfer node
    PORTAL = "portal"
    WORKSTATION = "workstation"  # user's own machine (root allowed; container builds)


@dataclass(frozen=True)
class NodeSpec:
    """Hardware shape of a node."""

    cores: int = 48
    mem_mb: int = 192_000
    gpus: int = 0


class LinuxNode:
    """One host of the cluster."""

    def __init__(self, name: str, userdb: UserDB, *,
                 role: NodeRole = NodeRole.COMPUTE,
                 spec: NodeSpec = NodeSpec(),
                 handler: FilePermissionHandler = STOCK_KERNEL,
                 proc_options: ProcMountOptions = ProcMountOptions(),
                 pam: PamStack | None = None,
                 protected_symlinks: bool = True,
                 protected_hardlinks: bool = True):
        self.name = name
        self.userdb = userdb
        self.role = role
        self.spec = spec
        self.handler = handler
        self.vfs = VFS(Filesystem(f"{name}:rootfs"), handler=handler,
                       protected_symlinks=protected_symlinks,
                       protected_hardlinks=protected_hardlinks)
        # node-local tmpfs and devtmpfs are distinct filesystems so that
        # container runtimes can bind-mount exactly these into a container's
        # namespace (Section IV-G passthrough)
        self.tmpfs = Filesystem(f"{name}:tmpfs")
        self.devfs = Filesystem(f"{name}:devtmpfs")
        self.procs = ProcessTable(name)
        self.procfs = ProcFS(self.procs, proc_options)
        self.pam = pam or PamStack()
        self.net = None  # attached by repro.net.stack.HostStack
        self._build_local_layout()

    def _build_local_layout(self) -> None:
        """Standard node-local tree: /tmp and /dev/shm world-writable+sticky."""
        v = self.vfs
        v.mount("/tmp", self.tmpfs, creds=ROOT_CREDS)
        v.mount("/dev", self.devfs, creds=ROOT_CREDS)
        self.tmpfs.root.mode = 0o1777
        make_dev_tree(v, ROOT_CREDS)
        v.mkdir("/var", ROOT_CREDS, mode=0o755)
        v.mkdir("/var/run", ROOT_CREDS, mode=0o755)

    # -- shared storage -----------------------------------------------------

    def mount_shared(self, path: str, fs: Filesystem) -> None:
        self.vfs.mount(path, fs, creds=ROOT_CREDS)

    # -- sessions -----------------------------------------------------------

    def open_session(self, user: User, *, umask: int = 0o022) -> Credentials:
        """ssh/login onto this node: PAM account checks + session transforms.

        Raises :class:`~repro.kernel.errors.AccessDenied` when pam_slurm (or
        any other stacked module) denies the login.
        """
        base = self.userdb.credentials_for(user, umask=umask)
        return self.pam.open_session(user, self.name, base)

    def set_proc_options(self, options: ProcMountOptions) -> None:
        """Remount /proc with new hidepid options (admin action)."""
        self.procfs = ProcFS(self.procs, options)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinuxNode {self.name} role={self.role.value}>"
