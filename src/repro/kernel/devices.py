"""Character-special devices and the ``/dev`` tree.

Section IV-F: "GPUs are assigned as a single-user resource.  This is
accomplished by modifying the permissions on relevant character special
files in ``/dev/`` to allow only the user private group of the user allocated
that GPU via the scheduler.  With this method, GPUs that have not been
assigned to a user are not visible at all."

The VFS already knows how to host device inodes (``FileKind.DEVICE`` with a
``device`` payload whose ``dev_read``/``dev_write`` the VFS calls after the
normal permission check).  This module provides the payload types and the
helper that populates a node's ``/dev``.
"""

from __future__ import annotations

from repro.kernel.users import Credentials
from repro.kernel.vfs import VFS, FileKind


class NullDevice:
    """/dev/null: reads empty, writes discarded."""

    def dev_read(self, creds: Credentials) -> bytes:
        return b""

    def dev_write(self, creds: Credentials, data: bytes) -> int:
        return len(data)


def make_dev_tree(vfs: VFS, root_creds: Credentials) -> None:
    """Create the standard /dev skeleton on a node's root filesystem.

    ``/dev/shm`` is the world-writable sticky tmpfs directory the paper calls
    out (with ``/tmp``) as a residual shared namespace; device permission
    bits start at the stock-Linux defaults and are tightened per-job by the
    scheduler prolog when GPU separation is enabled.
    """
    vfs.mkdir("/dev", root_creds, mode=0o755, exist_ok=True)
    vfs.mkdir("/dev/shm", root_creds, mode=0o1777, exist_ok=True)
    vfs.create("/dev/null", root_creds, mode=0o666, kind=FileKind.DEVICE,
               device=NullDevice(), exist_ok=True)


def install_gpu_device(vfs: VFS, root_creds: Credentials, index: int,
                       device: object, *, mode: int = 0o666) -> str:
    """Create ``/dev/nvidia<index>`` backed by *device*.

    Stock systems ship these 0666 (any local user can open any GPU) — the
    no-ownership model Section IV-F criticises.  The LLSC prolog re-chmods
    and re-chgrps these per allocation (:mod:`repro.sched.prolog_epilog`).
    """
    path = f"/dev/nvidia{index}"
    vfs.create(path, root_creds, mode=mode, kind=FileKind.DEVICE,
               device=device, exist_ok=True)
    return path
