"""errno-style exceptions raised by the simulated kernel.

Every enforcement point in the simulated substrate (VFS, process table,
procfs, network stack, scheduler PAM hooks) raises one of these rather than
returning sentinel values, mirroring how a real Linux syscall surfaces
``-EPERM``/``-EACCES``/... to userspace.  Attack probes in
:mod:`repro.core.attacks` catch :class:`KernelError` broadly and record the
specific errno observed.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for simulated-kernel errors.

    Attributes
    ----------
    errno:
        Numeric errno matching the Linux value (``EPERM == 1`` etc.).
    errname:
        Symbolic name (``"EPERM"``).
    """

    errno: int = -1
    errname: str = "E???"

    def __init__(self, message: str = ""):
        self.message = message
        super().__init__(f"[{self.errname}] {message}" if message else self.errname)


class PermissionError_(KernelError):
    """EPERM: operation not permitted (ownership / capability failure)."""

    errno = 1
    errname = "EPERM"


class NoSuchEntity(KernelError):
    """ENOENT: no such file, directory, process, or object."""

    errno = 2
    errname = "ENOENT"


class NoSuchProcess(KernelError):
    """ESRCH: no such process (also used when hidepid hides a pid)."""

    errno = 3
    errname = "ESRCH"


class AccessDenied(KernelError):
    """EACCES: permission bits / ACL / firewall denied the access."""

    errno = 13
    errname = "EACCES"


class Exists(KernelError):
    """EEXIST: object already exists."""

    errno = 17
    errname = "EEXIST"


class NotADirectory(KernelError):
    """ENOTDIR: path component is not a directory."""

    errno = 20
    errname = "ENOTDIR"


class IsADirectory(KernelError):
    """EISDIR: tried to treat a directory as a regular file."""

    errno = 21
    errname = "EISDIR"


class InvalidArgument(KernelError):
    """EINVAL: malformed request."""

    errno = 22
    errname = "EINVAL"


class NotEmpty(KernelError):
    """ENOTEMPTY: directory not empty."""

    errno = 39
    errname = "ENOTEMPTY"


class AddressInUse(KernelError):
    """EADDRINUSE: port already bound."""

    errno = 98
    errname = "EADDRINUSE"


class ConnectionRefused(KernelError):
    """ECONNREFUSED: nothing listening on the destination port."""

    errno = 111
    errname = "ECONNREFUSED"


class TimedOut(KernelError):
    """ETIMEDOUT: dropped by a firewall (silent drop looks like a timeout)."""

    errno = 110
    errname = "ETIMEDOUT"


class NotConnected(KernelError):
    """ENOTCONN: socket is not connected."""

    errno = 107
    errname = "ENOTCONN"


class QuotaExceeded(KernelError):
    """EDQUOT / ENOMEM stand-in: resource limit exceeded (e.g. node OOM)."""

    errno = 122
    errname = "EDQUOT"
