"""In-memory virtual filesystem with Linux DAC semantics.

This is the substrate for Section IV-C of the paper.  It implements:

* inodes with owner/group, the full 12-bit mode (setuid/setgid/sticky +
  rwxrwxrwx), and POSIX-style ACL entries;
* the classic discretionary access-control algorithm (owner class, then ACL
  user entries, then group class including ACL groups, then other class —
  with *no* fall-through between classes, matching POSIX.1e);
* ``umask`` on create, sticky-bit delete protection in world-writable
  directories (``/tmp``, ``/dev/shm``);
* the File Permission Handler hooks (:mod:`repro.kernel.smask`): smask
  applied on create *and re-applied on chmod*, and ACL grants restricted to
  the caller's own groups;
* a mount table so a central (Lustre-style) filesystem can be mounted on
  every node while ``/tmp`` and ``/dev`` stay node-local.  A filesystem can
  be marked ``honors_smask=False`` to model pre-LU-4746 Lustre, which read
  the umask variable directly and therefore *bypassed* the smask patch on
  file create — the bug the authors upstreamed a fix for.

All operations take a :class:`~repro.kernel.users.Credentials` and raise
:mod:`repro.kernel.errors` exceptions exactly where a real kernel would
return ``-EACCES``/``-EPERM``/...
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.kernel.errors import (
    AccessDenied,
    Exists,
    InvalidArgument,
    IsADirectory,
    NoSuchEntity,
    NotADirectory,
    NotEmpty,
    PermissionError_,
)
from repro.kernel.smask import STOCK_KERNEL, FilePermissionHandler
from repro.kernel.users import Credentials

R_OK = 4
W_OK = 2
X_OK = 1

S_ISUID = 0o4000
S_ISGID = 0o2000
S_ISVTX = 0o1000  # sticky


class FileKind(enum.Enum):
    """Inode type: file, directory, device, socket, or symlink."""

    FILE = "file"
    DIR = "dir"
    DEVICE = "device"
    SOCKET = "socket"
    SYMLINK = "symlink"


#: Symlink-chain depth limit, as in Linux (ELOOP beyond this).
MAX_SYMLINK_DEPTH = 40


@dataclass(frozen=True)
class AclEntry:
    """One POSIX ACL entry: a grant of rwx bits to a uid or gid."""

    tag: str  # "user" | "group"
    qualifier: int  # uid or gid
    perms: int  # rwx bits, 0..7

    def __post_init__(self):
        if self.tag not in ("user", "group"):
            raise InvalidArgument(f"bad ACL tag {self.tag!r}")
        if not 0 <= self.perms <= 7:
            raise InvalidArgument(f"bad ACL perms {self.perms!r}")


@dataclass
class Inode:
    """One filesystem object: mode, ownership, ACL, and content."""

    ino: int
    kind: FileKind
    uid: int
    gid: int
    mode: int  # 12-bit: suid/sgid/sticky + rwx*3
    data: bytearray = field(default_factory=bytearray)
    children: dict[str, "Inode"] = field(default_factory=dict)
    acl: list[AclEntry] = field(default_factory=list)
    device: object | None = None  # payload for FileKind.DEVICE
    nlink: int = 1
    mtime: float = 0.0
    atime: float = 0.0

    @property
    def is_dir(self) -> bool:
        return self.kind is FileKind.DIR

    @property
    def sticky(self) -> bool:
        return bool(self.mode & S_ISVTX)

    @property
    def setgid(self) -> bool:
        return bool(self.mode & S_ISGID)

    def perm_string(self) -> str:
        """``rwxr-x---``-style rendering (tests and `ls -l` output)."""
        out = []
        for shift in (6, 3, 0):
            bits = (self.mode >> shift) & 7
            out.append("r" if bits & 4 else "-")
            out.append("w" if bits & 2 else "-")
            out.append("x" if bits & 1 else "-")
        if self.sticky:
            out[8] = "t" if out[8] == "x" else "T"
        return "".join(out)


@dataclass(frozen=True)
class Stat:
    """Result of :meth:`VFS.stat` — what ``stat(2)`` exposes."""

    ino: int
    kind: FileKind
    uid: int
    gid: int
    mode: int
    size: int
    nlink: int
    mtime: float = 0.0
    atime: float = 0.0


def check_access(inode: Inode, creds: Credentials, want: int) -> bool:
    """POSIX.1e access decision for *creds* wanting *want* (R/W/X bits).

    Evaluation order: root → owner class → ACL user entries → group class
    (owning group and ACL group entries, any match that grants suffices) →
    other class.  Classes do not fall through: an owner denied by owner bits
    is denied even if the other bits would allow.
    """
    if creds.is_root:
        return True
    mode = inode.mode
    if creds.uid == inode.uid:
        return (mode >> 6) & want == want
    for entry in inode.acl:
        if entry.tag == "user" and entry.qualifier == creds.uid:
            return entry.perms & want == want
    in_group_class = False
    if creds.in_group(inode.gid):
        in_group_class = True
        if (mode >> 3) & want == want:
            return True
    for entry in inode.acl:
        if entry.tag == "group" and creds.in_group(entry.qualifier):
            in_group_class = True
            if entry.perms & want == want:
                return True
    if in_group_class:
        return False
    return mode & want == want


class Filesystem:
    """A single filesystem instance (one inode table, one root).

    Parameters
    ----------
    name:
        Label ("rootfs", "lustre-home", "tmpfs", ...).
    honors_smask:
        False models pre-LU-4746 Lustre: the filesystem reads the raw umask
        instead of the kernel accessor, so the smask patch is bypassed *on
        create* within this filesystem.  The authors' upstreamed patch sets
        this to True.
    """

    def __init__(self, name: str, *, honors_smask: bool = True):
        self.name = name
        self.honors_smask = honors_smask
        self._ino_counter = itertools.count(2)
        self.root = Inode(ino=1, kind=FileKind.DIR, uid=0, gid=0, mode=0o755)

    def alloc_inode(self, kind: FileKind, uid: int, gid: int, mode: int) -> Inode:
        return Inode(ino=next(self._ino_counter), kind=kind, uid=uid, gid=gid,
                     mode=mode & 0o7777)


@dataclass(frozen=True)
class Mount:
    """A mount-table entry binding a path prefix to a filesystem."""

    path: str  # normalized absolute mount point, e.g. "/home"
    fs: Filesystem


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise InvalidArgument(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p not in ("", ".")]
    out: list[str] = []
    for p in parts:
        if p == "..":
            if out:
                out.pop()
        else:
            out.append(p)
    return "/" + "/".join(out)


def split_path(path: str) -> tuple[str, str]:
    """Return (parent_path, basename) of a normalized path."""
    norm = _normalize(path)
    if norm == "/":
        raise InvalidArgument("cannot split the root path")
    head, _, tail = norm.rpartition("/")
    return (head or "/", tail)


class VFS:
    """Per-node view: a mount table over one or more :class:`Filesystem`.

    The same Filesystem object mounted into many nodes' VFS instances is how
    the central (home/scratch) storage is shared cluster-wide, exactly like a
    Lustre mount: writes on one node are instantly visible on all others.
    """

    def __init__(self, rootfs: Filesystem | None = None,
                 handler: FilePermissionHandler = STOCK_KERNEL,
                 *, protected_symlinks: bool = True,
                 protected_hardlinks: bool = True):
        self.rootfs = rootfs or Filesystem("rootfs")
        self.handler = handler
        # the fs.protected_symlinks / fs.protected_hardlinks sysctls,
        # default-on as on every modern distribution
        self.protected_symlinks = protected_symlinks
        self.protected_hardlinks = protected_hardlinks
        # timestamp source for mtime/atime; the cluster wires this to the
        # simulation engine's clock
        self.clock: Callable[[], float] = lambda: 0.0
        #: separation oracle (repro.oracle); None = zero-cost hooks
        self.oracle = None
        self._mounts: dict[str, Mount] = {"/": Mount("/", self.rootfs)}

    # -- mounts ------------------------------------------------------------

    def mount(self, path: str, fs: Filesystem, *, creds: Credentials) -> None:
        """Attach *fs* at *path* (root only). The mount point need not exist."""
        if not creds.is_root:
            raise PermissionError_("mount requires root")
        norm = _normalize(path)
        if norm in self._mounts and norm != "/":
            raise Exists(f"mount point {norm} busy")
        self._mounts[norm] = Mount(norm, fs)

    def mounts(self) -> list[Mount]:
        return sorted(self._mounts.values(), key=lambda m: m.path)

    def _find_mount(self, path: str) -> tuple[Mount, list[str]]:
        """Longest-prefix mount match; returns the mount and the residual
        path components inside that filesystem."""
        norm = _normalize(path)
        parts = [p for p in norm.split("/") if p]
        best = self._mounts["/"]
        best_depth = 0
        for mnt in self._mounts.values():
            mparts = [p for p in mnt.path.split("/") if p]
            if len(mparts) > best_depth and parts[: len(mparts)] == mparts:
                best = mnt
                best_depth = len(mparts)
        return best, parts[best_depth:]

    # -- resolution --------------------------------------------------------

    def resolve(self, path: str, creds: Credentials, *,
                follow: bool = True, _depth: int = 0) -> Inode:
        """Walk *path*, enforcing search (x) permission on every directory.

        Symlinks are followed (including for the final component unless
        ``follow=False``, i.e. lstat semantics), subject to the
        ``fs.protected_symlinks`` sysctl: a symlink located in a sticky
        world-writable directory is only followed when the link's owner
        matches the directory's owner or the caller — the kernel's defence
        against the classic ``/tmp`` symlink attack.
        """
        if _depth > MAX_SYMLINK_DEPTH:
            raise InvalidArgument(f"too many levels of symbolic links: {path!r}")
        mnt, parts = self._find_mount(path)
        node = mnt.fs.root
        walked = mnt.path.rstrip("/")
        for i, part in enumerate(parts):
            if not node.is_dir:
                raise NotADirectory("/".join(parts[:i]) or "/")
            if not check_access(node, creds, X_OK):
                raise AccessDenied(f"search permission denied in {path!r}")
            parent = node
            try:
                node = node.children[part]
            except KeyError:
                raise NoSuchEntity(path) from None
            is_last = i == len(parts) - 1
            if node.kind is FileKind.SYMLINK and (follow or not is_last):
                self._check_symlink_follow(parent, node, creds, path)
                target = node.data.decode()
                base = walked or ""
                resolved = target if target.startswith("/") \
                    else f"{base}/{target}"
                rest = "/".join(parts[i + 1:])
                newpath = resolved + ("/" + rest if rest else "")
                return self.resolve(newpath, creds, follow=follow,
                                    _depth=_depth + 1)
            walked = f"{walked}/{part}"
        return node

    def _check_symlink_follow(self, parent: Inode, link: Inode,
                              creds: Credentials, path: str) -> None:
        if not self.protected_symlinks or creds.is_root:
            return
        world_writable = bool(parent.mode & 0o002)
        if parent.sticky and world_writable:
            if link.uid != parent.uid and link.uid != creds.uid:
                raise AccessDenied(
                    f"protected_symlinks: refusing to follow foreign link "
                    f"in sticky world-writable dir ({path!r})"
                )

    def _resolve_parent(self, path: str, creds: Credentials) -> tuple[Inode, str]:
        parent_path, name = split_path(path)
        parent = self.resolve(parent_path, creds)
        if not parent.is_dir:
            raise NotADirectory(parent_path)
        return parent, name

    def exists(self, path: str, creds: Credentials) -> bool:
        try:
            self.resolve(path, creds)
            return True
        except (NoSuchEntity, AccessDenied, NotADirectory):
            return False

    # -- create / remove ---------------------------------------------------

    def _fs_of(self, path: str) -> Filesystem:
        return self._find_mount(path)[0].fs

    def _create_mode(self, requested: int, creds: Credentials,
                     fs: Filesystem) -> int:
        mode = requested & 0o7777 & ~(creds.umask & 0o777) if not creds.is_root \
            else requested & 0o7777
        if fs.honors_smask:
            mode = self.handler.effective_mode(mode, creds)
        return mode

    def create(self, path: str, creds: Credentials, *, mode: int = 0o666,
               kind: FileKind = FileKind.FILE, data: bytes = b"",
               device: object | None = None, exist_ok: bool = False) -> Inode:
        """Create a file/device/socket node; needs w+x on the parent dir.

        New-file group ownership follows Linux: the creator's egid, unless
        the parent directory is setgid, in which case the parent's group is
        inherited (how project-group shared directories work).
        """
        norm = _normalize(path)
        if norm in self._mounts:
            mnt_root = self._mounts[norm].fs.root
            if exist_ok and mnt_root.kind is kind:
                return mnt_root
            raise Exists(f"{norm} is a mount point")
        parent, name = self._resolve_parent(path, creds)
        # EEXIST before EACCES, as in Linux: the lookup (needing only x on
        # the parent) happens before the write-permission check
        if name in parent.children:
            if exist_ok and parent.children[name].kind is kind:
                return parent.children[name]
            raise Exists(path)
        if not check_access(parent, creds, W_OK | X_OK):
            raise AccessDenied(f"cannot create in {path!r}")
        fs = self._fs_of(path)
        gid = parent.gid if parent.setgid else creds.egid
        eff = self._create_mode(mode, creds, fs)
        if kind is FileKind.DIR and parent.setgid:
            eff |= S_ISGID  # setgid propagates to subdirectories
        inode = fs.alloc_inode(kind, creds.uid, gid, eff)
        if self.oracle is not None and fs.honors_smask:
            self.oracle.check_vfs_mode(self, path, creds, eff, "create")
        inode.mtime = inode.atime = self.clock()
        if data:
            inode.data.extend(data)
        if device is not None:
            inode.device = device
        parent.children[name] = inode
        parent.mtime = self.clock()
        return inode

    def mkdir(self, path: str, creds: Credentials, *, mode: int = 0o777,
              exist_ok: bool = False) -> Inode:
        return self.create(path, creds, mode=mode, kind=FileKind.DIR,
                           exist_ok=exist_ok)

    def makedirs(self, path: str, creds: Credentials, *, mode: int = 0o777) -> Inode:
        norm = _normalize(path)
        parts = [p for p in norm.split("/") if p]
        cur = ""
        node = self.resolve("/", creds)
        for p in parts:
            cur += "/" + p
            if not self.exists(cur, creds):
                node = self.mkdir(cur, creds, mode=mode)
            else:
                node = self.resolve(cur, creds)
        return node

    def unlink(self, path: str, creds: Credentials) -> None:
        """Remove a file; sticky-bit semantics protect /tmp-style dirs."""
        parent, name = self._resolve_parent(path, creds)
        if not check_access(parent, creds, W_OK | X_OK):
            raise AccessDenied(f"cannot unlink in {path!r}")
        try:
            victim = parent.children[name]
        except KeyError:
            raise NoSuchEntity(path) from None
        if victim.is_dir and victim.children:
            raise NotEmpty(path)
        if (parent.sticky and not creds.is_root
                and creds.uid not in (victim.uid, parent.uid)):
            raise PermissionError_(
                f"sticky bit: uid {creds.uid} may not remove {path!r}"
            )
        del parent.children[name]
        victim.nlink -= 1

    def rename(self, oldpath: str, newpath: str, creds: Credentials) -> None:
        """rename(2): move/overwrite within one filesystem.

        Needs w+x on both parent directories; sticky-bit protection applies
        to removing the *source* name and to replacing an existing target,
        exactly as for unlink.  Cross-filesystem renames raise EINVAL
        (userspace ``mv`` would fall back to copy+unlink).
        """
        if self._fs_of(oldpath) is not self._fs_of(newpath):
            raise InvalidArgument("cross-filesystem rename")
        old_parent, old_name = self._resolve_parent(oldpath, creds)
        new_parent, new_name = self._resolve_parent(newpath, creds)
        for parent, label in ((old_parent, oldpath), (new_parent, newpath)):
            if not check_access(parent, creds, W_OK | X_OK):
                raise AccessDenied(f"rename: no write access at {label!r}")
        try:
            moving = old_parent.children[old_name]
        except KeyError:
            raise NoSuchEntity(oldpath) from None
        if (old_parent.sticky and not creds.is_root
                and creds.uid not in (moving.uid, old_parent.uid)):
            raise PermissionError_(
                f"sticky bit: uid {creds.uid} may not move {oldpath!r}")
        target = new_parent.children.get(new_name)
        if target is not None:
            if target is moving:
                return
            if target.is_dir != moving.is_dir:
                raise (IsADirectory(newpath) if target.is_dir
                       else NotADirectory(newpath))
            if target.is_dir and target.children:
                raise NotEmpty(newpath)
            if (new_parent.sticky and not creds.is_root
                    and creds.uid not in (target.uid, new_parent.uid)):
                raise PermissionError_(
                    f"sticky bit: uid {creds.uid} may not replace {newpath!r}")
        del old_parent.children[old_name]
        new_parent.children[new_name] = moving
        now = self.clock()
        old_parent.mtime = new_parent.mtime = now

    # -- data i/o ----------------------------------------------------------

    def _device_deny(self, inode, creds: Credentials, path: str) -> None:
        """Observability hook: a device file refused an open.  Devices may
        expose ``on_access_denied`` (e.g. GPUs reporting GPU_DENY); the
        refusal itself is already decided — this never changes it."""
        if inode.kind is FileKind.DEVICE and inode.device is not None:
            notify = getattr(inode.device, "on_access_denied", None)
            if notify is not None:
                notify(creds, path)

    def read(self, path: str, creds: Credentials) -> bytes:
        inode = self.resolve(path, creds)
        if inode.is_dir:
            raise IsADirectory(path)
        if not check_access(inode, creds, R_OK):
            self._device_deny(inode, creds, path)
            raise AccessDenied(f"read denied: {path!r}")
        inode.atime = self.clock()
        if inode.kind is FileKind.DEVICE and inode.device is not None:
            read = getattr(inode.device, "dev_read", None)
            if read is not None:
                return read(creds)
        return bytes(inode.data)

    def write(self, path: str, creds: Credentials, data: bytes,
              *, append: bool = False) -> int:
        inode = self.resolve(path, creds)
        if inode.is_dir:
            raise IsADirectory(path)
        if not check_access(inode, creds, W_OK):
            self._device_deny(inode, creds, path)
            raise AccessDenied(f"write denied: {path!r}")
        inode.mtime = self.clock()
        if inode.kind is FileKind.DEVICE and inode.device is not None:
            write = getattr(inode.device, "dev_write", None)
            if write is not None:
                return write(creds, data)
        if not append:
            inode.data.clear()
        inode.data.extend(data)
        return len(data)

    def listdir(self, path: str, creds: Credentials) -> list[str]:
        inode = self.resolve(path, creds)
        if not inode.is_dir:
            raise NotADirectory(path)
        if not check_access(inode, creds, R_OK):
            raise AccessDenied(f"list denied: {path!r}")
        return sorted(inode.children)

    def walk(self, path: str, creds: Credentials) -> Iterator[tuple[str, list[str]]]:
        """Recursive listing (permission-checked at each level)."""
        names = self.listdir(path, creds)
        yield _normalize(path), names
        for n in names:
            child = _normalize(path + "/" + n)
            try:
                # lstat semantics: do not descend through symlinks (avoids
                # cycles exactly like find(1) without -L)
                if self.resolve(child, creds, follow=False).is_dir:
                    yield from self.walk(child, creds)
            except (AccessDenied, NoSuchEntity):
                continue

    # -- links -------------------------------------------------------------

    def symlink(self, target: str, linkpath: str, creds: Credentials) -> Inode:
        """Create a symbolic link at *linkpath* pointing at *target*.

        Like Linux, the target is stored verbatim (dangling links are
        legal); the link inode itself is mode 0777 and owned by the
        creator.
        """
        parent, name = self._resolve_parent(linkpath, creds)
        if not check_access(parent, creds, W_OK | X_OK):
            raise AccessDenied(f"cannot create link in {linkpath!r}")
        if name in parent.children:
            raise Exists(linkpath)
        fs = self._fs_of(linkpath)
        inode = fs.alloc_inode(FileKind.SYMLINK, creds.uid, creds.egid,
                               0o777)
        inode.data.extend(target.encode())
        parent.children[name] = inode
        return inode

    def readlink(self, path: str, creds: Credentials) -> str:
        inode = self.resolve(path, creds, follow=False)
        if inode.kind is not FileKind.SYMLINK:
            raise InvalidArgument(f"{path!r} is not a symlink")
        return inode.data.decode()

    def link(self, oldpath: str, newpath: str, creds: Credentials) -> Inode:
        """Hard link: a second name for the same inode.

        Enforces the ``fs.protected_hardlinks`` sysctl: an unprivileged
        caller may only hardlink a file they own, or one they have
        read+write access to — blocking the hardlink variant of the /tmp
        attack.
        """
        target = self.resolve(oldpath, creds)
        if target.is_dir:
            raise PermissionError_("hard links to directories are forbidden")
        if (self.protected_hardlinks and not creds.is_root
                and target.uid != creds.uid
                and not check_access(target, creds, R_OK | W_OK)):
            raise PermissionError_(
                f"protected_hardlinks: cannot link foreign file {oldpath!r}"
            )
        parent, name = self._resolve_parent(newpath, creds)
        if not check_access(parent, creds, W_OK | X_OK):
            raise AccessDenied(f"cannot create link in {newpath!r}")
        if name in parent.children:
            raise Exists(newpath)
        if self._fs_of(newpath) is not self._fs_of(oldpath):
            raise InvalidArgument("cross-filesystem hard link")
        parent.children[name] = target
        target.nlink += 1
        return target

    # -- metadata ----------------------------------------------------------

    def stat(self, path: str, creds: Credentials) -> Stat:
        inode = self.resolve(path, creds)
        return Stat(ino=inode.ino, kind=inode.kind, uid=inode.uid,
                    gid=inode.gid, mode=inode.mode, size=len(inode.data),
                    nlink=inode.nlink, mtime=inode.mtime, atime=inode.atime)

    def lstat(self, path: str, creds: Credentials) -> Stat:
        """stat without following a final-component symlink."""
        inode = self.resolve(path, creds, follow=False)
        return Stat(ino=inode.ino, kind=inode.kind, uid=inode.uid,
                    gid=inode.gid, mode=inode.mode, size=len(inode.data),
                    nlink=inode.nlink, mtime=inode.mtime, atime=inode.atime)

    def chmod(self, path: str, creds: Credentials, mode: int) -> int:
        """Change mode; only the owner or root.  The File Permission Handler
        re-applies the smask here — the 'enforced (even on chmod)' property.
        Returns the mode actually stored (tests assert the silently-stripped
        world bits)."""
        inode = self.resolve(path, creds)
        if not creds.is_root and creds.uid != inode.uid:
            raise PermissionError_(f"chmod {path!r}: not owner")
        inode.mode = self.handler.effective_mode(mode, creds)
        if self.oracle is not None:
            self.oracle.check_vfs_mode(self, path, creds, inode.mode,
                                       "chmod")
        return inode.mode

    def chown(self, path: str, creds: Credentials, *, uid: int | None = None,
              gid: int | None = None) -> None:
        """Owner change requires root; group change is allowed for the file's
        owner but only *to a group they are a member of* (standard Linux)."""
        inode = self.resolve(path, creds)
        if uid is not None and uid != inode.uid:
            if not creds.is_root:
                raise PermissionError_(f"chown {path!r}: requires root")
            inode.uid = uid
        if gid is not None and gid != inode.gid:
            if not creds.is_root:
                if creds.uid != inode.uid:
                    raise PermissionError_(f"chgrp {path!r}: not owner")
                if not creds.in_group(gid):
                    raise PermissionError_(
                        f"chgrp {path!r}: uid {creds.uid} not in gid {gid}"
                    )
            inode.gid = gid

    def setfacl(self, path: str, creds: Credentials, entry: AclEntry) -> None:
        """Add/replace an ACL entry; owner or root.  Under the File
        Permission Handler, grants are restricted to the caller's own groups
        (and never to foreign uids)."""
        inode = self.resolve(path, creds)
        if not creds.is_root and creds.uid != inode.uid:
            raise PermissionError_(f"setfacl {path!r}: not owner")
        self.handler.check_acl_grant(
            creds,
            target_gid=entry.qualifier if entry.tag == "group" else None,
            target_uid=entry.qualifier if entry.tag == "user" else None,
        )
        inode.acl = [e for e in inode.acl
                     if (e.tag, e.qualifier) != (entry.tag, entry.qualifier)]
        inode.acl.append(entry)
        if self.oracle is not None:
            self.oracle.check_vfs_acl(self, path, creds, entry)

    def getfacl(self, path: str, creds: Credentials) -> list[AclEntry]:
        return list(self.resolve(path, creds).acl)

    def access(self, path: str, creds: Credentials, want: int) -> bool:
        """access(2): True if *creds* could open *path* with *want* bits."""
        try:
            return check_access(self.resolve(path, creds), creds, want)
        except (AccessDenied, NoSuchEntity, NotADirectory):
            return False
