"""Users, groups, the user-private-group (UPG) scheme, and credentials.

Section IV-C of the paper assumes "the standard user private group model is
in use, which means every user's default group is a private group which
contains only themselves".  Sharing is *only* intended through "approved
project groups", each with one or more "data stewards" who approve membership
changes and are responsible for the group's contents.

:class:`UserDB` implements that account model; :class:`Credentials` is the
per-process credential set (uid, effective gid, supplementary groups) that
every enforcement point in the simulated kernel consumes.  ``newgrp``/``sg``
semantics — switching the *effective* gid to any group the user is a member
of — are provided by :meth:`Credentials.with_egid`, because the paper's
user-based firewall keys its group rule off the listener's egid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernel.errors import Exists, InvalidArgument, NoSuchEntity, PermissionError_

#: uid of the superuser.
ROOT_UID = 0
#: gid of the superuser's group.
ROOT_GID = 0

#: First uid/gid handed out to ordinary users (mirrors a typical /etc/login.defs).
FIRST_USER_ID = 1000


@dataclass(frozen=True)
class User:
    """An account on the cluster.

    Attributes
    ----------
    name: login name.
    uid: numeric id.
    primary_gid: the user's default group; under the UPG scheme this is a
        private group containing only this user.
    is_support_staff: marks HPC support personnel (research facilitators /
        solution architects) eligible for the ``seepid`` / ``smask_relax``
        escalation tools of Sections IV-A and IV-C.  Staff are *not* root.
    """

    name: str
    uid: int
    primary_gid: int
    is_support_staff: bool = False

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID


@dataclass
class Group:
    """A UNIX group.

    ``private_for`` is set to the owning uid for user-private groups;
    ``stewards`` is non-empty only for approved project groups (Section IV-C),
    where membership changes must be made by a steward (or root).
    """

    name: str
    gid: int
    members: set[int] = field(default_factory=set)
    private_for: int | None = None
    stewards: set[int] = field(default_factory=set)

    @property
    def is_private(self) -> bool:
        return self.private_for is not None

    @property
    def is_project(self) -> bool:
        return bool(self.stewards)


@dataclass(frozen=True)
class Credentials:
    """The credential set a process carries.

    ``egid`` is the *effective* gid used for new-file group ownership and for
    the UBF's group rule; ``groups`` is the full supplementary membership set
    (always including the primary/private group).  ``umask`` is the classic
    discretionary mask; ``smask`` is the paper's *security mask* — immutable
    from the process's point of view, applied by the File Permission Handler
    kernel patch (see :mod:`repro.kernel.smask`).
    """

    uid: int
    egid: int
    groups: frozenset[int]
    umask: int = 0o022
    smask: int = 0o000
    proc_exempt: bool = False  # member of the hidepid gid= exemption group

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID

    def in_group(self, gid: int) -> bool:
        """True if *gid* is the effective gid or a supplementary group."""
        return gid == self.egid or gid in self.groups

    def with_egid(self, gid: int) -> "Credentials":
        """Return credentials with the effective gid switched (``newgrp``/``sg``).

        Raises :class:`PermissionError_` if the caller is not a member of the
        target group (root may switch freely).
        """
        if not self.is_root and gid not in self.groups and gid != self.egid:
            raise PermissionError_(f"uid {self.uid} is not a member of gid {gid}")
        return replace(self, egid=gid)

    def with_umask(self, umask: int) -> "Credentials":
        return replace(self, umask=umask & 0o777)

    def with_smask(self, smask: int) -> "Credentials":
        """Used only by the PAM session hook / ``smask_relax``; ordinary code
        cannot loosen its own smask (the patch enforces it kernel-side)."""
        return replace(self, smask=smask & 0o777)

    def with_extra_group(self, gid: int) -> "Credentials":
        return replace(self, groups=self.groups | {gid})


class UserDB:
    """Account database for a cluster, implementing the UPG scheme.

    Parameters
    ----------
    upg:
        When True (the paper's deployment), every created user gets a fresh
        private group as their primary group.  When False (a "stock" system,
        used by the BASELINE preset), all users share a common ``users``
        group — the configuration under which ``chmod g+rw`` leaks data to
        every other user.
    """

    def __init__(self, upg: bool = True):
        self.upg = upg
        #: bumped on every membership-affecting mutation; consumers caching
        #: derived views (e.g. the UBF's per-egid allow-sets) key on it.
        self.generation = 0
        #: optional write-ahead journal (repro.persist); every account
        #: mutation appends a record when set.  None = zero-cost hooks.
        self.journal = None
        self._users: dict[str, User] = {}
        self._users_by_uid: dict[int, User] = {}
        self._groups: dict[str, Group] = {}
        self._groups_by_gid: dict[int, Group] = {}
        self._next_uid = FIRST_USER_ID
        self._next_gid = FIRST_USER_ID
        root_grp = Group("root", ROOT_GID, members={ROOT_UID})
        self._register_group(root_grp)
        root = User("root", ROOT_UID, ROOT_GID)
        self._users["root"] = root
        self._users_by_uid[ROOT_UID] = root
        if not upg:
            self._register_group(Group("users", 100, members=set()))

    # -- registration ------------------------------------------------------

    def _register_group(self, group: Group) -> Group:
        if group.name in self._groups:
            raise Exists(f"group {group.name!r}")
        if group.gid in self._groups_by_gid:
            raise Exists(f"gid {group.gid}")
        self._groups[group.name] = group
        self._groups_by_gid[group.gid] = group
        return group

    def add_user(self, name: str, *, support_staff: bool = False) -> User:
        """Create a user (and their private group under UPG)."""
        if name in self._users:
            raise Exists(f"user {name!r}")
        uid = self._next_uid
        self._next_uid += 1
        if self.upg:
            gid = self._next_gid
            self._next_gid = max(self._next_gid + 1, self._next_uid)
            self._register_group(Group(name, gid, members={uid}, private_for=uid))
        else:
            gid = 100  # shared "users" group
            self._groups_by_gid[gid].members.add(uid)
        user = User(name, uid, gid, is_support_staff=support_staff)
        self._users[name] = user
        self._users_by_uid[uid] = user
        self.generation += 1
        if self.journal is not None:
            self.journal.user_added(user, self.generation)
        return user

    def add_project_group(self, name: str, steward: User) -> Group:
        """Create an approved project group with *steward* as data steward.

        Only cluster staff create these in practice; in the simulation the
        call itself is unrestricted but membership changes afterwards are
        steward-gated (:meth:`add_to_project`).
        """
        gid = self._next_gid
        self._next_gid += 1
        grp = Group(name, gid, members={steward.uid}, stewards={steward.uid})
        self.generation += 1
        self._register_group(grp)
        if self.journal is not None:
            self.journal.project_group_added(grp, self.generation)
        return grp

    def add_to_project(self, group: Group | str, user: User, *, approver: User) -> None:
        """Add *user* to a project group; *approver* must be a steward or root."""
        grp = self.group(group) if isinstance(group, str) else group
        if not grp.is_project:
            raise InvalidArgument(f"{grp.name!r} is not an approved project group")
        if approver.uid not in grp.stewards and not approver.is_root:
            raise PermissionError_(
                f"{approver.name} is not a data steward of {grp.name!r}"
            )
        grp.members.add(user.uid)
        self.generation += 1
        if self.journal is not None:
            self.journal.member_added(grp, user.uid, self.generation)

    def remove_from_project(self, group: Group | str, user: User, *, approver: User) -> None:
        grp = self.group(group) if isinstance(group, str) else group
        if not grp.is_project:
            raise InvalidArgument(f"{grp.name!r} is not an approved project group")
        if approver.uid not in grp.stewards and not approver.is_root:
            raise PermissionError_(
                f"{approver.name} is not a data steward of {grp.name!r}"
            )
        grp.members.discard(user.uid)
        self.generation += 1
        if self.journal is not None:
            self.journal.member_removed(grp, user.uid, self.generation)

    def add_system_group(self, name: str, members: set[int] | None = None) -> Group:
        """Create a plain system group (e.g. the hidepid exemption group)."""
        gid = self._next_gid
        self._next_gid += 1
        self.generation += 1
        grp = self._register_group(Group(name, gid, members=set(members or ())))
        if self.journal is not None:
            self.journal.system_group_added(grp, self.generation)
        return grp

    # -- lookup ------------------------------------------------------------

    def user(self, name_or_uid: str | int) -> User:
        try:
            if isinstance(name_or_uid, int):
                return self._users_by_uid[name_or_uid]
            return self._users[name_or_uid]
        except KeyError:
            raise NoSuchEntity(f"user {name_or_uid!r}") from None

    def group(self, name_or_gid: str | int) -> Group:
        try:
            if isinstance(name_or_gid, int):
                return self._groups_by_gid[name_or_gid]
            return self._groups[name_or_gid]
        except KeyError:
            raise NoSuchEntity(f"group {name_or_gid!r}") from None

    def users(self) -> list[User]:
        return list(self._users.values())

    def groups_of(self, user: User) -> frozenset[int]:
        """All gids *user* belongs to (primary + supplementary)."""
        return frozenset(
            g.gid for g in self._groups.values() if user.uid in g.members
        ) | {user.primary_gid}

    def credentials_for(self, user: User, *, smask: int = 0o000,
                        umask: int = 0o022) -> Credentials:
        """Build a fresh credential set for a login session of *user*."""
        return Credentials(
            uid=user.uid,
            egid=user.primary_gid,
            groups=self.groups_of(user),
            umask=umask,
            smask=smask,
        )

    def shares_group(self, a: User, b: User) -> bool:
        """True if the two users share any non-system supplementary group."""
        common = self.groups_of(a) & self.groups_of(b)
        return any(
            not self._groups_by_gid[g].is_private
            for g in common
            if g in self._groups_by_gid
        )
