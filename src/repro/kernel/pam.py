"""A miniature PAM (pluggable authentication modules) stack.

Two paper mechanisms live here:

* **pam_slurm** (Section IV-B): "we have also configured pam_slurm so that
  users can only ssh into compute nodes on which they have one or more jobs
  currently executing."  The account-phase module consults a *job presence*
  callback provided by the scheduler.

* **pam_smask** (Section IV-C / appendix): the File Permission Handler ships
  a PAM module that installs the security mask into every new session's
  credentials, so the smask is in force before the user's first process runs.

A :class:`PamStack` is a list of modules; ``open_session`` runs all account
checks (any failure denies the login) and then lets session modules
transform the credentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.kernel.errors import AccessDenied
from repro.kernel.users import Credentials, User


class PamModule(Protocol):
    """One PAM module: an account predicate and/or a session transform."""

    name: str

    def account(self, user: User, node_name: str) -> None:
        """Raise :class:`AccessDenied` to deny the login."""

    def session(self, user: User, node_name: str,
                creds: Credentials) -> Credentials:
        """Return (possibly transformed) session credentials."""


@dataclass
class PamUnix:
    """Stock pam_unix: everyone with an account may log in."""

    name: str = "pam_unix"

    def account(self, user: User, node_name: str) -> None:
        return None

    def session(self, user: User, node_name: str,
                creds: Credentials) -> Credentials:
        return creds


@dataclass
class PamSlurm:
    """pam_slurm: deny ssh to compute nodes without a running job there.

    ``has_job_on`` is supplied by the scheduler
    (:meth:`repro.sched.scheduler.Scheduler.user_has_job_on`).  Root and
    login/service nodes (``exempt_nodes``) are always allowed.
    """

    has_job_on: Callable[[int, str], bool]
    exempt_nodes: frozenset[str] = frozenset()
    name: str = "pam_slurm"

    def account(self, user: User, node_name: str) -> None:
        if user.is_root or node_name in self.exempt_nodes:
            return
        if not self.has_job_on(user.uid, node_name):
            raise AccessDenied(
                f"pam_slurm: {user.name} has no running job on {node_name}"
            )

    def session(self, user: User, node_name: str,
                creds: Credentials) -> Credentials:
        return creds


@dataclass
class PamSmask:
    """The File Permission Handler's PAM module: installs the smask."""

    smask: int = 0o007
    name: str = "pam_smask"

    def account(self, user: User, node_name: str) -> None:
        return None

    def session(self, user: User, node_name: str,
                creds: Credentials) -> Credentials:
        if creds.is_root:
            return creds
        return creds.with_smask(self.smask)


@dataclass
class PamStack:
    """Ordered module list evaluated at every login / job launch."""

    modules: list[PamModule] = field(default_factory=lambda: [PamUnix()])

    def open_session(self, user: User, node_name: str,
                     base_creds: Credentials) -> Credentials:
        """Run account checks then session transforms.

        Raises :class:`AccessDenied` (from a module) on denial; otherwise
        returns the final session credentials.
        """
        for mod in self.modules:
            mod.account(user, node_name)
        creds = base_creds
        for mod in self.modules:
            creds = mod.session(user, node_name, creds)
        return creds
