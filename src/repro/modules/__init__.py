"""Linux environment modules: the paper's preferred mechanism for shared
software (Section IV-G), with visibility governed purely by filesystem DAC."""

from repro.modules.modulefile import (
    ModuleFile,
    parse_modulefile,
    render_modulefile,
)
from repro.modules.system import (
    DEFAULT_MODULEPATH,
    LOADED_VAR,
    ModuleSystem,
    publish_module,
)

__all__ = [
    "ModuleFile", "parse_modulefile", "render_modulefile",
    "DEFAULT_MODULEPATH", "LOADED_VAR", "ModuleSystem", "publish_module",
]
