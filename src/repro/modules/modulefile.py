"""Modulefile format and parser (Tcl-modules flavoured, simplified).

Section IV-G's conclusion: "shared installations of software applications
are better managed by providing installed applications in shared group
areas and enabling users to dynamically configure their environment to use
the applications with Linux environment modules."

A modulefile here is a small text file in the VFS::

    #%Module
    ## anaconda 2024a — site python stack
    setenv        CONDA_ROOT /software/anaconda/2024a
    prepend-path  PATH       /software/anaconda/2024a/bin
    prepend-path  LD_LIBRARY_PATH /software/anaconda/2024a/lib
    conflict      mamba

The parser accepts exactly these directives (plus comments/blank lines) and
produces a :class:`ModuleFile`.  Because modulefiles are ordinary files,
*who can see and load a module is decided by the filesystem DAC* — which is
how the paper's smask/UPG regime extends to software publishing: staff
publish world-readable trees via ``smask_relax``, project groups share
modules through their group directories, and private modules stay private.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.errors import InvalidArgument

MAGIC = "#%Module"


@dataclass(frozen=True)
class ModuleFile:
    """A parsed modulefile."""

    name: str       # e.g. "anaconda"
    version: str    # e.g. "2024a"
    setenv: dict[str, str] = field(default_factory=dict)
    prepend_path: dict[str, tuple[str, ...]] = field(default_factory=dict)
    conflicts: frozenset[str] = frozenset()
    description: str = ""

    @property
    def full_name(self) -> str:
        return f"{self.name}/{self.version}"


def parse_modulefile(name: str, version: str, text: str) -> ModuleFile:
    """Parse modulefile *text*; raises :class:`InvalidArgument` on syntax
    errors (unknown directives, missing magic header, bad arity)."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith(MAGIC):
        raise InvalidArgument(f"modulefile {name}/{version}: missing {MAGIC}")
    setenv: dict[str, str] = {}
    prepend: dict[str, list[str]] = {}
    conflicts: set[str] = set()
    description = ""
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("##"):
            description = description or line.lstrip("# ").strip()
            continue
        if line.startswith("#"):
            continue
        parts = line.split(None, 2)
        directive = parts[0]
        if directive == "setenv":
            if len(parts) != 3:
                raise InvalidArgument(
                    f"{name}/{version}:{lineno}: setenv needs VAR VALUE")
            setenv[parts[1]] = parts[2]
        elif directive == "prepend-path":
            if len(parts) != 3:
                raise InvalidArgument(
                    f"{name}/{version}:{lineno}: prepend-path needs VAR DIR")
            prepend.setdefault(parts[1], []).append(parts[2])
        elif directive == "conflict":
            if len(parts) < 2:
                raise InvalidArgument(
                    f"{name}/{version}:{lineno}: conflict needs NAME")
            conflicts.add(parts[1])
        else:
            raise InvalidArgument(
                f"{name}/{version}:{lineno}: unknown directive {directive!r}")
    return ModuleFile(name=name, version=version, setenv=dict(setenv),
                      prepend_path={k: tuple(v) for k, v in prepend.items()},
                      conflicts=frozenset(conflicts),
                      description=description)


def render_modulefile(mod: ModuleFile) -> str:
    """Inverse of :func:`parse_modulefile` (used by the publish helper)."""
    out = [MAGIC]
    if mod.description:
        out.append(f"## {mod.description}")
    for var, val in mod.setenv.items():
        out.append(f"setenv        {var} {val}")
    for var, dirs in mod.prepend_path.items():
        for d in dirs:
            out.append(f"prepend-path  {var} {d}")
    for c in sorted(mod.conflicts):
        out.append(f"conflict      {c}")
    return "\n".join(out) + "\n"
