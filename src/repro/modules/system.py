"""The module command: avail / load / unload / list over VFS modulefiles.

Visibility and loadability are pure filesystem DAC: ``avail`` lists only
modulefiles the caller can read along the MODULEPATH, so the smask/UPG
regime governs software sharing with no extra policy — staff-published
trees (world-readable via ``smask_relax``) appear for everyone, a project
group's modules appear only to members, and a user's private modules only
to themselves.

``load`` mutates the *calling process's* environment (the real module
command is a shell function for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.errors import (
    AccessDenied,
    Exists,
    InvalidArgument,
    NoSuchEntity,
    NotADirectory,
)
from repro.kernel.process import Process
from repro.kernel.node import LinuxNode
from repro.modules.modulefile import ModuleFile, parse_modulefile, render_modulefile

#: Default MODULEPATH entries scanned, in priority order.  Project groups
#: typically extend this with ``/home/proj/<group>/modulefiles``.
DEFAULT_MODULEPATH = ("/scratch/modulefiles",)

LOADED_VAR = "LOADEDMODULES"


@dataclass
class ModuleSystem:
    """The ``module`` command bound to one node."""

    node: LinuxNode
    modulepath: tuple[str, ...] = DEFAULT_MODULEPATH

    # -- discovery ----------------------------------------------------------

    def _scan_dir(self, root: str, creds) -> list[tuple[str, str, str]]:
        """Yield (name, version, path) under one MODULEPATH root.
        Layout: <root>/<name>/<version>."""
        out = []
        try:
            names = self.node.vfs.listdir(root, creds)
        except (NoSuchEntity, AccessDenied, NotADirectory):
            return out
        for name in names:
            subdir = f"{root}/{name}"
            try:
                versions = self.node.vfs.listdir(subdir, creds)
            except (AccessDenied, NotADirectory, NoSuchEntity):
                continue
            for version in versions:
                path = f"{subdir}/{version}"
                try:
                    if self.node.vfs.resolve(path, creds,
                                             follow=False).is_dir:
                        continue  # not a modulefile (nested directory)
                except (AccessDenied, NoSuchEntity):
                    continue
                out.append((name, version, path))
        return out

    def avail(self, process: Process) -> list[str]:
        """``module avail``: every loadable name/version for this caller."""
        creds = process.creds
        found = []
        for root in self.modulepath:
            for name, version, path in self._scan_dir(root, creds):
                if self.node.vfs.access(path, creds, 4):
                    found.append(f"{name}/{version}")
        return sorted(set(found))

    def _find(self, spec: str, creds) -> ModuleFile:
        """Resolve 'name' or 'name/version' to a parsed modulefile."""
        if "/" in spec:
            name, version = spec.split("/", 1)
        else:
            name, version = spec, None
        candidates = []
        for root in self.modulepath:
            for n, v, path in self._scan_dir(root, creds):
                if n == name and (version is None or v == version):
                    candidates.append((v, path))
        if not candidates:
            raise NoSuchEntity(f"module {spec!r} not found (or not readable)")
        # highest version wins when unversioned, like Lmod's default
        v, path = sorted(candidates)[-1]
        text = self.node.vfs.read(path, creds).decode()
        return parse_modulefile(name, v, text)

    # -- environment mutation ---------------------------------------------

    def loaded(self, process: Process) -> list[str]:
        val = process.environ.get(LOADED_VAR, "")
        return [m for m in val.split(":") if m]

    def load(self, process: Process, spec: str) -> ModuleFile:
        """``module load``: apply setenv/prepend-path to the process env.

        Raises on conflicts (either direction) and on double-load of
        another version of the same module.
        """
        mod = self._find(spec, process.creds)
        current = self.loaded(process)
        for full in current:
            cname = full.split("/", 1)[0]
            if cname == mod.name:
                raise Exists(f"module {full} already loaded")
            if cname in mod.conflicts:
                raise InvalidArgument(
                    f"module {mod.full_name} conflicts with loaded {full}")
            loaded_mod = self._find(full, process.creds)
            if mod.name in loaded_mod.conflicts:
                raise InvalidArgument(
                    f"loaded {full} conflicts with {mod.full_name}")
        env = process.environ
        for var, val in mod.setenv.items():
            env[var] = val
        for var, dirs in mod.prepend_path.items():
            existing = env.get(var, "")
            parts = [d for d in dirs] + ([existing] if existing else [])
            env[var] = ":".join(parts)
        env[LOADED_VAR] = ":".join(current + [mod.full_name])
        return mod

    def unload(self, process: Process, spec: str) -> None:
        """``module unload``: remove path entries and unset variables."""
        name = spec.split("/", 1)[0]
        current = self.loaded(process)
        match = next((m for m in current
                      if m.split("/", 1)[0] == name), None)
        if match is None:
            raise NoSuchEntity(f"module {spec!r} is not loaded")
        mod = self._find(match, process.creds)
        env = process.environ
        for var in mod.setenv:
            env.pop(var, None)
        for var, dirs in mod.prepend_path.items():
            parts = [p for p in env.get(var, "").split(":") if p]
            for d in dirs:
                if d in parts:
                    parts.remove(d)  # one occurrence per prepend
            if parts:
                env[var] = ":".join(parts)
            else:
                env.pop(var, None)
        env[LOADED_VAR] = ":".join(m for m in current if m != match)


def publish_module(node: LinuxNode, creds, root: str,
                   mod: ModuleFile, *, mode: int = 0o644) -> str:
    """Write a modulefile tree entry (<root>/<name>/<version>).

    Whether the result is world-visible depends entirely on the caller's
    smask — staff run this from an ``smask_relax`` shell to publish site
    software; a plain user publishing to their own area produces a module
    only they (or their group) can see.
    """
    vfs = node.vfs
    vfs.mkdir(root, creds, mode=0o755, exist_ok=True)
    vfs.mkdir(f"{root}/{mod.name}", creds, mode=0o755, exist_ok=True)
    path = f"{root}/{mod.name}/{mod.version}"
    vfs.create(path, creds, mode=mode,
               data=render_modulefile(mod).encode())
    return path
