"""HPC container substrate: images (built off-cluster) and an unprivileged
runtime with host passthrough."""

from repro.containers.hygiene import (
    StaleContainer,
    hygiene_report,
    load_image,
    save_image,
    scan_stale_containers,
)
from repro.containers.image import ContainerImage, ImageFile, build_image
from repro.containers.runtime import (
    Container,
    ContainerSyscalls,
    SingularityRuntime,
)

__all__ = [
    "StaleContainer", "hygiene_report", "load_image", "save_image",
    "scan_stale_containers",
    "ContainerImage", "ImageFile", "build_image",
    "Container", "ContainerSyscalls", "SingularityRuntime",
]
