"""HPC container runtime: unprivileged run with host passthrough.

Section IV-G's distinction: HPC containers (Singularity/Apptainer,
Charliecloud, Shifter) are *software-encapsulation* containers.  Unlike
enterprise service containers they

* run without root and without granting the user any new privilege —
  processes inside keep exactly the invoking user's credentials;
* "can only pass-through shared access to the host network stack";
* "often pass-through the host local and central file systems for their
  persistent storage";
* therefore "all of the security features described in this paper pass
  through to the container as well" — smask (in the credentials), hidepid
  (host /proc), the UBF (host stack), GPU /dev permissions (host devfs).

The runtime materialises the image into a fresh read-only-by-convention
filesystem, then bind-mounts the host's ``/tmp``, ``/dev``, and every shared
mount (``/home``, ``/scratch``) into the container's VFS.  No USB/port/
storage virtualisation exists to configure — the features whose absence
removes whole classes of container security concerns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.errors import PermissionError_
from repro.kernel.node import LinuxNode, ROOT_CREDS
from repro.kernel.process import Process
from repro.kernel.syscalls import SyscallInterface
from repro.kernel.vfs import VFS, FileKind, Filesystem
from repro.containers.image import ContainerImage


@dataclass
class Container:
    """A running container instance on one node."""

    node: LinuxNode
    image: ContainerImage
    process: Process  # the containerised process (same creds as invoker)
    vfs: VFS  # container-namespace view

    def syscalls(self) -> "ContainerSyscalls":
        return ContainerSyscalls(self)


class ContainerSyscalls(SyscallInterface):
    """Syscall façade inside the container: same process/creds, container
    VFS for file operations, host /proc and host network untouched."""

    def __init__(self, container: Container):
        super().__init__(container.node, container.process)
        self.container = container

    # file ops hit the container namespace; everything else (ps, kill,
    # sockets) inherits the host-node behaviour from SyscallInterface
    def _vfs(self):
        return self.container.vfs

    def open_read(self, path):
        return self.container.vfs.read(path, self.creds)

    def open_write(self, path, data, *, append=False):
        return self.container.vfs.write(path, self.creds, data, append=append)

    def create(self, path, *, mode=0o666, data=b""):
        self.container.vfs.create(path, self.creds, mode=mode, data=data)
        return self.container.vfs.stat(path, self.creds)

    def mkdir(self, path, *, mode=0o777):
        self.container.vfs.mkdir(path, self.creds, mode=mode)
        return self.container.vfs.stat(path, self.creds)

    def unlink(self, path):
        self.container.vfs.unlink(path, self.creds)

    def listdir(self, path):
        return self.container.vfs.listdir(path, self.creds)

    def stat(self, path):
        return self.container.vfs.stat(path, self.creds)

    def chmod(self, path, mode):
        return self.container.vfs.chmod(path, self.creds, mode)

    def setfacl(self, path, entry):
        self.container.vfs.setfacl(path, self.creds, entry)

    def access(self, path, want):
        return self.container.vfs.access(path, self.creds, want)


class SingularityRuntime:
    """``apptainer exec``-style launcher bound to one node.

    ``allowed_users`` models the LLSC practice of enabling Singularity
    per-user/team ("we do enable Singularity privileges to users and teams
    for which this is the case"); None means everyone may run containers.
    """

    def __init__(self, node: LinuxNode, *,
                 allowed_users: frozenset[int] | None = None):
        self.node = node
        self.allowed_users = allowed_users

    def run(self, process: Process, image: ContainerImage) -> Container:
        """Instantiate *image* for *process*; no privilege change occurs.

        The container VFS shares the node's smask handler (the kernel is the
        host kernel), binds host tmpfs/devfs, and re-mounts every shared
        filesystem the host has (central /home, /scratch ...).
        """
        creds = process.creds
        if (self.allowed_users is not None and not creds.is_root
                and creds.uid not in self.allowed_users):
            raise PermissionError_(
                f"uid {creds.uid} is not enabled for Singularity on "
                f"{self.node.name}"
            )
        rootfs = self._materialise(image)
        cvfs = VFS(rootfs, handler=self.node.handler,
                   protected_symlinks=self.node.vfs.protected_symlinks,
                   protected_hardlinks=self.node.vfs.protected_hardlinks)
        cvfs.clock = self.node.vfs.clock
        cvfs.mount("/tmp", self.node.tmpfs, creds=ROOT_CREDS)
        cvfs.mount("/dev", self.node.devfs, creds=ROOT_CREDS)
        for mnt in self.node.vfs.mounts():
            if mnt.path in ("/", "/tmp", "/dev"):
                continue
            cvfs.mount(mnt.path, mnt.fs, creds=ROOT_CREDS)
        return Container(node=self.node, image=image, process=process,
                         vfs=cvfs)

    def _materialise(self, image: ContainerImage) -> Filesystem:
        """Unpack the image into a fresh filesystem (root-owned content,
        like a squashfs: users cannot modify the image's own files)."""
        fs = Filesystem(f"container:{image.name}", honors_smask=True)
        v = VFS(fs)  # stock handler: image content is root-authored
        for f in sorted(image.files, key=lambda f: f.path.count("/")):
            if f.is_dir:
                v.makedirs(f.path, ROOT_CREDS, mode=f.mode)
            else:
                parent = f.path.rsplit("/", 1)[0] or "/"
                if parent != "/":
                    v.makedirs(parent, ROOT_CREDS, mode=0o755)
                v.create(f.path, ROOT_CREDS, mode=f.mode, data=f.data,
                         kind=FileKind.FILE)
        return fs
