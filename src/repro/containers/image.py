"""Container images (Singularity/Apptainer-style, paper Section IV-G).

"To avoid granting any administrative privileges, users cannot create and
populate their Singularity containers on the HPC system; they must use their
own computer where they have some administrative privileges in order to do
so."

An image is an immutable snapshot of a root filesystem tree.  Building one
requires root on the *build host*: allowed on a user's own
:class:`~repro.kernel.node.NodeRole.WORKSTATION`, refused on any cluster
node.  Images are shared as ordinary files (a ``.sif``), so they land in the
central filesystem like any other data — which is how the paper's
"old, unused containers littering the home directories" problem arises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.errors import PermissionError_
from repro.kernel.node import LinuxNode, NodeRole
from repro.kernel.users import User


@dataclass(frozen=True)
class ImageFile:
    """One file (or directory) packed inside a container image."""

    path: str  # absolute path inside the container
    data: bytes = b""
    mode: int = 0o755
    is_dir: bool = False


@dataclass(frozen=True)
class ContainerImage:
    """An immutable encapsulated software environment."""

    name: str
    built_by: str
    files: tuple[ImageFile, ...] = ()
    labels: dict[str, str] = field(default_factory=dict)

    def lookup(self, path: str) -> ImageFile | None:
        for f in self.files:
            if f.path == path:
                return f
        return None


def build_image(build_host: LinuxNode, builder: User, name: str,
                files: list[ImageFile], *,
                labels: dict[str, str] | None = None) -> ContainerImage:
    """``apptainer build``: requires effective root on the build host.

    On a WORKSTATION the builder has administrative rights over their own
    machine; on cluster nodes (login/compute/...) unprivileged users are
    refused — DoD requirements forbid granting them any admin privileges.
    """
    if build_host.role is not NodeRole.WORKSTATION and not builder.is_root:
        raise PermissionError_(
            f"container build on {build_host.name} ({build_host.role.value}) "
            "requires root; build on your own workstation instead"
        )
    return ContainerImage(name=name, built_by=builder.name,
                          files=tuple(files), labels=dict(labels or {}))
