"""Container image persistence + the stale-container hygiene scanner.

Section IV-G's operational complaint: "because of the ease with which they
can be shared among shared-group users, containers tend to get proliferated
across central file systems by sharing, cloning, and modifying them.  After
a few years, there are just a lot of old, unused containers littering the
home directories and shared group areas of central file systems.  Users do
not remember why they are still keeping them."

``save_image``/``load_image`` store images as ``.sif`` files in the VFS
(so they proliferate exactly like real ones), and
:func:`scan_stale_containers` is the periodic housekeeping report LLSC-style
operations teams run: every ``.sif`` on the central filesystems, its owner,
size, and how long since it was last *used* (file atime, which
``load_image`` refreshes).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.containers.image import ContainerImage
from repro.kernel.errors import InvalidArgument
from repro.kernel.node import LinuxNode, ROOT_CREDS
from repro.kernel.users import Credentials
from repro.kernel.vfs import FileKind

SIF_SUFFIX = ".sif"


def save_image(node: LinuxNode, creds: Credentials, path: str,
               image: ContainerImage) -> None:
    """Serialise *image* to a ``.sif`` file (subject to normal DAC/smask)."""
    if not path.endswith(SIF_SUFFIX):
        raise InvalidArgument(f"container images are saved as *{SIF_SUFFIX}")
    node.vfs.create(path, creds, mode=0o640, data=pickle.dumps(image))


def load_image(node: LinuxNode, creds: Credentials,
               path: str) -> ContainerImage:
    """Read a ``.sif`` back (refreshes atime → counts as 'used')."""
    blob = node.vfs.read(path, creds)
    obj = pickle.loads(blob)
    if not isinstance(obj, ContainerImage):
        raise InvalidArgument(f"{path!r} is not a container image")
    return obj


@dataclass(frozen=True)
class StaleContainer:
    """A container instance left on node-local disk by a finished job."""

    path: str
    owner_uid: int
    size_bytes: int
    idle_time: float  # now - atime


def scan_stale_containers(node: LinuxNode, *, now: float,
                          stale_after: float,
                          roots: tuple[str, ...] = ("/home", "/scratch"),
                          ) -> list[StaleContainer]:
    """Housekeeping sweep (run as root): every ``.sif`` under *roots* whose
    atime is older than *stale_after*.  Sorted oldest-first."""
    stale: list[StaleContainer] = []
    for root in roots:
        try:
            entries = node.vfs.walk(root, ROOT_CREDS)
        except Exception:
            continue
        for dirpath, names in entries:
            for name in names:
                if not name.endswith(SIF_SUFFIX):
                    continue
                full = f"{dirpath}/{name}"
                st = node.vfs.lstat(full, ROOT_CREDS)
                if st.kind is not FileKind.FILE:
                    continue
                idle = now - st.atime
                if idle >= stale_after:
                    stale.append(StaleContainer(
                        path=full, owner_uid=st.uid,
                        size_bytes=st.size, idle_time=idle))
    return sorted(stale, key=lambda s: -s.idle_time)


def hygiene_report(stale: list[StaleContainer]) -> dict[str, object]:
    """Aggregate for the operations dashboard."""
    by_owner: dict[int, int] = {}
    for s in stale:
        by_owner[s.owner_uid] = by_owner.get(s.owner_uid, 0) + 1
    return {
        "stale_count": len(stale),
        "reclaimable_bytes": sum(s.size_bytes for s in stale),
        "by_owner": by_owner,
        "oldest": stale[0].path if stale else None,
    }
