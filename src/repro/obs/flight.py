"""Per-node flight recorder: bounded recent history, dumped on incident.

Real clusters cannot keep every packet and every span forever; what the
paper's operators actually had when an incident surfaced was *recent*
state — the last window of UBF/PAM log lines on the affected node.  The
:class:`FlightRecorder` reproduces that operational reality: a bounded
ring of the most recent security events (global and per node) plus the
tracer's newest spans, automatically snapshotted into a
:class:`ForensicDump` the moment something forensically interesting
happens — an oracle violation, a node fence, an injected fault.

The recorder rides the :class:`~repro.monitor.events.SecurityEventLog`
sink stream (it never touches the enforcement points) and takes its span
window from :meth:`Tracer.tail <repro.obs.trace.Tracer.tail>`, so open
spans appear in dumps tagged ``"open": true`` — an in-flight dispatch at
fence time is precisely the evidence an investigator wants.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.monitor.events import EventKind, SecurityEvent
from repro.obs.export import event_to_dict, span_to_dict

#: Version stamped into every dump; bump on shape changes.
FLIGHT_SCHEMA_VERSION = 1


@dataclass
class ForensicDump:
    """One frozen snapshot of recent history around an incident.

    ``trigger`` is ``oracle-violation`` / ``node-fenced`` /
    ``fault-injected`` / ``manual``; ``node`` scopes the per-node event
    window (None for cluster-wide triggers).  All payloads are plain
    JSON-ready dicts so a dump survives the simulation that produced it.
    """

    dump_id: str
    time: float
    trigger: str
    node: str | None
    detail: str
    events: list[dict] = field(default_factory=list)
    node_events: list[dict] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    gpus: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation with the schema version stamped."""
        return {
            "type": "flight-dump",
            "v": FLIGHT_SCHEMA_VERSION,
            "dump_id": self.dump_id,
            "time": self.time,
            "trigger": self.trigger,
            "node": self.node,
            "detail": self.detail,
            "events": self.events,
            "node_events": self.node_events,
            "spans": self.spans,
            "faults": self.faults,
            "gpus": self.gpus,
        }

    def write(self, path: str) -> None:
        """Write the dump as pretty-printed JSON to *path*."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")


class FlightRecorder:
    """Bounded ring of recent events/spans with automatic incident dumps.

    ``capacity`` bounds each ring (the global event window, each node's
    window, and the span window) — memory is O(capacity × nodes seen),
    never O(run length).  Snapshot triggers, evaluated on the event-sink
    path:

    * an ``ORACLE`` event → ``oracle-violation`` dump,
    * a ``NODE_LIFECYCLE`` event whose detail starts with ``"fenced:"``
      (the scheduler's fence record) → ``node-fenced`` dump,
    * :meth:`on_fault` (wired to ``FaultInjector.on_inject``) →
      ``fault-injected`` dump.

    Dumps accumulate in ``dumps``; :meth:`snapshot` also serves manual
    capture.  The optional ``metrics`` set counts
    ``flight_dumps_total{trigger=...}``.
    """

    def __init__(self, clock: Callable[[], float] | None = None, *,
                 capacity: int = 256, tracer=None, faults=None,
                 metrics=None, gpu_state: Callable[[], list[dict]] | None
                 = None):
        if capacity < 1:
            raise ValueError("capacity must be a positive record count")
        self.clock: Callable[[], float] = clock if clock is not None \
            else (lambda: 0.0)
        self.capacity = capacity
        #: optional Tracer whose newest spans join each dump
        self.tracer = tracer
        #: optional FaultInjector queried for active faults at dump time
        self.faults = faults
        #: optional MetricSet counting flight_dumps_total{trigger=}
        self.metrics = metrics
        #: optional callable returning per-GPU forensic summaries
        self.gpu_state = gpu_state
        self._ids = itertools.count(1)
        self._ring: deque[SecurityEvent] = deque(maxlen=capacity)
        self._node_rings: dict[str, deque[SecurityEvent]] = {}
        self.dumps: list[ForensicDump] = []

    # -- ingest -------------------------------------------------------------

    def observe_event(self, event: SecurityEvent) -> None:
        """Event-log sink: record the event, snapshot when it triggers.

        Registered via ``SecurityEventLog.subscribe``.  The event enters
        the rings *before* any trigger fires, so the triggering event is
        always the last entry of its own dump's window.
        """
        self._ring.append(event)
        if event.node is not None:
            ring = self._node_rings.get(event.node)
            if ring is None:
                ring = self._node_rings[event.node] = deque(
                    maxlen=self.capacity)
            ring.append(event)
        if event.kind is EventKind.ORACLE:
            self.snapshot("oracle-violation", node=event.node,
                          detail=f"{event.target}: {event.detail}")
        elif (event.kind is EventKind.NODE_LIFECYCLE
              and event.detail.startswith("fenced:")):
            self.snapshot("node-fenced", node=event.node or event.target,
                          detail=event.detail)

    def on_fault(self, fault) -> None:
        """Fault-injector hook: snapshot the moment a fault is injected."""
        self.snapshot("fault-injected", node=fault.host,
                      detail=fault.describe())

    # -- capture ------------------------------------------------------------

    def node_window(self, node: str) -> list[SecurityEvent]:
        """The retained recent events of one node, oldest first."""
        return list(self._node_rings.get(node, ()))

    def snapshot(self, trigger: str = "manual", *, node: str | None = None,
                 detail: str = "") -> ForensicDump:
        """Freeze the current rings into a :class:`ForensicDump`.

        ``node`` scopes the per-node window (empty when the node has no
        retained events).  Faults and GPU state are sampled live at
        snapshot time; spans come from ``tracer.tail(capacity)`` and
        include open ones.
        """
        dump = ForensicDump(
            dump_id=f"fd{next(self._ids):06d}",
            time=self.clock(),
            trigger=trigger,
            node=node,
            detail=detail,
            events=[event_to_dict(e) for e in self._ring],
            node_events=[event_to_dict(e)
                         for e in self._node_rings.get(node, ())]
            if node is not None else [],
            spans=[span_to_dict(s)
                   for s in self.tracer.tail(self.capacity)]
            if self.tracer is not None else [],
            faults=[{"kind": f.kind.value, "host": f.host,
                     "detail": f.describe()}
                    for f in self.faults.active()]
            if self.faults is not None else [],
            gpus=self.gpu_state() if self.gpu_state is not None else [],
        )
        self.dumps.append(dump)
        if self.metrics is not None:
            self.metrics.counter("flight_dumps_total",
                                 trigger=trigger).inc()
        return dump

    def dumps_for(self, trigger: str) -> list[ForensicDump]:
        """All dumps produced by one trigger kind, in capture order."""
        return [d for d in self.dumps if d.trigger == trigger]
